//! Fixture: suppression scoping — each allow below must silence exactly
//! its own site; the final, unannotated site must still be reported.

// xtask:allow-file(hash-container): fixture — exercises file-wide scope
use std::collections::HashMap;
use std::time::Instant;

pub fn lookup(map: &HashMap<u64, u32>, k: u64) -> Option<u32> {
    map.get(&k).copied()
}

pub fn timed_above() -> Instant {
    // xtask:allow(wall-clock): fixture — exercises line-above scope
    Instant::now()
}

pub fn timed_inline() -> Instant {
    Instant::now() // xtask:allow(wall-clock): fixture — same-line scope
}

pub fn unsuppressed() -> Instant {
    Instant::now()
}
