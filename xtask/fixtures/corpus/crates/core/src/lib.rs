//! Fixture: a determinism-critical library crate root seeded with one
//! true positive per rule — and with look-alikes (comments, strings,
//! `#[cfg(test)]` bodies) that the engine must NOT report. The
//! integration test pins the exact findings.
//!
//! Deliberately missing `#![forbid(unsafe_code)]` and
//! `#![warn(missing_docs)]`: two crate-header findings.

use std::collections::HashMap;
use std::time::Instant;

pub fn cell_count(map: &HashMap<u64, u32>) -> usize {
    map.len()
}

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn max_key(xs: &[f64]) -> f64 {
    let decoy = "HashSet::new() and Instant::now() inside a string literal";
    let _ = decoy;
    *xs.iter()
        .max_by(|a, b| a.partial_cmp(b).unwrap())
        .expect("non-empty input")
}

pub fn sort_keys(xs: &mut [f64]) {
    xs.sort_unstable_by(|a, b| a.total_cmp(b));
}

/* block-comment decoy: partial_cmp(x).unwrap() and HashMap must not fire */

#[cfg(test)]
mod tests {
    #[test]
    fn unit_tests_are_exempt() {
        let v: Option<u32> = Some(1);
        v.unwrap();
        let _ = std::time::Instant::now();
    }
}
