//! Fixture: integration-test files are allowlisted wholesale — nothing
//! in this file may produce a finding.

#[test]
fn harness_may_unwrap_and_time() {
    let v: Option<u32> = Some(1);
    v.unwrap();
    let _ = std::time::Instant::now();
    let xs = [1.0f64, 2.0];
    let _ = xs.iter().max_by(|a, b| a.partial_cmp(b).unwrap());
}
