//! Fixture: a non-root library file in a determinism-critical crate —
//! HashSet, an unstable float sort, and a NaN-unsound comparator, all of
//! which must be reported (no crate-header findings: not a crate root).

use std::collections::HashSet;

pub fn dedup_ids(ids: &[u64]) -> usize {
    let set: HashSet<u64> = ids.iter().copied().collect();
    set.len()
}

pub fn sort_dists(xs: &mut [f64]) {
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
}
