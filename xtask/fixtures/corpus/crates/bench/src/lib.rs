//! Fixture: the bench crate is exempt from wall-clock and the unwrap
//! ratchet; only the header rule applies here, and it is satisfied —
//! this file must produce zero findings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Wall-clock and unwrap are the measurement harness's prerogative.
pub fn measure() -> f64 {
    let start = std::time::Instant::now();
    let parsed: Result<f64, _> = "1.0".parse();
    parsed.unwrap() + start.elapsed().as_secs_f64()
}
