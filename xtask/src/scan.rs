//! Source discovery and the token-level view of one Rust file.
//!
//! The rule engine never parses Rust properly; like rustc's `tidy` it works
//! on a *masked* rendering of each file in which comment and string-literal
//! bytes are blanked out (newlines preserved), so token searches cannot
//! false-positive on prose, doc examples, or string contents. On top of the
//! mask, `#[cfg(test)] mod … { … }` bodies are blanked too — in-file unit
//! tests enjoy the same allowances as `tests/` files — and suppression
//! comments (`// xtask:allow(rule): reason`) are collected from the raw
//! text before masking.

use std::fs;
use std::path::{Path, PathBuf};

/// Where a file sits in the workspace, which decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source under some crate's `src/` (not `src/bin/`).
    LibSource,
    /// A binary target root (`src/bin/*.rs`, `src/main.rs`).
    Binary,
    /// Tests, benches, examples — allowlisted for robustness rules.
    TestOrHarness,
}

/// One scanned source file plus its masked token view.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Path relative to the scan root, `/`-separated.
    pub rel: String,
    /// Crate directory name: `core`, `geom`, … for `crates/*`, `traclus`
    /// for the facade (`src/`, `tests/`, `examples/`), `xtask` for the
    /// tool crate.
    pub crate_name: String,
    /// Target classification.
    pub kind: FileKind,
    /// Whether this file is a crate root (`lib.rs`, `main.rs`, or a
    /// `src/bin/*.rs` single-file binary).
    pub is_crate_root: bool,
    /// Whether it is specifically a *library* crate root (`lib.rs`).
    pub is_lib_root: bool,
    /// Raw text as read.
    pub raw: String,
    /// Token view: comments, strings, and `#[cfg(test)]` module bodies
    /// blanked with spaces; byte-for-byte the same length/line layout as
    /// `raw`.
    pub masked: String,
    /// Per line (1-based, index 0 unused): rules suppressed on that line by
    /// an inline `// xtask:allow(rule): reason` (the comment suppresses its
    /// own line and, when alone on a line, the following line).
    pub line_allows: Vec<Vec<String>>,
    /// Rules suppressed for the whole file via
    /// `// xtask:allow-file(rule): reason`.
    pub file_allows: Vec<String>,
}

impl SourceFile {
    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        self.raw.as_bytes()[..offset]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
            + 1
    }

    /// Whether `rule` is suppressed at `line` (inline or file-wide).
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        if self.file_allows.iter().any(|r| r == rule) {
            return true;
        }
        self.line_allows
            .get(line)
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    }
}

/// Directories never scanned, wherever they appear.
const SKIP_DIRS: &[&str] = &["target", ".git", "results"];

/// Top-level subtrees excluded from the scan: vendored stand-ins mirror
/// upstream crates (not project code), and the fixture corpus exists to
/// *contain* violations.
const SKIP_PREFIXES: &[&str] = &["vendor", "xtask/fixtures"];

/// Recursively collects and classifies every `.rs` file under `root`.
pub fn scan_root(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut rel_paths = Vec::new();
    collect_rs(root, Path::new(""), &mut rel_paths)?;
    // Deterministic order for reporting regardless of readdir order.
    rel_paths.sort();
    let mut files = Vec::with_capacity(rel_paths.len());
    for rel in rel_paths {
        let path = root.join(&rel);
        let raw = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        files.push(classify(path, rel, raw));
    }
    Ok(files)
}

fn collect_rs(root: &Path, rel: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let dir = root.join(rel);
    let entries =
        fs::read_dir(&dir).map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir {}: {e}", dir.display()))?;
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        let child_rel = if rel.as_os_str().is_empty() {
            PathBuf::from(&name)
        } else {
            rel.join(&name)
        };
        let rel_str = child_rel.to_string_lossy().replace('\\', "/");
        let ty = entry
            .file_type()
            .map_err(|e| format!("file type of {rel_str}: {e}"))?;
        if ty.is_dir() {
            if SKIP_DIRS.contains(&name.as_str())
                || name.starts_with('.')
                || SKIP_PREFIXES.contains(&rel_str.as_str())
            {
                continue;
            }
            collect_rs(root, &child_rel, out)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            out.push(rel_str);
        }
    }
    Ok(())
}

fn classify(path: PathBuf, rel: String, raw: String) -> SourceFile {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_name = match parts.as_slice() {
        ["crates", name, ..] => (*name).to_string(),
        ["xtask", ..] => "xtask".to_string(),
        // Facade crate: root src/, tests/, examples/.
        _ => "traclus".to_string(),
    };
    let in_harness_dir = parts
        .iter()
        .any(|p| matches!(*p, "tests" | "benches" | "examples"));
    let in_bin_dir = rel.contains("/src/bin/") || rel.starts_with("src/bin/");
    let file_name = parts.last().copied().unwrap_or_default();
    let is_lib_root = !in_harness_dir && file_name == "lib.rs" && rel.ends_with("src/lib.rs");
    let is_main_root = !in_harness_dir && file_name == "main.rs" && rel.ends_with("src/main.rs");
    let is_crate_root = is_lib_root || is_main_root || (in_bin_dir && file_name.ends_with(".rs"));
    let kind = if in_harness_dir {
        FileKind::TestOrHarness
    } else if in_bin_dir || is_main_root {
        FileKind::Binary
    } else {
        FileKind::LibSource
    };
    let masked = blank_cfg_test_modules(&mask_comments_and_strings(&raw));
    let (line_allows, file_allows) = collect_allows(&raw);
    SourceFile {
        path,
        rel,
        crate_name,
        kind,
        is_crate_root,
        is_lib_root,
        raw,
        masked,
        line_allows,
        file_allows,
    }
}

/// Replaces the bytes of comments, string literals, char literals, and raw
/// strings with spaces (newlines kept), leaving everything else untouched.
pub fn mask_comments_and_strings(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                out[i] = b' ';
                out[i + 1] = b' ';
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'r' if is_raw_string_start(bytes, i) => {
                let hash_start = i + 1;
                let mut hashes = 0;
                while bytes.get(hash_start + hashes) == Some(&b'#') {
                    hashes += 1;
                }
                // Opening quote.
                let mut j = hash_start + hashes + 1;
                for slot in out.iter_mut().take(j).skip(i) {
                    *slot = b' ';
                }
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                while j < bytes.len() {
                    if bytes[j..].starts_with(&closer) {
                        for slot in out.iter_mut().take(j + closer.len()).skip(j) {
                            *slot = b' ';
                        }
                        j += closer.len();
                        break;
                    }
                    if bytes[j] != b'\n' {
                        out[j] = b' ';
                    }
                    j += 1;
                }
                i = j;
            }
            b'"' => {
                out[i] = b' ';
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\\' {
                        out[i] = b' ';
                        if i + 1 < bytes.len() && bytes[i + 1] != b'\n' {
                            out[i + 1] = b' ';
                        }
                        i += 2;
                    } else if bytes[i] == b'"' {
                        out[i] = b' ';
                        i += 1;
                        break;
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a lifetime ('a, 'static) has no
                // closing quote within a couple of bytes unless it is
                // escaped or a single char. Heuristic: treat as char
                // literal when `'X'` or `'\…'` matches.
                if bytes.get(i + 2) == Some(&b'\'') && bytes.get(i + 1) != Some(&b'\\') {
                    out[i] = b' ';
                    out[i + 1] = b' ';
                    out[i + 2] = b' ';
                    i += 3;
                } else if bytes.get(i + 1) == Some(&b'\\') {
                    out[i] = b' ';
                    i += 1;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                    if i < bytes.len() {
                        out[i] = b' ';
                        i += 1;
                    }
                } else {
                    // Lifetime: leave as-is.
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    // The mask only ever writes ASCII spaces over existing bytes, so the
    // result is valid UTF-8 as long as multi-byte sequences are blanked
    // wholly — they are, because every branch blanks contiguous runs.
    String::from_utf8(out).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // `r"…"` or `r#…#"…"#…#`; reject identifiers ending in r (peek back).
    if i > 0 {
        let prev = bytes[i - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            return false;
        }
    }
    let mut j = i + 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Blanks the brace-delimited body of every `#[cfg(test)] mod … { … }` in
/// an already comment/string-masked source, so in-file unit tests are
/// exempt from library-scoped rules. Brace counting is reliable because
/// strings and comments are already spaces.
pub fn blank_cfg_test_modules(masked: &str) -> String {
    let mut out = masked.as_bytes().to_vec();
    let mut search_from = 0;
    while let Some(pos) = find_from(masked, "#[cfg(test)]", search_from) {
        search_from = pos + 1;
        let after = pos + "#[cfg(test)]".len();
        // Skip whitespace and further attributes, then expect `mod`.
        let mut j = after;
        let bytes = masked.as_bytes();
        loop {
            while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                j += 1;
            }
            if bytes.get(j) == Some(&b'#') {
                // Another attribute: skip to its closing bracket.
                while j < bytes.len() && bytes[j] != b']' {
                    j += 1;
                }
                j += 1;
            } else {
                break;
            }
        }
        if !masked[j..].starts_with("mod") {
            continue;
        }
        let Some(open_rel) = masked[j..].find('{') else {
            continue;
        };
        let open = j + open_rel;
        let mut depth = 0usize;
        let mut k = open;
        while k < bytes.len() {
            match bytes[k] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        for slot in out.iter_mut().take(k).skip(open + 1) {
            if *slot != b'\n' {
                *slot = b' ';
            }
        }
    }
    String::from_utf8(out).expect("blanking preserves UTF-8")
}

fn find_from(haystack: &str, needle: &str, from: usize) -> Option<usize> {
    haystack.get(from..)?.find(needle).map(|p| p + from)
}

/// Collects `xtask:allow(rule)` / `xtask:allow-file(rule)` suppressions
/// from comments. An inline allow covers its own line and — when the
/// comment is the only thing on its line — the following line.
fn collect_allows(raw: &str) -> (Vec<Vec<String>>, Vec<String>) {
    let lines: Vec<&str> = raw.lines().collect();
    let mut line_allows: Vec<Vec<String>> = vec![Vec::new(); lines.len() + 2];
    let mut file_allows = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let Some(comment_start) = line.find("//") else {
            continue;
        };
        let comment = &line[comment_start..];
        for (marker, file_wide) in [("xtask:allow-file(", true), ("xtask:allow(", false)] {
            let mut rest = comment;
            while let Some(p) = rest.find(marker) {
                let args = &rest[p + marker.len()..];
                if let Some(close) = args.find(')') {
                    let rule = args[..close].trim().to_string();
                    if file_wide {
                        file_allows.push(rule);
                    } else {
                        line_allows[lineno].push(rule.clone());
                        let standalone = line[..comment_start].trim().is_empty();
                        if standalone && lineno + 1 < line_allows.len() {
                            line_allows[lineno + 1].push(rule);
                        }
                    }
                }
                rest = &rest[p + marker.len()..];
                // `allow-file(` also contains `allow(`? No: scanning for
                // `xtask:allow(` after having consumed `xtask:allow-file(`
                // cannot re-match the same occurrence because the marker
                // includes the opening parenthesis.
            }
        }
    }
    (line_allows, file_allows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_and_strings() {
        let src = "let a = \"HashMap\"; // HashMap in a comment\nlet b = 1;\n";
        let m = mask_comments_and_strings(src);
        assert!(!m.contains("HashMap"));
        assert!(m.contains("let a ="));
        assert!(m.contains("let b = 1;"));
        assert_eq!(m.len(), src.len(), "mask preserves layout");
    }

    #[test]
    fn masking_handles_raw_strings_and_chars() {
        let src = "let r = r#\"unwrap() \"inner\" \"#; let c = '\"'; let l: &'static str = x;";
        let m = mask_comments_and_strings(src);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("'static"), "lifetimes survive");
    }

    #[test]
    fn masking_handles_nested_block_comments() {
        let src = "/* outer /* inner unwrap() */ still comment */ let x = 1;";
        let m = mask_comments_and_strings(src);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("let x = 1;"));
    }

    #[test]
    fn cfg_test_modules_are_blanked() {
        let src = "fn lib() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\nfn tail() {}\n";
        let m = blank_cfg_test_modules(&mask_comments_and_strings(src));
        assert!(m.contains("a.unwrap()"), "library code survives");
        assert!(!m.contains("b.unwrap()"), "test body blanked");
        assert!(m.contains("fn tail"), "code after the module survives");
    }

    #[test]
    fn inline_allow_covers_own_and_next_line() {
        let src = "// xtask:allow(wall-clock): timing capture\nlet t = now();\nlet u = now(); // xtask:allow(wall-clock): same line\nlet v = now();\n";
        let (lines, files) = collect_allows(src);
        assert!(files.is_empty());
        assert!(lines[1].iter().any(|r| r == "wall-clock"));
        assert!(lines[2].iter().any(|r| r == "wall-clock"), "next line");
        assert!(lines[3].iter().any(|r| r == "wall-clock"), "same line");
        assert!(lines[4].is_empty(), "no blanket suppression");
    }

    #[test]
    fn file_allow_is_collected() {
        let src =
            "// xtask:allow-file(hash-container): lookup-only\nuse std::collections::HashMap;\n";
        let (_, files) = collect_allows(src);
        assert_eq!(files, vec!["hash-container".to_string()]);
    }
}
