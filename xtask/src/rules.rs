//! The lint rules: project invariants enforced at the token level.
//!
//! Three families (see ISSUE/README for the rationale):
//!
//! * **Determinism** — the workspace's headline guarantees are bit-exact
//!   (`run_parallel(t)` == sequential `run()`, streaming `snapshot()` ==
//!   batch `run()`), so anything that injects ambient nondeterminism into
//!   library code is an error: hash-container iteration order, wall-clock
//!   reads, NaN-unsound float comparisons, unstable sorts on float keys.
//! * **Robustness** — `unwrap()`/`expect()` in library code is ratcheted:
//!   existing uses are pinned in `xtask/lint-baseline.txt`; new ones fail.
//! * **Headers** — every crate root must carry `#![forbid(unsafe_code)]`,
//!   and library roots the `#![warn(missing_docs)]` doc policy.
//!
//! Suppress a finding with `// xtask:allow(rule-id): reason` on (or
//! directly above) the offending line, or `// xtask:allow-file(rule-id):
//! reason` for a whole file; the reason is mandatory by convention and
//! reviewed like any other code.

use crate::scan::{FileKind, SourceFile};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`wall-clock`, `float-ord`, …).
    pub rule: &'static str,
    /// Scan-root-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation with the expected fix.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {}:{}: {}",
            self.rule, self.file, self.line, self.message
        )
    }
}

/// Crates whose outputs are covered by the bit-exactness guarantees; hash
/// containers and float-key tie-order are policed hardest here.
const DETERMINISM_CRITICAL: &[&str] = &["core", "geom", "index"];

/// Crates allowed to read the wall clock: the bench harness exists to
/// time things, and the tool crate (this one) stamps snapshots.
const WALL_CLOCK_CRATES: &[&str] = &["bench", "xtask"];

/// Crates exempt from the robustness ratchet: the bench harness and the
/// maintenance tool are operator-facing processes where aborting on a
/// violated expectation is the right behavior.
const UNWRAP_EXEMPT_CRATES: &[&str] = &["bench", "xtask"];

/// Rule id for the unwrap/expect ratchet (referenced by the baseline).
pub const UNWRAP_RATCHET: &str = "unwrap-ratchet";

/// Every rule id the engine knows, for validation and docs.
pub const ALL_RULES: &[&str] = &[
    "hash-container",
    "wall-clock",
    "float-ord",
    "float-sort",
    UNWRAP_RATCHET,
    "crate-header",
];

/// Runs every rule over one file, appending findings. Findings for the
/// ratcheting rule are returned like any other; the caller nets them
/// against the baseline.
pub fn check_file(file: &SourceFile, findings: &mut Vec<Finding>) {
    hash_container(file, findings);
    wall_clock(file, findings);
    float_ord(file, findings);
    float_sort(file, findings);
    unwrap_ratchet(file, findings);
    crate_header(file, findings);
}

fn push(
    file: &SourceFile,
    findings: &mut Vec<Finding>,
    rule: &'static str,
    offset: usize,
    message: String,
) {
    let line = file.line_of(offset);
    if file.is_allowed(rule, line) {
        return;
    }
    findings.push(Finding {
        rule,
        file: file.rel.clone(),
        line,
        message,
    });
}

/// Byte offsets of every occurrence of `needle` in the masked text.
fn occurrences<'a>(file: &'a SourceFile, needle: &'a str) -> impl Iterator<Item = usize> + 'a {
    let mut from = 0;
    std::iter::from_fn(move || {
        let pos = file.masked[from..].find(needle)? + from;
        from = pos + needle.len();
        Some(pos)
    })
}

/// The masked text following an occurrence, whitespace collapsed, capped —
/// enough context to see what a call chains into across line breaks.
fn lookahead(file: &SourceFile, offset: usize, cap: usize) -> String {
    file.masked[offset..]
        .chars()
        .filter(|c| !c.is_whitespace())
        .take(cap)
        .collect()
}

/// `hash-container`: `HashMap`/`HashSet` in determinism-critical library
/// code. Their iteration order is seeded per process; if it reaches any
/// ordered output the bit-exactness guarantees break silently. Lookup-only
/// uses carry a justified file allow (see `traclus-index`'s grid).
fn hash_container(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !DETERMINISM_CRITICAL.contains(&file.crate_name.as_str()) || file.kind != FileKind::LibSource
    {
        return;
    }
    for token in ["HashMap", "HashSet"] {
        for pos in occurrences(file, token) {
            push(
                file,
                findings,
                "hash-container",
                pos,
                format!(
                    "{token} in determinism-critical crate `{}`: iteration order is \
                     random per process; use Vec/BTreeMap, or justify a lookup-only \
                     use with `// xtask:allow-file(hash-container): <why>`",
                    file.crate_name
                ),
            );
        }
    }
}

/// `wall-clock`: `Instant::now`/`SystemTime` in library crates. Identical
/// inputs must produce identical outputs; timing belongs to the bench/eval
/// measurement layer.
fn wall_clock(file: &SourceFile, findings: &mut Vec<Finding>) {
    if WALL_CLOCK_CRATES.contains(&file.crate_name.as_str()) || file.kind == FileKind::TestOrHarness
    {
        return;
    }
    for token in ["Instant::now", "SystemTime::now", "SystemTime::"] {
        for pos in occurrences(file, token) {
            // Avoid double-reporting `SystemTime::now` under both tokens.
            if token == "SystemTime::" && file.masked[pos..].starts_with("SystemTime::now") {
                continue;
            }
            push(
                file,
                findings,
                "wall-clock",
                pos,
                format!(
                    "{token} read in library crate `{}`: outputs must depend only on \
                     inputs; capture wall-clock in bench/eval and justify with \
                     `// xtask:allow(wall-clock): <why>` where measurement is the point",
                    file.crate_name
                ),
            );
        }
    }
}

/// `float-ord`: `partial_cmp(..).unwrap()` (or `.unwrap_or(Ordering::…)`)
/// on floats. NaN makes the unwrap panic and the `unwrap_or` an
/// inconsistent comparator with an unspecified sort order; `f64::total_cmp`
/// is total, deterministic, and identical on every non-NaN, same-signed
/// comparison.
fn float_ord(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.kind == FileKind::TestOrHarness {
        return;
    }
    for pos in occurrences(file, "partial_cmp") {
        let ahead = lookahead(file, pos + "partial_cmp".len(), 120);
        // The call's argument list is the first `(…)`; what matters is the
        // method chained onto its result.
        let Some(close) = matching_paren(&ahead) else {
            continue;
        };
        let chained = &ahead[close + 1..];
        if chained.starts_with(".unwrap()") || chained.starts_with(".unwrap_or(") {
            push(
                file,
                findings,
                "float-ord",
                pos,
                "partial_cmp followed by unwrap/unwrap_or: panics or becomes an \
                 inconsistent comparator on NaN — use f64::total_cmp (bit-identical \
                 for non-NaN, consistently-signed keys)"
                    .to_string(),
            );
        }
    }
}

/// Index of the `)` closing the `(` that `s` must start with (whitespace
/// already stripped by `lookahead`).
fn matching_paren(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    if bytes.first() != Some(&b'(') {
        return None;
    }
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// `float-sort`: `sort_unstable_by` with a float-key comparator in
/// determinism-critical crates. Unstable sorts give equal keys an
/// arbitrary relative order, so tie order stops matching input order —
/// use the stable `sort_by` with `total_cmp` for float keys.
fn float_sort(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !DETERMINISM_CRITICAL.contains(&file.crate_name.as_str()) || file.kind != FileKind::LibSource
    {
        return;
    }
    for pos in occurrences(file, "sort_unstable_by") {
        let ahead = lookahead(file, pos, 200);
        if ahead.contains("total_cmp") || ahead.contains("partial_cmp") {
            push(
                file,
                findings,
                "float-sort",
                pos,
                format!(
                    "sort_unstable_by with a float comparator in `{}`: equal keys get \
                     an arbitrary relative order; use the stable sort_by + total_cmp \
                     so tie order is input order",
                    file.crate_name
                ),
            );
        }
    }
}

/// `unwrap-ratchet`: `.unwrap()`/`.expect(` in library code. Existing
/// sites are pinned in the baseline; new ones fail CI until handled (or
/// justified and re-pinned).
fn unwrap_ratchet(file: &SourceFile, findings: &mut Vec<Finding>) {
    if UNWRAP_EXEMPT_CRATES.contains(&file.crate_name.as_str())
        || file.kind == FileKind::TestOrHarness
    {
        return;
    }
    for token in [".unwrap()", ".expect("] {
        for pos in occurrences(file, token) {
            push(
                file,
                findings,
                UNWRAP_RATCHET,
                pos,
                format!(
                    "{token} in library code: return an error or document the \
                     invariant; pinned sites live in xtask/lint-baseline.txt \
                     (`cargo xtask lint --update-baseline` after a justified change)",
                ),
            );
        }
    }
}

/// `crate-header`: crate roots must forbid unsafe code; library roots must
/// carry the doc-warning policy.
fn crate_header(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !file.is_crate_root {
        return;
    }
    if !file.masked.contains("#![forbid(unsafe_code)]") {
        push(
            file,
            findings,
            "crate-header",
            0,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }
    if file.is_lib_root && !file.masked.contains("#![warn(missing_docs)]") {
        push(
            file,
            findings,
            "crate-header",
            0,
            "library crate root is missing `#![warn(missing_docs)]` (the workspace \
             doc-warning policy; CI builds rustdoc with -D warnings)"
                .to_string(),
        );
    }
}
