//! Workspace maintenance tool, in the style of rustc's `tidy`.
//!
//! Two subcommands (see `src/main.rs` for the CLI):
//!
//! * `cargo xtask lint` — dependency-free static analysis over the
//!   workspace's own sources enforcing the determinism, robustness, and
//!   header invariants ([`rules`]); violations grandfathered at rule
//!   introduction are pinned by a ratcheting baseline ([`baseline`]).
//! * `cargo xtask bench-snapshot` — runs the `bench_cluster` benchmark
//!   suite and captures the medians as a checked-in JSON perf snapshot
//!   ([`bench_snapshot`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod bench_snapshot;
pub mod rules;
pub mod scan;

use std::path::Path;

use baseline::{Baseline, RatchetReport};
use rules::Finding;

/// Everything one lint pass produced, for the CLI (and tests) to render
/// and turn into an exit code.
#[derive(Debug)]
pub struct LintOutcome {
    /// Files scanned, for the summary line.
    pub files_scanned: usize,
    /// Hard findings (non-ratcheted rules): any of these is a failure.
    pub hard: Vec<Finding>,
    /// Current per-(rule, file) counts for ratcheted rules.
    pub ratchet_counts: Baseline,
    /// Ratchet comparison against the pinned baseline.
    pub ratchet: RatchetReport,
}

impl LintOutcome {
    /// Whether the whole pass gates green.
    pub fn is_ok(&self) -> bool {
        self.hard.is_empty() && self.ratchet.is_ok()
    }
}

/// Runs every rule over the sources under `root`, netting ratcheted rules
/// against `pinned_baseline` (the parsed `lint-baseline.txt`; empty map if
/// the file does not exist yet).
pub fn run_lint(root: &Path, pinned_baseline: &Baseline) -> Result<LintOutcome, String> {
    let files = scan::scan_root(root)?;
    let mut findings = Vec::new();
    for file in &files {
        rules::check_file(file, &mut findings);
    }
    let ratcheted = [rules::UNWRAP_RATCHET];
    let ratchet_counts = baseline::counts_of(&findings, &ratcheted);
    let hard: Vec<Finding> = findings
        .into_iter()
        .filter(|f| !ratcheted.contains(&f.rule))
        .collect();
    let ratchet = baseline::compare(pinned_baseline, &ratchet_counts);
    Ok(LintOutcome {
        files_scanned: files.len(),
        hard,
        ratchet_counts,
        ratchet,
    })
}
