//! CLI for the workspace maintenance tool; see the library crate for the
//! engine. Invoked as `cargo xtask <subcommand>` via the alias in
//! `.cargo/config.toml`.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

use xtask::{baseline, bench_snapshot, run_lint};

const USAGE: &str = "\
usage: cargo xtask <subcommand>

subcommands:
  lint [--root <dir>] [--baseline <file>] [--update-baseline]
      Run the static-analysis pass over the workspace sources.
      --root             scan root (default: the workspace root)
      --baseline         ratchet baseline file (default: <root>/xtask/lint-baseline.txt)
      --update-baseline  rewrite the baseline to the current violation counts

  bench-snapshot [--out <file>] [--prune]
      Run the bench_cluster suite and write the perf snapshot JSON.
      --out              output path (default: <root>/BENCH_cluster.json)
      --prune            drop snapshot rows the run did not re-measure
                         (default: preserve them, so partial runs never
                         clobber the rest of the snapshot)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(sub) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match sub.as_str() {
        "lint" => cmd_lint(&args[1..]),
        "bench-snapshot" => cmd_bench_snapshot(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: this crate's manifest dir is `<root>/xtask`.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits one level under the workspace root")
        .to_path_buf()
}

fn flag_value(args: &[String], flag: &str) -> Result<Option<PathBuf>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|v| Some(PathBuf::from(v)))
            .ok_or_else(|| format!("{flag} requires a value")),
    }
}

fn cmd_lint(args: &[String]) -> Result<ExitCode, String> {
    for a in args {
        if a.starts_with("--")
            && !["--root", "--baseline", "--update-baseline"].contains(&a.as_str())
        {
            return Err(format!("unknown flag {a:?}\n\n{USAGE}"));
        }
    }
    let root = flag_value(args, "--root")?.unwrap_or_else(workspace_root);
    let baseline_path = flag_value(args, "--baseline")?
        .unwrap_or_else(|| root.join("xtask").join("lint-baseline.txt"));
    let update = args.iter().any(|a| a == "--update-baseline");

    let pinned = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => baseline::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => baseline::Baseline::new(),
        Err(e) => return Err(format!("cannot read {}: {e}", baseline_path.display())),
    };

    let outcome = run_lint(&root, &pinned)?;

    for f in &outcome.hard {
        println!("{f}");
    }
    for (rule, file, was, now) in &outcome.ratchet.regressions {
        println!(
            "[{rule}] {file}: {now} violation(s), baseline pins {was} — fix the new \
             ones or justify and `cargo xtask lint --update-baseline`"
        );
    }
    for (rule, file, was, now) in &outcome.ratchet.improvements {
        println!(
            "note: [{rule}] {file}: down to {now} from pinned {was} — run \
             `cargo xtask lint --update-baseline` to lock in the improvement"
        );
    }

    if update {
        std::fs::write(&baseline_path, baseline::render(&outcome.ratchet_counts))
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        println!(
            "lint: baseline rewritten with {} pinned entr{} at {}",
            outcome.ratchet_counts.len(),
            if outcome.ratchet_counts.len() == 1 {
                "y"
            } else {
                "ies"
            },
            baseline_path.display()
        );
        // Hard findings still gate even while re-pinning.
        return Ok(if outcome.hard.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }

    if outcome.is_ok() {
        println!(
            "lint: {} files scanned, 0 violations ({} ratchet-pinned entr{})",
            outcome.files_scanned,
            outcome.ratchet_counts.len(),
            if outcome.ratchet_counts.len() == 1 {
                "y"
            } else {
                "ies"
            },
        );
        Ok(ExitCode::SUCCESS)
    } else {
        println!(
            "lint: FAILED — {} hard finding(s), {} ratchet regression(s) across {} files",
            outcome.hard.len(),
            outcome.ratchet.regressions.len(),
            outcome.files_scanned,
        );
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_bench_snapshot(args: &[String]) -> Result<ExitCode, String> {
    for a in args {
        if a.starts_with("--") && !["--out", "--prune"].contains(&a.as_str()) {
            return Err(format!("unknown flag {a:?}\n\n{USAGE}"));
        }
    }
    let root = workspace_root();
    let out_path = flag_value(args, "--out")?.unwrap_or_else(|| root.join("BENCH_cluster.json"));
    let prune = args.iter().any(|a| a == "--prune");

    println!("bench-snapshot: running `cargo bench -p traclus-bench --bench bench_cluster`…");
    let output = Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
        .args(["bench", "-p", "traclus-bench", "--bench", "bench_cluster"])
        .current_dir(&root)
        .output()
        .map_err(|e| format!("failed to spawn cargo bench: {e}"))?;
    let stdout = String::from_utf8_lossy(&output.stdout);
    if !output.status.success() {
        return Err(format!(
            "cargo bench failed ({}):\n{}\n{}",
            output.status,
            stdout,
            String::from_utf8_lossy(&output.stderr)
        ));
    }

    let fresh = bench_snapshot::parse_bench_output(&stdout);
    if fresh.is_empty() {
        return Err("cargo bench produced no `bench:` lines to snapshot".to_string());
    }
    // Merge over whatever the checked-in snapshot already holds: a run
    // that measured only some groups (filtered, or a bench file that grew
    // new groups since the last capture) must not clobber the rest.
    let existing = std::fs::read_to_string(&out_path)
        .map(|json| bench_snapshot::parse_snapshot_results(&json))
        .unwrap_or_default();
    let stale = existing
        .iter()
        .filter(|e| !fresh.iter().any(|f| f.label == e.label))
        .count();
    let results = if prune {
        bench_snapshot::merge_results_pruned(&existing, &fresh)
    } else {
        bench_snapshot::merge_results(&existing, &fresh)
    };
    if stale > 0 {
        if prune {
            println!("bench-snapshot: pruning {stale} stale entr(ies) the run did not re-measure");
        } else {
            println!("bench-snapshot: preserving {stale} existing entr(ies) not re-measured");
        }
    }

    // Wall-clock is the point here: the snapshot records when the numbers
    // were taken. xtask is exempt from the workspace wall-clock policy.
    #[allow(clippy::disallowed_methods)]
    let captured = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_err(|e| format!("system clock before the epoch: {e}"))?
        .as_secs();

    std::fs::write(&out_path, bench_snapshot::render_json(&results, captured))
        .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
    println!(
        "bench-snapshot: {} results written to {}",
        results.len(),
        out_path.display()
    );
    Ok(ExitCode::SUCCESS)
}
