//! The ratcheting baseline for grandfathered violations.
//!
//! `xtask/lint-baseline.txt` pins, per `(rule, file)`, how many violations
//! existed when the rule was introduced. The ratchet only turns one way:
//!
//! * count > pinned  → **error** (new violations; fix them or justify and
//!   re-pin with `cargo xtask lint --update-baseline`)
//! * count < pinned  → **notice** (progress! run `--update-baseline` so
//!   the improvement can't regress)
//! * file gone / clean → **notice** to drop the stale entry
//!
//! The file format is deliberately trivial — `rule<TAB>path<TAB>count`,
//! sorted, one entry per line, `#` comments — so diffs in review show
//! exactly which debt moved.

use std::collections::BTreeMap;

use crate::rules::Finding;

/// Pinned counts keyed by `(rule, file)`; BTreeMap so rendering is sorted
/// without a separate sort step.
pub type Baseline = BTreeMap<(String, String), usize>;

/// Parses the baseline format; returns line-numbered errors for malformed
/// entries so a bad merge fails loudly instead of silently un-pinning.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut baseline = Baseline::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (Some(rule), Some(path), Some(count), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {}: expected `rule<TAB>path<TAB>count`, got {line:?}",
                idx + 1
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|e| format!("baseline line {}: bad count {count:?}: {e}", idx + 1))?;
        if baseline
            .insert((rule.to_string(), path.to_string()), count)
            .is_some()
        {
            return Err(format!(
                "baseline line {}: duplicate entry for {rule} / {path}",
                idx + 1
            ));
        }
    }
    Ok(baseline)
}

/// Renders a baseline in the canonical (sorted, commented) form.
pub fn render(baseline: &Baseline) -> String {
    let mut out = String::from(
        "# Grandfathered lint violations, pinned per (rule, file).\n\
         # Managed by `cargo xtask lint --update-baseline`; the ratchet only\n\
         # tightens — new violations fail, decreases should be re-pinned here.\n\
         # Format: rule<TAB>path<TAB>count\n",
    );
    for ((rule, path), count) in baseline {
        out.push_str(&format!("{rule}\t{path}\t{count}\n"));
    }
    out
}

/// Aggregates findings of ratcheted rules into per-`(rule, file)` counts.
pub fn counts_of(findings: &[Finding], ratcheted: &[&str]) -> Baseline {
    let mut counts = Baseline::new();
    for f in findings {
        if ratcheted.contains(&f.rule) {
            *counts
                .entry((f.rule.to_string(), f.file.clone()))
                .or_insert(0) += 1;
        }
    }
    counts
}

/// Outcome of comparing current counts against the pinned baseline.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct RatchetReport {
    /// `(rule, file, pinned, current)` where current > pinned — failures.
    pub regressions: Vec<(String, String, usize, usize)>,
    /// `(rule, file, pinned, current)` where current < pinned — should be
    /// re-pinned to lock in the improvement.
    pub improvements: Vec<(String, String, usize, usize)>,
}

impl RatchetReport {
    /// Whether the ratchet gate passes (notices are fine, regressions not).
    pub fn is_ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares current counts to the pinned baseline. Entries missing from the
/// baseline count as pinned-at-zero; stale baseline entries (file now clean
/// or deleted) surface as improvements down to zero.
pub fn compare(pinned: &Baseline, current: &Baseline) -> RatchetReport {
    let mut report = RatchetReport::default();
    let mut keys: Vec<&(String, String)> = pinned.keys().chain(current.keys()).collect();
    keys.sort();
    keys.dedup();
    for key in keys {
        let was = pinned.get(key).copied().unwrap_or(0);
        let now = current.get(key).copied().unwrap_or(0);
        let entry = (key.0.clone(), key.1.clone(), was, now);
        match now.cmp(&was) {
            std::cmp::Ordering::Greater => report.regressions.push(entry),
            std::cmp::Ordering::Less => report.improvements.push(entry),
            std::cmp::Ordering::Equal => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bl(entries: &[(&str, &str, usize)]) -> Baseline {
        entries
            .iter()
            .map(|(r, p, c)| ((r.to_string(), p.to_string()), *c))
            .collect()
    }

    #[test]
    fn parse_render_round_trips() {
        let baseline = bl(&[
            ("unwrap-ratchet", "crates/core/src/lib.rs", 3),
            ("unwrap-ratchet", "crates/geom/src/point.rs", 1),
        ]);
        assert_eq!(parse(&render(&baseline)).unwrap(), baseline);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("unwrap-ratchet\tonly-two-fields").is_err());
        assert!(parse("rule\tpath\tnot-a-number").is_err());
        assert!(parse("r\tp\t1\textra").is_err());
        assert!(parse("r\tp\t1\nr\tp\t2").is_err(), "duplicates rejected");
    }

    #[test]
    fn ratchet_flags_regressions_and_improvements() {
        let pinned = bl(&[("unwrap-ratchet", "a.rs", 2), ("unwrap-ratchet", "b.rs", 1)]);
        let current = bl(&[("unwrap-ratchet", "a.rs", 3), ("unwrap-ratchet", "c.rs", 1)]);
        let report = compare(&pinned, &current);
        assert!(!report.is_ok());
        // a.rs grew 2→3, c.rs is new (0→1); b.rs went clean (1→0).
        assert_eq!(report.regressions.len(), 2);
        assert_eq!(
            report.improvements,
            vec![("unwrap-ratchet".into(), "b.rs".into(), 1, 0)]
        );
    }

    #[test]
    fn equal_counts_pass_silently() {
        let pinned = bl(&[("unwrap-ratchet", "a.rs", 2)]);
        let report = compare(&pinned, &pinned.clone());
        assert!(report.is_ok());
        assert!(report.improvements.is_empty());
    }
}
