//! Perf-snapshot capture: parse the bench harness output into JSON.
//!
//! The vendored criterion stand-in prints one line per benchmark:
//!
//! ```text
//! bench: cluster/grid/n1000            median      1.234ms/iter
//! ```
//!
//! `bench-snapshot` runs `cargo bench -p traclus-bench --bench
//! bench_cluster`, parses those lines, and writes `BENCH_cluster.json` — a
//! checked-in snapshot so perf changes show up in review diffs next to the
//! code that caused them. Medians move with hardware and load; the
//! snapshot is a reviewed reference point, not a CI gate.

/// One parsed benchmark result.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark label, e.g. `cluster/grid/n1000`.
    pub label: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
}

/// Extracts every `bench: <label> median <duration>/iter` line.
pub fn parse_bench_output(output: &str) -> Vec<BenchResult> {
    let mut results = Vec::new();
    for line in output.lines() {
        let Some(rest) = line.trim().strip_prefix("bench:") else {
            continue;
        };
        let Some(median_at) = rest.rfind(" median ") else {
            continue;
        };
        let label = rest[..median_at].trim().to_string();
        let duration = rest[median_at + " median ".len()..]
            .trim()
            .trim_end_matches("/iter")
            .trim();
        if let Some(median_ns) = parse_duration_ns(duration) {
            results.push(BenchResult { label, median_ns });
        }
    }
    results
}

/// Parses `Duration`'s `Debug` rendering (`123ns`, `4.567µs`, `1.2ms`,
/// `3.4s`) into nanoseconds.
pub fn parse_duration_ns(s: &str) -> Option<f64> {
    // Longest suffixes first so `ns` is not taken as `s`.
    for (suffix, scale) in [
        ("ns", 1.0),
        ("µs", 1e3),
        ("us", 1e3),
        ("ms", 1e6),
        ("s", 1e9),
    ] {
        if let Some(num) = s.strip_suffix(suffix) {
            return num.trim().parse::<f64>().ok().map(|v| v * scale);
        }
    }
    None
}

/// Renders the snapshot as pretty-printed JSON (no serde in this tree;
/// labels are plain ASCII bench ids, escaped defensively anyway).
pub fn render_json(results: &[BenchResult], captured_unix_secs: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"suite\": \"bench_cluster\",\n");
    out.push_str(&format!(
        "  \"captured_unix_secs\": {captured_unix_secs},\n"
    ));
    out.push_str("  \"unit\": \"ns_per_iter_median\",\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"label\": \"{}\", \"median_ns\": {:.1} }}{comma}\n",
            escape_json(&r.label),
            r.median_ns
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a previously rendered snapshot back into its results — the
/// inverse of [`render_json`] over the subset of JSON that renderer
/// emits (one `{ "label": …, "median_ns": … }` object per line). Lines
/// that do not look like result entries are skipped, so a hand-edited or
/// truncated file degrades to "fewer preserved entries", never an error.
pub fn parse_snapshot_results(json: &str) -> Vec<BenchResult> {
    let mut results = Vec::new();
    for line in json.lines() {
        let Some(label_at) = line.find("\"label\": \"") else {
            continue;
        };
        let rest = &line[label_at + "\"label\": \"".len()..];
        let Some((label, rest)) = take_json_string(rest) else {
            continue;
        };
        let Some(median_at) = rest.find("\"median_ns\": ") else {
            continue;
        };
        let tail = &rest[median_at + "\"median_ns\": ".len()..];
        let number: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .collect();
        if let Ok(median_ns) = number.parse::<f64>() {
            results.push(BenchResult { label, median_ns });
        }
    }
    results
}

/// Reads a JSON string body up to its closing quote, undoing
/// [`escape_json`]; returns the decoded string and the remainder after
/// the quote.
fn take_json_string(s: &str) -> Option<(String, &str)> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &s[i + 1..])),
            '\\' => match chars.next()?.1 {
                'u' => {
                    let (j, _) = chars.nth(3)?;
                    let code = u32::from_str_radix(s.get(j - 3..=j)?, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                escaped => out.push(escaped),
            },
            c => out.push(c),
        }
    }
    None
}

/// Merges freshly measured results over an existing snapshot: a label
/// present in both takes the fresh number (in its existing position);
/// labels only in `existing` are preserved — so re-running a subset of
/// bench groups updates those entries without clobbering the rest — and
/// brand-new labels append in measurement order.
pub fn merge_results(existing: &[BenchResult], fresh: &[BenchResult]) -> Vec<BenchResult> {
    let mut merged: Vec<BenchResult> = existing
        .iter()
        .map(|e| {
            fresh
                .iter()
                .find(|f| f.label == e.label)
                .unwrap_or(e)
                .clone()
        })
        .collect();
    for f in fresh {
        if !existing.iter().any(|e| e.label == f.label) {
            merged.push(f.clone());
        }
    }
    merged
}

/// [`merge_results`] with stale-row pruning (`--prune`): rows whose label
/// the fresh run did not measure are dropped instead of preserved, so a
/// renamed or deleted bench group does not haunt the snapshot forever.
/// Surviving rows keep their existing order; brand-new labels append in
/// measurement order, exactly as in the preserving merge.
pub fn merge_results_pruned(existing: &[BenchResult], fresh: &[BenchResult]) -> Vec<BenchResult> {
    merge_results(existing, fresh)
        .into_iter()
        .filter(|r| fresh.iter().any(|f| f.label == r.label))
        .collect()
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_duration_unit() {
        assert_eq!(parse_duration_ns("123ns"), Some(123.0));
        assert_eq!(parse_duration_ns("4.5µs"), Some(4500.0));
        assert_eq!(parse_duration_ns("4.5us"), Some(4500.0));
        assert_eq!(parse_duration_ns("1.2ms"), Some(1.2e6));
        assert_eq!(parse_duration_ns("3s"), Some(3e9));
        assert_eq!(parse_duration_ns("garbage"), None);
    }

    #[test]
    fn parses_bench_lines_and_skips_noise() {
        let output = "\
Compiling traclus-bench v0.1.0
bench: cluster/linear/n500                       median      1.234ms/iter
bench: cluster/parallel_hurricane32/t4           median    456.700µs/iter
some unrelated line with median in it
bench: malformed line without the keyword
";
        let results = parse_bench_output(output);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].label, "cluster/linear/n500");
        assert_eq!(results[0].median_ns, 1.234e6);
        assert_eq!(results[1].label, "cluster/parallel_hurricane32/t4");
        assert_eq!(results[1].median_ns, 456700.0);
    }

    #[test]
    fn snapshot_json_round_trips_through_the_parser() {
        let results = vec![
            BenchResult {
                label: "cluster/grid/1000".to_string(),
                median_ns: 4157000.0,
            },
            BenchResult {
                label: "odd\"label\\with escapes".to_string(),
                median_ns: 1.5,
            },
        ];
        let parsed = parse_snapshot_results(&render_json(&results, 7));
        assert_eq!(parsed, results);
    }

    #[test]
    fn merge_preserves_unmeasured_entries_and_updates_the_rest() {
        let old = |label: &str, ns: f64| BenchResult {
            label: label.to_string(),
            median_ns: ns,
        };
        let existing = vec![old("a", 1.0), old("b", 2.0), old("c", 3.0)];
        let fresh = vec![old("b", 20.0), old("d", 40.0)];
        let merged = merge_results(&existing, &fresh);
        assert_eq!(
            merged,
            vec![old("a", 1.0), old("b", 20.0), old("c", 3.0), old("d", 40.0)],
            "re-measured labels update in place, new labels append, the rest survive"
        );
    }

    #[test]
    fn pruned_merge_drops_stale_rows_but_keeps_order() {
        let old = |label: &str, ns: f64| BenchResult {
            label: label.to_string(),
            median_ns: ns,
        };
        let existing = vec![old("a", 1.0), old("b", 2.0), old("c", 3.0)];
        let fresh = vec![old("b", 20.0), old("d", 40.0)];
        let merged = merge_results_pruned(&existing, &fresh);
        assert_eq!(
            merged,
            vec![old("b", 20.0), old("d", 40.0)],
            "unmeasured rows a and c are pruned; b updates in place, d appends"
        );
        // A full re-measure prunes nothing.
        let full = vec![old("a", 10.0), old("b", 20.0), old("c", 30.0)];
        assert_eq!(merge_results_pruned(&existing, &full), full);
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let results = vec![BenchResult {
            label: "a\"b".to_string(),
            median_ns: 1.5,
        }];
        let json = render_json(&results, 42);
        assert!(json.contains("\"a\\\"b\""));
        assert!(json.contains("\"captured_unix_secs\": 42"));
        assert!(json.ends_with("}\n"));
    }
}
