//! End-to-end tests for the lint engine: the fixture corpus under
//! `xtask/fixtures/corpus/` seeds one true positive per rule plus
//! look-alikes and suppressions the engine must respect, and the real
//! workspace must gate green against the checked-in baseline.

use std::path::{Path, PathBuf};

use xtask::baseline::{self, Baseline};
use xtask::{run_lint, LintOutcome};

fn corpus_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/corpus")
}

fn lint_corpus(pinned: &Baseline) -> LintOutcome {
    run_lint(&corpus_root(), pinned).expect("corpus scan succeeds")
}

fn count(outcome: &LintOutcome, rule: &str, file: &str) -> usize {
    outcome
        .hard
        .iter()
        .filter(|f| f.rule == rule && f.file == file)
        .count()
}

#[test]
fn corpus_true_positives_are_all_found() {
    let outcome = lint_corpus(&Baseline::new());
    let lib = "crates/core/src/lib.rs";
    let point = "crates/geom/src/point.rs";

    // Crate root missing both header attributes.
    assert_eq!(count(&outcome, "crate-header", lib), 2);
    // `use` line + signature in lib.rs; `use` + collect-site in point.rs.
    assert_eq!(count(&outcome, "hash-container", lib), 2);
    assert_eq!(count(&outcome, "hash-container", point), 2);
    // One live Instant::now in lib.rs (the cfg(test) one is blanked).
    assert_eq!(count(&outcome, "wall-clock", lib), 1);
    // partial_cmp().unwrap() comparators.
    assert_eq!(count(&outcome, "float-ord", lib), 1);
    assert_eq!(count(&outcome, "float-ord", point), 1);
    // sort_unstable_by with a float comparator.
    assert_eq!(count(&outcome, "float-sort", lib), 1);
    assert_eq!(count(&outcome, "float-sort", point), 1);

    assert!(!outcome.is_ok(), "seeded corpus must fail the gate");
}

#[test]
fn corpus_decoys_and_exempt_files_stay_silent() {
    let outcome = lint_corpus(&Baseline::new());
    // Strings, comments, and cfg(test) bodies in lib.rs are already covered
    // by the exact counts above; whole-file exemptions checked here.
    for file in ["crates/core/tests/harness.rs", "crates/bench/src/lib.rs"] {
        assert!(
            !outcome.hard.iter().any(|f| f.file == file),
            "no hard findings expected in {file}"
        );
        assert!(
            !outcome.ratchet_counts.keys().any(|(_, f)| f == file),
            "no ratchet counts expected in {file}"
        );
    }
}

#[test]
fn corpus_suppressions_cover_exactly_their_sites() {
    let outcome = lint_corpus(&Baseline::new());
    let allowed = "crates/core/src/allowed.rs";
    // File-wide hash-container allow silences both HashMap mentions.
    assert_eq!(count(&outcome, "hash-container", allowed), 0);
    // Line-above and same-line allows each silence one Instant::now; the
    // unannotated third site must still be reported.
    let wall: Vec<usize> = outcome
        .hard
        .iter()
        .filter(|f| f.rule == "wall-clock" && f.file == allowed)
        .map(|f| f.line)
        .collect();
    assert_eq!(wall.len(), 1, "exactly the unsuppressed site: {wall:?}");
    let raw = std::fs::read_to_string(corpus_root().join(allowed)).unwrap();
    let unsuppressed_line = raw
        .lines()
        .position(|l| l.contains("fn unsuppressed"))
        .unwrap()
        + 2; // the Instant::now on the line after the signature
    assert_eq!(wall[0], unsuppressed_line);
}

#[test]
fn ratchet_pins_fail_and_release_as_counts_move() {
    let fresh = lint_corpus(&Baseline::new());
    // Against an empty baseline every unwrap/expect is a regression.
    assert_eq!(fresh.ratchet.regressions.len(), 2);
    assert_eq!(
        fresh
            .ratchet_counts
            .get(&("unwrap-ratchet".into(), "crates/core/src/lib.rs".into())),
        Some(&2),
        "partial_cmp().unwrap() + .expect() in max_key"
    );
    assert_eq!(
        fresh
            .ratchet_counts
            .get(&("unwrap-ratchet".into(), "crates/geom/src/point.rs".into())),
        Some(&1)
    );

    // Pinning the exact counts releases the ratchet (hard findings remain).
    let pinned = fresh.ratchet_counts.clone();
    let repinned = lint_corpus(&pinned);
    assert!(repinned.ratchet.is_ok());
    assert!(repinned.ratchet.improvements.is_empty());
    assert!(!repinned.is_ok(), "hard findings still gate");

    // A looser pin surfaces the improvement for re-tightening.
    let mut loose = pinned.clone();
    loose.insert(
        ("unwrap-ratchet".into(), "crates/geom/src/point.rs".into()),
        5,
    );
    let improved = lint_corpus(&loose);
    assert!(improved.ratchet.is_ok());
    assert_eq!(
        improved.ratchet.improvements,
        vec![(
            "unwrap-ratchet".into(),
            "crates/geom/src/point.rs".into(),
            5,
            1
        )]
    );
}

#[test]
fn baseline_round_trips_through_the_file_format() {
    let fresh = lint_corpus(&Baseline::new());
    let rendered = baseline::render(&fresh.ratchet_counts);
    assert_eq!(baseline::parse(&rendered).unwrap(), fresh.ratchet_counts);
}

#[test]
fn real_workspace_gates_green_against_checked_in_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .to_path_buf();
    let pinned_text = std::fs::read_to_string(root.join("xtask/lint-baseline.txt"))
        .expect("checked-in baseline exists");
    let pinned = baseline::parse(&pinned_text).expect("checked-in baseline parses");
    let outcome = run_lint(&root, &pinned).expect("workspace scan succeeds");
    assert!(
        outcome.hard.is_empty(),
        "workspace hard findings:\n{}",
        outcome
            .hard
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        outcome.ratchet.is_ok(),
        "ratchet regressions: {:?}",
        outcome.ratchet.regressions
    );
}
