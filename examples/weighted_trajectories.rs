//! The weighted-trajectory extension (end of Section 4.2): "it is natural
//! that a stronger hurricane should have a higher weight" — neighborhood
//! cardinality becomes the sum of member weights instead of a count.
//!
//! Two major hurricanes plus one minor storm share a corridor. Unweighted,
//! three segments never reach MinLns = 5; weighted by intensity they do.
//!
//! ```sh
//! cargo run --release --example weighted_trajectories
//! ```

use traclus::prelude::*;

fn corridor_trajectory(_id: u32, offset: f64) -> Vec<Point2> {
    (0..25)
        .map(|k| Point2::xy(k as f64 * 5.0, offset))
        .collect()
}

fn main() {
    // Weights model maximum sustained wind (a category-5 storm counts ~3x
    // a tropical storm).
    let trajectories = vec![
        Trajectory::with_weight(TrajectoryId(0), corridor_trajectory(0, 0.0), 3.0),
        Trajectory::with_weight(TrajectoryId(1), corridor_trajectory(1, 1.0), 3.0),
        Trajectory::with_weight(TrajectoryId(2), corridor_trajectory(2, 2.0), 1.0),
    ];

    let base = TraclusConfig {
        eps: 4.0,
        min_lns: 5,
        min_trajectories: Some(3),
        ..TraclusConfig::default()
    };

    let unweighted = Traclus::new(base).run(&trajectories);
    println!(
        "unweighted: {} clusters (3 segments < MinLns = 5)",
        unweighted.clusters.len()
    );
    assert!(unweighted.clusters.is_empty());

    let weighted = Traclus::new(TraclusConfig {
        weighted: true,
        ..base
    })
    .run(&trajectories);
    println!(
        "weighted:   {} clusters (3+3+1 = 7 >= MinLns = 5)",
        weighted.clusters.len()
    );
    assert_eq!(weighted.clusters.len(), 1);
    let rep = &weighted.clusters[0].representative;
    println!(
        "corridor representative: ({:.1},{:.1}) -> ({:.1},{:.1})",
        rep.points.first().unwrap().x(),
        rep.points.first().unwrap().y(),
        rep.points.last().unwrap().x(),
        rep.points.last().unwrap().y()
    );
    // The heavy storms pull the representative towards y ≈ 1.0 (the
    // weighted centre), not the unweighted mean — inspect visually:
    for p in &rep.points {
        assert!((0.0..=2.0).contains(&p.y()));
    }
}
