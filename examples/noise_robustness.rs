//! The Section 5.5 robustness scenario: plant corridors, add 25 % noise
//! trajectories, verify the corridors are still recovered (Figure 23).
//!
//! ```sh
//! cargo run --release --example noise_robustness
//! ```

use traclus::core::SegmentLabel;
use traclus::data::{generate_scene, SceneConfig, TruthLabel};
use traclus::prelude::*;
use traclus::viz::render_clustering;

fn main() {
    for noise_fraction in [0.0, 0.25] {
        let scene = generate_scene(&SceneConfig {
            noise_fraction,
            seed: 23,
            ..SceneConfig::default()
        });
        let outcome = Traclus::new(TraclusConfig {
            eps: 7.0,
            min_lns: 6,
            ..TraclusConfig::default()
        })
        .run(&scene.trajectories);

        // Score against ground truth using segment provenance.
        let mut corridor = (0usize, 0usize); // (clustered, total)
        let mut noise = (0usize, 0usize); // (rejected, total)
        for (i, seg) in outcome.database.segments().iter().enumerate() {
            let clustered = matches!(outcome.clustering.labels[i], SegmentLabel::Cluster(_));
            match scene.truth[seg.trajectory.0 as usize] {
                TruthLabel::Corridor(_) => {
                    corridor.1 += 1;
                    if clustered {
                        corridor.0 += 1;
                    }
                }
                TruthLabel::Noise => {
                    noise.1 += 1;
                    if !clustered {
                        noise.0 += 1;
                    }
                }
            }
        }
        println!(
            "noise {:>3.0}%: {} clusters over {} planted corridors; corridor segments clustered {}/{}; noise segments rejected {}/{}",
            noise_fraction * 100.0,
            outcome.clusters.len(),
            scene.backbones.len(),
            corridor.0,
            corridor.1,
            noise.0,
            noise.1,
        );
        if noise_fraction > 0.0 {
            let svg = render_clustering(&scene.trajectories, &outcome, 800.0, 800.0);
            std::fs::write("noise_robustness_example.svg", svg).expect("write SVG");
            println!("rendered noise_robustness_example.svg");
        }
    }
}
