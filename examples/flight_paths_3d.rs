//! Three-dimensional trajectories: the paper defines everything for
//! d-dimensional points and notes the representative-trajectory rotation
//! extends to 3-D (Section 4.3, footnote 3). The whole pipeline here is
//! generic over `D`, so clustering 3-D flight paths is the same API with
//! `Point<3>`.
//!
//! Scenario: aircraft on a shared airway at different cruise levels, plus
//! departures climbing out of it — the common sub-trajectory is the airway
//! (x/y corridor *and* altitude band).
//!
//! ```sh
//! cargo run --release --example flight_paths_3d
//! ```

use traclus::core::{Traclus, TraclusConfig};
use traclus::geom::{Point, Trajectory, TrajectoryId};

fn main() {
    let mut trajectories: Vec<Trajectory<3>> = Vec::new();
    // Twelve aircraft flying the airway west→east near FL350 (z ≈ 35),
    // with slight lateral/vertical offsets.
    for i in 0..12u32 {
        let lateral = (i % 4) as f64 * 0.8;
        let level = 35.0 + (i % 3) as f64 * 0.6;
        let points = (0..40)
            .map(|k| {
                let x = k as f64 * 12.0;
                Point::new([x, lateral + (x * 0.01).sin(), level])
            })
            .collect();
        trajectories.push(Trajectory::new(TrajectoryId(i), points));
    }
    // Six departures: join the airway midway while climbing through it.
    for i in 0..6u32 {
        let points = (0..40)
            .map(|k| {
                let t = k as f64;
                Point::new([
                    150.0 + t * 10.0,
                    40.0 - t * 1.0 + (i as f64) * 0.5,
                    5.0 + t * 0.9,
                ])
            })
            .collect();
        trajectories.push(Trajectory::new(TrajectoryId(100 + i), points));
    }

    let outcome = Traclus::new(TraclusConfig {
        eps: 8.0,
        min_lns: 5,
        ..TraclusConfig::default()
    })
    .run(&trajectories);

    println!(
        "{} aircraft -> {} segments -> {} clusters",
        trajectories.len(),
        outcome.database.len(),
        outcome.clusters.len()
    );
    for cluster in &outcome.clusters {
        let rep = &cluster.representative;
        let (Some(first), Some(last)) = (rep.points.first(), rep.points.last()) else {
            continue;
        };
        println!(
            "cluster {}: {} segments / {} aircraft; corridor ({:.0},{:.0},FL{:.0}) -> ({:.0},{:.0},FL{:.0})",
            cluster.cluster.id,
            cluster.members.len(),
            cluster.trajectory_cardinality(),
            first.coords[0],
            first.coords[1],
            first.coords[2] * 10.0,
            last.coords[0],
            last.coords[1],
            last.coords[2] * 10.0,
        );
    }
    // The airway cluster must sit in the cruise altitude band.
    let airway = outcome
        .clusters
        .iter()
        .find(|c| c.trajectory_cardinality() >= 10)
        .expect("the shared airway must be discovered");
    for p in &airway.representative.points {
        assert!(
            (33.0..=38.0).contains(&p.coords[2]),
            "airway representative stays in the cruise band, got z = {}",
            p.coords[2]
        );
    }
    println!("airway cluster confirmed in the FL330–380 band");
}
