//! Quickstart: cluster a handful of trajectories sharing a corridor and
//! print the discovered common sub-trajectory.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use traclus::prelude::*;

fn main() {
    // Eight trajectories: all travel the same west→east corridor, then
    // half turn north and half turn south (the paper's Figure 1 situation).
    let trajectories: Vec<Trajectory2> = (0..8)
        .map(|i| {
            let offset = i as f64 * 0.4;
            let turn = if i % 2 == 0 { 1.0 } else { -1.0 };
            let mut points = Vec::new();
            for k in 0..30 {
                points.push(Point2::xy(k as f64 * 4.0, offset));
            }
            for k in 1..15 {
                points.push(Point2::xy(
                    116.0 + k as f64 * 3.0,
                    offset + turn * k as f64 * 4.0,
                ));
            }
            Trajectory::new(TrajectoryId(i), points)
        })
        .collect();

    // Cluster with explicit parameters (see the parameter_selection example
    // for the entropy heuristic that estimates these).
    let config = TraclusConfig {
        eps: 8.0,
        min_lns: 4,
        ..TraclusConfig::default()
    };
    let outcome = Traclus::new(config).run(&trajectories);

    println!(
        "{} trajectories -> {} segments -> {} clusters ({} segments noise)",
        trajectories.len(),
        outcome.database.len(),
        outcome.clusters.len(),
        outcome.clustering.noise_count(),
    );
    for cluster in &outcome.clusters {
        println!(
            "\ncluster {}: {} segments from {} trajectories",
            cluster.cluster.id,
            cluster.members.len(),
            cluster.trajectory_cardinality(),
        );
        let rep = &cluster.representative;
        let path: Vec<String> = rep
            .points
            .iter()
            .map(|p| format!("({:.1}, {:.1})", p.x(), p.y()))
            .collect();
        println!("  representative trajectory: {}", path.join(" -> "));
    }
    assert!(
        !outcome.clusters.is_empty(),
        "the shared corridor must be discovered"
    );
}
