//! Load generator for the `traclus-server` daemon: replays a synthetic
//! hurricane dataset through N concurrent client connections, then
//! hammers the query surface, reporting sustained throughput and latency
//! percentiles for both phases.
//!
//! The daemon runs in-process on an ephemeral port, so the numbers
//! include the full wire path (encode → TCP loopback → parse → dispatch
//! → encode → parse) without cross-process noise.
//!
//! ```sh
//! cargo run --release --example load_generator            # full run
//! cargo run --release --example load_generator -- --smoke # CI smoke
//! cargo run --release --example load_generator -- --json BENCH_serve.json
//! ```
//!
//! `--smoke` shrinks the workload to a few seconds and exits non-zero on
//! any protocol error — CI runs it as the serving smoke gate. `--json`
//! additionally writes the measurements in the `BENCH_*.json` layout.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use traclus::data::{HurricaneConfig, HurricaneGenerator};
use traclus::json::JsonValue;
use traclus::prelude::*;

struct LoadConfig {
    clients: usize,
    tracks: usize,
    queries_per_client: usize,
    json_path: Option<String>,
    smoke: bool,
}

fn parse_args() -> LoadConfig {
    let mut config = LoadConfig {
        clients: 4,
        tracks: 128,
        queries_per_client: 400,
        json_path: None,
        smoke: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                config.smoke = true;
                config.clients = 2;
                config.tracks = 16;
                config.queries_per_client = 50;
            }
            "--clients" => {
                config.clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients takes a positive integer");
            }
            "--tracks" => {
                config.tracks = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tracks takes a positive integer");
            }
            "--queries" => {
                config.queries_per_client = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--queries takes a positive integer");
            }
            "--json" => {
                config.json_path = Some(args.next().expect("--json takes a path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: load_generator [--smoke] [--clients N] [--tracks N] [--queries N] [--json PATH]");
                std::process::exit(2);
            }
        }
    }
    config.clients = config.clients.max(1);
    config
}

/// Latency percentiles over one phase's per-request samples.
struct Percentiles {
    count: usize,
    p50_micros: u64,
    p90_micros: u64,
    p99_micros: u64,
    max_micros: u64,
}

fn percentiles(mut samples: Vec<u64>) -> Percentiles {
    samples.sort_unstable();
    let pick = |q: f64| -> u64 {
        if samples.is_empty() {
            return 0;
        }
        let idx = ((samples.len() - 1) as f64 * q).round() as usize;
        samples[idx.min(samples.len() - 1)]
    };
    Percentiles {
        count: samples.len(),
        p50_micros: pick(0.50),
        p90_micros: pick(0.90),
        p99_micros: pick(0.99),
        max_micros: samples.last().copied().unwrap_or(0),
    }
}

struct PhaseResult {
    label: &'static str,
    elapsed_secs: f64,
    latency: Percentiles,
}

impl PhaseResult {
    fn throughput(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.latency.count as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }

    fn print(&self) {
        println!(
            "{:<8} {:>7} requests in {:>7.3} s  ({:>9.1} req/s)  p50 {:>6} µs  p90 {:>6} µs  p99 {:>6} µs  max {:>6} µs",
            self.label,
            self.latency.count,
            self.elapsed_secs,
            self.throughput(),
            self.latency.p50_micros,
            self.latency.p90_micros,
            self.latency.p99_micros,
            self.latency.max_micros,
        );
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("phase", JsonValue::from(self.label)),
            ("requests", JsonValue::from(self.latency.count)),
            ("elapsed_secs", JsonValue::from(self.elapsed_secs)),
            ("requests_per_sec", JsonValue::from(self.throughput())),
            (
                "p50_micros",
                JsonValue::from(self.latency.p50_micros as i64),
            ),
            (
                "p90_micros",
                JsonValue::from(self.latency.p90_micros as i64),
            ),
            (
                "p99_micros",
                JsonValue::from(self.latency.p99_micros as i64),
            ),
            (
                "max_micros",
                JsonValue::from(self.latency.max_micros as i64),
            ),
        ])
    }
}

fn ingest_request(t: &Trajectory2) -> Request {
    Request::Ingest {
        points: t.points.iter().map(|p| [p.x(), p.y()]).collect(),
        weight: None,
    }
}

fn check_ok(resp: &JsonValue, what: &str, failures: &AtomicUsize) {
    if resp.get("ok") != Some(&JsonValue::Bool(true)) {
        eprintln!("{what} failed: {}", resp.to_compact());
        failures.fetch_add(1, Ordering::SeqCst);
    }
}

// The whole point of this harness is measuring wall-clock latency; the
// production crates stay `Instant`-free.
#[allow(clippy::disallowed_methods)]
fn timed_request(
    client: &mut Client,
    request: &Request,
    samples: &mut Vec<u64>,
) -> std::io::Result<JsonValue> {
    let started = Instant::now();
    let resp = client.request(request)?;
    samples.push(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
    Ok(resp)
}

#[allow(clippy::disallowed_methods)] // harness timing, see above
fn run_phase(
    label: &'static str,
    addr: std::net::SocketAddr,
    jobs: Vec<Vec<Request>>,
    failures: &AtomicUsize,
) -> PhaseResult {
    let started = Instant::now();
    let all_samples: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|requests| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connect");
                    let mut samples = Vec::with_capacity(requests.len());
                    for request in &requests {
                        let resp = timed_request(&mut client, request, &mut samples)
                            .expect("request round-trip");
                        check_ok(&resp, label, failures);
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    PhaseResult {
        label,
        elapsed_secs: started.elapsed().as_secs_f64(),
        latency: percentiles(all_samples.into_iter().flatten().collect()),
    }
}

fn query_mix(trajectories: &[Trajectory2], queries: usize, salt: usize) -> Vec<Request> {
    (0..queries)
        .map(|k| match (k + salt) % 5 {
            0 => Request::Stats,
            1 => Request::Representatives,
            2 => {
                let t = &trajectories[(k * 7 + salt) % trajectories.len()];
                let p = &t.points[t.points.len() / 2];
                Request::Nearest {
                    point: [p.x(), p.y()],
                }
            }
            3 => Request::Membership {
                trajectory: ((k * 13 + salt) % trajectories.len()) as u32,
            },
            _ => {
                let t = &trajectories[(k * 3 + salt) % trajectories.len()];
                let (min, max) = bounding_box(t);
                Request::Region { min, max }
            }
        })
        .collect()
}

fn bounding_box(t: &Trajectory2) -> ([f64; 2], [f64; 2]) {
    let mut min = [f64::INFINITY; 2];
    let mut max = [f64::NEG_INFINITY; 2];
    for p in &t.points {
        for d in 0..2 {
            min[d] = min[d].min(p.coords[d]);
            max[d] = max[d].max(p.coords[d]);
        }
    }
    (min, max)
}

// Stamping the capture time is what the field is for.
#[allow(clippy::disallowed_methods)]
fn unix_secs_now() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0)
}

fn main() {
    let load = parse_args();
    let trajectories = HurricaneGenerator::new(HurricaneConfig {
        tracks: load.tracks,
        seed: 2007,
        ..HurricaneConfig::default()
    })
    .generate();

    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            traclus: TraclusConfig {
                eps: 6.0,
                min_lns: 4,
                ..TraclusConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let serving = std::thread::spawn(move || server.run());
    println!(
        "daemon on {addr}: {} tracks, {} clients, {} queries/client{}",
        trajectories.len(),
        load.clients,
        load.queries_per_client,
        if load.smoke { " (smoke)" } else { "" },
    );

    let failures = AtomicUsize::new(0);

    // Phase 1 — ingest: the dataset striped across the client connections.
    let mut ingest_jobs: Vec<Vec<Request>> = (0..load.clients).map(|_| Vec::new()).collect();
    for (k, t) in trajectories.iter().enumerate() {
        ingest_jobs[k % load.clients].push(ingest_request(t));
    }
    let ingest = run_phase("ingest", addr, ingest_jobs, &failures);
    ingest.print();

    // Barrier: all queued work applied and published before querying.
    let mut control = Client::connect(addr).expect("control connect");
    let resp = control.request(&Request::Flush).expect("flush");
    check_ok(&resp, "flush", &failures);

    // Phase 2 — queries: a fixed op mix per client over the full dataset.
    let query_jobs: Vec<Vec<Request>> = (0..load.clients)
        .map(|salt| query_mix(&trajectories, load.queries_per_client, salt))
        .collect();
    let query = run_phase("query", addr, query_jobs, &failures);
    query.print();

    // Sanity: the served state covers the whole dataset and found clusters.
    let resp = control.request(&Request::Stats).expect("stats");
    check_ok(&resp, "stats", &failures);
    let served = resp.get("trajectories").and_then(JsonValue::as_i64);
    let clusters = resp
        .get("clusters")
        .and_then(JsonValue::as_i64)
        .unwrap_or(0);
    if served != Some(trajectories.len() as i64) {
        eprintln!(
            "SMOKE FAILURE: daemon serves {served:?} trajectories, expected {}",
            trajectories.len()
        );
        failures.fetch_add(1, Ordering::SeqCst);
    }
    if clusters == 0 {
        eprintln!("SMOKE FAILURE: daemon found no clusters");
        failures.fetch_add(1, Ordering::SeqCst);
    }
    println!(
        "served state: {} trajectories, {} clusters",
        served.unwrap_or(-1),
        clusters
    );

    let resp = control.request(&Request::Shutdown).expect("shutdown");
    check_ok(&resp, "shutdown", &failures);
    serving
        .join()
        .expect("serving thread")
        .expect("clean shutdown");

    if let Some(path) = &load.json_path {
        let doc = JsonValue::object([
            ("suite", JsonValue::from("bench_serve")),
            ("captured_unix_secs", JsonValue::from(unix_secs_now())),
            ("tracks", JsonValue::from(trajectories.len())),
            ("clients", JsonValue::from(load.clients)),
            (
                "phases",
                JsonValue::array([ingest.to_json(), query.to_json()]),
            ),
        ]);
        std::fs::write(path, doc.to_pretty() + "\n").expect("write --json output");
        println!("wrote {path}");
    }

    let failed = failures.load(Ordering::SeqCst);
    if failed > 0 {
        eprintln!("{failed} request(s) failed");
        std::process::exit(1);
    }
}
