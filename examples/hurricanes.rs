//! The paper's hurricane scenario (Section 5.2): generate the Best-Track
//! stand-in, estimate (ε, MinLns) with the Section 4.4 entropy heuristic,
//! cluster, and write a Figure 18-style SVG.
//!
//! ```sh
//! cargo run --release --example hurricanes
//! ```

use traclus::core::{
    select_min_lns, EntropyCurve, IndexKind, MdlCost, PartitionConfig, SegmentDatabase,
};
use traclus::data::HurricaneGenerator;
use traclus::prelude::*;
use traclus::viz::render_clustering;

fn main() {
    // A reduced basin (150 tracks) keeps the example snappy; the full-scale
    // experiment harness uses all 570.
    let tracks = traclus::data::HurricaneGenerator::new(traclus::data::HurricaneConfig {
        tracks: 150,
        seed: 2004,
        ..traclus::data::HurricaneConfig::default()
    })
    .generate();
    let total_points: usize = tracks.iter().map(|t| t.len()).sum();
    println!("generated {} tracks / {} fixes", tracks.len(), total_points);

    // Phase 1: partition, then estimate ε by scanning the entropy curve.
    // The MDL coding precision δ must match the coordinate scale: 0.05° is
    // about the accuracy of a best-track centre fix (see MdlCost docs).
    let config = TraclusConfig {
        partition: PartitionConfig {
            cost: MdlCost::with_precision(0.05),
            ..PartitionConfig::default()
        },
        ..TraclusConfig::default()
    };
    let db = SegmentDatabase::from_trajectories(&tracks, &config.partition, config.distance);
    println!("partitioned into {} trajectory partitions", db.len());
    let grid: Vec<f64> = (1..=40).map(|i| i as f64 * 0.25).collect();
    let curve = EntropyCurve::scan(&db, IndexKind::RTree, grid, false);
    let best = curve.minimum().expect("non-empty curve");
    let min_lns_range = select_min_lns(best.avg_neighborhood);
    println!(
        "entropy minimum at eps = {:.2} (avg|Neps| = {:.2}); MinLns candidates {:?}",
        best.eps, best.avg_neighborhood, min_lns_range
    );

    // Phase 2: cluster with the estimated parameters, sharded over every
    // available hardware thread (the default Parallelism knob). The
    // parallel path returns the identical clustering to the sequential
    // loop — Parallelism::Sequential forces the single-threaded scan.
    let min_lns = *min_lns_range.start() + 1;
    let parallelism = Parallelism::Available;
    let outcome = Traclus::new(TraclusConfig {
        eps: best.eps,
        min_lns,
        parallelism,
        ..config
    })
    .run(&tracks);
    println!(
        "{} clusters over {} worker thread(s) (noise {:.1}%)",
        outcome.clusters.len(),
        parallelism.thread_count(),
        outcome.clustering.noise_ratio() * 100.0
    );
    for c in &outcome.clusters {
        let rep = &c.representative;
        if let (Some(first), Some(last)) = (rep.points.first(), rep.points.last()) {
            let east_west = if last.x() > first.x() {
                "west->east"
            } else {
                "east->west"
            };
            println!(
                "  cluster {}: {} segments, {} storms, heading {east_west} ({:.0},{:.0}) -> ({:.0},{:.0})",
                c.cluster.id,
                c.members.len(),
                c.trajectory_cardinality(),
                first.x(),
                first.y(),
                last.x(),
                last.y()
            );
        }
    }

    let svg = render_clustering(&tracks, &outcome, 900.0, 600.0);
    let path = "hurricanes_example.svg";
    std::fs::write(path, svg).expect("write SVG");
    println!("rendered {path}");
    let _ = HurricaneGenerator::paper_scale; // full-scale entry point
}
