//! The paper's animal-movement scenario (Section 5.3): elk and deer
//! telemetry stand-ins, clustered to reveal shared movement corridors —
//! the Example 2 use case (effects of roads and traffic on habitat use).
//!
//! ```sh
//! cargo run --release --example animal_movements
//! ```

use traclus::data::{AnimalConfig, AnimalGenerator, Habitat};
use traclus::prelude::*;
use traclus::viz::render_clustering;

fn run_species(
    name: &str,
    habitat: Habitat,
    animals: usize,
    fixes: usize,
    eps: f64,
    min_lns: usize,
) {
    let telemetry = AnimalGenerator::new(
        habitat,
        AnimalConfig {
            animals,
            fixes_per_animal: fixes,
            seed: 1993,
            ..AnimalConfig::default()
        },
    )
    .generate();
    let total: usize = telemetry.iter().map(|t| t.len()).sum();
    println!("[{name}] {} animals / {} fixes", telemetry.len(), total);
    let outcome = Traclus::new(TraclusConfig {
        eps,
        min_lns,
        ..TraclusConfig::default()
    })
    .run(&telemetry);
    println!(
        "[{name}] {} partitions -> {} corridor clusters (noise {:.1}%)",
        outcome.database.len(),
        outcome.clusters.len(),
        outcome.clustering.noise_ratio() * 100.0
    );
    for c in &outcome.clusters {
        let rep = &c.representative;
        if let (Some(a), Some(b)) = (rep.points.first(), rep.points.last()) {
            println!(
                "[{name}]   cluster {}: {} segments / {} animals, corridor ({:.0},{:.0}) -> ({:.0},{:.0})",
                c.cluster.id,
                c.members.len(),
                c.trajectory_cardinality(),
                a.x(),
                a.y(),
                b.x(),
                b.y()
            );
        }
    }
    let svg = render_clustering(&telemetry, &outcome, 800.0, 800.0);
    let file = format!("{name}_example.svg");
    std::fs::write(&file, svg).expect("write SVG");
    println!("[{name}] rendered {file}");
}

fn main() {
    // Reduced scale so the example runs in seconds; the experiments binary
    // runs the paper-scale versions (33×1430 and 32×627 fixes).
    run_species("elk", Habitat::elk(), 20, 400, 40.0, 8);
    run_species("deer", Habitat::deer(), 16, 300, 40.0, 8);
}
