//! Streaming ingestion: replay the hurricane dataset one storm at a time.
//!
//! The batch pipeline (see `examples/hurricanes.rs`) partitions and
//! clusters the whole basin at once. This example feeds the same storms
//! through `IncrementalClustering` in arrival order — the serving-style
//! workload of the ROADMAP — printing how the clustering evolves and how
//! often local repair suffices versus the dirty-region fallback, then
//! checks the final state against a batch run of the full dataset.
//!
//! ```sh
//! cargo run --release --example streaming
//! ```

use traclus::data::{HurricaneConfig, HurricaneGenerator};
use traclus::prelude::*;

fn main() {
    // The same reduced basin the hurricanes example uses.
    let storms = HurricaneGenerator::new(HurricaneConfig {
        tracks: 150,
        seed: 2004,
        ..HurricaneConfig::default()
    })
    .generate();
    println!("replaying {} storms in arrival order\n", storms.len());

    let config = TraclusConfig {
        eps: 1.2,
        min_lns: 5,
        // Re-cluster from scratch only when one storm dirties more than a
        // quarter of the database (the default; shown for visibility).
        stream: StreamConfig {
            rebuild_threshold: 0.25,
            ..StreamConfig::default()
        },
        ..TraclusConfig::default()
    };

    // Ingest storm by storm, reporting the evolving clustering at a few
    // checkpoints — exactly what a serving loop would observe.
    let mut engine: IncrementalClustering<2> = Traclus::new(config).stream();
    for (k, storm) in storms.iter().enumerate() {
        let report = engine.insert(storm);
        let arrived = k + 1;
        if arrived % 30 == 0 || report.rebuilt {
            let snapshot = engine.snapshot();
            println!(
                "after storm {arrived:>3}: {:>4} segments, {:>2} clusters, noise {:>4.1}%{}",
                engine.len(),
                snapshot.clusters.len(),
                snapshot.noise_ratio() * 100.0,
                if report.rebuilt {
                    "  (dirty-region fallback re-clustered)"
                } else {
                    ""
                }
            );
        }
    }

    let stats = engine.stats();
    println!(
        "\ningested {} storms -> {} segments; {} local repairs, {} full rebuilds, {} core flips",
        stats.trajectories,
        stats.segments,
        stats.local_repairs,
        stats.full_rebuilds,
        stats.core_flips
    );

    // The streaming engine's final state is the batch clustering of the
    // full dataset — same membership, same noise, same representatives.
    let streamed = engine.finish();
    let batch = Traclus::new(config).run(&storms);
    assert_eq!(
        streamed.clustering, batch.clustering,
        "streaming must reproduce the batch clustering exactly"
    );
    println!(
        "final state matches the batch run: {} clusters, {} noise segments",
        streamed.clusters.len(),
        streamed.clustering.noise_count()
    );
    for c in &streamed.clusters {
        println!(
            "  cluster {}: {} segments from {} storms",
            c.cluster.id,
            c.members.len(),
            c.trajectory_cardinality()
        );
    }
}
