//! Survey-scale comparison: TRACLUS (sequential, parallel, streaming)
//! versus the four baselines on two datasets, with quality, runtime and
//! parameters in one report (the Bian et al. survey axes).
//!
//! Datasets:
//!
//! 1. `hurricane` — the Best-Track stand-in generator (the paper's
//!    Section 5.2 scenario at reduced scale);
//! 2. `corridor-csv` — a labelled corridor scene **round-tripped through
//!    the dataset loaders**: written as timestamped CSV, re-ingested via
//!    `TimedCsvLoader`, proving the loader path feeds the harness.
//!
//! Tables print to stdout; machine-readable JSON lands in
//! `results/evaluation/`. Every report is range-validated (no NaN, no
//! out-of-range metric) and the process exits non-zero on violation —
//! CI runs this example as the evaluation smoke gate.
//!
//! ```sh
//! cargo run --release --example evaluate
//! ```

use std::io::Write as _;
use std::path::Path;

use traclus::core::{MdlCost, PartitionConfig};
use traclus::data::{
    generate_scene, DatasetLoader, HurricaneConfig, HurricaneGenerator, LoadOptions, SceneConfig,
    TimedCsvLoader,
};
use traclus::eval::{evaluate_dataset, EvalConfig, EvalReport};

fn hurricane_report() -> EvalReport {
    let tracks = HurricaneGenerator::new(HurricaneConfig {
        tracks: 60,
        seed: 2004,
        ..HurricaneConfig::default()
    })
    .generate();
    let config = EvalConfig {
        // δ = 0.05° matches best-track fix accuracy (see MdlCost docs).
        partition: PartitionConfig {
            cost: MdlCost::with_precision(0.05),
            ..PartitionConfig::default()
        },
        kmeans_ks: vec![4],
        mixture_components: vec![4],
        ..EvalConfig::single(3.0, 6)
    };
    evaluate_dataset("hurricane", &tracks, &config)
}

/// Writes the corridor scene as a timestamped CSV (one fix every 10 s,
/// tracks separated by a 1 h gap so `gap_split` has something to ignore
/// and something to respect) and loads it back through the unified
/// loader path.
fn corridor_csv_report(out_dir: &Path) -> EvalReport {
    let scene = generate_scene(&SceneConfig {
        per_backbone: 10,
        noise_fraction: 0.2,
        seed: 31,
        ..SceneConfig::default()
    });
    let csv_path = out_dir.join("corridor.csv");
    let mut file = std::fs::File::create(&csv_path).expect("create corridor.csv");
    writeln!(file, "track_id,x,y,timestamp").expect("write header");
    let mut clock = 0.0f64;
    for t in &scene.trajectories {
        clock += 3600.0; // inter-track gap
        for p in &t.points {
            writeln!(file, "{},{},{},{}", t.id.0, p.x(), p.y(), clock).expect("write row");
            clock += 10.0;
        }
    }
    drop(file);

    let loader = TimedCsvLoader {
        options: LoadOptions {
            gap_split: Some(600.0), // keeps 10 s cadences, would split stalls
            ..LoadOptions::default()
        },
        ..TimedCsvLoader::new(&csv_path)
    };
    let trajectories = loader.load().expect("reload the CSV we just wrote");
    assert_eq!(
        trajectories.len(),
        scene.trajectories.len(),
        "loader round-trip must preserve the track count"
    );
    let config = EvalConfig {
        kmeans_ks: vec![4],
        mixture_components: vec![4],
        ..EvalConfig::single(7.0, 5)
    };
    evaluate_dataset("corridor-csv", &trajectories, &config)
}

fn main() {
    let out_dir = Path::new("results/evaluation");
    std::fs::create_dir_all(out_dir).expect("create results/evaluation");

    let reports = [hurricane_report(), corridor_csv_report(out_dir)];
    let mut failures = 0usize;
    for report in &reports {
        println!("{}", report.to_table());
        let json_path = out_dir.join(format!("{}.json", report.dataset));
        std::fs::write(&json_path, report.to_json()).expect("write report JSON");
        println!("wrote {}\n", json_path.display());
        if let Err(msg) = report.validate() {
            eprintln!("INVALID METRICS: {msg}");
            failures += 1;
        }
    }
    // TRACLUS must actually find structure on both datasets — an
    // all-noise report would "validate" trivially.
    for report in &reports {
        let traclus_found = report
            .entries
            .iter()
            .any(|e| e.algorithm.starts_with("traclus") && e.metrics.cluster_count > 0);
        if !traclus_found {
            eprintln!("SMOKE FAILURE: no TRACLUS clusters on {}", report.dataset);
            failures += 1;
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("all {} reports valid", reports.len());
}
