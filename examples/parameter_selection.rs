//! The Section 4.4 heuristics end to end: scan the neighborhood-entropy
//! curve, confirm with simulated annealing, derive the MinLns range, and
//! show how the cluster structure degrades away from the optimum.
//!
//! ```sh
//! cargo run --release --example parameter_selection
//! ```

use traclus::core::{
    select_eps_annealing, select_min_lns, AnnealConfig, ClusterConfig, EntropyCurve, IndexKind,
    LineSegmentClustering, QMeasure, SegmentDatabase,
};
use traclus::data::{generate_scene, SceneConfig};
use traclus::prelude::*;

fn main() {
    let scene = generate_scene(&SceneConfig::default());
    println!(
        "labelled scene: {} trajectories ({} noise)",
        scene.trajectories.len(),
        scene.noise_ids().len()
    );
    let config = TraclusConfig::default();
    let db =
        SegmentDatabase::from_trajectories(&scene.trajectories, &config.partition, config.distance);
    println!("{} segments", db.len());

    // 1. Entropy curve scan (Figure 16/19 style).
    let grid: Vec<f64> = (1..=40).map(|i| i as f64 * 0.5).collect();
    let curve = EntropyCurve::scan(&db, IndexKind::RTree, grid, false);
    println!("\n eps   entropy  avg|Neps|");
    for p in curve.points.iter().step_by(4) {
        println!(
            "{:>5.1}  {:>7.4}  {:>8.2}",
            p.eps, p.entropy, p.avg_neighborhood
        );
    }
    let best = curve.minimum().expect("non-empty");
    println!(
        "\nscan minimum: eps = {:.2}, H = {:.4}, avg|Neps| = {:.2}",
        best.eps, best.entropy, best.avg_neighborhood
    );

    // 2. Simulated annealing (the paper's search method) agrees.
    let annealed = select_eps_annealing(
        &db,
        IndexKind::RTree,
        0.5..=20.0,
        false,
        &AnnealConfig::default(),
    );
    println!(
        "annealing:    eps = {:.2}, H = {:.4} ({} objective evaluations avoided a full scan)",
        annealed.eps,
        annealed.entropy,
        AnnealConfig::default().iterations
    );

    // 3. MinLns from the neighborhood average.
    let min_lns_range = select_min_lns(best.avg_neighborhood);
    println!("MinLns candidates: {min_lns_range:?}");

    // 4. Cluster at the estimate and at deliberately bad values.
    println!("\n eps  MinLns  clusters  noise%   QMeasure");
    let min_lns = *min_lns_range.start() + 1;
    for (eps, m) in [
        (best.eps, min_lns),
        (best.eps * 0.3, min_lns),
        (best.eps * 3.0, min_lns),
        (best.eps, min_lns * 3),
    ] {
        let clustering = LineSegmentClustering::new(&db, ClusterConfig::new(eps, m)).run();
        let q = QMeasure::compute_sampled(&db, &clustering, 200_000, 7);
        println!(
            "{:>5.1}  {:>6}  {:>8}  {:>6.1}  {:>9.0}",
            eps,
            m,
            clustering.clusters.len(),
            clustering.noise_ratio() * 100.0,
            q.value()
        );
    }
}
