//! Property-based tests over the whole stack: distance-function axioms
//! (Lemma 2 and the design invariants of Section 3.2), the index filter
//! bound, and partitioning invariants.

use proptest::prelude::*;
use traclus::core::{approximate_partition, optimal_partition, PartitionConfig};
use traclus::geom::{lehmer_mean_2, DistanceWeights, Point2, Segment2, SegmentDistance, Vector2};
use traclus::index::filter_radius;

fn coord() -> impl Strategy<Value = f64> {
    -100.0..100.0f64
}

prop_compose! {
    fn segment()(x1 in coord(), y1 in coord(), x2 in coord(), y2 in coord()) -> Segment2 {
        Segment2::xy(x1, y1, x2, y2)
    }
}

prop_compose! {
    fn polyline(max_len: usize)(
        points in prop::collection::vec((coord(), coord()), 2..max_len)
    ) -> Vec<Point2> {
        points.into_iter().map(|(x, y)| Point2::xy(x, y)).collect()
    }
}

proptest! {
    #[test]
    fn distance_is_symmetric(a in segment(), b in segment()) {
        let dist = SegmentDistance::default();
        let d_ab = dist.distance(&a, &b);
        let d_ba = dist.distance(&b, &a);
        prop_assert!((d_ab - d_ba).abs() <= 1e-9 * (1.0 + d_ab.abs()),
            "Lemma 2 violated: {d_ab} vs {d_ba}");
    }

    #[test]
    fn distance_is_nonnegative_and_finite(a in segment(), b in segment()) {
        let dist = SegmentDistance::default();
        let d = dist.distance(&a, &b);
        prop_assert!(d >= 0.0 && d.is_finite());
        let c = dist.components(&a, &b);
        prop_assert!(c.perpendicular >= 0.0 && c.parallel >= 0.0 && c.angle >= 0.0);
    }

    #[test]
    fn self_distance_is_zero(a in segment()) {
        let dist = SegmentDistance::default();
        prop_assert!(dist.distance(&a, &a).abs() < 1e-9);
    }

    #[test]
    fn distance_is_translation_invariant(a in segment(), b in segment(),
                                         dx in -1000.0..1000.0f64, dy in -1000.0..1000.0f64) {
        let dist = SegmentDistance::default();
        let shift = Vector2::xy(dx, dy);
        let d0 = dist.distance(&a, &b);
        let d1 = dist.distance(&a.translated(&shift), &b.translated(&shift));
        prop_assert!((d0 - d1).abs() <= 1e-6 * (1.0 + d0.abs()),
            "shift changed the distance: {d0} vs {d1}");
    }

    #[test]
    fn undirected_distance_never_exceeds_directed(a in segment(), b in segment()) {
        let directed = SegmentDistance::default().distance(&a, &b);
        let undirected = SegmentDistance::undirected().distance(&a, &b);
        prop_assert!(undirected <= directed + 1e-9,
            "folding θ can only shrink dθ: {undirected} > {directed}");
    }

    #[test]
    fn lehmer_mean_bounds_hold(a in 0.0..1000.0f64, b in 0.0..1000.0f64) {
        let m = lehmer_mean_2(a, b);
        let max = a.max(b);
        prop_assert!(m <= max + 1e-9);
        prop_assert!(m >= max / 2.0 - 1e-9);
    }

    #[test]
    fn index_filter_bound_is_conservative(a in segment(), b in segment()) {
        // DESIGN.md §5: dist(a,b) ≤ ε implies the closest Euclidean
        // approach is within filter_radius(ε), so an expanded-MBR query
        // cannot miss a true neighbour.
        let weights = DistanceWeights::uniform();
        let dist = SegmentDistance::default().distance(&a, &b);
        let dmin = a.min_distance(&b);
        if let Some(r) = filter_radius(dist, &weights) {
            prop_assert!(dmin <= r + 1e-6,
                "bound violated: dmin = {dmin} > r = {r} at dist = {dist}");
        }
    }

    #[test]
    fn partitioning_produces_valid_characteristic_points(points in polyline(40)) {
        let p = approximate_partition(&PartitionConfig::default(), &points);
        let cps = &p.characteristic_points;
        prop_assert!(!cps.is_empty());
        prop_assert_eq!(cps[0], 0, "starts at the first point");
        prop_assert_eq!(*cps.last().unwrap(), points.len() - 1, "ends at the last point");
        prop_assert!(cps.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
    }

    #[test]
    fn optimal_partitioning_cost_at_most_greedy(points in polyline(14)) {
        let config = PartitionConfig::default();
        let approx = approximate_partition(&config, &points);
        let exact = optimal_partition(&config, &points, None);
        let total = |p: &traclus::core::Partitioning| -> f64 {
            p.characteristic_points
                .windows(2)
                .map(|w| config.mdl_par(&points, w[0], w[1]))
                .sum()
        };
        prop_assert!(total(&exact) <= total(&approx) + 1e-6,
            "DP optimum beat by greedy: {} vs {}", total(&exact), total(&approx));
    }

    #[test]
    fn partition_segments_cover_the_trajectory_endpoints(points in polyline(30)) {
        let p = approximate_partition(&PartitionConfig::default(), &points);
        let segs = p.segments(&points);
        if let (Some(first), Some(last)) = (segs.first(), segs.last()) {
            prop_assert_eq!(first.start, points[0]);
            prop_assert_eq!(last.end, *points.last().unwrap());
        }
        // Consecutive partitions share endpoints (a connected polyline).
        for w in segs.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
    }
}
