//! Smoke test: the full `Traclus::run` pipeline on a tiny hand-built
//! corridor scene. This is the fastest end-to-end check that the
//! partition → group → representative chain is wired correctly; the
//! heavier scenarios live in `pipeline_integration.rs`.

use traclus::prelude::*;

/// Eight trajectories wobbling along one horizontal corridor, plus one
/// diagonal outlier that must not prevent the corridor from clustering.
fn corridor_scene() -> Vec<Trajectory2> {
    let mut trajectories: Vec<Trajectory2> = (0..8)
        .map(|i| {
            let y = i as f64 * 0.8;
            Trajectory::new(
                TrajectoryId(i),
                (0..25)
                    .map(|k| Point2::xy(k as f64 * 4.0, y + (k as f64 * 0.9).sin()))
                    .collect(),
            )
        })
        .collect();
    trajectories.push(Trajectory::new(
        TrajectoryId(8),
        (0..25)
            .map(|k| Point2::xy(k as f64 * 4.0, 40.0 + k as f64 * 3.0))
            .collect(),
    ));
    trajectories
}

#[test]
fn pipeline_smoke_clusters_a_synthetic_corridor() {
    let trajectories = corridor_scene();
    let config = TraclusConfig {
        eps: 6.0,
        min_lns: 4,
        ..TraclusConfig::default()
    };
    let outcome = Traclus::new(config).run(&trajectories);

    // The corridor must be found.
    assert!(
        !outcome.clusters.is_empty(),
        "corridor scene produced no clusters"
    );

    // Every cluster carries a polyline representative with finite points.
    for cluster in &outcome.clusters {
        let rep = &cluster.representative;
        assert!(
            rep.points.len() >= 2,
            "cluster {:?} representative has {} point(s); expected a polyline",
            cluster.id,
            rep.points.len()
        );
        for p in &rep.points {
            assert!(p.is_finite(), "non-finite representative point {p:?}");
        }
    }

    // The representative of the corridor cluster stays inside the
    // corridor's y-band (the outlier heads to y ≈ 112 and must not drag
    // any representative with it).
    let corridor_found = outcome.clusters.iter().any(|c| {
        c.representative
            .points
            .iter()
            .all(|p| (-2.0..=8.0).contains(&p.y()))
    });
    assert!(corridor_found, "no representative tracks the corridor band");

    // Determinism: the same input and config reproduce the same outcome.
    let again = Traclus::new(config).run(&trajectories);
    assert_eq!(outcome.clustering, again.clustering);
}
