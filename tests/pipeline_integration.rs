//! Cross-crate integration tests: data generators → partitioning →
//! clustering → representatives → rendering, exercised through the façade
//! crate exactly as a downstream user would.

use traclus::core::{SegmentDatabase, SegmentLabel};
use traclus::data::{
    generate_scene, AnimalConfig, AnimalGenerator, Habitat, SceneConfig, TruthLabel,
};
use traclus::prelude::*;
use traclus::viz::{render_clustering, render_segments};

#[test]
fn scene_pipeline_recovers_planted_corridors() {
    let scene = generate_scene(&SceneConfig {
        noise_fraction: 0.25,
        seed: 404,
        ..SceneConfig::default()
    });
    let outcome = Traclus::new(TraclusConfig {
        eps: 7.0,
        min_lns: 6,
        ..TraclusConfig::default()
    })
    .run(&scene.trajectories);

    // Every planted corridor must be recovered by at least one cluster
    // whose representative lies close to the backbone.
    assert!(
        outcome.clusters.len() >= scene.backbones.len(),
        "found {} clusters for {} corridors",
        outcome.clusters.len(),
        scene.backbones.len()
    );
    for (b, backbone) in scene.backbones.iter().enumerate() {
        let hit = outcome.clusters.iter().any(|c| {
            c.representative.points.iter().all(|p| {
                backbone
                    .windows(2)
                    .map(|w| traclus::geom::Segment2::new(w[0], w[1]).segment_distance(p))
                    .fold(f64::INFINITY, f64::min)
                    < 15.0
            }) && c.representative.points.len() >= 2
        });
        assert!(hit, "no cluster recovered backbone {b}");
    }

    // Noise-truth segments are mostly rejected.
    let mut noise_total = 0usize;
    let mut noise_rejected = 0usize;
    for (i, seg) in outcome.database.segments().iter().enumerate() {
        if matches!(scene.truth[seg.trajectory.0 as usize], TruthLabel::Noise) {
            noise_total += 1;
            if matches!(outcome.clustering.labels[i], SegmentLabel::Noise) {
                noise_rejected += 1;
            }
        }
    }
    assert!(noise_total > 0);
    let rejected_fraction = noise_rejected as f64 / noise_total as f64;
    assert!(
        rejected_fraction > 0.8,
        "only {rejected_fraction:.2} of noise segments rejected"
    );
}

#[test]
fn animal_pipeline_finds_corridor_clusters() {
    let telemetry = AnimalGenerator::new(
        Habitat::deer(),
        AnimalConfig {
            animals: 16,
            fixes_per_animal: 300,
            seed: 7,
            ..AnimalConfig::default()
        },
    )
    .generate();
    let outcome = Traclus::new(TraclusConfig {
        eps: 40.0,
        min_lns: 6,
        ..TraclusConfig::default()
    })
    .run(&telemetry);
    assert!(
        !outcome.clusters.is_empty(),
        "the deer corridors must produce clusters"
    );
    // At least one representative is a genuine polyline (clusters whose
    // members never stack MinLns deep at any sweep position may yield
    // empty representatives — Figure 15 permits that), and every emitted
    // point is finite and inside the enclosure.
    assert!(
        outcome
            .clusters
            .iter()
            .any(|c| c.representative.points.len() >= 2),
        "no cluster produced a polyline representative"
    );
    for c in &outcome.clusters {
        for p in &c.representative.points {
            assert!(p.is_finite());
            assert!((-2_000.0..=12_000.0).contains(&p.x()));
            assert!((-2_000.0..=12_000.0).contains(&p.y()));
        }
    }
}

#[test]
fn rendering_is_consistent_with_outcome() {
    let scene = generate_scene(&SceneConfig {
        per_backbone: 10,
        seed: 11,
        ..SceneConfig::default()
    });
    let outcome = Traclus::new(TraclusConfig {
        eps: 7.0,
        min_lns: 5,
        ..TraclusConfig::default()
    })
    .run(&scene.trajectories);
    let svg = render_clustering(&scene.trajectories, &outcome, 640.0, 480.0);
    assert!(svg.starts_with("<svg"));
    // One polyline per input trajectory plus one per representative.
    let polylines = svg.matches("<polyline").count();
    let expected = scene.trajectories.len()
        + outcome
            .clusters
            .iter()
            .filter(|c| c.representative.points.len() >= 2)
            .count();
    assert_eq!(polylines, expected);
    let seg_svg = render_segments(&outcome, 640.0, 480.0);
    assert_eq!(
        seg_svg.matches("<line").count(),
        outcome.database.len(),
        "one line element per segment"
    );
}

#[test]
fn labels_and_cluster_membership_are_mutually_consistent() {
    let scene = generate_scene(&SceneConfig {
        seed: 5,
        ..SceneConfig::default()
    });
    let outcome = Traclus::new(TraclusConfig {
        eps: 7.0,
        min_lns: 6,
        ..TraclusConfig::default()
    })
    .run(&scene.trajectories);
    let clustering = &outcome.clustering;
    // Each cluster's members are labelled with that cluster, clusters are
    // disjoint, and cluster trajectory sets match member provenance.
    let mut seen = vec![false; outcome.database.len()];
    for cluster in &clustering.clusters {
        for &m in &cluster.members {
            assert_eq!(
                clustering.labels[m as usize],
                SegmentLabel::Cluster(cluster.id)
            );
            assert!(!seen[m as usize], "segment {m} in two clusters");
            seen[m as usize] = true;
        }
        let mut trajs: Vec<_> = cluster
            .members
            .iter()
            .map(|&m| outcome.database.trajectory_of(m))
            .collect();
        trajs.sort_unstable();
        trajs.dedup();
        assert_eq!(trajs, cluster.trajectories);
        assert!(
            cluster.trajectory_cardinality() >= 6,
            "Definition 10 threshold respected"
        );
    }
    // Everything not in a cluster is noise.
    for (i, &flag) in seen.iter().enumerate() {
        if !flag {
            assert_eq!(clustering.labels[i], SegmentLabel::Noise);
        }
    }
}

#[test]
fn rebuilding_database_from_segments_preserves_clustering() {
    let scene = generate_scene(&SceneConfig {
        per_backbone: 12,
        seed: 9,
        ..SceneConfig::default()
    });
    let config = TraclusConfig {
        eps: 7.0,
        min_lns: 5,
        ..TraclusConfig::default()
    };
    let first = Traclus::new(config).run(&scene.trajectories);
    // Round-trip the segments through a fresh database.
    let segments = first.database.segments().to_vec();
    let db2 = SegmentDatabase::from_segments(segments, config.distance);
    let second = Traclus::new(config).run_on_database(db2);
    assert_eq!(first.clustering, second.clustering);
}

#[test]
fn parallel_and_sequential_pipelines_are_identical() {
    // The Parallelism knob must not change anything observable: labels,
    // clusters, and representative trajectories all come out the same
    // whether the grouping phase runs sequentially or sharded over
    // several worker threads.
    let scene = generate_scene(&SceneConfig {
        noise_fraction: 0.2,
        seed: 31,
        ..SceneConfig::default()
    });
    let base = TraclusConfig {
        eps: 7.0,
        min_lns: 6,
        parallelism: Parallelism::Sequential,
        ..TraclusConfig::default()
    };
    let sequential = Traclus::new(base).run(&scene.trajectories);
    for threads in [2usize, 4, 8] {
        let parallel = Traclus::new(TraclusConfig {
            parallelism: Parallelism::Threads(threads),
            ..base
        })
        .run(&scene.trajectories);
        assert_eq!(
            sequential.clustering, parallel.clustering,
            "clustering diverged at t={threads}"
        );
        assert_eq!(
            sequential.clusters, parallel.clusters,
            "representatives diverged at t={threads}"
        );
    }
    // The default knob (all available hardware threads) agrees too.
    let auto = Traclus::new(TraclusConfig {
        parallelism: Parallelism::Available,
        ..base
    })
    .run(&scene.trajectories);
    assert_eq!(sequential.clustering, auto.clustering);
}
