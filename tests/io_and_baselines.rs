//! Integration: dataset IO round-trips feed the pipeline unchanged, the
//! legacy formats and the new loaders share the [`DatasetLoader`] test
//! surface, and the baseline algorithms interoperate with the same
//! trajectory types.

use std::io::Cursor;

use traclus::baselines::{
    cluster_count, dbscan_points, fit_regression_mixture, kmeans_trajectories, optics_segments,
    KMeansConfig, RegressionMixtureConfig,
};
use traclus::core::{IndexKind, SegmentDatabase};
use traclus::data::{
    generate_scene, read_csv, write_csv, BestTrackLoader, DatasetLoader, GeoLifeLoader,
    InterchangeCsvLoader, SceneConfig, TimedCsvLoader,
};
use traclus::prelude::*;

fn scratch_file(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("traclus_io_and_baselines");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write scratch file");
    path
}

#[test]
fn csv_round_trip_preserves_clustering() {
    let scene = generate_scene(&SceneConfig {
        per_backbone: 10,
        seed: 31,
        ..SceneConfig::default()
    });
    let config = TraclusConfig {
        eps: 7.0,
        min_lns: 5,
        ..TraclusConfig::default()
    };
    let direct = Traclus::new(config).run(&scene.trajectories);

    let mut buf = Vec::new();
    write_csv(&mut buf, &scene.trajectories).expect("serialise");
    let reloaded = read_csv(Cursor::new(buf.clone())).expect("parse");
    assert_eq!(reloaded, scene.trajectories);
    let via_csv = Traclus::new(config).run(&reloaded);
    assert_eq!(direct.clustering, via_csv.clustering);

    // The same bytes through the unified loader path produce the same
    // clustering: legacy parse and trait-based load are one surface.
    let path = scratch_file("scene.csv", &String::from_utf8(buf).expect("utf8"));
    let via_loader = InterchangeCsvLoader::new(&path).load().expect("load");
    assert_eq!(via_loader, scene.trajectories);
    let outcome = Traclus::new(config).run(&via_loader);
    assert_eq!(direct.clustering, outcome.clustering);
}

/// A miniature best-track listing with six storms sharing a westward leg.
fn synthetic_best_track() -> String {
    let mut text = String::new();
    for storm in 0..6 {
        text.push_str(&format!("STORM SYNTH{storm} 2000\n"));
        for k in 0..12 {
            let lat = 12.0 + storm as f64 * 0.25 + k as f64 * 0.05;
            let lon = -30.0 - k as f64 * 1.2;
            text.push_str(&format!("{lat:.2} {lon:.2} 65 990\n"));
        }
    }
    text
}

#[test]
fn best_track_loader_feeds_the_pipeline() {
    // The legacy path routed through the DatasetLoader trait.
    let path = scratch_file("synth_best_track.txt", &synthetic_best_track());
    let loader: Box<dyn DatasetLoader> = Box::new(BestTrackLoader::new(&path));
    let storms = loader.load().expect("parse best track");
    assert_eq!(storms.len(), 6);
    // Trait load equals the direct legacy parser, point for point.
    assert_eq!(
        storms,
        traclus::data::parse_best_track(&synthetic_best_track()).expect("legacy parse")
    );
    let outcome = Traclus::new(TraclusConfig {
        eps: 3.0,
        min_lns: 4,
        ..TraclusConfig::default()
    })
    .run(&storms);
    assert_eq!(
        outcome.clusters.len(),
        1,
        "six parallel westward storms form one corridor cluster"
    );
}

#[test]
fn every_loader_format_feeds_the_pipeline_through_one_surface() {
    // One heterogeneous loader list — legacy best-track, timestamped CSV,
    // GeoLife PLT — all consumed by the identical pipeline code.
    let best_track = scratch_file("surface_best_track.txt", &synthetic_best_track());
    let timed_csv = scratch_file(
        "surface_timed.csv",
        "track_id,x,y,timestamp\n\
         0,0.0,0.0,0\n0,4.0,0.1,10\n0,8.0,0.0,20\n\
         1,0.0,1.0,1000\n1,4.0,1.1,1010\n1,8.0,1.0,1020\n",
    );
    let geolife_root = format!(
        "{}/crates/data/tests/fixtures/geolife",
        env!("CARGO_MANIFEST_DIR")
    );
    let loaders: Vec<Box<dyn DatasetLoader>> = vec![
        Box::new(BestTrackLoader::new(&best_track)),
        Box::new(TimedCsvLoader::new(&timed_csv)),
        Box::new(GeoLifeLoader::new(geolife_root)),
    ];
    for loader in &loaders {
        let trajectories = loader.load().expect("golden inputs load");
        assert!(!trajectories.is_empty(), "{}", loader.name());
        let outcome = Traclus::new(TraclusConfig {
            eps: 1.0,
            min_lns: 2,
            ..TraclusConfig::default()
        })
        .run(&trajectories);
        // Tiny inputs need not cluster, but the pipeline must accept every
        // loader's output and label every derived segment.
        assert_eq!(
            outcome.clustering.labels.len(),
            outcome.database.len(),
            "{}",
            loader.name()
        );
    }
}

#[test]
fn baselines_run_on_generated_scenes() {
    let scene = generate_scene(&SceneConfig {
        per_backbone: 8,
        noise_fraction: 0.1,
        seed: 77,
        ..SceneConfig::default()
    });
    // Regression mixture and k-means accept the same Trajectory type.
    let em = fit_regression_mixture(
        &scene.trajectories,
        &RegressionMixtureConfig {
            components: 4,
            max_iterations: 20,
            ..RegressionMixtureConfig::default()
        },
    );
    assert_eq!(em.assignments.len(), scene.trajectories.len());
    let km = kmeans_trajectories(
        &scene.trajectories,
        &KMeansConfig {
            k: 4,
            ..KMeansConfig::default()
        },
    );
    assert_eq!(km.assignments.len(), scene.trajectories.len());

    // Point DBSCAN over the raw fixes finds dense structure.
    let points: Vec<Point2> = scene
        .trajectories
        .iter()
        .flat_map(|t| t.points.iter().copied())
        .collect();
    let labels = dbscan_points(&points, 5.0, 8);
    assert!(cluster_count(&labels) >= 1);

    // OPTICS over the partitioned segments completes and covers all ids.
    let config = TraclusConfig::default();
    let db =
        SegmentDatabase::from_trajectories(&scene.trajectories, &config.partition, config.distance);
    let index = db.build_index(IndexKind::RTree, 7.0);
    let optics = optics_segments(&db, &index, 7.0, 5);
    assert_eq!(optics.ordering.len(), db.len());
}

#[test]
fn whole_trajectory_baselines_vs_traclus_on_fan_scene() {
    // The quantified Figure 1 story used by the `gaffney` experiment,
    // asserted as a regression test.
    let headings = [
        (1.0f64, 1.0f64),
        (1.0, 0.5),
        (1.0, 0.0),
        (1.0, -0.5),
        (1.0, -1.0),
    ];
    let mut trajectories = Vec::new();
    let mut id = 0u32;
    for &(dx, dy) in &headings {
        for j in 0..4 {
            let offset = id as f64 * 0.4 + j as f64 * 0.05;
            let mut points: Vec<Point2> = (0..30)
                .map(|k| Point2::xy(k as f64 * 4.0, offset))
                .collect();
            for k in 1..16 {
                let t = k as f64 * 4.0;
                points.push(Point2::xy(116.0 + dx * t, offset + dy * t));
            }
            trajectories.push(Trajectory::new(TrajectoryId(id), points));
            id += 1;
        }
    }
    let outcome = Traclus::new(TraclusConfig {
        eps: 10.0,
        min_lns: 6,
        ..TraclusConfig::default()
    })
    .run(&trajectories);
    assert!(
        outcome
            .clusters
            .iter()
            .any(|c| c.trajectory_cardinality() >= 15),
        "TRACLUS finds a cluster spanning (nearly) all trajectories: {:?}",
        outcome
            .clusters
            .iter()
            .map(|c| c.trajectory_cardinality())
            .collect::<Vec<_>>()
    );
    let em = fit_regression_mixture(
        &trajectories,
        &RegressionMixtureConfig {
            components: 2,
            degree: 2,
            ..RegressionMixtureConfig::default()
        },
    );
    let mut counts = [0usize; 2];
    for &a in &em.assignments {
        counts[a] += 1;
    }
    assert!(
        counts[0] > 0 && counts[1] > 0,
        "whole-trajectory EM splits the fan; neither component isolates the corridor"
    );
}
