//! Integration: dataset IO round-trips feed the pipeline unchanged, and
//! the baseline algorithms interoperate with the same trajectory types.

use std::io::Cursor;

use traclus::baselines::{
    cluster_count, dbscan_points, fit_regression_mixture, kmeans_trajectories, optics_segments,
    KMeansConfig, RegressionMixtureConfig,
};
use traclus::core::{IndexKind, SegmentDatabase};
use traclus::data::{generate_scene, read_csv, write_csv, SceneConfig};
use traclus::prelude::*;

#[test]
fn csv_round_trip_preserves_clustering() {
    let scene = generate_scene(&SceneConfig {
        per_backbone: 10,
        seed: 31,
        ..SceneConfig::default()
    });
    let config = TraclusConfig {
        eps: 7.0,
        min_lns: 5,
        ..TraclusConfig::default()
    };
    let direct = Traclus::new(config).run(&scene.trajectories);

    let mut buf = Vec::new();
    write_csv(&mut buf, &scene.trajectories).expect("serialise");
    let reloaded = read_csv(Cursor::new(buf)).expect("parse");
    assert_eq!(reloaded, scene.trajectories);
    let via_csv = Traclus::new(config).run(&reloaded);
    assert_eq!(direct.clustering, via_csv.clustering);
}

#[test]
fn best_track_parser_feeds_the_pipeline() {
    // A miniature best-track file with three storms sharing a westward leg.
    let mut text = String::new();
    for storm in 0..6 {
        text.push_str(&format!("STORM SYNTH{storm} 2000\n"));
        for k in 0..12 {
            let lat = 12.0 + storm as f64 * 0.25 + k as f64 * 0.05;
            let lon = -30.0 - k as f64 * 1.2;
            text.push_str(&format!("{lat:.2} {lon:.2} 65 990\n"));
        }
    }
    let storms = traclus::data::parse_best_track(&text).expect("parse best track");
    assert_eq!(storms.len(), 6);
    let outcome = Traclus::new(TraclusConfig {
        eps: 3.0,
        min_lns: 4,
        ..TraclusConfig::default()
    })
    .run(&storms);
    assert_eq!(
        outcome.clusters.len(),
        1,
        "six parallel westward storms form one corridor cluster"
    );
}

#[test]
fn baselines_run_on_generated_scenes() {
    let scene = generate_scene(&SceneConfig {
        per_backbone: 8,
        noise_fraction: 0.1,
        seed: 77,
        ..SceneConfig::default()
    });
    // Regression mixture and k-means accept the same Trajectory type.
    let em = fit_regression_mixture(
        &scene.trajectories,
        &RegressionMixtureConfig {
            components: 4,
            max_iterations: 20,
            ..RegressionMixtureConfig::default()
        },
    );
    assert_eq!(em.assignments.len(), scene.trajectories.len());
    let km = kmeans_trajectories(
        &scene.trajectories,
        &KMeansConfig {
            k: 4,
            ..KMeansConfig::default()
        },
    );
    assert_eq!(km.assignments.len(), scene.trajectories.len());

    // Point DBSCAN over the raw fixes finds dense structure.
    let points: Vec<Point2> = scene
        .trajectories
        .iter()
        .flat_map(|t| t.points.iter().copied())
        .collect();
    let labels = dbscan_points(&points, 5.0, 8);
    assert!(cluster_count(&labels) >= 1);

    // OPTICS over the partitioned segments completes and covers all ids.
    let config = TraclusConfig::default();
    let db =
        SegmentDatabase::from_trajectories(&scene.trajectories, &config.partition, config.distance);
    let index = db.build_index(IndexKind::RTree, 7.0);
    let optics = optics_segments(&db, &index, 7.0, 5);
    assert_eq!(optics.ordering.len(), db.len());
}

#[test]
fn whole_trajectory_baselines_vs_traclus_on_fan_scene() {
    // The quantified Figure 1 story used by the `gaffney` experiment,
    // asserted as a regression test.
    let headings = [
        (1.0f64, 1.0f64),
        (1.0, 0.5),
        (1.0, 0.0),
        (1.0, -0.5),
        (1.0, -1.0),
    ];
    let mut trajectories = Vec::new();
    let mut id = 0u32;
    for &(dx, dy) in &headings {
        for j in 0..4 {
            let offset = id as f64 * 0.4 + j as f64 * 0.05;
            let mut points: Vec<Point2> = (0..30)
                .map(|k| Point2::xy(k as f64 * 4.0, offset))
                .collect();
            for k in 1..16 {
                let t = k as f64 * 4.0;
                points.push(Point2::xy(116.0 + dx * t, offset + dy * t));
            }
            trajectories.push(Trajectory::new(TrajectoryId(id), points));
            id += 1;
        }
    }
    let outcome = Traclus::new(TraclusConfig {
        eps: 10.0,
        min_lns: 6,
        ..TraclusConfig::default()
    })
    .run(&trajectories);
    assert!(
        outcome
            .clusters
            .iter()
            .any(|c| c.trajectory_cardinality() >= 15),
        "TRACLUS finds a cluster spanning (nearly) all trajectories: {:?}",
        outcome
            .clusters
            .iter()
            .map(|c| c.trajectory_cardinality())
            .collect::<Vec<_>>()
    );
    let em = fit_regression_mixture(
        &trajectories,
        &RegressionMixtureConfig {
            components: 2,
            degree: 2,
            ..RegressionMixtureConfig::default()
        },
    );
    let mut counts = [0usize; 2];
    for &a in &em.assignments {
        counts[a] += 1;
    }
    assert!(
        counts[0] > 0 && counts[1] > 0,
        "whole-trajectory EM splits the fan; neither component isolates the corridor"
    );
}
