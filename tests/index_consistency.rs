//! Randomised cross-checks: every index kind must produce identical
//! ε-neighborhoods and identical clusterings — the filter-and-refine
//! scheme is an optimisation, never a semantic change.

use proptest::prelude::*;
use traclus::core::{ClusterConfig, IndexKind, LineSegmentClustering, SegmentDatabase};
use traclus::geom::{IdentifiedSegment, Segment2, SegmentDistance, SegmentId, TrajectoryId};

fn db_from(raw: Vec<(f64, f64, f64, f64)>) -> SegmentDatabase<2> {
    let segments: Vec<IdentifiedSegment<2>> = raw
        .into_iter()
        .enumerate()
        .map(|(k, (x1, y1, x2, y2))| {
            IdentifiedSegment::new(
                SegmentId(k as u32),
                TrajectoryId((k % 7) as u32),
                Segment2::xy(x1, y1, x2, y2),
            )
        })
        .collect();
    SegmentDatabase::from_segments(segments, SegmentDistance::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn neighborhoods_agree_across_indexes(
        raw in prop::collection::vec(
            (-50.0..50.0f64, -50.0..50.0f64, -50.0..50.0f64, -50.0..50.0f64),
            1..60,
        ),
        eps in 0.1..30.0f64,
    ) {
        let db = db_from(raw);
        let linear = db.build_index(IndexKind::Linear, eps);
        let grid = db.build_index(IndexKind::Grid, eps);
        let rtree = db.build_index(IndexKind::RTree, eps);
        for id in 0..db.len() as u32 {
            let a = db.neighborhood(&linear, id, eps);
            let b = db.neighborhood(&grid, id, eps);
            let c = db.neighborhood(&rtree, id, eps);
            prop_assert_eq!(&a, &b, "grid mismatch at id {} eps {}", id, eps);
            prop_assert_eq!(&a, &c, "rtree mismatch at id {} eps {}", id, eps);
            prop_assert!(a.contains(&id), "Definition 4: L ∈ Nε(L)");
        }
    }

    // Decremental agreement: after every deletion batch, the
    // incrementally-maintained grid and R-tree answer every live
    // neighborhood identically to a fresh full build over the survivors
    // and to the Linear reference (which reads the database's tombstones
    // directly, so it needs no maintenance).
    #[test]
    fn deletions_agree_with_fresh_builds_and_linear(
        raw in prop::collection::vec(
            (-50.0..50.0f64, -50.0..50.0f64, -50.0..50.0f64, -50.0..50.0f64),
            4..50,
        ),
        batches in prop::collection::vec(
            prop::collection::vec(0usize..64, 1..6),
            1..6,
        ),
        eps in 0.5..25.0f64,
    ) {
        let mut db = db_from(raw);
        let linear = db.build_index(IndexKind::Linear, eps);
        let mut grid = db.build_index(IndexKind::Grid, eps);
        let mut rtree = db.build_index(IndexKind::RTree, eps);
        for (b, batch) in batches.iter().enumerate() {
            for &pick in batch {
                let live: Vec<u32> = (0..db.len() as u32).filter(|&id| db.is_live(id)).collect();
                let Some(&kill) = live.get(pick % live.len().max(1)) else {
                    break; // everything is dead already
                };
                let bbox = *db.bbox_of(kill);
                prop_assert!(db.remove_segment(kill));
                grid.remove(kill, &bbox);
                rtree.remove(kill, &bbox);
            }
            let fresh_grid = db.build_index(IndexKind::Grid, eps);
            let fresh_rtree = db.build_index(IndexKind::RTree, eps);
            for id in (0..db.len() as u32).filter(|&id| db.is_live(id)) {
                let reference = db.neighborhood(&linear, id, eps);
                for (name, index) in [
                    ("incremental grid", &grid),
                    ("incremental rtree", &rtree),
                    ("fresh grid", &fresh_grid),
                    ("fresh rtree", &fresh_rtree),
                ] {
                    prop_assert_eq!(
                        &reference,
                        &db.neighborhood(index, id, eps),
                        "{} diverged from Linear at id {} after batch {} (eps {})",
                        name, id, b, eps
                    );
                }
            }
        }
    }

    #[test]
    fn clusterings_agree_across_indexes(
        raw in prop::collection::vec(
            (-30.0..30.0f64, -30.0..30.0f64, -30.0..30.0f64, -30.0..30.0f64),
            1..50,
        ),
        eps in 0.5..20.0f64,
        min_lns in 2usize..6,
    ) {
        let db = db_from(raw);
        let mut outcomes = Vec::new();
        for kind in [IndexKind::Linear, IndexKind::Grid, IndexKind::RTree] {
            outcomes.push(
                LineSegmentClustering::new(
                    &db,
                    ClusterConfig {
                        index: kind,
                        min_trajectories: Some(2),
                        ..ClusterConfig::new(eps, min_lns)
                    },
                )
                .run(),
            );
        }
        prop_assert_eq!(&outcomes[0], &outcomes[1]);
        prop_assert_eq!(&outcomes[0], &outcomes[2]);
    }
}

/// Deleting every segment that hashed into one grid cell (equivalently,
/// one R-tree leaf region) must leave the survivors' neighborhoods exactly
/// right — the structural corner where a cell/leaf empties out entirely —
/// and deleting the rest must leave a valid empty index that fresh builds
/// agree with.
#[test]
fn emptying_a_cell_then_the_whole_index_stays_consistent() {
    // Ids 0..4: a tight knot near the origin (one cell / one leaf).
    // Ids 4..8: a second knot far away at (100, 100).
    let knot = |cx: f64, cy: f64, base: usize| -> Vec<(f64, f64, f64, f64)> {
        (0..4)
            .map(|k| {
                let off = (base + k) as f64 * 0.3;
                (cx + off, cy, cx + off + 1.0, cy + 0.5)
            })
            .collect()
    };
    let mut raw = knot(0.0, 0.0, 0);
    raw.extend(knot(100.0, 100.0, 0));
    let mut db = db_from(raw);
    let eps = 3.0;
    let linear = db.build_index(IndexKind::Linear, eps);
    let mut grid = db.build_index(IndexKind::Grid, eps);
    let mut rtree = db.build_index(IndexKind::RTree, eps);

    let check = |db: &SegmentDatabase<2>,
                 grid: &traclus::core::NeighborIndex<2>,
                 rtree: &traclus::core::NeighborIndex<2>| {
        let fresh_grid = db.build_index(IndexKind::Grid, eps);
        let fresh_rtree = db.build_index(IndexKind::RTree, eps);
        for id in (0..db.len() as u32).filter(|&id| db.is_live(id)) {
            let reference = db.neighborhood(&linear, id, eps);
            for index in [grid, rtree, &fresh_grid, &fresh_rtree] {
                assert_eq!(reference, db.neighborhood(index, id, eps), "id {id}");
            }
        }
    };

    // Empty the origin knot one segment at a time — the last removal
    // leaves its cell (and leaf) with zero entries.
    for kill in 0..4u32 {
        let bbox = *db.bbox_of(kill);
        assert!(db.remove_segment(kill));
        grid.remove(kill, &bbox);
        rtree.remove(kill, &bbox);
        check(&db, &grid, &rtree);
    }
    // The far knot is untouched: each survivor still sees all four.
    assert_eq!(db.live_len(), 4);
    assert_eq!(db.neighborhood(&linear, 4, eps).len(), 4);

    // Now empty the index entirely; incremental and fresh builds must
    // agree on the nothing that remains.
    for kill in 4..8u32 {
        let bbox = *db.bbox_of(kill);
        assert!(db.remove_segment(kill));
        grid.remove(kill, &bbox);
        rtree.remove(kill, &bbox);
        check(&db, &grid, &rtree);
    }
    assert_eq!(db.live_len(), 0);
}
