//! Randomised cross-checks: every index kind must produce identical
//! ε-neighborhoods and identical clusterings — the filter-and-refine
//! scheme is an optimisation, never a semantic change.

use proptest::prelude::*;
use traclus::core::{ClusterConfig, IndexKind, LineSegmentClustering, SegmentDatabase};
use traclus::geom::{IdentifiedSegment, Segment2, SegmentDistance, SegmentId, TrajectoryId};

fn db_from(raw: Vec<(f64, f64, f64, f64)>) -> SegmentDatabase<2> {
    let segments: Vec<IdentifiedSegment<2>> = raw
        .into_iter()
        .enumerate()
        .map(|(k, (x1, y1, x2, y2))| {
            IdentifiedSegment::new(
                SegmentId(k as u32),
                TrajectoryId((k % 7) as u32),
                Segment2::xy(x1, y1, x2, y2),
            )
        })
        .collect();
    SegmentDatabase::from_segments(segments, SegmentDistance::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn neighborhoods_agree_across_indexes(
        raw in prop::collection::vec(
            (-50.0..50.0f64, -50.0..50.0f64, -50.0..50.0f64, -50.0..50.0f64),
            1..60,
        ),
        eps in 0.1..30.0f64,
    ) {
        let db = db_from(raw);
        let linear = db.build_index(IndexKind::Linear, eps);
        let grid = db.build_index(IndexKind::Grid, eps);
        let rtree = db.build_index(IndexKind::RTree, eps);
        for id in 0..db.len() as u32 {
            let a = db.neighborhood(&linear, id, eps);
            let b = db.neighborhood(&grid, id, eps);
            let c = db.neighborhood(&rtree, id, eps);
            prop_assert_eq!(&a, &b, "grid mismatch at id {} eps {}", id, eps);
            prop_assert_eq!(&a, &c, "rtree mismatch at id {} eps {}", id, eps);
            prop_assert!(a.contains(&id), "Definition 4: L ∈ Nε(L)");
        }
    }

    #[test]
    fn clusterings_agree_across_indexes(
        raw in prop::collection::vec(
            (-30.0..30.0f64, -30.0..30.0f64, -30.0..30.0f64, -30.0..30.0f64),
            1..50,
        ),
        eps in 0.5..20.0f64,
        min_lns in 2usize..6,
    ) {
        let db = db_from(raw);
        let mut outcomes = Vec::new();
        for kind in [IndexKind::Linear, IndexKind::Grid, IndexKind::RTree] {
            outcomes.push(
                LineSegmentClustering::new(
                    &db,
                    ClusterConfig {
                        index: kind,
                        min_trajectories: Some(2),
                        ..ClusterConfig::new(eps, min_lns)
                    },
                )
                .run(),
            );
        }
        prop_assert_eq!(&outcomes[0], &outcomes[1]);
        prop_assert_eq!(&outcomes[0], &outcomes[2]);
    }
}
