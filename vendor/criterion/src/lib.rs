//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the API surface the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros — with a
//! simple measurement loop (median of `sample_size` timed batches after
//! a short calibration) instead of criterion's statistical machinery.
//! No HTML reports, no regression detection, no CLI filtering.

#![forbid(unsafe_code)]
// Wall-clock capture is the point: this crate IS the measurement loop (the
// workspace clippy.toml disallows `Instant::now` so library crates cannot
// read the clock; the bench harness is where the readings belong).
#![allow(clippy::disallowed_methods)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier — re-exported from `std::hint`.
pub use std::hint::black_box;

/// Top-level harness state.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Override the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, self.sample_size, f);
        self
    }
}

/// A named benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// The display label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (kept for API compatibility; drop does the work).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] times the payload.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `payload`, recording one sample per timed batch.
    pub fn iter<O>(&mut self, mut payload: impl FnMut() -> O) {
        let sample_count = self.samples.capacity().max(2);
        // Calibrate: aim for batches of at least ~2ms so short payloads
        // aren't dominated by timer resolution.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(payload());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters = iters.saturating_mul(2);
        }
        for _ in 0..sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(payload());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_per_iter(&self) -> Option<Duration> {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        Some(sorted[sorted.len() / 2] / self.iters_per_sample as u32)
    }
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 0,
    };
    f(&mut bencher);
    match bencher.median_per_iter() {
        Some(t) => println!("bench: {label:<60} median {t:>12.3?}/iter"),
        None => println!("bench: {label:<60} (no measurement taken)"),
    }
}

/// Bundle benchmark functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the named groups (ignores criterion CLI flags).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut group = c.benchmark_group("demo");
        group
            .sample_size(2)
            .bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
