//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategies compose by reference too (used by combinators).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`map`].
pub struct Map<S, F> {
    source: S,
    func: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.func)(self.source.generate(rng))
    }
}

/// Map a strategy's output through a function (backs `prop_compose!`).
pub fn map<S: Strategy, O>(source: S, func: impl Fn(S::Value) -> O) -> impl Strategy<Value = O> {
    Map { source, func }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
