//! One-stop imports mirroring `proptest::prelude`.

pub use crate as prop;
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_compose, proptest};
