//! Test configuration and the deterministic case RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the heavier
        // whole-pipeline properties in this workspace fast while still
        // exploring a meaningful slice of the input space.
        Self { cases: 64 }
    }
}

/// The RNG handed to strategies — a seeded [`StdRng`].
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic stream from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.inner)
    }
}
