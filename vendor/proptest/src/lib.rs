//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate reimplements the slice of proptest this workspace uses:
//!
//! * [`strategy::Strategy`] — implemented for numeric ranges, tuples of
//!   strategies, and [`collection::vec`];
//! * [`prop_compose!`] — build a named strategy from component strategies;
//! * [`proptest!`] — run each property over `ProptestConfig::cases`
//!   deterministic pseudo-random cases (seeded from the test name, so
//!   failures reproduce across runs);
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`].
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! the panic message only), no persistence files, and no `any::<T>()`
//! reflection. Cases are NOT minimal counterexamples.

#![forbid(unsafe_code)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Deterministically seed a [`test_runner::TestRng`] from a test name.
/// FNV-1a over the name keeps distinct tests on distinct streams.
pub fn rng_for_test(name: &str) -> test_runner::TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    test_runner::TestRng::seed(hash)
}

/// Run one property over `config.cases` generated cases.
///
/// `case` draws its own inputs from the RNG and returns `true` if the
/// inputs were accepted (i.e. not rejected by `prop_assume!`); rejected
/// cases do not count against the case budget (up to a global retry cap).
pub fn run_cases(
    config: &test_runner::ProptestConfig,
    rng: &mut test_runner::TestRng,
    mut case: impl FnMut(&mut test_runner::TestRng) -> bool,
) {
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(20).max(1000);
    while accepted < config.cases && attempts < max_attempts {
        attempts += 1;
        if case(rng) {
            accepted += 1;
        }
    }
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// `prop_assert_eq!(a, b)` / `prop_assert_eq!(a, b, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "prop_assert_eq failed: `{}` != `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "prop_assert_eq failed ({})\n  left: {:?}\n right: {:?}",
                format_args!($($fmt)+), l, r
            );
        }
    }};
}

/// `prop_assume!(cond)` — skip the current case when `cond` is false.
/// Works by early-returning from the per-case closure built by
/// [`proptest!`].
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return false;
        }
    };
}

/// Build a named strategy function out of component strategies:
///
/// ```ignore
/// prop_compose! {
///     fn point()(x in -1.0..1.0f64, y in -1.0..1.0f64) -> Point {
///         Point { x, y }
///     }
/// }
/// ```
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:ident : $argty:ty),* $(,)?)
            ($($var:ident in $strat:expr),+ $(,)?)
            -> $ret:ty
        $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::map(($($strat,)+), move |($($var,)+)| $body)
        }
    };
}

/// Define `#[test]` functions that each run over many generated cases:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0..100i64, b in 0..100i64) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (
        $(#[$meta:meta] fn $name:ident($($var:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default());
            $(#[$meta] fn $name($($var in $strat),*) $body)*);
    };
    (
        @impl ($config:expr);
        $(#[$meta:meta] fn $name:ident($($var:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            #[$meta]
            fn $name() {
                let config = $config;
                let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                $crate::run_cases(&config, &mut rng, |rng| {
                    $(let $var = $crate::strategy::Strategy::generate(&($strat), rng);)*
                    let case = move || -> bool { { $body } true };
                    case()
                });
            }
        )*
    };
}
