//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// Admissible element-count shapes for [`fn@vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy for `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(
    element: S,
    size: impl Into<SizeRange>,
) -> impl Strategy<Value = Vec<S::Value>> {
    let size = size.into();
    VecStrategy { element, size }
}

struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
