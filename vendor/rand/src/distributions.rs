//! The [`Standard`] distribution and uniform range sampling.

use crate::RngCore;

/// A distribution over values of type `T` (subset of
/// `rand::distributions::Distribution`).
pub trait Distribution<T> {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: `[0, 1)` for floats, full range
/// for integers, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform range sampling (subset of `rand::distributions::uniform`).
pub mod uniform {
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be drawn uniformly from a range.
    pub trait SampleUniform: Sized {
        /// Sample from the half-open interval `[low, high)`.
        fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Sample from the closed interval `[low, high]`.
        fn sample_closed<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    }

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low < high, "gen_range: empty range");
                    let span = (high as u128).wrapping_sub(low as u128) as u128;
                    low.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
                fn sample_closed<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low <= high, "gen_range: empty range");
                    let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                    if span == 0 {
                        // Full-width range: every value is admissible.
                        return rng.next_u64() as $t;
                    }
                    low.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }
    uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low < high, "gen_range: empty range");
                    let unit = crate::distributions::Distribution::<$t>::sample(
                        &crate::distributions::Standard, rng);
                    let v = low + (high - low) * unit;
                    // Guard against round-up to `high` at the interval edge.
                    if v < high { v } else { <$t>::from_bits(high.to_bits() - 1) }
                }
                fn sample_closed<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low <= high, "gen_range: empty range");
                    let unit = crate::distributions::Distribution::<$t>::sample(
                        &crate::distributions::Standard, rng);
                    low + (high - low) * unit
                }
            }
        )*};
    }
    uniform_float!(f32, f64);

    /// Range-shaped arguments accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draw one sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_half_open(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            T::sample_closed(low, high, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..7usize);
            assert!((3..7).contains(&x));
            let y = rng.gen_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&y));
            let z = rng.gen_range(0.0..=1.0f64);
            assert!((0.0..=1.0).contains(&z));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn integer_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
