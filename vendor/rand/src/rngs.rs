//! Concrete generators: [`StdRng`] (xoshiro256++) and the
//! [`SplitMix64`] seeder.

use crate::{RngCore, SeedableRng};

/// SplitMix64 — used to expand `u64` seeds into full generator state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// New SplitMix64 stream starting from `state`.
    pub fn new(state: u64) -> Self {
        Self { state }
    }

    /// Next output of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Not stream-compatible with upstream `rand::rngs::StdRng` (ChaCha12) —
/// see the crate docs.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [
                0x9e37_79b9_7f4a_7c15,
                0x6a09_e667_f3bc_c909,
                0xbb67_ae85_84ca_a73b,
                0x3c6e_f372_fe94_f82b,
            ];
        }
        Self { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_f64_has_sane_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
