//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) slice of the `rand` 0.8 API the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 — deterministic, fast, and statistically strong enough for
//! the synthetic data generators and Box–Muller sampling in this
//! workspace. It is **not** the ChaCha12 generator of the real `StdRng`,
//! so byte-for-byte stream compatibility with upstream `rand` is not
//! provided (nothing in this workspace relies on it); it is also not
//! cryptographically secure.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// A source of random `u64`s (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it through SplitMix64 —
    /// the same convention as upstream `rand`.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = rngs::SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`] — mirrors `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the [`Standard`] distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers over the full range).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
