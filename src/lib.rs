//! # traclus
//!
//! A complete, from-scratch Rust reproduction of **TRACLUS** — the
//! partition-and-group trajectory clustering framework of Lee, Han and
//! Whang (*Trajectory Clustering: A Partition-and-Group Framework*,
//! SIGMOD 2007).
//!
//! This façade crate re-exports the whole workspace:
//!
//! * [`geom`] — points, segments, and the composite segment distance
//!   (Definitions 1–3);
//! * [`core`] — MDL partitioning (Section 3), density-based line-segment
//!   clustering (Section 4.2; sequential and sharded-parallel, selected by
//!   the `Parallelism` knob), representative trajectories (Section 4.3),
//!   the parameter-selection heuristics (Section 4.4), and the streaming
//!   engine (`IncrementalClustering`) that ingests trajectories one at a
//!   time while keeping the clustering identical to a batch run;
//! * [`index`] — R-tree / grid substrate for ε-neighborhood queries
//!   (Lemma 3);
//! * [`data`] — synthetic generators standing in for the paper's hurricane
//!   and animal-movement datasets, plus real-dataset loaders (GeoLife PLT
//!   directories, timestamped CSV, best-track) behind the unified
//!   [`DatasetLoader`](data::DatasetLoader) trait;
//! * [`baselines`] — whole-trajectory baselines (regression-mixture EM,
//!   k-means) and OPTICS (Appendix D);
//! * [`eval`] — the survey-scale evaluation harness: segment-level
//!   quality metrics under the composite distance, a uniform
//!   cross-algorithm result adapter, and a machine-readable
//!   TRACLUS-vs-baselines comparison report;
//! * [`json`] — the dependency-free JSON layer (parse, build, write)
//!   shared by the eval reports and the serving protocol;
//! * [`server`] — clustering-as-a-service: a line-delimited JSON
//!   ingest/query daemon over TCP with snapshot-isolated reads
//!   ([`core::ClusterSnapshot`] behind a [`core::SnapshotCell`]);
//! * [`viz`] — SVG rendering of clustering results.
//!
//! ## Quickstart
//!
//! ```
//! use traclus::prelude::*;
//!
//! // Three trajectories sharing a horizontal corridor.
//! let trajectories: Vec<Trajectory2> = (0..3)
//!     .map(|i| {
//!         let y = i as f64 * 2.0;
//!         Trajectory::new(
//!             TrajectoryId(i),
//!             (0..20)
//!                 .map(|k| Point2::xy(k as f64 * 5.0, y + (k as f64 * 0.7).sin()))
//!                 .collect(),
//!         )
//!     })
//!     .collect();
//!
//! let config = TraclusConfig {
//!     eps: 6.0,
//!     min_lns: 3,
//!     ..TraclusConfig::default()
//! };
//! let outcome = Traclus::new(config).run(&trajectories);
//! assert!(!outcome.clusters.is_empty());
//! for cluster in &outcome.clusters {
//!     let rep = &cluster.representative;
//!     assert!(rep.points.len() >= 2, "representative trajectories are polylines");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use traclus_baselines as baselines;
pub use traclus_core as core;
pub use traclus_data as data;
pub use traclus_eval as eval;
pub use traclus_geom as geom;
pub use traclus_index as index;
pub use traclus_json as json;
pub use traclus_server as server;
pub use traclus_viz as viz;

/// One-stop imports for typical use.
pub mod prelude {
    pub use traclus_core::{
        cluster::{ClusterId, Clustering, LineSegmentClustering, SegmentLabel},
        params::{select_min_lns, EntropyCurve, EpsSelection, Parallelism},
        partition::{approximate_partition, optimal_partition, MdlCost, PartitionConfig},
        quality::QMeasure,
        representative::RepresentativeConfig,
        segment_db::SegmentDatabase,
        snapshot::{ClusterSnapshot, RegionSummary, SnapshotCell},
        stream::{IncrementalClustering, InsertReport, RemoveReport, StreamConfig, StreamStats},
        Traclus, TraclusConfig, TraclusOutcome,
    };
    pub use traclus_geom::{
        AngleMode, DistanceWeights, Point, Point2, Segment, Segment2, SegmentDistance, Trajectory,
        Trajectory2, TrajectoryId,
    };
    pub use traclus_json::JsonValue;
    pub use traclus_server::{Client, Request, Server, ServerConfig};
}
