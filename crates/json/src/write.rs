//! Serialization: compact one-liners and a human-oriented pretty layout.

use crate::value::JsonValue;

/// Escapes and quotes a string for JSON output (quotes, backslashes,
/// `\n`/`\r`/`\t`, and `\u00XX` for remaining control characters).
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float: shortest-round-trip `Display` when finite, `null`
/// otherwise — the output is always valid JSON, and validation layers
/// catch the non-finite case separately.
pub fn format_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl JsonValue {
    /// Serializes on one line: `{"k": v, "k2": [1, 2]}` — the
    /// line-delimited protocol format.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        write_inline(self, &mut out);
        out
    }

    /// Serializes with a two-space-indented layout in which *leaf*
    /// containers — objects and arrays without container children — stay
    /// on one line. This is exactly the historical `EvalReport` rendering
    /// (scalar blocks such as `"params": {"eps": "5"}` inline, structure
    /// multiline), now shared by every report writer. No trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(self, 0, &mut out);
        out
    }
}

fn scalar(value: &JsonValue, out: &mut String) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Int(i) => out.push_str(&i.to_string()),
        JsonValue::Number(n) => out.push_str(&format_f64(*n)),
        JsonValue::String(s) => out.push_str(&escape_string(s)),
        JsonValue::Array(_) | JsonValue::Object(_) => unreachable!("containers handled by caller"),
    }
}

fn write_inline(value: &JsonValue, out: &mut String) {
    match value {
        JsonValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_inline(item, out);
            }
            out.push(']');
        }
        JsonValue::Object(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&escape_string(k));
                out.push_str(": ");
                write_inline(v, out);
            }
            out.push('}');
        }
        other => scalar(other, out),
    }
}

/// Whether a container holds another container (which forces the
/// multiline layout in [`JsonValue::to_pretty`]).
fn has_container_children(value: &JsonValue) -> bool {
    match value {
        JsonValue::Array(items) => items.iter().any(is_container),
        JsonValue::Object(pairs) => pairs.iter().any(|(_, v)| is_container(v)),
        _ => false,
    }
}

fn is_container(value: &JsonValue) -> bool {
    matches!(value, JsonValue::Array(_) | JsonValue::Object(_))
}

fn write_pretty(value: &JsonValue, indent: usize, out: &mut String) {
    match value {
        JsonValue::Array(items) if !items.is_empty() && has_container_children(value) => {
            let pad = "  ".repeat(indent + 1);
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                write_pretty(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        JsonValue::Object(pairs) if !pairs.is_empty() && has_container_children(value) => {
            let pad = "  ".repeat(indent + 1);
            out.push_str("{\n");
            for (i, (k, v)) in pairs.iter().enumerate() {
                out.push_str(&pad);
                out.push_str(&escape_string(k));
                out.push_str(": ");
                write_pretty(v, indent + 1, out);
                out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
            }
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        leaf => write_inline(leaf, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_matches_the_historical_writer() {
        assert_eq!(escape_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(escape_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(format_f64(f64::NAN), "null");
        assert_eq!(format_f64(f64::INFINITY), "null");
        assert_eq!(format_f64(1.5), "1.5");
        assert_eq!(format_f64(3.0), "3");
    }

    #[test]
    fn compact_is_single_line() {
        let v = JsonValue::object([
            ("a", JsonValue::Int(1)),
            (
                "b",
                JsonValue::array([JsonValue::Null, JsonValue::Bool(true)]),
            ),
        ]);
        assert_eq!(v.to_compact(), r#"{"a": 1, "b": [null, true]}"#);
    }

    #[test]
    fn pretty_inlines_leaf_containers_only() {
        let v = JsonValue::object([
            ("meta", JsonValue::object([("k", JsonValue::from("v"))])),
            (
                "rows",
                JsonValue::array([JsonValue::object([("n", JsonValue::Int(1))])]),
            ),
        ]);
        assert_eq!(
            v.to_pretty(),
            "{\n  \"meta\": {\"k\": \"v\"},\n  \"rows\": [\n    {\"n\": 1}\n  ]\n}"
        );
    }

    #[test]
    fn pretty_keeps_empty_containers_inline() {
        let v = JsonValue::object([
            ("empty_obj", JsonValue::object::<&str>([])),
            ("empty_arr", JsonValue::array([])),
        ]);
        assert_eq!(
            v.to_pretty(),
            "{\n  \"empty_obj\": {},\n  \"empty_arr\": []\n}"
        );
    }

    #[test]
    fn pretty_scalar_is_bare() {
        assert_eq!(JsonValue::Int(5).to_pretty(), "5");
        assert_eq!(JsonValue::Null.to_pretty(), "null");
    }
}
