//! The JSON value tree and its accessors.

use crate::parse::{parse_value, JsonError};

/// One JSON value.
///
/// Integers get their own variant so counts round-trip exactly at any
/// magnitude (an `i64` routed through `f64` would lose precision past
/// 2⁵³); the parser produces [`JsonValue::Int`] for integral tokens that
/// fit, [`JsonValue::Number`] otherwise. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also how non-finite floats serialize).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fits `i64`, printed without a decimal point.
    Int(i64),
    /// Any other number; non-finite values serialize as `null`.
    Number(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<JsonValue>),
    /// Key/value pairs in insertion order (deterministic serialization;
    /// duplicate keys are representable but [`JsonValue::get`] returns the
    /// first).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsonValue)>) -> Self {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(values: impl IntoIterator<Item = JsonValue>) -> Self {
        JsonValue::Array(values.into_iter().collect())
    }

    /// A float that serializes as `null` when `None` or non-finite — the
    /// optional-metric convention of the evaluation reports.
    pub fn opt_f64(v: Option<f64>) -> Self {
        match v {
            Some(v) => JsonValue::Number(v),
            None => JsonValue::Null,
        }
    }

    /// Parses one JSON document (surrounding whitespace allowed, trailing
    /// content rejected). Never panics; malformed input yields a
    /// [`JsonError`] locating the problem.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        parse_value(text)
    }

    /// Member lookup on an object (first match); `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value of an [`Int`](Self::Int) or
    /// [`Number`](Self::Number).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer value of an [`Int`](Self::Int).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The borrowed string of a [`String`](Self::String) value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean of a [`Bool`](Self::Bool) value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements of an [`Array`](Self::Array) value.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The pairs of an [`Object`](Self::Object) value.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::Int(v as i64)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        // Counts beyond i64::MAX cannot occur in this workspace (they
        // would exceed addressable memory long before); saturate rather
        // than wrap so the impossible case still serializes as *a* number.
        JsonValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Number(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::String(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::String(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_returns_first_match_and_none_elsewhere() {
        let v = JsonValue::object([
            ("a", JsonValue::Int(1)),
            ("a", JsonValue::Int(2)),
            ("b", JsonValue::Null),
        ]);
        assert_eq!(v.get("a"), Some(&JsonValue::Int(1)));
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Int(3).get("a"), None);
    }

    #[test]
    fn accessors_match_variants() {
        assert_eq!(JsonValue::Int(7).as_f64(), Some(7.0));
        assert_eq!(JsonValue::Number(1.5).as_f64(), Some(1.5));
        assert_eq!(JsonValue::Int(7).as_i64(), Some(7));
        assert_eq!(JsonValue::Number(1.5).as_i64(), None);
        assert_eq!(JsonValue::from("x").as_str(), Some("x"));
        assert_eq!(JsonValue::Bool(true).as_bool(), Some(true));
        assert!(JsonValue::Null.is_null());
        assert_eq!(
            JsonValue::array([JsonValue::Null])
                .as_array()
                .map(<[_]>::len),
            Some(1)
        );
    }

    #[test]
    fn usize_conversion_saturates() {
        assert_eq!(JsonValue::from(usize::MAX).as_i64(), Some(i64::MAX));
        assert_eq!(JsonValue::from(5usize).as_i64(), Some(5));
    }
}
