//! # traclus-json
//!
//! A dependency-free JSON value model with a deterministic writer and a
//! strict parser. The workspace builds offline (no serde), yet three
//! subsystems speak JSON: the evaluation reports of `traclus-eval`, the
//! line-delimited serving protocol of `traclus-server`, and the checked-in
//! perf snapshots. This crate is the one shared implementation, extracted
//! from the hand-rolled writer that used to be private to
//! `traclus_eval::EvalReport`.
//!
//! Design constraints inherited from those call sites:
//!
//! * **Deterministic output.** Object members serialize in insertion order
//!   ([`JsonValue::Object`] is a `Vec` of pairs, never a hash map), and
//!   numbers print via Rust's shortest-round-trip `Display` — identical
//!   inputs give identical bytes, which is what lets the golden-report
//!   regression test pin report output byte for byte.
//! * **Always valid JSON.** Non-finite floats serialize as `null` (the
//!   report validators reject them separately); strings escape quotes,
//!   backslashes, and control characters.
//! * **Total parsing.** [`JsonValue::parse`] returns a typed
//!   [`JsonError`] with line/column on any malformed input — it never
//!   panics, which the server protocol's fuzz suite relies on.
//!
//! ```
//! use traclus_json::JsonValue;
//!
//! let v = JsonValue::object([
//!     ("op", JsonValue::from("ingest")),
//!     ("points", JsonValue::array([JsonValue::from(1.5), JsonValue::from(2i64)])),
//! ]);
//! let line = v.to_compact();
//! assert_eq!(line, r#"{"op": "ingest", "points": [1.5, 2]}"#);
//! let back = JsonValue::parse(&line).unwrap();
//! assert_eq!(back, v);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parse;
mod value;
mod write;

pub use parse::JsonError;
pub use value::JsonValue;
pub use write::{escape_string, format_f64};
