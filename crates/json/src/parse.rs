//! A strict, total JSON parser: recursive descent over bytes, with a
//! hard nesting-depth cap so adversarial input (the serving protocol
//! reads lines from untrusted sockets) can neither panic nor overflow
//! the stack.

use crate::value::JsonValue;

/// Nesting depth past which parsing aborts. Deep enough for any document
/// this workspace produces, shallow enough that a `[[[[…` flood from a
/// socket cannot exhaust the stack.
const MAX_DEPTH: usize = 128;

/// A parse failure, locating the offending byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// 1-based line of the offset.
    pub line: usize,
    /// 1-based column (in bytes) of the offset.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for JsonError {}

pub(crate) fn parse_value(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.error("trailing content after the JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        let offset = self.pos.min(self.bytes.len());
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..offset] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        JsonError {
            offset,
            line,
            column,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected character {:?}", c as char))),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.consume(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar (input is &str, so
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (the `u` already consumed),
    /// gluing surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require a following `\uXXXX` low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(code)
                        .ok_or_else(|| self.error("invalid surrogate pair"));
                }
            }
            return Err(self.error("lone high surrogate in \\u escape"));
        }
        if (0xDC00..0xE000).contains(&first) {
            return Err(self.error("lone low surrogate in \\u escape"));
        }
        char::from_u32(first).ok_or_else(|| self.error("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.error("expected 4 hex digits after \\u")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let first_digit = self.pos;
        let int_digits = self.digits()?;
        if int_digits > 1 && self.bytes[first_digit] == b'0' {
            return Err(self.error("leading zeros are not valid JSON"));
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !fractional {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(JsonValue::Number(v)),
            Ok(_) => Err(self.error("number overflows f64")),
            Err(_) => Err(self.error("invalid number")),
        }
    }

    /// Consumes ≥ 1 ASCII digits, returning how many.
    fn digits(&mut self) -> Result<usize, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a digit"));
        }
        Ok(self.pos - start)
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<JsonValue, JsonError> {
        JsonValue::parse(s)
    }

    #[test]
    fn parses_every_scalar() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("-42").unwrap(), JsonValue::Int(-42));
        assert_eq!(parse("1.5e2").unwrap(), JsonValue::Number(150.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), JsonValue::from("a\nb"));
    }

    #[test]
    fn integral_tokens_become_int_others_number() {
        assert_eq!(
            parse("9007199254740993").unwrap(),
            JsonValue::Int(9007199254740993)
        );
        assert_eq!(parse("1.0").unwrap(), JsonValue::Number(1.0));
        assert_eq!(parse("1e3").unwrap(), JsonValue::Number(1000.0));
        // Past i64: falls back to f64.
        assert_eq!(
            parse("99999999999999999999").unwrap(),
            JsonValue::Number(1e20)
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.as_array()).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x"));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::from("\u{1F600}")
        );
        assert!(parse("\"\\ud83d\"").is_err(), "lone surrogate rejected");
    }

    #[test]
    fn rejects_malformed_input_with_located_errors() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "nul",
            "+1",
            "01",
            "1.",
            "\"unterminated",
            "[1 2]",
            "{\"a\":1,}",
            "[]extra",
            "\"bad \\q escape\"",
            "--1",
            "1e",
            "\u{7}",
        ] {
            let err = parse(bad).expect_err(&format!("{bad:?} must fail"));
            assert!(err.line >= 1 && err.column >= 1, "{bad:?}: {err}");
        }
    }

    #[test]
    fn depth_cap_rejects_bomb_without_panicking() {
        let bomb = "[".repeat(100_000);
        let err = parse(&bomb).expect_err("depth bomb");
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn error_locations_count_lines() {
        let err = parse("{\n  \"a\": tru\n}").expect_err("bad literal");
        assert_eq!(err.line, 2);
        assert!(err.column > 1);
    }
}
