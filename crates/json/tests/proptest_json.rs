//! Property tests: serialize→parse round-trips on arbitrary value trees,
//! and parser totality (arbitrary input never panics).
//!
//! The vendored proptest has no recursive or string strategies, so this
//! file implements a `Strategy` for JSON trees directly on top of the
//! test RNG.

use proptest::prelude::*;
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;
use rand::Rng;
use traclus_json::JsonValue;

/// Characters worth stressing in strings: escapes, controls, non-ASCII,
/// astral-plane (exercises `\u` surrogate pairs when re-parsed), and
/// plain text.
const STRING_POOL: &[char] = &[
    'a',
    'b',
    'z',
    '0',
    ' ',
    '"',
    '\\',
    '/',
    '\n',
    '\r',
    '\t',
    '\u{0}',
    '\u{1}',
    '\u{1f}',
    'é',
    '中',
    '\u{1F600}',
    '\u{FFFD}',
];

fn arb_string(rng: &mut TestRng) -> String {
    let len = rng.gen_range(0..12usize);
    (0..len)
        .map(|_| STRING_POOL[rng.gen_range(0..STRING_POOL.len())])
        .collect()
}

/// A finite, non-integral f64. Non-integral matters for round-trip
/// equality: `7.0` prints as `7`, which the parser (correctly) reads back
/// as `Int(7)` — a representation change, not a data change. Keeping a
/// fractional part pins the variant; integral numbers are covered by the
/// `Int` arm.
fn arb_fractional(rng: &mut TestRng) -> f64 {
    let mut v: f64 = rng.gen_range(-1.0e12..1.0e12);
    if v.fract() == 0.0 {
        v += 0.5;
    }
    v
}

fn arb_value(rng: &mut TestRng, depth: usize) -> JsonValue {
    let max_kind = if depth == 0 { 5 } else { 7 };
    match rng.gen_range(0..max_kind) {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(rng.gen_range(0..2) == 1),
        2 => JsonValue::Int(rng.gen_range(i64::MIN..i64::MAX)),
        3 => JsonValue::Number(arb_fractional(rng)),
        4 => JsonValue::String(arb_string(rng)),
        5 => {
            let len = rng.gen_range(0..4usize);
            JsonValue::array(
                (0..len)
                    .map(|_| arb_value(rng, depth - 1))
                    .collect::<Vec<_>>(),
            )
        }
        _ => {
            let len = rng.gen_range(0..4usize);
            JsonValue::object(
                (0..len)
                    .map(|_| (arb_string(rng), arb_value(rng, depth - 1)))
                    .collect::<Vec<_>>(),
            )
        }
    }
}

struct JsonTree;

impl Strategy for JsonTree {
    type Value = JsonValue;
    fn generate(&self, rng: &mut TestRng) -> JsonValue {
        arb_value(rng, 3)
    }
}

/// Arbitrary short text over a JSON-ish alphabet — dense in *almost*
/// valid documents, which probe far more parser paths than uniform bytes.
struct JsonSoup;

impl Strategy for JsonSoup {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        const SOUP: &[char] = &[
            '{', '}', '[', ']', '"', ':', ',', '-', '+', '.', 'e', 'E', '0', '1', '9', 't', 'r',
            'u', 'f', 'a', 'l', 's', 'n', '\\', ' ', '\n', '\u{1}', 'é',
        ];
        let len = rng.gen_range(0..40usize);
        (0..len)
            .map(|_| SOUP[rng.gen_range(0..SOUP.len())])
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compact_round_trips(value in JsonTree) {
        let text = value.to_compact();
        let back = JsonValue::parse(&text);
        prop_assert_eq!(back.as_ref(), Ok(&value), "compact text: {}", text);
    }

    #[test]
    fn pretty_round_trips(value in JsonTree) {
        let text = value.to_pretty();
        let back = JsonValue::parse(&text);
        prop_assert_eq!(back.as_ref(), Ok(&value), "pretty text: {}", text);
    }

    #[test]
    fn parser_is_total_on_soup(text in JsonSoup) {
        // The property is that this returns (Ok or Err) rather than
        // panicking; when it does parse, re-serializing must parse again.
        if let Ok(v) = JsonValue::parse(&text) {
            let reserialized = v.to_compact();
            prop_assert_eq!(JsonValue::parse(&reserialized), Ok(v));
        }
    }

    #[test]
    fn escaped_strings_round_trip(s in JsonSoup) {
        let v = JsonValue::from(s.as_str());
        prop_assert_eq!(JsonValue::parse(&v.to_compact()), Ok(v));
    }
}
