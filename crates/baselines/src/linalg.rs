//! Minimal dense linear algebra: just enough for weighted polynomial least
//! squares inside the regression-mixture EM baseline (Gaffney & Smyth \[7\]).
//!
//! Row-major matrices, Cholesky factorisation for the SPD normal equations,
//! with a tiny ridge to keep ill-conditioned Vandermonde systems solvable.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a row-major slice.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// In-place element update.
    #[inline]
    pub fn add_to(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] += v;
    }

    /// Matrix product `self · other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.add_to(i, j, a * other.get(k, j));
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// `Aᵀ·diag(w)·A` — the weighted normal-equations matrix, computed
    /// without materialising `diag(w)`.
    pub fn weighted_gram(&self, weights: &[f64]) -> Matrix {
        assert_eq!(weights.len(), self.rows);
        let mut out = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let w = weights[r];
            if w == 0.0 {
                continue;
            }
            for i in 0..self.cols {
                let wi = w * self.get(r, i);
                for j in i..self.cols {
                    out.add_to(i, j, wi * self.get(r, j));
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..self.cols {
            for j in 0..i {
                let v = out.get(j, i);
                out.set(i, j, v);
            }
        }
        out
    }

    /// `Aᵀ·diag(w)·b` for a right-hand-side vector `b`.
    pub fn weighted_rhs(&self, weights: &[f64], b: &[f64]) -> Vec<f64> {
        assert_eq!(weights.len(), self.rows);
        assert_eq!(b.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let wb = weights[r] * b[r];
            if wb == 0.0 {
                continue;
            }
            for (c, o) in out.iter_mut().enumerate() {
                *o += wb * self.get(r, c);
            }
        }
        out
    }
}

/// Solves the SPD system `A·x = b` by Cholesky factorisation, adding
/// `ridge·I` for numerical stability. Returns `None` when the (ridged)
/// matrix is still not positive definite.
pub fn cholesky_solve(a: &Matrix, b: &[f64], ridge: f64) -> Option<Vec<f64>> {
    assert_eq!(a.rows, a.cols, "Cholesky needs a square matrix");
    assert_eq!(b.len(), a.rows);
    let n = a.rows;
    // Factor L (lower triangular, row-major compact in a full matrix).
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j) + if i == j { ridge } else { 0.0 };
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    // Forward substitution: L·y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l.get(i, k) * y[k];
        }
        y[i] = sum / l.get(i, i);
    }
    // Back substitution: Lᵀ·x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l.get(k, i) * x[k];
        }
        x[i] = sum / l.get(i, i);
    }
    Some(x)
}

/// Vandermonde design matrix for a degree-`degree` polynomial over the
/// sample positions `ts`: row `i` is `[1, tᵢ, tᵢ², …]`.
pub fn vandermonde(ts: &[f64], degree: usize) -> Matrix {
    let mut m = Matrix::zeros(ts.len(), degree + 1);
    for (i, &t) in ts.iter().enumerate() {
        let mut pow = 1.0;
        for j in 0..=degree {
            m.set(i, j, pow);
            pow *= t;
        }
    }
    m
}

/// Evaluates the polynomial with coefficients `beta` (constant first) at `t`.
pub fn eval_poly(beta: &[f64], t: f64) -> f64 {
    let mut acc = 0.0;
    let mut pow = 1.0;
    for &b in beta {
        acc += b * pow;
        pow *= t;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_rows(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_rows(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(0, 1), 64.0);
        assert_eq!(c.get(1, 0), 139.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4,2],[2,3]], b = [10, 8] → x = [1.75, 1.5].
        let a = Matrix::from_rows(2, 2, &[4.0, 2.0, 2.0, 3.0]);
        let x = cholesky_solve(&a, &[10.0, 8.0], 0.0).unwrap();
        assert!((x[0] - 1.75).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]); // eigenvalue −1
        assert!(cholesky_solve(&a, &[1.0, 1.0], 0.0).is_none());
    }

    #[test]
    fn ridge_rescues_singular_systems() {
        let a = Matrix::from_rows(2, 2, &[1.0, 1.0, 1.0, 1.0]); // rank 1
        assert!(cholesky_solve(&a, &[2.0, 2.0], 0.0).is_none());
        let x = cholesky_solve(&a, &[2.0, 2.0], 1e-6).unwrap();
        assert!((x[0] + x[1] - 2.0).abs() < 1e-3, "x sums to ≈2: {x:?}");
    }

    #[test]
    fn weighted_gram_matches_explicit_product() {
        let a = Matrix::from_rows(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let w = [0.5, 1.0, 2.0];
        let gram = a.weighted_gram(&w);
        // Explicit: Aᵀ W A.
        let mut expected = Matrix::zeros(2, 2);
        for r in 0..3 {
            for i in 0..2 {
                for j in 0..2 {
                    expected.add_to(i, j, w[r] * a.get(r, i) * a.get(r, j));
                }
            }
        }
        for i in 0..2 {
            for j in 0..2 {
                assert!((gram.get(i, j) - expected.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn weighted_least_squares_recovers_line() {
        // y = 3 + 2t sampled exactly: WLS must recover (3, 2).
        let ts: Vec<f64> = (0..10).map(|i| i as f64 / 9.0).collect();
        let ys: Vec<f64> = ts.iter().map(|t| 3.0 + 2.0 * t).collect();
        let x = vandermonde(&ts, 1);
        let w = vec![1.0; ts.len()];
        let gram = x.weighted_gram(&w);
        let rhs = x.weighted_rhs(&w, &ys);
        let beta = cholesky_solve(&gram, &rhs, 1e-12).unwrap();
        assert!((beta[0] - 3.0).abs() < 1e-9);
        assert!((beta[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn vandermonde_and_eval_poly_agree() {
        let ts = [0.0, 0.5, 1.0];
        let m = vandermonde(&ts, 2);
        let beta = [1.0, -2.0, 4.0];
        for (i, &t) in ts.iter().enumerate() {
            let via_matrix: f64 = (0..3).map(|j| m.get(i, j) * beta[j]).sum();
            assert!((via_matrix - eval_poly(&beta, t)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_shape_rejected() {
        let _ = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0]);
    }
}
