//! Regression-mixture clustering of **whole** trajectories — the Gaffney &
//! Smyth baseline ([7, 8] in the paper; Section 6 "the most similar work to
//! ours").
//!
//! The probability density of an observed trajectory is a mixture
//! `P(yⱼ | xⱼ, θ) = Σₖ fₖ(yⱼ | xⱼ, θₖ) wₖ` with polynomial regression
//! components `fₖ`: each output dimension of a trajectory, resampled to `T`
//! positions `t ∈ [0, 1]`, is modelled as a degree-`p` polynomial in `t`
//! plus isotropic Gaussian noise. EM estimates coefficients, noise
//! variances and mixing weights; trajectories are hard-assigned to their
//! maximum-responsibility component.
//!
//! This baseline clusters trajectories **as a whole** — exactly the
//! behaviour whose shortcoming (missing common sub-trajectories, Figure 1)
//! motivates TRACLUS. The `gaffney` experiment reproduces that contrast.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traclus_geom::Trajectory;

use crate::linalg::{cholesky_solve, eval_poly, vandermonde, Matrix};
use crate::resample::resample;

/// Configuration of the EM fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressionMixtureConfig {
    /// Number of mixture components `K`.
    pub components: usize,
    /// Polynomial degree `p` of each regression component.
    pub degree: usize,
    /// Common resampling length `T`.
    pub samples: usize,
    /// Maximum EM iterations.
    pub max_iterations: usize,
    /// Stop when the log-likelihood improves by less than this.
    pub tolerance: f64,
    /// RNG seed for the responsibility initialisation.
    pub seed: u64,
}

impl Default for RegressionMixtureConfig {
    fn default() -> Self {
        Self {
            components: 3,
            degree: 2,
            samples: 20,
            max_iterations: 100,
            tolerance: 1e-6,
            seed: 7,
        }
    }
}

/// A fitted mixture model.
#[derive(Debug, Clone)]
pub struct RegressionMixtureModel<const D: usize> {
    /// `beta[k][d]` — polynomial coefficients of component `k`, output
    /// dimension `d` (constant term first).
    pub beta: Vec<Vec<Vec<f64>>>,
    /// Per-component noise variance `σₖ²`.
    pub sigma2: Vec<f64>,
    /// Mixing weights `wₖ`.
    pub weights: Vec<f64>,
    /// Hard assignment of each input trajectory.
    pub assignments: Vec<usize>,
    /// Soft responsibilities `r[i][k]`.
    pub responsibilities: Vec<Vec<f64>>,
    /// Final (per-trajectory mean) log-likelihood.
    pub log_likelihood: f64,
    /// EM iterations executed.
    pub iterations: usize,
}

impl<const D: usize> RegressionMixtureModel<D> {
    /// The mean curve of component `k` sampled at `samples` positions.
    pub fn component_curve(&self, k: usize, samples: usize) -> Vec<[f64; D]> {
        (0..samples)
            .map(|s| {
                let t = s as f64 / (samples - 1).max(1) as f64;
                let mut point = [0.0; D];
                for (d, out) in point.iter_mut().enumerate() {
                    *out = eval_poly(&self.beta[k][d], t);
                }
                point
            })
            .collect()
    }
}

/// Fits the mixture by EM (see module docs).
pub fn fit_regression_mixture<const D: usize>(
    trajectories: &[Trajectory<D>],
    config: &RegressionMixtureConfig,
) -> RegressionMixtureModel<D> {
    assert!(config.components >= 1);
    assert!(config.samples >= config.degree + 2, "need samples > degree");
    let n = trajectories.len();
    let k_count = config.components;
    let t_count = config.samples;
    // Resample everything onto the common grid.
    let ts: Vec<f64> = (0..t_count)
        .map(|s| s as f64 / (t_count - 1) as f64)
        .collect();
    let design = vandermonde(&ts, config.degree);
    // ys[i][d][t]: output value of trajectory i, dimension d, position t.
    let ys: Vec<Vec<Vec<f64>>> = trajectories
        .iter()
        .map(|tr| {
            let pts = resample(tr, t_count);
            (0..D)
                .map(|d| pts.iter().map(|p| p.coords[d]).collect())
                .collect()
        })
        .collect();

    // Random soft initialisation of responsibilities.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut resp: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            let mut row: Vec<f64> = (0..k_count).map(|_| rng.gen::<f64>() + 0.05).collect();
            let sum: f64 = row.iter().sum();
            for r in &mut row {
                *r /= sum;
            }
            row
        })
        .collect();

    let mut beta = vec![vec![vec![0.0; config.degree + 1]; D]; k_count];
    let mut sigma2 = vec![1.0; k_count];
    let mut weights = vec![1.0 / k_count as f64; k_count];
    let mut last_ll = f64::NEG_INFINITY;
    let mut iterations = 0usize;

    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        // ---- M step ----
        for k in 0..k_count {
            // Per-trajectory weights expand to per-sample weights (every
            // sample of trajectory i carries r[i][k]).
            let total_resp: f64 = resp.iter().map(|r| r[k]).sum();
            weights[k] = (total_resp / n as f64).max(1e-12);
            // Weighted least squares per output dimension: rows are the
            // stacked samples of all trajectories; the Gram matrix is just
            // total_resp-weighted since the design repeats per trajectory.
            let mut gram = Matrix::zeros(config.degree + 1, config.degree + 1);
            let per_sample = design.weighted_gram(&vec![1.0; t_count]);
            for i in 0..=config.degree {
                for j in 0..=config.degree {
                    gram.set(i, j, per_sample.get(i, j) * total_resp);
                }
            }
            for d in 0..D {
                let mut rhs = vec![0.0; config.degree + 1];
                for (i, tr_ys) in ys.iter().enumerate() {
                    let r = resp[i][k];
                    if r <= 0.0 {
                        continue;
                    }
                    for (t_idx, &y) in tr_ys[d].iter().enumerate() {
                        for (c, acc) in rhs.iter_mut().enumerate() {
                            *acc += r * design.get(t_idx, c) * y;
                        }
                    }
                }
                beta[k][d] = cholesky_solve(&gram, &rhs, 1e-9)
                    .unwrap_or_else(|| vec![0.0; config.degree + 1]);
            }
            // Noise variance: weighted mean squared residual across all
            // dimensions and samples.
            let mut sq = 0.0;
            let mut denom = 0.0;
            for (i, tr_ys) in ys.iter().enumerate() {
                let r = resp[i][k];
                if r <= 0.0 {
                    continue;
                }
                for d in 0..D {
                    for (t_idx, &y) in tr_ys[d].iter().enumerate() {
                        let pred = eval_poly(&beta[k][d], ts[t_idx]);
                        sq += r * (y - pred) * (y - pred);
                        denom += r;
                    }
                }
            }
            sigma2[k] = (sq / denom.max(1e-12)).max(1e-9);
        }
        // ---- E step ----
        let mut ll = 0.0;
        for (i, tr_ys) in ys.iter().enumerate() {
            // Log joint per component.
            let mut logp = vec![0.0; k_count];
            for (k, lp) in logp.iter_mut().enumerate() {
                let mut acc = weights[k].ln();
                let var = sigma2[k];
                let norm = -0.5 * (std::f64::consts::TAU * var).ln();
                for d in 0..D {
                    for (t_idx, &y) in tr_ys[d].iter().enumerate() {
                        let pred = eval_poly(&beta[k][d], ts[t_idx]);
                        acc += norm - (y - pred) * (y - pred) / (2.0 * var);
                    }
                }
                *lp = acc;
            }
            let max = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let sum_exp: f64 = logp.iter().map(|&l| (l - max).exp()).sum();
            let log_evidence = max + sum_exp.ln();
            ll += log_evidence;
            for k in 0..k_count {
                resp[i][k] = (logp[k] - log_evidence).exp();
            }
        }
        let ll = ll / n.max(1) as f64;
        if (ll - last_ll).abs() < config.tolerance {
            last_ll = ll;
            break;
        }
        last_ll = ll;
    }

    let assignments = resp
        .iter()
        .map(|r| {
            r.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(k, _)| k)
                .unwrap_or(0)
        })
        .collect();
    RegressionMixtureModel {
        beta,
        sigma2,
        weights,
        assignments,
        responsibilities: resp,
        log_likelihood: last_ll,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traclus_geom::{Point2, TrajectoryId};

    /// `count` noisy copies of the line y = slope·x + intercept over
    /// x ∈ [0, 100].
    fn line_family(
        count: usize,
        slope: f64,
        intercept: f64,
        id0: u32,
        wobble: f64,
    ) -> Vec<Trajectory<2>> {
        (0..count)
            .map(|i| {
                let points = (0..25)
                    .map(|k| {
                        let x = k as f64 * 4.0;
                        let y = slope * x
                            + intercept
                            + wobble * ((i as f64 * 1.7 + k as f64) * 0.9).sin();
                        Point2::xy(x, y)
                    })
                    .collect();
                Trajectory::new(TrajectoryId(id0 + i as u32), points)
            })
            .collect()
    }

    #[test]
    fn separates_two_line_families() {
        let mut trajs = line_family(10, 0.0, 0.0, 0, 0.5);
        trajs.extend(line_family(10, 0.0, 60.0, 100, 0.5));
        let model = fit_regression_mixture(
            &trajs,
            &RegressionMixtureConfig {
                components: 2,
                degree: 1,
                ..RegressionMixtureConfig::default()
            },
        );
        // All of family A in one component, all of family B in the other.
        let a = model.assignments[0];
        assert!(model.assignments[..10].iter().all(|&k| k == a));
        let b = model.assignments[10];
        assert!(model.assignments[10..].iter().all(|&k| k == b));
        assert_ne!(a, b);
    }

    #[test]
    fn mixing_weights_reflect_family_sizes() {
        let mut trajs = line_family(15, 0.0, 0.0, 0, 0.3);
        trajs.extend(line_family(5, 0.0, 80.0, 100, 0.3));
        let model = fit_regression_mixture(
            &trajs,
            &RegressionMixtureConfig {
                components: 2,
                degree: 1,
                ..RegressionMixtureConfig::default()
            },
        );
        let mut w = model.weights.clone();
        w.sort_by(f64::total_cmp);
        assert!((w[0] - 0.25).abs() < 0.1, "small component ≈ 5/20: {w:?}");
        assert!((w[1] - 0.75).abs() < 0.1);
    }

    #[test]
    fn component_curves_recover_the_lines() {
        let mut trajs = line_family(8, 0.5, 0.0, 0, 0.2);
        trajs.extend(line_family(8, -0.5, 100.0, 50, 0.2));
        let model = fit_regression_mixture(
            &trajs,
            &RegressionMixtureConfig {
                components: 2,
                degree: 1,
                ..RegressionMixtureConfig::default()
            },
        );
        // One component's curve must rise, the other fall (in y over x).
        let rises: Vec<bool> = (0..2)
            .map(|k| {
                let curve = model.component_curve(k, 10);
                curve.last().unwrap()[1] > curve.first().unwrap()[1]
            })
            .collect();
        assert_ne!(rises[0], rises[1], "one rising, one falling family");
    }

    #[test]
    fn misses_common_sub_trajectory_by_design() {
        // The Figure 1 situation: all trajectories share a corridor then
        // fan out to very different endpoints. Whole-trajectory clustering
        // with K = 2 must split the fan *somewhere*, demonstrating that no
        // component isolates the shared corridor (that is TRACLUS's job).
        let headings = [-1.0, -0.5, 0.0, 0.5, 1.0];
        let trajs: Vec<Trajectory<2>> = headings
            .iter()
            .enumerate()
            .map(|(i, &h)| {
                let mut points: Vec<Point2> =
                    (0..15).map(|k| Point2::xy(k as f64 * 4.0, 0.0)).collect();
                for k in 1..15 {
                    points.push(Point2::xy(60.0 + k as f64 * 4.0, h * k as f64 * 4.0));
                }
                Trajectory::new(TrajectoryId(i as u32), points)
            })
            .collect();
        let model = fit_regression_mixture(
            &trajs,
            &RegressionMixtureConfig {
                components: 2,
                degree: 2,
                ..RegressionMixtureConfig::default()
            },
        );
        // The five trajectories end up split by final heading; the extreme
        // up-fan and down-fan trajectories cannot share a component.
        assert_ne!(
            model.assignments[0], model.assignments[4],
            "whole-trajectory clustering separates the divergent tails"
        );
    }

    #[test]
    fn log_likelihood_is_finite_and_iterations_bounded() {
        let trajs = line_family(6, 0.2, 5.0, 0, 1.0);
        let config = RegressionMixtureConfig {
            components: 2,
            max_iterations: 25,
            ..RegressionMixtureConfig::default()
        };
        let model = fit_regression_mixture(&trajs, &config);
        assert!(model.log_likelihood.is_finite());
        assert!(model.iterations <= 25);
        for r in &model.responsibilities {
            let sum: f64 = r.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "responsibilities sum to 1");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let trajs = line_family(8, 0.1, 0.0, 0, 0.8);
        let config = RegressionMixtureConfig::default();
        let a = fit_regression_mixture(&trajs, &config);
        let b = fit_regression_mixture(&trajs, &config);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.log_likelihood, b.log_likelihood);
    }

    #[test]
    fn single_component_fits_everything() {
        let trajs = line_family(5, 0.0, 10.0, 0, 0.5);
        let model = fit_regression_mixture(
            &trajs,
            &RegressionMixtureConfig {
                components: 1,
                degree: 1,
                ..RegressionMixtureConfig::default()
            },
        );
        assert!(model.assignments.iter().all(|&k| k == 0));
        assert!((model.weights[0] - 1.0).abs() < 1e-9);
        // The fitted line sits near y = 10.
        let curve = model.component_curve(0, 5);
        for p in curve {
            assert!((p[1] - 10.0).abs() < 2.0, "curve y {}", p[1]);
        }
    }
}
