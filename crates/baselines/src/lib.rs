//! # traclus-baselines
//!
//! Comparison algorithms for the TRACLUS reproduction:
//!
//! * [`regression_mixture`] — Gaffney & Smyth's regression-mixture EM over
//!   **whole** trajectories, the baseline the paper positions itself
//!   against (\[7, 8\]; Sections 1 and 6);
//! * [`kmeans`] — k-means over resampled trajectories (the canonical
//!   partitioning method, \[16\]);
//! * [`point_dbscan`] — classic DBSCAN over points (\[6\]), the algorithm
//!   TRACLUS adapts;
//! * [`optics`] — OPTICS for points and line segments (\[2\]), powering the
//!   Appendix D design-decision experiment;
//! * substrates: [`linalg`] (dense least squares) and [`mod@resample`]
//!   (arc-length trajectory resampling).

#![warn(missing_docs)]
// Const-generic code indexes several [f64; D] arrays with one loop counter;
// clippy's iterator rewrite would zip up to four iterators and read worse.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]

pub mod kmeans;
pub mod linalg;
pub mod optics;
pub mod point_dbscan;
pub mod regression_mixture;
pub mod resample;

pub use kmeans::{kmeans_trajectories, KMeansConfig, KMeansResult};
pub use optics::{optics_generic, optics_points, optics_segments, OpticsEntry, OpticsResult};
pub use point_dbscan::{cluster_count, dbscan_points, PointLabel};
pub use regression_mixture::{
    fit_regression_mixture, RegressionMixtureConfig, RegressionMixtureModel,
};
pub use resample::{feature_vector, resample};
