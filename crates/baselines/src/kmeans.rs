//! k-means over resampled whole trajectories (a second whole-trajectory
//! baseline; the paper's Section 6 classifies k-means \[16\] as the canonical
//! partitioning method).
//!
//! Trajectories are embedded as fixed-length vectors by arc-length
//! resampling, then clustered with k-means++ seeding and Lloyd iterations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traclus_geom::Trajectory;

use crate::resample::feature_vector;

/// Configuration for trajectory k-means.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// Resampling length `T` (feature dimension is `T·D`).
    pub samples: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// RNG seed (k-means++ seeding).
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 3,
            samples: 20,
            max_iterations: 100,
            seed: 11,
        }
    }
}

/// k-means result.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster assignment per trajectory.
    pub assignments: Vec<usize>,
    /// Cluster centroids in feature space (`k × (T·D)`).
    pub centroids: Vec<Vec<f64>>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs k-means++ + Lloyd on resampled trajectories.
pub fn kmeans_trajectories<const D: usize>(
    trajectories: &[Trajectory<D>],
    config: &KMeansConfig,
) -> KMeansResult {
    assert!(config.k >= 1);
    assert!(
        trajectories.len() >= config.k,
        "need at least k trajectories"
    );
    let features: Vec<Vec<f64>> = trajectories
        .iter()
        .map(|t| feature_vector(t, config.samples))
        .collect();
    let n = features.len();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(config.k);
    centroids.push(features[rng.gen_range(0..n)].clone());
    while centroids.len() < config.k {
        let dists: Vec<f64> = features
            .iter()
            .map(|f| {
                centroids
                    .iter()
                    .map(|c| sq_dist(f, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = dists.iter().sum();
        if total <= 0.0 {
            // All points coincide with existing centroids; duplicate one.
            centroids.push(features[rng.gen_range(0..n)].clone());
            continue;
        }
        let mut pick = rng.gen::<f64>() * total;
        let mut chosen = n - 1;
        for (i, d) in dists.iter().enumerate() {
            pick -= d;
            if pick <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.push(features[chosen].clone());
    }

    // Lloyd iterations.
    let mut assignments = vec![0usize; n];
    let mut iterations = 0usize;
    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        let mut changed = false;
        for (i, f) in features.iter().enumerate() {
            let best = (0..config.k)
                .min_by(|&a, &b| sq_dist(f, &centroids[a]).total_cmp(&sq_dist(f, &centroids[b])))
                .expect("k ≥ 1");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Recompute centroids; empty clusters are re-seeded from the point
        // farthest from its centroid.
        let dim = features[0].len();
        let mut sums = vec![vec![0.0; dim]; config.k];
        let mut counts = vec![0usize; config.k];
        for (i, f) in features.iter().enumerate() {
            counts[assignments[i]] += 1;
            for (s, v) in sums[assignments[i]].iter_mut().zip(f) {
                *s += v;
            }
        }
        for k in 0..config.k {
            if counts[k] == 0 {
                let worst = (0..n)
                    .max_by(|&a, &b| {
                        sq_dist(&features[a], &centroids[assignments[a]])
                            .total_cmp(&sq_dist(&features[b], &centroids[assignments[b]]))
                    })
                    .expect("non-empty input");
                centroids[k] = features[worst].clone();
                changed = true;
            } else {
                for (c, s) in centroids[k].iter_mut().zip(&sums[k]) {
                    *c = s / counts[k] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let inertia = features
        .iter()
        .zip(&assignments)
        .map(|(f, &a)| sq_dist(f, &centroids[a]))
        .sum();
    KMeansResult {
        assignments,
        centroids,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traclus_geom::{Point2, TrajectoryId};

    fn family(count: usize, y: f64, id0: u32) -> Vec<Trajectory<2>> {
        (0..count)
            .map(|i| {
                let points = (0..10)
                    .map(|k| Point2::xy(k as f64 * 10.0, y + (i as f64) * 0.2))
                    .collect();
                Trajectory::new(TrajectoryId(id0 + i as u32), points)
            })
            .collect()
    }

    #[test]
    fn separates_two_bands() {
        let mut trajs = family(8, 0.0, 0);
        trajs.extend(family(8, 100.0, 100));
        let result = kmeans_trajectories(
            &trajs,
            &KMeansConfig {
                k: 2,
                ..KMeansConfig::default()
            },
        );
        let a = result.assignments[0];
        assert!(result.assignments[..8].iter().all(|&x| x == a));
        let b = result.assignments[8];
        assert!(result.assignments[8..].iter().all(|&x| x == b));
        assert_ne!(a, b);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let mut trajs = family(6, 0.0, 0);
        trajs.extend(family(6, 50.0, 50));
        trajs.extend(family(6, 100.0, 100));
        let i1 = kmeans_trajectories(
            &trajs,
            &KMeansConfig {
                k: 1,
                ..KMeansConfig::default()
            },
        )
        .inertia;
        let i3 = kmeans_trajectories(
            &trajs,
            &KMeansConfig {
                k: 3,
                ..KMeansConfig::default()
            },
        )
        .inertia;
        assert!(i3 < i1, "k=3 inertia {i3} < k=1 inertia {i1}");
    }

    #[test]
    fn deterministic_per_seed() {
        let trajs = family(10, 0.0, 0);
        let config = KMeansConfig::default();
        assert_eq!(
            kmeans_trajectories(&trajs, &config),
            kmeans_trajectories(&trajs, &config)
        );
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let trajs = family(4, 0.0, 0);
        let result = kmeans_trajectories(
            &trajs,
            &KMeansConfig {
                k: 4,
                samples: 5,
                ..KMeansConfig::default()
            },
        );
        assert!(result.inertia < 1e-9, "each point its own centroid");
    }

    #[test]
    #[should_panic(expected = "at least k")]
    fn too_few_trajectories_rejected() {
        let trajs = family(2, 0.0, 0);
        let _ = kmeans_trajectories(
            &trajs,
            &KMeansConfig {
                k: 5,
                ..KMeansConfig::default()
            },
        );
    }

    #[test]
    fn identical_trajectories_collapse() {
        let trajs: Vec<Trajectory<2>> = (0..6)
            .map(|i| {
                Trajectory::new(
                    TrajectoryId(i),
                    (0..5).map(|k| Point2::xy(k as f64, 0.0)).collect(),
                )
            })
            .collect();
        let result = kmeans_trajectories(
            &trajs,
            &KMeansConfig {
                k: 2,
                samples: 5,
                ..KMeansConfig::default()
            },
        );
        assert!(result.inertia < 1e-9);
    }
}
