//! Classic DBSCAN over points (Ester et al. \[6\]) — the algorithm TRACLUS
//! adapts to line segments. Used as a reference substrate and by the
//! Appendix D point-vs-segment comparison.

use std::collections::VecDeque;

use traclus_geom::Point;

/// Per-point label after clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointLabel {
    /// Noise.
    Noise,
    /// Member of cluster `k` (dense ids from 0).
    Cluster(usize),
}

/// DBSCAN over a point set with Euclidean distance.
///
/// A uniform grid with cell size ε accelerates region queries (a point's
/// ε-neighbours lie in the 3×3 cell block around it), giving near-linear
/// behaviour on bounded-density data.
pub fn dbscan_points<const D: usize>(
    points: &[Point<D>],
    eps: f64,
    min_pts: usize,
) -> Vec<PointLabel> {
    assert!(eps > 0.0 && eps.is_finite());
    assert!(min_pts >= 1);
    let n = points.len();
    let grid = PointGrid::build(points, eps);
    let mut labels = vec![None::<PointLabel>; n];
    let mut cluster = 0usize;
    let mut queue = VecDeque::new();
    let mut scratch = Vec::new();
    for i in 0..n {
        if labels[i].is_some() {
            continue;
        }
        grid.neighbors_into(points, i, eps, &mut scratch);
        if scratch.len() < min_pts {
            labels[i] = Some(PointLabel::Noise);
            continue;
        }
        labels[i] = Some(PointLabel::Cluster(cluster));
        queue.clear();
        queue.extend(scratch.iter().copied().filter(|&j| j != i));
        while let Some(j) = queue.pop_front() {
            match labels[j] {
                Some(PointLabel::Cluster(_)) => continue,
                Some(PointLabel::Noise) => {
                    labels[j] = Some(PointLabel::Cluster(cluster)); // border
                    continue;
                }
                None => {}
            }
            labels[j] = Some(PointLabel::Cluster(cluster));
            grid.neighbors_into(points, j, eps, &mut scratch);
            if scratch.len() >= min_pts {
                for &k in &scratch {
                    if labels[k].is_none() {
                        queue.push_back(k);
                    } else if labels[k] == Some(PointLabel::Noise) {
                        labels[k] = Some(PointLabel::Cluster(cluster));
                    }
                }
            }
        }
        cluster += 1;
    }
    labels
        .into_iter()
        .map(|l| l.expect("every point labelled"))
        .collect()
}

/// Number of clusters in a label vector.
pub fn cluster_count(labels: &[PointLabel]) -> usize {
    labels
        .iter()
        .filter_map(|l| match l {
            PointLabel::Cluster(k) => Some(*k + 1),
            PointLabel::Noise => None,
        })
        .max()
        .unwrap_or(0)
}

/// Uniform grid over points with cell size ε.
// Determinism: the cell map is lookup-only — `neighbors_into` probes the
// 3^D block of keys around the query cell in a fixed offset order and the
// per-cell id lists are in insertion order; the map is never iterated, so
// its random iteration order cannot leak into neighbor order.
#[allow(clippy::disallowed_types)]
struct PointGrid<const D: usize> {
    cell: f64,
    map: std::collections::HashMap<[i64; D], Vec<usize>>,
}

// Lookup-only hash container, see the struct-level justification.
#[allow(clippy::disallowed_types)]
impl<const D: usize> PointGrid<D> {
    fn build(points: &[Point<D>], cell: f64) -> Self {
        let mut map: std::collections::HashMap<[i64; D], Vec<usize>> =
            std::collections::HashMap::new();
        for (i, p) in points.iter().enumerate() {
            map.entry(Self::key(p, cell)).or_default().push(i);
        }
        Self { cell, map }
    }

    fn key(p: &Point<D>, cell: f64) -> [i64; D] {
        let mut k = [0i64; D];
        for (d, kd) in k.iter_mut().enumerate() {
            *kd = (p.coords[d] / cell).floor() as i64;
        }
        k
    }

    fn neighbors_into(&self, points: &[Point<D>], i: usize, eps: f64, out: &mut Vec<usize>) {
        out.clear();
        let center = Self::key(&points[i], self.cell);
        // Walk the 3^D block around the centre cell.
        let mut offsets = vec![[0i64; D]];
        for d in 0..D {
            let mut next = Vec::with_capacity(offsets.len() * 3);
            for off in &offsets {
                for delta in -1..=1 {
                    let mut o = *off;
                    o[d] = delta;
                    next.push(o);
                }
            }
            offsets = next;
        }
        let eps_sq = eps * eps;
        for off in offsets {
            let mut key = center;
            for d in 0..D {
                key[d] += off[d];
            }
            if let Some(ids) = self.map.get(&key) {
                for &j in ids {
                    if points[i].distance_squared(&points[j]) <= eps_sq {
                        out.push(j);
                    }
                }
            }
        }
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traclus_geom::Point2;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let angle = i as f64 * 2.39996; // golden-angle spiral
                let r = spread * (i as f64 / n as f64).sqrt();
                Point2::xy(cx + r * angle.cos(), cy + r * angle.sin())
            })
            .collect()
    }

    #[test]
    fn two_blobs_two_clusters() {
        let mut pts = blob(0.0, 0.0, 30, 2.0);
        pts.extend(blob(50.0, 50.0, 30, 2.0));
        let labels = dbscan_points(&pts, 1.5, 4);
        assert_eq!(cluster_count(&labels), 2);
        let first = labels[0];
        assert!(labels[..30].iter().all(|&l| l == first));
    }

    #[test]
    fn isolated_points_are_noise() {
        let mut pts = blob(0.0, 0.0, 20, 1.5);
        pts.push(Point2::xy(500.0, 500.0));
        let labels = dbscan_points(&pts, 1.5, 4);
        assert_eq!(*labels.last().unwrap(), PointLabel::Noise);
    }

    #[test]
    fn min_pts_one_clusters_everything() {
        let pts = vec![
            Point2::xy(0.0, 0.0),
            Point2::xy(100.0, 0.0),
            Point2::xy(200.0, 0.0),
        ];
        let labels = dbscan_points(&pts, 1.0, 1);
        assert_eq!(cluster_count(&labels), 3, "every point is its own core");
    }

    #[test]
    fn chain_connects_through_cores() {
        let pts: Vec<Point2> = (0..50).map(|i| Point2::xy(i as f64 * 0.9, 0.0)).collect();
        let labels = dbscan_points(&pts, 1.0, 3);
        assert_eq!(cluster_count(&labels), 1);
        assert!(labels.iter().all(|l| matches!(l, PointLabel::Cluster(0))));
    }

    #[test]
    fn grid_neighbors_match_brute_force() {
        let pts = blob(0.0, 0.0, 60, 5.0);
        let grid = PointGrid::build(&pts, 1.2);
        let mut out = Vec::new();
        for i in 0..pts.len() {
            grid.neighbors_into(&pts, i, 1.2, &mut out);
            let brute: Vec<usize> = (0..pts.len())
                .filter(|&j| pts[i].distance(&pts[j]) <= 1.2)
                .collect();
            assert_eq!(out, brute, "point {i}");
        }
    }

    #[test]
    fn empty_input() {
        let labels = dbscan_points::<2>(&[], 1.0, 3);
        assert!(labels.is_empty());
        assert_eq!(cluster_count(&labels), 0);
    }
}
