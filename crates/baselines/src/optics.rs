//! OPTICS (Ankerst et al. \[2\]) for points **and** line segments.
//!
//! Appendix D argues why TRACLUS builds on DBSCAN rather than OPTICS: with
//! line segments, "the reachability-distances of cluster objects tend to be
//! higher (i.e., closer to ε) … and cluster objects are made more
//! indistinguishable from noises", because the pairwise distance among the
//! members of an ε-neighborhood of points is capped at 2ε while for
//! segments it is not (Figure 25). This module implements OPTICS generically
//! so the `appendix_d` experiment can produce reachability profiles for
//! matched point and segment datasets and compare the two regimes.

use traclus_core::segment_db::{NeighborIndex, SegmentDatabase};
use traclus_geom::Point;

/// One entry of the OPTICS ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpticsEntry {
    /// Object id (index into the input collection).
    pub id: u32,
    /// Reachability distance (∞ for the first object of each component).
    pub reachability: f64,
    /// Core distance (∞ when the object is not core at ε).
    pub core_distance: f64,
}

/// The OPTICS output: the cluster-ordering with per-object distances.
#[derive(Debug, Clone, PartialEq)]
pub struct OpticsResult {
    /// Entries in processing order (the reachability plot's x-axis).
    pub ordering: Vec<OpticsEntry>,
}

impl OpticsResult {
    /// Extracts a DBSCAN-equivalent clustering by thresholding the
    /// reachability plot at `eps_prime ≤ ε` (the standard OPTICS
    /// post-processing): a new cluster starts where reachability exceeds
    /// the threshold but the core distance does not.
    pub fn extract_clusters(&self, eps_prime: f64) -> Vec<Option<usize>> {
        let mut labels = vec![None; self.ordering.len()];
        let mut current: Option<usize> = None;
        let mut next_id = 0usize;
        for (pos, e) in self.ordering.iter().enumerate() {
            if e.reachability > eps_prime {
                if e.core_distance <= eps_prime {
                    current = Some(next_id);
                    next_id += 1;
                    labels[pos] = current;
                } else {
                    current = None; // noise
                }
            } else {
                labels[pos] = current;
            }
        }
        labels
    }

    /// Finite reachability values (the plot's y-values), for distribution
    /// comparisons.
    pub fn finite_reachabilities(&self) -> Vec<f64> {
        self.ordering
            .iter()
            .map(|e| e.reachability)
            .filter(|r| r.is_finite())
            .collect()
    }
}

/// Generic OPTICS core: `n` objects, a neighborhood oracle returning all
/// ids within ε of a query id (including itself), and a distance oracle.
pub fn optics_generic(
    n: usize,
    mut neighbors: impl FnMut(u32) -> Vec<u32>,
    mut dist: impl FnMut(u32, u32) -> f64,
    min_pts: usize,
) -> OpticsResult {
    assert!(min_pts >= 1);
    let mut processed = vec![false; n];
    let mut reach = vec![f64::INFINITY; n];
    let mut ordering: Vec<OpticsEntry> = Vec::with_capacity(n);
    for start in 0..n as u32 {
        if processed[start as usize] {
            continue;
        }
        // Seed list as a simple binary-heap-by-scan (n is moderate for the
        // experiments; priority updates dominate asymptotics otherwise).
        let mut seeds: Vec<u32> = Vec::new();
        let expand = |id: u32,
                      processed: &mut Vec<bool>,
                      reach: &mut Vec<f64>,
                      seeds: &mut Vec<u32>,
                      ordering: &mut Vec<OpticsEntry>,
                      neighbors: &mut dyn FnMut(u32) -> Vec<u32>,
                      dist: &mut dyn FnMut(u32, u32) -> f64| {
            processed[id as usize] = true;
            let nbrs = neighbors(id);
            let core_distance = core_distance(id, &nbrs, min_pts, dist);
            ordering.push(OpticsEntry {
                id,
                reachability: reach[id as usize],
                core_distance,
            });
            if core_distance.is_finite() {
                for &o in &nbrs {
                    if processed[o as usize] {
                        continue;
                    }
                    let new_reach = core_distance.max(dist(id, o));
                    if new_reach < reach[o as usize] {
                        reach[o as usize] = new_reach;
                        if !seeds.contains(&o) {
                            seeds.push(o);
                        }
                    }
                }
            }
        };
        reach[start as usize] = f64::INFINITY;
        expand(
            start,
            &mut processed,
            &mut reach,
            &mut seeds,
            &mut ordering,
            &mut neighbors,
            &mut dist,
        );
        while !seeds.is_empty() {
            // Pop the seed with smallest reachability (ties: smallest id
            // for determinism).
            let (pos, _) = seeds
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    reach[**a as usize]
                        .total_cmp(&reach[**b as usize])
                        .then(a.cmp(b))
                })
                .expect("non-empty seeds");
            let id = seeds.swap_remove(pos);
            if processed[id as usize] {
                continue;
            }
            expand(
                id,
                &mut processed,
                &mut reach,
                &mut seeds,
                &mut ordering,
                &mut neighbors,
                &mut dist,
            );
        }
    }
    OpticsResult { ordering }
}

/// Core distance: the `min_pts`-th smallest distance to a neighbour
/// (∞ when the neighborhood is too small).
fn core_distance(
    id: u32,
    nbrs: &[u32],
    min_pts: usize,
    dist: &mut dyn FnMut(u32, u32) -> f64,
) -> f64 {
    if nbrs.len() < min_pts {
        return f64::INFINITY;
    }
    let mut ds: Vec<f64> = nbrs.iter().map(|&o| dist(id, o)).collect();
    ds.sort_by(f64::total_cmp);
    ds[min_pts - 1]
}

/// OPTICS over a TRACLUS segment database (the Appendix D "line segments"
/// arm).
pub fn optics_segments<const D: usize>(
    db: &SegmentDatabase<D>,
    index: &NeighborIndex<D>,
    eps: f64,
    min_pts: usize,
) -> OpticsResult {
    optics_generic(
        db.len(),
        |id| db.neighborhood(index, id, eps),
        |a, b| db.distance(a, b),
        min_pts,
    )
}

/// OPTICS over raw points with Euclidean distance (the "points" arm).
pub fn optics_points<const D: usize>(
    points: &[Point<D>],
    eps: f64,
    min_pts: usize,
) -> OpticsResult {
    optics_generic(
        points.len(),
        |id| {
            let p = &points[id as usize];
            (0..points.len() as u32)
                .filter(|&j| points[j as usize].distance(p) <= eps)
                .collect()
        },
        |a, b| points[a as usize].distance(&points[b as usize]),
        min_pts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use traclus_geom::{
        IdentifiedSegment, Point2, Segment2, SegmentDistance, SegmentId, TrajectoryId,
    };

    #[test]
    fn core_distance_total_cmp_orders_nan_last_and_ties_stably() {
        // Regression for the partial_cmp → total_cmp switch: total_cmp
        // sorts NaN after every real value (including +∞), so a stray NaN
        // distance can never shadow a real k-th neighbour. The old
        // `partial_cmp(..).unwrap_or(Equal)` comparator left NaN's sorted
        // position unspecified (an inconsistent comparator).
        let ds = [2.0, f64::NAN, 1.0, 1.0];
        let nbrs = [0u32, 1, 2, 3];
        let mut dist = |_q: u32, o: u32| ds[o as usize];
        assert_eq!(core_distance(9, &nbrs, 1, &mut dist), 1.0);
        assert_eq!(core_distance(9, &nbrs, 2, &mut dist), 1.0, "tied pair");
        assert_eq!(core_distance(9, &nbrs, 3, &mut dist), 2.0);
        assert!(
            core_distance(9, &nbrs, 4, &mut dist).is_nan(),
            "NaN is deterministically last"
        );
        // ±0.0 compare unequal under total_cmp but numerically identical;
        // the selected core distance is the same value either way.
        let zs = [0.0, -0.0];
        let mut dist = |_q: u32, o: u32| zs[o as usize];
        assert_eq!(core_distance(9, &[0, 1], 2, &mut dist), 0.0);
    }

    #[test]
    fn ordering_covers_every_object_once() {
        let pts: Vec<Point2> = (0..30).map(|i| Point2::xy(i as f64 * 0.5, 0.0)).collect();
        let result = optics_points(&pts, 1.2, 3);
        assert_eq!(result.ordering.len(), 30);
        let mut ids: Vec<u32> = result.ordering.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..30).collect::<Vec<u32>>());
    }

    #[test]
    fn dense_blob_has_low_reachability() {
        let mut pts: Vec<Point2> = (0..20)
            .map(|i| Point2::xy((i % 5) as f64 * 0.2, (i / 5) as f64 * 0.2))
            .collect();
        pts.push(Point2::xy(100.0, 100.0)); // lone outlier
        let result = optics_points(&pts, 2.0, 3);
        // The outlier is the only object with infinite reachability apart
        // from the start object.
        let infinite = result
            .ordering
            .iter()
            .filter(|e| e.reachability.is_infinite())
            .count();
        assert_eq!(infinite, 2, "start of blob + isolated outlier");
        let finite = result.finite_reachabilities();
        assert!(finite.iter().all(|&r| r < 1.0), "blob is tight: {finite:?}");
    }

    #[test]
    fn extract_clusters_matches_dbscan_structure() {
        let mut pts: Vec<Point2> = (0..15).map(|i| Point2::xy(i as f64 * 0.3, 0.0)).collect();
        pts.extend((0..15).map(|i| Point2::xy(50.0 + i as f64 * 0.3, 0.0)));
        let result = optics_points(&pts, 1.0, 3);
        let labels = result.extract_clusters(1.0);
        let distinct: std::collections::BTreeSet<usize> =
            labels.iter().flatten().copied().collect();
        assert_eq!(distinct.len(), 2, "two bands → two clusters");
        assert!(labels.iter().all(|l| l.is_some()), "no noise in bands");
    }

    #[test]
    fn appendix_d_reachability_gap_points_vs_segments() {
        // Matched scene: a bundle of parallel segments vs the same count of
        // points at the segment midpoints. The paper's Figure 25 argument:
        // pairwise distances inside a point ε-neighborhood are ≤ 2ε, while
        // segment neighbours can sit much further apart (length/angle
        // terms), pushing reachability up towards ε.
        let eps = 5.0;
        let min_pts = 3;
        // Long segments with varied lengths overlapping near x ∈ [0, 60].
        let segs: Vec<Segment2> = (0..12)
            .map(|i| {
                let y = i as f64 * 0.8;
                let x0 = (i % 4) as f64 * 5.0;
                Segment2::xy(x0, y, x0 + 30.0 + (i % 3) as f64 * 10.0, y)
            })
            .collect();
        let identified: Vec<IdentifiedSegment<2>> = segs
            .iter()
            .enumerate()
            .map(|(k, s)| IdentifiedSegment::new(SegmentId(k as u32), TrajectoryId(k as u32), *s))
            .collect();
        let db = SegmentDatabase::from_segments(identified, SegmentDistance::default());
        let index = db.build_index(traclus_core::segment_db::IndexKind::Linear, eps);
        let seg_result = optics_segments(&db, &index, eps, min_pts);
        // Matched points: one per segment with the *same* cross-track
        // spacing (the y offsets), so the comparison isolates the extra
        // length/parallel/angle terms that only segments carry.
        let points: Vec<Point2> = segs.iter().map(|s| Point2::xy(0.0, s.start.y())).collect();
        let pt_result = optics_points(&points, eps, min_pts);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let seg_reach = mean(&seg_result.finite_reachabilities());
        let pt_reach = mean(&pt_result.finite_reachabilities());
        assert!(
            seg_reach > pt_reach,
            "segment reachability {seg_reach} must exceed point reachability {pt_reach}"
        );
    }

    #[test]
    fn deterministic() {
        let pts: Vec<Point2> = (0..25)
            .map(|i| Point2::xy((i * 7 % 13) as f64, (i * 5 % 11) as f64))
            .collect();
        let a = optics_points(&pts, 3.0, 3);
        let b = optics_points(&pts, 3.0, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input() {
        let result = optics_points::<2>(&[], 1.0, 2);
        assert!(result.ordering.is_empty());
        assert!(result.extract_clusters(1.0).is_empty());
    }
}
