//! Arc-length resampling of trajectories to a common length.
//!
//! Whole-trajectory baselines (regression mixtures, k-means) need
//! fixed-dimensional representations; trajectories of different lengths
//! (Section 2.1 allows that) are resampled to `T` points uniformly spaced
//! along the polyline.

use traclus_geom::{Point, Trajectory};

/// Resamples a trajectory to exactly `samples` points, uniformly spaced by
/// arc length. Degenerate inputs (all points identical, or fewer than two
/// points) replicate the first point.
pub fn resample<const D: usize>(trajectory: &Trajectory<D>, samples: usize) -> Vec<Point<D>> {
    assert!(samples >= 2, "need at least two samples");
    let pts = &trajectory.points;
    if pts.is_empty() {
        return Vec::new();
    }
    if pts.len() == 1 {
        return vec![pts[0]; samples];
    }
    // Cumulative arc length.
    let mut cumulative = Vec::with_capacity(pts.len());
    cumulative.push(0.0);
    for w in pts.windows(2) {
        let last = *cumulative.last().expect("non-empty");
        cumulative.push(last + w[0].distance(&w[1]));
    }
    let total = *cumulative.last().expect("non-empty");
    if total <= 0.0 {
        return vec![pts[0]; samples];
    }
    let mut out = Vec::with_capacity(samples);
    let mut seg = 0usize;
    for s in 0..samples {
        let target = total * s as f64 / (samples - 1) as f64;
        while seg + 1 < cumulative.len() - 1 && cumulative[seg + 1] < target {
            seg += 1;
        }
        let span = cumulative[seg + 1] - cumulative[seg];
        let t = if span > 0.0 {
            (target - cumulative[seg]) / span
        } else {
            0.0
        };
        out.push(pts[seg].lerp(&pts[seg + 1], t.clamp(0.0, 1.0)));
    }
    out
}

/// Flattens resampled points into one feature vector
/// `[x₀, y₀, x₁, y₁, …]` for vector-space baselines.
pub fn feature_vector<const D: usize>(trajectory: &Trajectory<D>, samples: usize) -> Vec<f64> {
    resample(trajectory, samples)
        .into_iter()
        .flat_map(|p| p.coords.into_iter())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use traclus_geom::{Point2, TrajectoryId};

    fn traj(points: &[(f64, f64)]) -> Trajectory<2> {
        Trajectory::new(
            TrajectoryId(0),
            points.iter().map(|&(x, y)| Point2::xy(x, y)).collect(),
        )
    }

    #[test]
    fn straight_line_resamples_uniformly() {
        let t = traj(&[(0.0, 0.0), (10.0, 0.0)]);
        let r = resample(&t, 5);
        let xs: Vec<f64> = r.iter().map(|p| p.x()).collect();
        for (i, &x) in xs.iter().enumerate() {
            assert!((x - 2.5 * i as f64).abs() < 1e-9, "{xs:?}");
        }
    }

    #[test]
    fn endpoints_preserved() {
        let t = traj(&[(1.0, 2.0), (5.0, -3.0), (9.0, 4.0)]);
        let r = resample(&t, 7);
        assert!(r.first().unwrap().distance(&t.points[0]) < 1e-9);
        assert!(r.last().unwrap().distance(&t.points[2]) < 1e-9);
    }

    #[test]
    fn uneven_sampling_is_equalised() {
        // Dense cluster of points then one long hop: arc-length resampling
        // must place samples evenly over distance, not over indices.
        let t = traj(&[(0.0, 0.0), (0.1, 0.0), (0.2, 0.0), (10.0, 0.0)]);
        let r = resample(&t, 11);
        for w in r.windows(2) {
            let gap = w[0].distance(&w[1]);
            assert!((gap - 1.0).abs() < 1e-6, "uniform 1.0 spacing, got {gap}");
        }
    }

    #[test]
    fn degenerate_trajectories() {
        let single = traj(&[(3.0, 3.0)]);
        let r = resample(&single, 4);
        assert_eq!(r.len(), 4);
        assert!(r.iter().all(|p| p.distance(&Point2::xy(3.0, 3.0)) < 1e-12));
        let stationary = traj(&[(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)]);
        let r2 = resample(&stationary, 3);
        assert!(r2.iter().all(|p| p.distance(&Point2::xy(1.0, 1.0)) < 1e-12));
        let empty = traj(&[]);
        assert!(resample(&empty, 3).is_empty());
    }

    #[test]
    fn feature_vector_interleaves_coordinates() {
        let t = traj(&[(0.0, 5.0), (10.0, 5.0)]);
        let f = feature_vector(&t, 3);
        assert_eq!(f, vec![0.0, 5.0, 5.0, 5.0, 10.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "two samples")]
    fn one_sample_rejected() {
        let t = traj(&[(0.0, 0.0), (1.0, 1.0)]);
        let _ = resample(&t, 1);
    }
}
