//! The single-writer engine thread and its ingest queue.
//!
//! Connection handlers never touch [`IncrementalClustering`] directly:
//! they enqueue [`EngineCommand`]s on a bounded channel and answer reads
//! from the [`SnapshotCell`]. One engine thread drains the queue, applies
//! inserts, and publishes a fresh snapshot after each drained batch — so
//! accept/handler threads and the writer decouple completely, and the
//! queue bound provides back-pressure when ingest outruns clustering.
//!
//! Publishing per *batch* (not per insert) keeps the writer hot under
//! load while preserving the snapshot guarantee: a batch boundary is
//! always a trajectory-prefix boundary, so every published snapshot still
//! equals the batch pipeline on the exact sequence applied so far.

use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use traclus_core::{IncrementalClustering, RemoveReport, SnapshotCell, TraclusConfig};
use traclus_geom::{Point2, Trajectory, TrajectoryId};

/// Work for the engine thread.
#[derive(Debug)]
pub enum EngineCommand {
    /// Apply one trajectory. Ids are daemon-unique (handlers draw them
    /// from one shared counter, which saturates rather than wraps), but a
    /// draw and its enqueue are two steps — so with concurrent handlers
    /// queue order need not match id order, and a snapshot may contain
    /// id 7 before id 6. Requests on a single connection are serial, so
    /// ids there come back dense and in order.
    Ingest {
        /// The id the ingest response already reported to the client.
        id: TrajectoryId,
        /// Polyline vertices.
        points: Vec<[f64; 2]>,
        /// Optional trajectory weight.
        weight: Option<f64>,
    },
    /// Retire one trajectory from the live window. Synchronous: the
    /// reply carries the removal report plus the epoch of the snapshot
    /// that first reflects it, so a client observes its own removal.
    Remove {
        /// The trajectory to retire (all its live arrivals).
        id: TrajectoryId,
        /// Where to send the applied report + publication epoch.
        reply: SyncSender<(RemoveReport, u64)>,
    },
    /// Expire oldest-first down to a live-trajectory capacity.
    /// Synchronous like [`Self::Remove`]: the reply carries the combined
    /// removal report for everything expired, plus the epoch.
    Expire {
        /// The capacity to shrink the live window to.
        keep: usize,
        /// Where to send the expiry report + publication epoch.
        reply: SyncSender<(RemoveReport, u64)>,
    },
    /// Publish everything applied so far, then reply with the epoch —
    /// the read-your-writes barrier behind the `flush` op.
    Flush(SyncSender<u64>),
    /// Drain nothing further and exit the engine thread.
    Stop,
}

/// Maximum inserts applied between snapshot publications. Bounds how
/// stale a snapshot can get under sustained ingest while still letting
/// the writer amortise publication cost over a busy queue.
const MAX_BATCH: usize = 64;

/// The engine thread: owns the [`IncrementalClustering`], publishes to
/// the shared [`SnapshotCell`].
pub(crate) struct EngineThread {
    handle: JoinHandle<IncrementalClustering<2>>,
}

impl EngineThread {
    /// Spawns the writer, draining `commands` until [`EngineCommand::Stop`]
    /// or every sender is dropped.
    pub(crate) fn spawn(
        config: TraclusConfig,
        cell: Arc<SnapshotCell<2>>,
        commands: Receiver<EngineCommand>,
    ) -> Self {
        let handle = std::thread::spawn(move || {
            let mut engine = IncrementalClustering::<2>::new(config);
            let mut pending_flushes: Vec<SyncSender<u64>> = Vec::new();
            let mut pending_removes: Vec<(SyncSender<(RemoveReport, u64)>, RemoveReport)> =
                Vec::new();
            let mut pending_expires: Vec<(SyncSender<(RemoveReport, u64)>, RemoveReport)> =
                Vec::new();
            'outer: loop {
                // Block for the first command, then opportunistically
                // drain whatever else arrived — one publication per batch.
                let Ok(first) = commands.recv() else {
                    break;
                };
                let mut applied = 0usize;
                let mut stop = false;
                let mut batch = Some(first);
                while let Some(cmd) = batch.take() {
                    match cmd {
                        EngineCommand::Ingest { id, points, weight } => {
                            insert(&mut engine, id, points, weight);
                            applied += 1;
                        }
                        EngineCommand::Remove { id, reply } => {
                            let report = engine.remove_trajectory(id);
                            pending_removes.push((reply, report));
                            applied += 1;
                        }
                        EngineCommand::Expire { keep, reply } => {
                            let expired = engine.expire_to_capacity(keep);
                            pending_expires.push((reply, expired));
                            applied += 1;
                        }
                        EngineCommand::Flush(reply) => pending_flushes.push(reply),
                        EngineCommand::Stop => {
                            stop = true;
                            break;
                        }
                    }
                    if applied < MAX_BATCH {
                        batch = commands.try_recv().ok();
                    }
                }
                let snapshot = cell.publish_from(&engine);
                for reply in pending_flushes.drain(..) {
                    // A flush client that hung up just forfeits its reply.
                    let _ = reply.try_send(snapshot.epoch());
                }
                for (reply, report) in pending_removes.drain(..) {
                    let _ = reply.try_send((report, snapshot.epoch()));
                }
                for (reply, report) in pending_expires.drain(..) {
                    let _ = reply.try_send((report, snapshot.epoch()));
                }
                if stop {
                    break 'outer;
                }
            }
            engine
        });
        Self { handle }
    }

    /// Joins the writer, returning the final engine state (used by tests
    /// to compare against a batch run).
    pub(crate) fn join(self) -> IncrementalClustering<2> {
        match self.handle.join() {
            Ok(engine) => engine,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

fn insert(
    engine: &mut IncrementalClustering<2>,
    id: TrajectoryId,
    points: Vec<[f64; 2]>,
    weight: Option<f64>,
) {
    let points = points.into_iter().map(|[x, y]| Point2::xy(x, y)).collect();
    let trajectory = match weight {
        Some(w) => Trajectory::with_weight(id, points, w),
        None => Trajectory::new(id, points),
    };
    engine.insert(&trajectory);
}

/// Enqueues with back-pressure semantics the handlers rely on: block when
/// the queue is full (ingest), but never block the caller on a
/// disconnected engine.
pub(crate) fn send_command(
    tx: &SyncSender<EngineCommand>,
    cmd: EngineCommand,
) -> Result<(), &'static str> {
    match tx.try_send(cmd) {
        Ok(()) => Ok(()),
        Err(TrySendError::Full(cmd)) => tx.send(cmd).map_err(|_| "engine stopped"),
        Err(TrySendError::Disconnected(_)) => Err("engine stopped"),
    }
}

/// A flush round-trip: enqueue the barrier, wait for the publication
/// epoch it produced.
pub(crate) fn flush(tx: &SyncSender<EngineCommand>) -> Result<u64, &'static str> {
    let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
    send_command(tx, EngineCommand::Flush(reply_tx))?;
    reply_rx.recv().map_err(|_| "engine stopped")
}

/// A removal round-trip: enqueue, wait for the applied report and the
/// epoch of the snapshot that first reflects it.
pub(crate) fn remove(
    tx: &SyncSender<EngineCommand>,
    id: TrajectoryId,
) -> Result<(RemoveReport, u64), &'static str> {
    let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
    send_command(
        tx,
        EngineCommand::Remove {
            id,
            reply: reply_tx,
        },
    )?;
    reply_rx.recv().map_err(|_| "engine stopped")
}

/// An expiry round-trip: enqueue, wait for the combined removal report
/// and the epoch of the snapshot that first reflects it.
pub(crate) fn expire(
    tx: &SyncSender<EngineCommand>,
    keep: usize,
) -> Result<(RemoveReport, u64), &'static str> {
    let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
    send_command(
        tx,
        EngineCommand::Expire {
            keep,
            reply: reply_tx,
        },
    )?;
    reply_rx.recv().map_err(|_| "engine stopped")
}
