//! # traclus-server
//!
//! Clustering-as-a-service: a line-delimited JSON ingest/query daemon
//! over a std [`std::net::TcpListener`], serving the streaming TRACLUS
//! engine behind snapshot-isolated reads.
//!
//! Architecture (one process, three kinds of thread):
//!
//! ```text
//!  clients ──TCP──▶ accept loop ──▶ handler thread per connection
//!                                     │            │
//!                          ingest ▼ (bounded queue) │ queries
//!                                  engine thread    ▼
//!                       IncrementalClustering ──▶ SnapshotCell ◀── load()
//!                                  (single writer)   (Arc swap)
//! ```
//!
//! * **Handlers never block the writer.** Queries run against the last
//!   published [`traclus_core::ClusterSnapshot`], pinned with one `Arc`
//!   clone; ingest enqueues onto a bounded channel and returns as soon as
//!   the trajectory is queued (back-pressure kicks in when the queue is
//!   full).
//! * **The writer never blocks on readers.** One engine thread owns the
//!   [`traclus_core::IncrementalClustering`], drains the queue in
//!   batches, and publishes a fresh snapshot per batch.
//! * **Reads are exact.** Every snapshot a query sees equals the batch
//!   TRACLUS pipeline run on the prefix of trajectories applied so far —
//!   the streaming engine's equivalence guarantee carried through to the
//!   wire (`tests/server_integration.rs` asserts it over live TCP).
//!
//! The wire protocol lives in [`protocol`]; [`client::Client`] is a
//! minimal blocking client; [`Server`] is the daemon. The `flush` op is
//! the read-your-writes barrier: it blocks until everything queued before
//! it is applied and published.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod engine;
pub mod protocol;
mod server;

pub use client::Client;
pub use protocol::{ProtocolError, Request};
pub use server::{Server, ServerConfig};
