//! The line-delimited JSON wire protocol.
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. The protocol is 2-D (points are `[x, y]`
//! pairs) — the serving daemon targets the paper's trajectory datasets,
//! which are planar. Requests:
//!
//! | `op`              | fields                            | answer |
//! |-------------------|-----------------------------------|--------|
//! | `ingest`          | `points: [[x,y],…]`, `weight?`    | assigned trajectory id (queued, not yet applied) |
//! | `remove`          | `trajectory: id`                  | retires that trajectory from the live window (synchronous: replies after the removal is applied and published) |
//! | `expire`          | `keep: n`                         | expires oldest-first down to `n` live trajectories (synchronous, like `remove`) |
//! | `membership`      | `trajectory: id`                  | clusters containing that trajectory |
//! | `nearest`         | `point: [x,y]`                    | closest cluster + distance to its representative |
//! | `representatives` | —                                 | every cluster's representative polyline |
//! | `region`          | `min: [x,y]`, `max: [x,y]` with `min <= max` componentwise | clusters crossing the axis-aligned region |
//! | `stats`           | —                                 | engine counters (incl. filter-and-refine prune tallies and parallel-repair batch/query counts) + snapshot epoch |
//! | `flush`           | —                                 | blocks until every queued ingest is applied and published |
//! | `shutdown`        | —                                 | acknowledges, then stops the daemon |
//!
//! Responses carry `"ok": true` plus op-specific fields, or
//! `"ok": false, "error": "…"` — malformed input yields a typed
//! [`ProtocolError`], never a panic (the fuzz suite in
//! `tests/protocol_proptest.rs` holds the parser to that).

use traclus_json::{JsonError, JsonValue};

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Queue one trajectory for ingestion.
    Ingest {
        /// Polyline vertices as `[x, y]` pairs.
        points: Vec<[f64; 2]>,
        /// Optional trajectory weight (Section 4.2 extension); `None`
        /// means unweighted.
        weight: Option<f64>,
    },
    /// Retire one trajectory (all its live arrivals) from the window.
    Remove {
        /// The trajectory id assigned at ingest.
        trajectory: u32,
    },
    /// Expire oldest-first until at most `keep` live trajectories remain.
    Expire {
        /// The capacity to shrink the live window to.
        keep: usize,
    },
    /// Which clusters contain a trajectory?
    Membership {
        /// The trajectory id assigned at ingest.
        trajectory: u32,
    },
    /// Which cluster's representative passes closest to a probe point?
    Nearest {
        /// The probe point.
        point: [f64; 2],
    },
    /// All representative trajectories.
    Representatives,
    /// Which clusters cross an axis-aligned region?
    Region {
        /// Region minimum corner.
        min: [f64; 2],
        /// Region maximum corner.
        max: [f64; 2],
    },
    /// Engine counters and the current snapshot epoch.
    Stats,
    /// Block until every queued ingest is applied and published.
    Flush,
    /// Stop the daemon.
    Shutdown,
}

/// A request the server could not act on. Conversion to the wire format
/// is total: every variant renders as an `"ok": false` response line.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The line is not valid JSON.
    Json(JsonError),
    /// The line parsed, but not to a JSON object.
    NotAnObject,
    /// The object has no string `"op"` member.
    MissingOp,
    /// The `"op"` value names no known operation.
    UnknownOp(String),
    /// A required field is absent.
    MissingField {
        /// The operation being parsed.
        op: &'static str,
        /// The absent field.
        field: &'static str,
    },
    /// A field is present but has the wrong shape.
    BadField {
        /// The operation being parsed.
        op: &'static str,
        /// The offending field.
        field: &'static str,
        /// What the field must look like.
        expected: &'static str,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Json(e) => write!(f, "invalid JSON: {e}"),
            ProtocolError::NotAnObject => write!(f, "request must be a JSON object"),
            ProtocolError::MissingOp => write!(f, "request has no string \"op\" member"),
            ProtocolError::UnknownOp(op) => write!(f, "unknown op {op:?}"),
            ProtocolError::MissingField { op, field } => {
                write!(f, "{op}: missing required field \"{field}\"")
            }
            ProtocolError::BadField {
                op,
                field,
                expected,
            } => write!(f, "{op}: field \"{field}\" must be {expected}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<JsonError> for ProtocolError {
    fn from(e: JsonError) -> Self {
        ProtocolError::Json(e)
    }
}

fn point_json(p: &[f64; 2]) -> JsonValue {
    JsonValue::array([JsonValue::from(p[0]), JsonValue::from(p[1])])
}

fn parse_point(
    value: &JsonValue,
    op: &'static str,
    field: &'static str,
) -> Result<[f64; 2], ProtocolError> {
    let bad = || ProtocolError::BadField {
        op,
        field,
        expected: "a finite [x, y] pair",
    };
    let items = value.as_array().ok_or_else(bad)?;
    if items.len() != 2 {
        return Err(bad());
    }
    let x = items[0].as_f64().ok_or_else(bad)?;
    let y = items[1].as_f64().ok_or_else(bad)?;
    if !x.is_finite() || !y.is_finite() {
        return Err(bad());
    }
    Ok([x, y])
}

fn required<'a>(
    obj: &'a JsonValue,
    op: &'static str,
    field: &'static str,
) -> Result<&'a JsonValue, ProtocolError> {
    obj.get(field)
        .ok_or(ProtocolError::MissingField { op, field })
}

impl Request {
    /// Parses one request line. Total: any input yields `Ok` or a typed
    /// [`ProtocolError`] — never a panic.
    pub fn parse_line(line: &str) -> Result<Self, ProtocolError> {
        let value = JsonValue::parse(line)?;
        if value.as_object().is_none() {
            return Err(ProtocolError::NotAnObject);
        }
        let op = value
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or(ProtocolError::MissingOp)?;
        match op {
            "ingest" => {
                let raw = required(&value, "ingest", "points")?;
                let items = raw.as_array().ok_or(ProtocolError::BadField {
                    op: "ingest",
                    field: "points",
                    expected: "an array of [x, y] pairs",
                })?;
                let points = items
                    .iter()
                    .map(|p| parse_point(p, "ingest", "points"))
                    .collect::<Result<Vec<_>, _>>()?;
                let weight = match value.get("weight") {
                    None => None,
                    Some(w) if w.is_null() => None,
                    Some(w) => {
                        let w = w.as_f64().ok_or(ProtocolError::BadField {
                            op: "ingest",
                            field: "weight",
                            expected: "a finite positive number",
                        })?;
                        if !w.is_finite() || w <= 0.0 {
                            return Err(ProtocolError::BadField {
                                op: "ingest",
                                field: "weight",
                                expected: "a finite positive number",
                            });
                        }
                        Some(w)
                    }
                };
                Ok(Request::Ingest { points, weight })
            }
            "remove" => {
                let raw = required(&value, "remove", "trajectory")?;
                let id = raw.as_i64().and_then(|i| u32::try_from(i).ok()).ok_or(
                    ProtocolError::BadField {
                        op: "remove",
                        field: "trajectory",
                        expected: "a trajectory id (non-negative integer)",
                    },
                )?;
                Ok(Request::Remove { trajectory: id })
            }
            "expire" => {
                let raw = required(&value, "expire", "keep")?;
                let keep = raw.as_i64().and_then(|i| usize::try_from(i).ok()).ok_or(
                    ProtocolError::BadField {
                        op: "expire",
                        field: "keep",
                        expected: "a capacity (non-negative integer)",
                    },
                )?;
                Ok(Request::Expire { keep })
            }
            "membership" => {
                let raw = required(&value, "membership", "trajectory")?;
                let id = raw.as_i64().and_then(|i| u32::try_from(i).ok()).ok_or(
                    ProtocolError::BadField {
                        op: "membership",
                        field: "trajectory",
                        expected: "a trajectory id (non-negative integer)",
                    },
                )?;
                Ok(Request::Membership { trajectory: id })
            }
            "nearest" => {
                let point = parse_point(required(&value, "nearest", "point")?, "nearest", "point")?;
                Ok(Request::Nearest { point })
            }
            "representatives" => Ok(Request::Representatives),
            "region" => {
                let min = parse_point(required(&value, "region", "min")?, "region", "min")?;
                let max = parse_point(required(&value, "region", "max")?, "region", "max")?;
                // The geometry layer's `Aabb::new` asserts min <= max per
                // dimension; an inverted region from the wire must become
                // a typed error here, never a panic there.
                if min[0] > max[0] || min[1] > max[1] {
                    return Err(ProtocolError::BadField {
                        op: "region",
                        field: "min",
                        expected: "componentwise <= \"max\" (a non-inverted region)",
                    });
                }
                Ok(Request::Region { min, max })
            }
            "stats" => Ok(Request::Stats),
            "flush" => Ok(Request::Flush),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtocolError::UnknownOp(other.to_string())),
        }
    }

    /// The request as a JSON value (inverse of [`Self::parse_line`] up to
    /// field order, which this encoder fixes canonically).
    pub fn to_json(&self) -> JsonValue {
        match self {
            Request::Ingest { points, weight } => {
                let mut fields = vec![
                    ("op".to_string(), JsonValue::from("ingest")),
                    (
                        "points".to_string(),
                        JsonValue::array(points.iter().map(point_json)),
                    ),
                ];
                if let Some(w) = weight {
                    fields.push(("weight".to_string(), JsonValue::from(*w)));
                }
                JsonValue::Object(fields)
            }
            Request::Remove { trajectory } => JsonValue::object([
                ("op", JsonValue::from("remove")),
                ("trajectory", JsonValue::from(*trajectory)),
            ]),
            Request::Expire { keep } => JsonValue::object([
                ("op", JsonValue::from("expire")),
                ("keep", JsonValue::from(*keep)),
            ]),
            Request::Membership { trajectory } => JsonValue::object([
                ("op", JsonValue::from("membership")),
                ("trajectory", JsonValue::from(*trajectory)),
            ]),
            Request::Nearest { point } => JsonValue::object([
                ("op", JsonValue::from("nearest")),
                ("point", point_json(point)),
            ]),
            Request::Representatives => {
                JsonValue::object([("op", JsonValue::from("representatives"))])
            }
            Request::Region { min, max } => JsonValue::object([
                ("op", JsonValue::from("region")),
                ("min", point_json(min)),
                ("max", point_json(max)),
            ]),
            Request::Stats => JsonValue::object([("op", JsonValue::from("stats"))]),
            Request::Flush => JsonValue::object([("op", JsonValue::from("flush"))]),
            Request::Shutdown => JsonValue::object([("op", JsonValue::from("shutdown"))]),
        }
    }

    /// The request as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().to_compact()
    }
}

/// Renders an error as the `"ok": false` wire response.
pub fn error_response(error: &ProtocolError) -> JsonValue {
    JsonValue::object([
        ("ok", JsonValue::from(false)),
        ("error", JsonValue::from(error.to_string())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_op() {
        assert_eq!(
            Request::parse_line(r#"{"op": "ingest", "points": [[0, 1], [2.5, -3]]}"#).unwrap(),
            Request::Ingest {
                points: vec![[0.0, 1.0], [2.5, -3.0]],
                weight: None
            }
        );
        assert_eq!(
            Request::parse_line(r#"{"op": "membership", "trajectory": 7}"#).unwrap(),
            Request::Membership { trajectory: 7 }
        );
        assert_eq!(
            Request::parse_line(r#"{"op": "remove", "trajectory": 3}"#).unwrap(),
            Request::Remove { trajectory: 3 }
        );
        assert_eq!(
            Request::parse_line(r#"{"op": "expire", "keep": 0}"#).unwrap(),
            Request::Expire { keep: 0 }
        );
        assert_eq!(
            Request::parse_line(r#"{"op": "flush"}"#).unwrap(),
            Request::Flush
        );
    }

    #[test]
    fn round_trips_through_to_line() {
        let requests = [
            Request::Ingest {
                points: vec![[1.5, 2.5]],
                weight: Some(2.0),
            },
            Request::Remove { trajectory: 42 },
            Request::Expire { keep: 16 },
            Request::Nearest { point: [0.5, -0.5] },
            Request::Region {
                min: [0.0, 0.0],
                max: [10.5, 10.5],
            },
            Request::Representatives,
            Request::Stats,
            Request::Shutdown,
        ];
        for r in requests {
            assert_eq!(Request::parse_line(&r.to_line()).as_ref(), Ok(&r));
        }
    }

    #[test]
    fn malformed_lines_yield_typed_errors() {
        assert!(matches!(
            Request::parse_line("not json"),
            Err(ProtocolError::Json(_))
        ));
        assert_eq!(Request::parse_line("[1]"), Err(ProtocolError::NotAnObject));
        assert_eq!(
            Request::parse_line(r#"{"points": []}"#),
            Err(ProtocolError::MissingOp)
        );
        assert_eq!(
            Request::parse_line(r#"{"op": "evaporate"}"#),
            Err(ProtocolError::UnknownOp("evaporate".to_string()))
        );
        assert!(matches!(
            Request::parse_line(r#"{"op": "ingest"}"#),
            Err(ProtocolError::MissingField { .. })
        ));
        assert!(matches!(
            Request::parse_line(r#"{"op": "ingest", "points": [[1]]}"#),
            Err(ProtocolError::BadField { .. })
        ));
        assert!(matches!(
            Request::parse_line(r#"{"op": "membership", "trajectory": -3}"#),
            Err(ProtocolError::BadField { .. })
        ));
        assert!(matches!(
            Request::parse_line(r#"{"op": "ingest", "points": [], "weight": 0}"#),
            Err(ProtocolError::BadField { .. })
        ));
        assert!(matches!(
            Request::parse_line(r#"{"op": "remove", "trajectory": -1}"#),
            Err(ProtocolError::BadField { .. })
        ));
        assert!(matches!(
            Request::parse_line(r#"{"op": "expire"}"#),
            Err(ProtocolError::MissingField { .. })
        ));
        assert!(matches!(
            Request::parse_line(r#"{"op": "expire", "keep": 1.5}"#),
            Err(ProtocolError::BadField { .. })
        ));
        // Inverted regions would trip `Aabb::new`'s assert downstream;
        // the parser must reject them (in either or both dimensions).
        for line in [
            r#"{"op": "region", "min": [1, 0], "max": [0, 0]}"#,
            r#"{"op": "region", "min": [0, 1], "max": [0, 0]}"#,
            r#"{"op": "region", "min": [2, 2], "max": [1, 1]}"#,
        ] {
            assert!(
                matches!(
                    Request::parse_line(line),
                    Err(ProtocolError::BadField { .. })
                ),
                "inverted region must be rejected: {line}"
            );
        }
        // Degenerate (zero-area) regions stay valid.
        assert_eq!(
            Request::parse_line(r#"{"op": "region", "min": [1, 1], "max": [1, 1]}"#),
            Ok(Request::Region {
                min: [1.0, 1.0],
                max: [1.0, 1.0]
            })
        );
    }

    #[test]
    fn errors_render_as_wire_responses() {
        let resp = error_response(&ProtocolError::MissingOp);
        assert_eq!(resp.get("ok"), Some(&JsonValue::Bool(false)));
        assert!(resp.get("error").and_then(JsonValue::as_str).is_some());
    }
}
