//! A minimal blocking client for the line protocol — used by the
//! integration tests, the CI smoke check, and the load generator; also a
//! reference implementation for external clients.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use traclus_json::JsonValue;

use crate::protocol::Request;

/// One connection speaking the line protocol synchronously: every
/// [`Self::request`] writes one line and blocks for the one-line answer.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends a typed request and returns the parsed response object.
    pub fn request(&mut self, request: &Request) -> std::io::Result<JsonValue> {
        self.send_raw(&request.to_line())
    }

    /// Sends one raw line verbatim (useful for probing the server's
    /// malformed-input handling) and returns the parsed response.
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<JsonValue> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        JsonValue::parse(response.trim_end()).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable response {response:?}: {e}"),
            )
        })
    }
}
