//! The TCP daemon: accept loop, connection handlers, graceful shutdown.

// xtask:allow-file(wall-clock): the serving layer measures per-request
// latency (the `micros` response field) and polls sockets under a read
// timeout. Neither reading influences clustering output — the engine and
// snapshot layers below this file stay wall-clock-free, so determinism of
// results is untouched.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use traclus_core::{ClusterSnapshot, SnapshotCell, TraclusConfig};
use traclus_geom::{Aabb, Point2, TrajectoryId};
use traclus_json::JsonValue;

use crate::engine::{expire, flush, remove, send_command, EngineCommand, EngineThread};
use crate::protocol::{error_response, Request};

/// Configuration of one serving daemon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// The clustering pipeline configuration the engine runs under.
    pub traclus: TraclusConfig,
    /// Ingest-queue bound: how many trajectories may wait for the engine
    /// before `ingest` requests block (back-pressure).
    pub queue_depth: usize,
    /// How often idle connection handlers wake to check for shutdown.
    pub poll_interval: Duration,
    /// Maximum concurrent connections (one handler thread each). At the
    /// cap the accept loop parks until a handler exits, so excess clients
    /// queue in the listener backlog instead of spawning threads.
    pub max_connections: usize,
    /// Optional server-side sliding window: at most this many live
    /// trajectories. When set, every applied ingest self-prunes the
    /// oldest arrivals past the cap before the batch publishes — clients
    /// never observe an over-capacity snapshot. Equivalent to setting
    /// `traclus.stream.capacity` (and overrides it when both are given).
    pub window: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            traclus: TraclusConfig::default(),
            queue_depth: 1024,
            poll_interval: Duration::from_millis(100),
            max_connections: 1024,
            window: None,
        }
    }
}

/// Shared state every connection handler closes over.
struct Shared {
    cell: Arc<SnapshotCell<2>>,
    commands: SyncSender<EngineCommand>,
    next_id: AtomicU32,
    shutdown: AtomicBool,
    poll_interval: Duration,
}

/// A bound, not-yet-running serving daemon.
///
/// [`Self::bind`] reserves the port (so callers can read
/// [`Self::local_addr`] before serving); [`Self::run`] blocks in the
/// accept loop until a client sends `shutdown`, then drains: handlers
/// finish their connections, the engine thread applies everything queued,
/// and `run` returns.
///
/// ```no_run
/// use traclus_server::{Server, ServerConfig};
///
/// let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
/// println!("listening on {}", server.local_addr());
/// server.run().unwrap();
/// ```
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    engine: EngineThread,
    max_connections: usize,
}

impl Server {
    /// Binds the listener and spawns the engine thread. `addr` may use
    /// port 0 to let the OS pick (read it back via [`Self::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let mut traclus = config.traclus;
        if config.window.is_some() {
            traclus.stream.capacity = config.window;
        }
        let cell = Arc::new(SnapshotCell::<2>::new(traclus));
        let (tx, rx) = std::sync::mpsc::sync_channel(config.queue_depth.max(1));
        let engine = EngineThread::spawn(traclus, Arc::clone(&cell), rx);
        Ok(Self {
            listener,
            shared: Arc::new(Shared {
                cell,
                commands: tx,
                next_id: AtomicU32::new(0),
                shutdown: AtomicBool::new(false),
                poll_interval: config.poll_interval,
            }),
            engine,
            max_connections: config.max_connections.max(1),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        match self.listener.local_addr() {
            Ok(addr) => addr,
            // A bound listener always has a local address; losing it means
            // the socket is gone and serving is impossible anyway.
            Err(e) => panic!("bound listener has no local address: {e}"),
        }
    }

    /// Serves until a client sends `shutdown`. Returns after every
    /// connection handler has exited and the engine thread has drained
    /// its queue — even when the accept loop dies on a fatal error or a
    /// handler panics, the drain still runs before the failure surfaces.
    pub fn run(self) -> std::io::Result<()> {
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        let mut first_panic = None;
        let mut fatal = None;
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                // A client that gave up mid-handshake or a transient
                // resource squeeze must not kill the daemon; back off one
                // poll interval (fd exhaustion clears as handlers exit)
                // and keep accepting.
                Err(e) if is_transient_accept_error(&e) => {
                    std::thread::sleep(self.shared.poll_interval);
                    continue;
                }
                Err(e) => {
                    fatal = Some(e);
                    break;
                }
            };
            reap_finished(&mut handlers, &mut first_panic);
            // Thread-per-connection needs a cap: at the limit, park the
            // accept loop until a handler exits — excess clients wait in
            // the listener backlog rather than each getting a thread.
            while handlers.len() >= self.max_connections
                && !self.shared.shutdown.load(Ordering::SeqCst)
            {
                std::thread::sleep(self.shared.poll_interval);
                reap_finished(&mut handlers, &mut first_panic);
            }
            let shared = Arc::clone(&self.shared);
            handlers.push(std::thread::spawn(move || {
                handle_connection(stream, &shared)
            }));
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
        }
        drop(self.listener);
        for h in handlers {
            if let Err(panic) = h.join() {
                first_panic.get_or_insert(panic);
            }
        }
        // All handlers (and their queue senders' clones) are gone; tell
        // the engine to stop after whatever is still queued.
        let _ = send_command(&self.shared.commands, EngineCommand::Stop);
        self.engine.join();
        // The drain is complete; only now re-raise what went wrong.
        if let Some(panic) = first_panic {
            std::panic::resume_unwind(panic);
        }
        match fatal {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Accept errors that mean "this connection attempt failed", not "the
/// listener is broken": the loop should keep serving through them.
fn is_transient_accept_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        ErrorKind::ConnectionAborted
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionRefused
            | ErrorKind::Interrupted
            | ErrorKind::WouldBlock
            | ErrorKind::TimedOut
    )
    // EMFILE (24) / ENFILE (23): fd exhaustion has no stable ErrorKind but
    // clears once connections close, so it is transient too.
    || matches!(e.raw_os_error(), Some(23 | 24))
}

/// Joins every handler thread that has already exited, so a long-lived
/// daemon does not accumulate unbounded `JoinHandle`s. The first panic
/// payload is kept for re-raising after graceful shutdown completes.
fn reap_finished(
    handlers: &mut Vec<JoinHandle<()>>,
    first_panic: &mut Option<Box<dyn std::any::Any + Send>>,
) {
    let mut i = 0;
    while i < handlers.len() {
        if handlers[i].is_finished() {
            if let Err(panic) = handlers.swap_remove(i).join() {
                first_panic.get_or_insert(panic);
            }
        } else {
            i += 1;
        }
    }
}

/// Wakes the accept loop after the shutdown flag is set: `incoming()`
/// blocks until one more connection arrives, so make one.
fn wake_accept_loop(shared: &Shared, stream: &TcpStream) {
    shared.shutdown.store(true, Ordering::SeqCst);
    if let Ok(addr) = stream.local_addr() {
        // The handler's stream's local address is the server's listening
        // socket address on loopback setups; a failed connect just means
        // the accept loop already observed the flag some other way.
        let _ = TcpStream::connect(addr);
    }
}

// Instant::now is the per-request latency probe: readings annotate the
// `micros` response field only and never influence clustering decisions,
// so the determinism policy behind the workspace-wide disallow holds.
#[allow(clippy::disallowed_methods)]
fn handle_connection(stream: TcpStream, shared: &Shared) {
    // A read timeout turns the blocking reader into a shutdown poll:
    // handlers notice the flag within one poll interval even when their
    // client sends nothing.
    let _ = stream.set_read_timeout(Some(shared.poll_interval));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break, // client hung up (a stale partial line dies with it)
            Ok(_) => {
                // A complete line (or the final unterminated line before
                // EOF) is in the buffer; clear it only after dispatch, so
                // nothing accumulated survives into the next request.
                if !line.trim().is_empty() {
                    let started = Instant::now();
                    let (response, shutdown) = dispatch(&line, shared);
                    let response = with_timing(response, started);
                    if write_line(&mut writer, &response).is_err() {
                        break;
                    }
                    if shutdown {
                        wake_accept_loop(shared, reader.get_ref());
                        break;
                    }
                }
                line.clear();
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // The read timeout is only a shutdown poll, but read_line
                // may already have appended part of a request before
                // timing out — keep the buffer intact so a client that
                // pauses mid-line resumes exactly where it left off.
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
}

fn write_line(writer: &mut impl Write, response: &JsonValue) -> std::io::Result<()> {
    writer.write_all(response.to_compact().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Appends the per-request service time. Timing is observability only —
/// it annotates responses and is never fed back into clustering.
fn with_timing(response: JsonValue, started: Instant) -> JsonValue {
    let micros = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    match response {
        JsonValue::Object(mut pairs) => {
            pairs.push((
                "micros".to_string(),
                JsonValue::Int(i64::try_from(micros).unwrap_or(i64::MAX)),
            ));
            JsonValue::Object(pairs)
        }
        other => other,
    }
}

/// Parses and executes one request line. The bool asks the connection
/// loop to initiate daemon shutdown after responding.
fn dispatch(line: &str, shared: &Shared) -> (JsonValue, bool) {
    match Request::parse_line(line) {
        Err(e) => (error_response(&e), false),
        Ok(Request::Ingest { points, weight }) => {
            // checked_add saturates the counter at u32::MAX instead of
            // wrapping, which would hand out ids still owned by live
            // trajectories; at exhaustion further ingests are refused.
            let id = shared
                .next_id
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_add(1));
            let Ok(id) = id.map(TrajectoryId) else {
                return (error_reply("trajectory id space exhausted"), false);
            };
            match send_command(
                &shared.commands,
                EngineCommand::Ingest { id, points, weight },
            ) {
                Ok(()) => (
                    JsonValue::object([
                        ("ok", JsonValue::from(true)),
                        ("trajectory", JsonValue::from(id.0)),
                        ("queued", JsonValue::from(true)),
                    ]),
                    false,
                ),
                Err(msg) => (error_reply(msg), false),
            }
        }
        Ok(Request::Remove { trajectory }) => {
            match remove(&shared.commands, TrajectoryId(trajectory)) {
                Ok((report, epoch)) => (
                    JsonValue::object([
                        ("ok", JsonValue::from(true)),
                        (
                            "epoch",
                            JsonValue::Int(i64::try_from(epoch).unwrap_or(i64::MAX)),
                        ),
                        (
                            "removed_trajectories",
                            JsonValue::from(report.removed_trajectories),
                        ),
                        ("removed_segments", JsonValue::from(report.removed_segments)),
                        ("demoted_cores", JsonValue::from(report.demoted_cores)),
                        ("rebuilt", JsonValue::from(report.rebuilt)),
                    ]),
                    false,
                ),
                Err(msg) => (error_reply(msg), false),
            }
        }
        Ok(Request::Expire { keep }) => match expire(&shared.commands, keep) {
            Ok((report, epoch)) => (
                JsonValue::object([
                    ("ok", JsonValue::from(true)),
                    (
                        "epoch",
                        JsonValue::Int(i64::try_from(epoch).unwrap_or(i64::MAX)),
                    ),
                    ("expired", JsonValue::from(report.removed_trajectories)),
                    ("removed_segments", JsonValue::from(report.removed_segments)),
                ]),
                false,
            ),
            Err(msg) => (error_reply(msg), false),
        },
        Ok(Request::Membership { trajectory }) => {
            let snap = shared.cell.load();
            let clusters = snap.membership(TrajectoryId(trajectory));
            (
                ok_with_epoch(
                    &snap,
                    [(
                        "clusters",
                        JsonValue::array(clusters.iter().map(|c| JsonValue::from(c.0))),
                    )],
                ),
                false,
            )
        }
        Ok(Request::Nearest { point }) => {
            let snap = shared.cell.load();
            let found = snap.nearest_cluster(&Point2::xy(point[0], point[1]));
            (
                ok_with_epoch(
                    &snap,
                    [
                        (
                            "cluster",
                            found.map_or(JsonValue::Null, |(id, _)| JsonValue::from(id.0)),
                        ),
                        ("distance", JsonValue::opt_f64(found.map(|(_, d)| d))),
                    ],
                ),
                false,
            )
        }
        Ok(Request::Representatives) => {
            let snap = shared.cell.load();
            let clusters = snap.clusters().iter().map(|c| {
                JsonValue::object([
                    ("id", JsonValue::from(c.cluster.id.0)),
                    (
                        "trajectories",
                        JsonValue::from(c.cluster.trajectory_cardinality()),
                    ),
                    (
                        "representative",
                        JsonValue::array(c.representative.points.iter().map(|p| {
                            JsonValue::array([
                                JsonValue::from(p.coords[0]),
                                JsonValue::from(p.coords[1]),
                            ])
                        })),
                    ),
                ])
            });
            let clusters = JsonValue::array(clusters.collect::<Vec<_>>());
            (ok_with_epoch(&snap, [("clusters", clusters)]), false)
        }
        Ok(Request::Region { min, max }) => {
            let snap = shared.cell.load();
            let summary = snap.region_summary(&Aabb::new(min, max));
            (
                ok_with_epoch(
                    &snap,
                    [
                        (
                            "clusters",
                            JsonValue::array(summary.clusters.iter().map(|c| JsonValue::from(c.0))),
                        ),
                        (
                            "distinct_trajectories",
                            JsonValue::from(summary.distinct_trajectories),
                        ),
                    ],
                ),
                false,
            )
        }
        Ok(Request::Stats) => {
            let snap = shared.cell.load();
            let stats = snap.stats();
            (
                ok_with_epoch(
                    &snap,
                    [
                        ("trajectories", JsonValue::from(stats.trajectories)),
                        ("segments", JsonValue::from(snap.segments())),
                        ("clusters", JsonValue::from(snap.clusters().len())),
                        (
                            "enqueued",
                            JsonValue::from(shared.next_id.load(Ordering::SeqCst)),
                        ),
                        ("core_flips", JsonValue::from(stats.core_flips)),
                        ("local_repairs", JsonValue::from(stats.local_repairs)),
                        ("full_rebuilds", JsonValue::from(stats.full_rebuilds)),
                        ("removals", JsonValue::from(stats.removals)),
                        ("expired", JsonValue::from(stats.expired)),
                        (
                            "decremental_repairs",
                            JsonValue::from(stats.decremental_repairs),
                        ),
                        (
                            "decremental_rebuilds",
                            JsonValue::from(stats.decremental_rebuilds),
                        ),
                        (
                            "repair_parallel_batches",
                            JsonValue::from(stats.repair_parallel_batches),
                        ),
                        (
                            "repair_parallel_queries",
                            u64_json(stats.repair_parallel_queries),
                        ),
                        ("prune_candidates", u64_json(stats.prune_candidates)),
                        ("pruned_mbr", u64_json(stats.pruned_mbr)),
                        ("pruned_midpoint", u64_json(stats.pruned_midpoint)),
                        ("pruned_angle", u64_json(stats.pruned_angle)),
                        ("prune_refined", u64_json(stats.prune_refined)),
                    ],
                ),
                false,
            )
        }
        Ok(Request::Flush) => match flush(&shared.commands) {
            Ok(epoch) => (
                JsonValue::object([
                    ("ok", JsonValue::from(true)),
                    (
                        "epoch",
                        JsonValue::Int(i64::try_from(epoch).unwrap_or(i64::MAX)),
                    ),
                ]),
                false,
            ),
            Err(msg) => (error_reply(msg), false),
        },
        Ok(Request::Shutdown) => (JsonValue::object([("ok", JsonValue::from(true))]), true),
    }
}

/// `u64` counters (the stream's prune tallies) saturate into the JSON
/// integer space, like epochs in the `flush` reply.
fn u64_json(v: u64) -> JsonValue {
    JsonValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

fn error_reply(msg: &str) -> JsonValue {
    JsonValue::object([
        ("ok", JsonValue::from(false)),
        ("error", JsonValue::from(msg)),
    ])
}

fn ok_with_epoch<const N: usize>(
    snap: &ClusterSnapshot<2>,
    fields: [(&'static str, JsonValue); N],
) -> JsonValue {
    let mut pairs = vec![
        ("ok".to_string(), JsonValue::from(true)),
        (
            "epoch".to_string(),
            JsonValue::Int(i64::try_from(snap.epoch()).unwrap_or(i64::MAX)),
        ),
    ];
    for (k, v) in fields {
        pairs.push((k.to_string(), v));
    }
    JsonValue::Object(pairs)
}
