//! End-to-end tests over live TCP: a daemon on an ephemeral port, real
//! clients, and the concurrent-equivalence guarantee — every clustering
//! state a client observes over the wire corresponds to the batch
//! pipeline run on some prefix of the ingested trajectories.

use std::net::SocketAddr;

use traclus_core::{Traclus, TraclusConfig};
use traclus_data::{HurricaneConfig, HurricaneGenerator};
use traclus_geom::Trajectory;
use traclus_json::JsonValue;
use traclus_server::{Client, Request, Server, ServerConfig};

fn fixture() -> (TraclusConfig, Vec<Trajectory<2>>) {
    let config = TraclusConfig {
        eps: 6.0,
        min_lns: 4,
        ..TraclusConfig::default()
    };
    let trajectories = HurricaneGenerator::new(HurricaneConfig {
        tracks: 18,
        seed: 2007,
        ..HurricaneConfig::default()
    })
    .generate();
    (config, trajectories)
}

/// Starts a daemon on an ephemeral port; returns its address and the
/// serving thread (joined for a clean exit check).
fn start(config: TraclusConfig) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            traclus: config,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn ingest_request(t: &Trajectory<2>) -> Request {
    Request::Ingest {
        points: t
            .points
            .iter()
            .map(|p| [p.coords[0], p.coords[1]])
            .collect(),
        weight: None,
    }
}

fn epoch_of(response: &JsonValue) -> u64 {
    response
        .get("epoch")
        .and_then(JsonValue::as_i64)
        .and_then(|e| u64::try_from(e).ok())
        .expect("response carries an epoch")
}

fn assert_ok(response: &JsonValue) {
    assert_eq!(
        response.get("ok"),
        Some(&JsonValue::Bool(true)),
        "expected ok response: {}",
        response.to_compact()
    );
}

/// Representative polylines of a batch run, as the exact wire floats.
fn batch_representatives(config: TraclusConfig, prefix: &[Trajectory<2>]) -> Vec<Polyline> {
    Traclus::new(config)
        .run(prefix)
        .clusters
        .iter()
        .map(|c| {
            c.representative
                .points
                .iter()
                .map(|p| [p.coords[0], p.coords[1]])
                .collect()
        })
        .collect()
}

/// A cluster's representative as decoded from the wire.
type Polyline = Vec<[f64; 2]>;

/// Decodes a `representatives` response into polylines.
fn wire_representatives(response: &JsonValue) -> Vec<Polyline> {
    response
        .get("clusters")
        .and_then(JsonValue::as_array)
        .expect("clusters array")
        .iter()
        .map(|c| {
            c.get("representative")
                .and_then(JsonValue::as_array)
                .expect("representative polyline")
                .iter()
                .map(|p| {
                    let xy = p.as_array().expect("[x, y]");
                    [xy[0].as_f64().expect("x"), xy[1].as_f64().expect("y")]
                })
                .collect()
        })
        .collect()
}

#[test]
fn ingest_flush_query_shutdown_round_trip() {
    let (config, trajectories) = fixture();
    let (addr, server) = start(config);
    let mut client = Client::connect(addr).expect("connect");

    // Ingest everything on one connection: ids come back dense and ordered.
    for (k, t) in trajectories.iter().enumerate() {
        let resp = client.request(&ingest_request(t)).expect("ingest");
        assert_ok(&resp);
        assert_eq!(
            resp.get("trajectory").and_then(JsonValue::as_i64),
            Some(k as i64),
            "single-connection ingest assigns dense ordered ids"
        );
    }

    // Flush: read-your-writes barrier. After it, stats must cover all.
    let resp = client.request(&Request::Flush).expect("flush");
    assert_ok(&resp);
    let resp = client.request(&Request::Stats).expect("stats");
    assert_ok(&resp);
    assert_eq!(
        resp.get("trajectories").and_then(JsonValue::as_i64),
        Some(trajectories.len() as i64)
    );
    assert_eq!(
        resp.get("enqueued").and_then(JsonValue::as_i64),
        Some(trajectories.len() as i64)
    );

    // The served representatives equal the batch pipeline's, float for
    // float: values cross the wire via shortest-round-trip Display, so
    // exact equality is the right assertion.
    let resp = client.request(&Request::Representatives).expect("reps");
    assert_ok(&resp);
    let batch = batch_representatives(config, &trajectories);
    assert_eq!(wire_representatives(&resp), batch);
    assert!(!batch.is_empty(), "fixture produces clusters");

    // Membership and region agree with the batch clustering.
    let batch_run = Traclus::new(config).run(&trajectories);
    let member = batch_run.clusters[0].cluster.trajectories[0];
    let resp = client
        .request(&Request::Membership {
            trajectory: member.0,
        })
        .expect("membership");
    assert_ok(&resp);
    let clusters = resp
        .get("clusters")
        .and_then(JsonValue::as_array)
        .expect("clusters");
    assert!(
        clusters
            .iter()
            .any(|c| c.as_i64() == Some(i64::from(batch_run.clusters[0].cluster.id.0))),
        "ingested member found in its batch cluster"
    );

    // Per-request timing annotation is present on every response.
    assert!(resp.get("micros").and_then(JsonValue::as_i64).is_some());

    // Malformed input on a live connection: typed error, connection and
    // daemon survive.
    let resp = client.send_raw("{\"op\": \"ingest\"").expect("raw garbage");
    assert_eq!(resp.get("ok"), Some(&JsonValue::Bool(false)));
    assert!(resp.get("error").and_then(JsonValue::as_str).is_some());
    let resp = client.request(&Request::Stats).expect("still alive");
    assert_ok(&resp);

    // An inverted region is rejected at parse — the handler never reaches
    // `Aabb::new`'s min <= max assert, so the connection stays up.
    let resp = client
        .send_raw("{\"op\": \"region\", \"min\": [1, 0], \"max\": [0, 0]}")
        .expect("inverted region");
    assert_eq!(resp.get("ok"), Some(&JsonValue::Bool(false)));
    assert!(resp.get("error").and_then(JsonValue::as_str).is_some());
    let resp = client.request(&Request::Stats).expect("still alive");
    assert_ok(&resp);

    // Graceful shutdown: acknowledged, then the serving thread exits.
    let resp = client.request(&Request::Shutdown).expect("shutdown");
    assert_ok(&resp);
    server
        .join()
        .expect("serving thread exits")
        .expect("clean shutdown");
}

#[test]
fn concurrent_readers_observe_only_batch_prefixes() {
    let (config, trajectories) = fixture();
    let (addr, server) = start(config);

    // Reader threads hammer `representatives` while the writer ingests.
    // A response carries the snapshot epoch and the full cluster list but
    // not the prefix length, so readers record (epoch → polylines) and
    // the verdict compares each observation against every prefix's batch
    // output at the end.
    let done = std::sync::atomic::AtomicBool::new(false);
    const READERS: usize = 2;

    let observed: Vec<Vec<(u64, Vec<Polyline>)>> = std::thread::scope(|s| {
        let done = &done;
        let mut readers = Vec::new();
        for _ in 0..READERS {
            readers.push(s.spawn(move || {
                let mut client = Client::connect(addr).expect("reader connect");
                let mut seen: Vec<(u64, Vec<Polyline>)> = Vec::new();
                let mut last_round = false;
                loop {
                    // Check the flag *before* requesting: the final
                    // request is then issued after the writer's flush
                    // barrier, so every reader records the fully-applied
                    // state at least once (a post-request check could
                    // break with only pre-flush observations recorded).
                    if done.load(std::sync::atomic::Ordering::SeqCst) {
                        last_round = true;
                    }
                    let resp = client
                        .request(&Request::Representatives)
                        .expect("representatives");
                    assert_ok(&resp);
                    let epoch = epoch_of(&resp);
                    if seen.last().map(|(e, _)| *e) != Some(epoch) {
                        seen.push((epoch, wire_representatives(&resp)));
                    }
                    if last_round {
                        break;
                    }
                }
                seen
            }));
        }

        let mut writer = Client::connect(addr).expect("writer connect");
        for t in &trajectories {
            let resp = writer.request(&ingest_request(t)).expect("ingest");
            assert_ok(&resp);
        }
        let resp = writer.request(&Request::Flush).expect("flush");
        assert_ok(&resp);
        done.store(true, std::sync::atomic::Ordering::SeqCst);

        let collected = readers
            .into_iter()
            .map(|r| r.join().expect("reader"))
            .collect();
        let resp = writer.request(&Request::Shutdown).expect("shutdown");
        assert_ok(&resp);
        collected
    });

    server
        .join()
        .expect("serving thread exits")
        .expect("clean shutdown");

    // Batch representatives for every prefix (including the empty one).
    let prefixes: Vec<Vec<Polyline>> = (0..=trajectories.len())
        .map(|k| batch_representatives(config, &trajectories[..k]))
        .collect();

    let mut matched_nonempty = false;
    for seen in &observed {
        for (epoch, polylines) in seen {
            assert!(
                prefixes.iter().any(|p| p == polylines),
                "epoch {epoch}: observed representatives match no batch prefix"
            );
            if !polylines.is_empty() {
                matched_nonempty = true;
            }
        }
        for pair in seen.windows(2) {
            assert!(pair[0].0 < pair[1].0, "epochs observed in order");
        }
    }
    // The final flushed state is non-empty for this fixture, and the
    // writer flushed before stopping the readers — so at least one reader
    // saw a real clustering.
    assert!(
        matched_nonempty,
        "readers observed a non-empty prefix state"
    );
}

/// A client that pauses mid-request spans several handler read timeouts;
/// the partial line must survive the timeouts and parse as one request
/// once the tail arrives (regression: the handler used to clear its
/// buffer every iteration, discarding bytes read before a timeout).
#[test]
fn requests_paused_mid_line_survive_read_timeouts() {
    use std::io::{BufRead, BufReader, Write};

    let (config, _) = fixture();
    let (addr, server) = start(config);
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    let line = "{\"op\": \"stats\"}\n";
    let (head, tail) = line.split_at(8);
    stream.write_all(head.as_bytes()).expect("head");
    stream.flush().expect("flush head");
    // Several handler poll intervals (default 100ms) elapse mid-line.
    std::thread::sleep(std::time::Duration::from_millis(350));
    stream.write_all(tail.as_bytes()).expect("tail");
    stream.flush().expect("flush tail");

    let mut response = String::new();
    reader.read_line(&mut response).expect("response");
    let value = JsonValue::parse(&response).expect("response is JSON");
    assert_eq!(
        value.get("ok"),
        Some(&JsonValue::Bool(true)),
        "split request must parse as one stats request: {response}"
    );
    assert!(value.get("trajectories").is_some());

    stream
        .write_all(b"{\"op\": \"shutdown\"}\n")
        .expect("shutdown");
    response.clear();
    reader.read_line(&mut response).expect("shutdown ack");
    server.join().expect("join").expect("clean shutdown");
}

#[test]
fn queries_on_an_empty_daemon_are_well_formed() {
    let (config, _) = fixture();
    let (addr, server) = start(config);
    let mut client = Client::connect(addr).expect("connect");

    let resp = client
        .request(&Request::Nearest { point: [0.0, 0.0] })
        .expect("nearest");
    assert_ok(&resp);
    assert_eq!(resp.get("cluster"), Some(&JsonValue::Null));
    assert_eq!(resp.get("distance"), Some(&JsonValue::Null));

    let resp = client
        .request(&Request::Membership { trajectory: 0 })
        .expect("membership");
    assert_ok(&resp);
    assert_eq!(
        resp.get("clusters")
            .and_then(JsonValue::as_array)
            .map(<[_]>::len),
        Some(0)
    );

    let resp = client
        .request(&Request::Region {
            min: [0.0, 0.0],
            max: [1.0, 1.0],
        })
        .expect("region");
    assert_ok(&resp);
    assert_eq!(epoch_of(&resp), 0);

    let resp = client.request(&Request::Shutdown).expect("shutdown");
    assert_ok(&resp);
    server.join().expect("join").expect("clean shutdown");
}
