//! End-to-end tests over live TCP: a daemon on an ephemeral port, real
//! clients, and the concurrent-equivalence guarantee — every clustering
//! state a client observes over the wire corresponds to the batch
//! pipeline run on some prefix of the ingested trajectories.

use std::net::SocketAddr;

use traclus_core::{Traclus, TraclusConfig};
use traclus_data::{HurricaneConfig, HurricaneGenerator};
use traclus_geom::Trajectory;
use traclus_json::JsonValue;
use traclus_server::{Client, Request, Server, ServerConfig};

fn fixture() -> (TraclusConfig, Vec<Trajectory<2>>) {
    let config = TraclusConfig {
        eps: 6.0,
        min_lns: 4,
        ..TraclusConfig::default()
    };
    let trajectories = HurricaneGenerator::new(HurricaneConfig {
        tracks: 18,
        seed: 2007,
        ..HurricaneConfig::default()
    })
    .generate();
    (config, trajectories)
}

/// Starts a daemon on an ephemeral port; returns its address and the
/// serving thread (joined for a clean exit check).
fn start(config: TraclusConfig) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    start_with(ServerConfig {
        traclus: config,
        ..ServerConfig::default()
    })
}

/// Starts a daemon with full control over the serving knobs (poll
/// interval, server-side window, …).
fn start_with(config: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn ingest_request(t: &Trajectory<2>) -> Request {
    Request::Ingest {
        points: t
            .points
            .iter()
            .map(|p| [p.coords[0], p.coords[1]])
            .collect(),
        weight: None,
    }
}

fn epoch_of(response: &JsonValue) -> u64 {
    response
        .get("epoch")
        .and_then(JsonValue::as_i64)
        .and_then(|e| u64::try_from(e).ok())
        .expect("response carries an epoch")
}

fn assert_ok(response: &JsonValue) {
    assert_eq!(
        response.get("ok"),
        Some(&JsonValue::Bool(true)),
        "expected ok response: {}",
        response.to_compact()
    );
}

/// Representative polylines of a batch run, as the exact wire floats.
fn batch_representatives(config: TraclusConfig, prefix: &[Trajectory<2>]) -> Vec<Polyline> {
    Traclus::new(config)
        .run(prefix)
        .clusters
        .iter()
        .map(|c| {
            c.representative
                .points
                .iter()
                .map(|p| [p.coords[0], p.coords[1]])
                .collect()
        })
        .collect()
}

/// A cluster's representative as decoded from the wire.
type Polyline = Vec<[f64; 2]>;

/// Decodes a `representatives` response into polylines.
fn wire_representatives(response: &JsonValue) -> Vec<Polyline> {
    response
        .get("clusters")
        .and_then(JsonValue::as_array)
        .expect("clusters array")
        .iter()
        .map(|c| {
            c.get("representative")
                .and_then(JsonValue::as_array)
                .expect("representative polyline")
                .iter()
                .map(|p| {
                    let xy = p.as_array().expect("[x, y]");
                    [xy[0].as_f64().expect("x"), xy[1].as_f64().expect("y")]
                })
                .collect()
        })
        .collect()
}

#[test]
fn ingest_flush_query_shutdown_round_trip() {
    let (config, trajectories) = fixture();
    let (addr, server) = start(config);
    let mut client = Client::connect(addr).expect("connect");

    // Ingest everything on one connection: ids come back dense and ordered.
    for (k, t) in trajectories.iter().enumerate() {
        let resp = client.request(&ingest_request(t)).expect("ingest");
        assert_ok(&resp);
        assert_eq!(
            resp.get("trajectory").and_then(JsonValue::as_i64),
            Some(k as i64),
            "single-connection ingest assigns dense ordered ids"
        );
    }

    // Flush: read-your-writes barrier. After it, stats must cover all.
    let resp = client.request(&Request::Flush).expect("flush");
    assert_ok(&resp);
    let resp = client.request(&Request::Stats).expect("stats");
    assert_ok(&resp);
    assert_eq!(
        resp.get("trajectories").and_then(JsonValue::as_i64),
        Some(trajectories.len() as i64)
    );
    assert_eq!(
        resp.get("enqueued").and_then(JsonValue::as_i64),
        Some(trajectories.len() as i64)
    );

    // The served representatives equal the batch pipeline's, float for
    // float: values cross the wire via shortest-round-trip Display, so
    // exact equality is the right assertion.
    let resp = client.request(&Request::Representatives).expect("reps");
    assert_ok(&resp);
    let batch = batch_representatives(config, &trajectories);
    assert_eq!(wire_representatives(&resp), batch);
    assert!(!batch.is_empty(), "fixture produces clusters");

    // Membership and region agree with the batch clustering.
    let batch_run = Traclus::new(config).run(&trajectories);
    let member = batch_run.clusters[0].cluster.trajectories[0];
    let resp = client
        .request(&Request::Membership {
            trajectory: member.0,
        })
        .expect("membership");
    assert_ok(&resp);
    let clusters = resp
        .get("clusters")
        .and_then(JsonValue::as_array)
        .expect("clusters");
    assert!(
        clusters
            .iter()
            .any(|c| c.as_i64() == Some(i64::from(batch_run.clusters[0].cluster.id.0))),
        "ingested member found in its batch cluster"
    );

    // Per-request timing annotation is present on every response.
    assert!(resp.get("micros").and_then(JsonValue::as_i64).is_some());

    // Malformed input on a live connection: typed error, connection and
    // daemon survive.
    let resp = client.send_raw("{\"op\": \"ingest\"").expect("raw garbage");
    assert_eq!(resp.get("ok"), Some(&JsonValue::Bool(false)));
    assert!(resp.get("error").and_then(JsonValue::as_str).is_some());
    let resp = client.request(&Request::Stats).expect("still alive");
    assert_ok(&resp);

    // An inverted region is rejected at parse — the handler never reaches
    // `Aabb::new`'s min <= max assert, so the connection stays up.
    let resp = client
        .send_raw("{\"op\": \"region\", \"min\": [1, 0], \"max\": [0, 0]}")
        .expect("inverted region");
    assert_eq!(resp.get("ok"), Some(&JsonValue::Bool(false)));
    assert!(resp.get("error").and_then(JsonValue::as_str).is_some());
    let resp = client.request(&Request::Stats).expect("still alive");
    assert_ok(&resp);

    // Graceful shutdown: acknowledged, then the serving thread exits.
    let resp = client.request(&Request::Shutdown).expect("shutdown");
    assert_ok(&resp);
    server
        .join()
        .expect("serving thread exits")
        .expect("clean shutdown");
}

#[test]
fn concurrent_readers_observe_only_batch_prefixes() {
    let (config, trajectories) = fixture();
    let (addr, server) = start(config);

    // Reader threads hammer `representatives` while the writer ingests.
    // A response carries the snapshot epoch and the full cluster list but
    // not the prefix length, so readers record (epoch → polylines) and
    // the verdict compares each observation against every prefix's batch
    // output at the end.
    let done = std::sync::atomic::AtomicBool::new(false);
    const READERS: usize = 2;

    let observed: Vec<Vec<(u64, Vec<Polyline>)>> = std::thread::scope(|s| {
        let done = &done;
        let mut readers = Vec::new();
        for _ in 0..READERS {
            readers.push(s.spawn(move || {
                let mut client = Client::connect(addr).expect("reader connect");
                let mut seen: Vec<(u64, Vec<Polyline>)> = Vec::new();
                let mut last_round = false;
                loop {
                    // Check the flag *before* requesting: the final
                    // request is then issued after the writer's flush
                    // barrier, so every reader records the fully-applied
                    // state at least once (a post-request check could
                    // break with only pre-flush observations recorded).
                    if done.load(std::sync::atomic::Ordering::SeqCst) {
                        last_round = true;
                    }
                    let resp = client
                        .request(&Request::Representatives)
                        .expect("representatives");
                    assert_ok(&resp);
                    let epoch = epoch_of(&resp);
                    if seen.last().map(|(e, _)| *e) != Some(epoch) {
                        seen.push((epoch, wire_representatives(&resp)));
                    }
                    if last_round {
                        break;
                    }
                }
                seen
            }));
        }

        let mut writer = Client::connect(addr).expect("writer connect");
        for t in &trajectories {
            let resp = writer.request(&ingest_request(t)).expect("ingest");
            assert_ok(&resp);
        }
        let resp = writer.request(&Request::Flush).expect("flush");
        assert_ok(&resp);
        done.store(true, std::sync::atomic::Ordering::SeqCst);

        let collected = readers
            .into_iter()
            .map(|r| r.join().expect("reader"))
            .collect();
        let resp = writer.request(&Request::Shutdown).expect("shutdown");
        assert_ok(&resp);
        collected
    });

    server
        .join()
        .expect("serving thread exits")
        .expect("clean shutdown");

    // Batch representatives for every prefix (including the empty one).
    let prefixes: Vec<Vec<Polyline>> = (0..=trajectories.len())
        .map(|k| batch_representatives(config, &trajectories[..k]))
        .collect();

    let mut matched_nonempty = false;
    for seen in &observed {
        for (epoch, polylines) in seen {
            assert!(
                prefixes.iter().any(|p| p == polylines),
                "epoch {epoch}: observed representatives match no batch prefix"
            );
            if !polylines.is_empty() {
                matched_nonempty = true;
            }
        }
        for pair in seen.windows(2) {
            assert!(pair[0].0 < pair[1].0, "epochs observed in order");
        }
    }
    // The final flushed state is non-empty for this fixture, and the
    // writer flushed before stopping the readers — so at least one reader
    // saw a real clustering.
    assert!(
        matched_nonempty,
        "readers observed a non-empty prefix state"
    );
}

/// A client that pauses mid-request spans several handler read timeouts;
/// the partial line must survive the timeouts and parse as one request
/// once the tail arrives (regression: the handler used to clear its
/// buffer every iteration, discarding bytes read before a timeout).
///
/// The pause here is the *scenario under test*, not synchronization — the
/// handler must time out while the line is incomplete. A short poll
/// interval makes one pause span many timeouts without a long wall-clock
/// sleep (the old shape slept 350ms against the default 100ms poll).
#[test]
fn requests_paused_mid_line_survive_read_timeouts() {
    use std::io::{BufRead, BufReader, Write};

    let (config, _) = fixture();
    let (addr, server) = start_with(ServerConfig {
        traclus: config,
        poll_interval: std::time::Duration::from_millis(10),
        ..ServerConfig::default()
    });
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    let line = "{\"op\": \"stats\"}\n";
    let (head, tail) = line.split_at(8);
    stream.write_all(head.as_bytes()).expect("head");
    stream.flush().expect("flush head");
    // Several handler poll intervals (10ms) elapse mid-line.
    std::thread::sleep(std::time::Duration::from_millis(60));
    stream.write_all(tail.as_bytes()).expect("tail");
    stream.flush().expect("flush tail");

    let mut response = String::new();
    reader.read_line(&mut response).expect("response");
    let value = JsonValue::parse(&response).expect("response is JSON");
    assert_eq!(
        value.get("ok"),
        Some(&JsonValue::Bool(true)),
        "split request must parse as one stats request: {response}"
    );
    assert!(value.get("trajectories").is_some());

    stream
        .write_all(b"{\"op\": \"shutdown\"}\n")
        .expect("shutdown");
    response.clear();
    reader.read_line(&mut response).expect("shutdown ack");
    server.join().expect("join").expect("clean shutdown");
}

#[test]
fn queries_on_an_empty_daemon_are_well_formed() {
    let (config, _) = fixture();
    let (addr, server) = start(config);
    let mut client = Client::connect(addr).expect("connect");

    let resp = client
        .request(&Request::Nearest { point: [0.0, 0.0] })
        .expect("nearest");
    assert_ok(&resp);
    assert_eq!(resp.get("cluster"), Some(&JsonValue::Null));
    assert_eq!(resp.get("distance"), Some(&JsonValue::Null));

    let resp = client
        .request(&Request::Membership { trajectory: 0 })
        .expect("membership");
    assert_ok(&resp);
    assert_eq!(
        resp.get("clusters")
            .and_then(JsonValue::as_array)
            .map(<[_]>::len),
        Some(0)
    );

    let resp = client
        .request(&Request::Region {
            min: [0.0, 0.0],
            max: [1.0, 1.0],
        })
        .expect("region");
    assert_ok(&resp);
    assert_eq!(epoch_of(&resp), 0);

    let resp = client.request(&Request::Shutdown).expect("shutdown");
    assert_ok(&resp);
    server.join().expect("join").expect("clean shutdown");
}

/// `remove` and `expire` over the wire are synchronous and exact: each
/// reply's epoch reflects the published post-removal snapshot, and the
/// served representatives equal the batch pipeline on the live window.
#[test]
fn remove_and_expire_round_trip_over_the_wire() {
    let (config, trajectories) = fixture();
    let (addr, server) = start(config);
    let mut client = Client::connect(addr).expect("connect");

    for t in &trajectories {
        assert_ok(&client.request(&ingest_request(t)).expect("ingest"));
    }
    assert_ok(&client.request(&Request::Flush).expect("flush"));

    // Remove the first trajectory: the reply is the applied report, and a
    // subsequent read observes the post-removal clustering (no sleep, no
    // extra flush — the remove reply *is* the barrier).
    let resp = client
        .request(&Request::Remove { trajectory: 0 })
        .expect("remove");
    assert_ok(&resp);
    assert_eq!(
        resp.get("removed_trajectories").and_then(JsonValue::as_i64),
        Some(1)
    );
    let removal_epoch = epoch_of(&resp);
    let resp = client.request(&Request::Representatives).expect("reps");
    assert_ok(&resp);
    assert!(epoch_of(&resp) >= removal_epoch, "read-your-removal");
    assert_eq!(
        wire_representatives(&resp),
        batch_representatives(config, &trajectories[1..])
    );

    // Removing it again is a no-op, not an error.
    let resp = client
        .request(&Request::Remove { trajectory: 0 })
        .expect("re-remove");
    assert_ok(&resp);
    assert_eq!(
        resp.get("removed_trajectories").and_then(JsonValue::as_i64),
        Some(0)
    );

    // Expire down to the 10 newest: 17 live - 10 = 7 expired, and the
    // served state equals the batch run on that suffix.
    let resp = client
        .request(&Request::Expire { keep: 10 })
        .expect("expire");
    assert_ok(&resp);
    assert_eq!(resp.get("expired").and_then(JsonValue::as_i64), Some(7));
    let resp = client.request(&Request::Representatives).expect("reps");
    assert_ok(&resp);
    assert_eq!(
        wire_representatives(&resp),
        batch_representatives(config, &trajectories[8..])
    );

    // The decremental counters surface through `stats`.
    let resp = client.request(&Request::Stats).expect("stats");
    assert_ok(&resp);
    assert_eq!(resp.get("removals").and_then(JsonValue::as_i64), Some(8));
    assert_eq!(resp.get("expired").and_then(JsonValue::as_i64), Some(7));

    assert_ok(&client.request(&Request::Shutdown).expect("shutdown"));
    server.join().expect("join").expect("clean shutdown");
}

/// A daemon bound with `window: Some(n)` self-prunes between publishes:
/// after ingesting past the cap, reads observe exactly the batch run on
/// the `n` newest trajectories, with no client-driven expiry.
#[test]
fn server_side_window_self_prunes() {
    let (config, trajectories) = fixture();
    let (addr, server) = start_with(ServerConfig {
        traclus: config,
        window: Some(8),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");

    for t in &trajectories {
        assert_ok(&client.request(&ingest_request(t)).expect("ingest"));
    }
    assert_ok(&client.request(&Request::Flush).expect("flush"));

    let resp = client.request(&Request::Stats).expect("stats");
    assert_ok(&resp);
    assert_eq!(
        resp.get("expired").and_then(JsonValue::as_i64),
        Some((trajectories.len() - 8) as i64),
        "everything past the window aged out automatically"
    );
    let resp = client.request(&Request::Representatives).expect("reps");
    assert_ok(&resp);
    assert_eq!(
        wire_representatives(&resp),
        batch_representatives(config, &trajectories[trajectories.len() - 8..])
    );

    assert_ok(&client.request(&Request::Shutdown).expect("shutdown"));
    server.join().expect("join").expect("clean shutdown");
}

/// Soak: four connections drive a mixed ingest + removal + expiry + query
/// workload — 2000 requests total — against a windowed daemon. Every
/// response is `ok`, every connection's observed epochs are monotone
/// non-decreasing, and the daemon shuts down cleanly (a handler or engine
/// panic would re-raise out of `Server::run`).
#[test]
fn soak_mixed_workload_from_four_connections() {
    const CONNECTIONS: usize = 4;
    const REQUESTS_PER_CONNECTION: usize = 500;

    // Light synthetic corridors (not the hurricane fixture): the soak is
    // about protocol/engine liveness under churn, not clustering quality,
    // and 2000 requests must not cost minutes of clustering work.
    let (config, _) = fixture();
    let trajectories: Vec<Trajectory<2>> = (0..12u32)
        .map(|i| {
            Trajectory::new(
                traclus_geom::TrajectoryId(i),
                (0..6)
                    .map(|k| traclus_geom::Point2::xy(f64::from(k) * 8.0, f64::from(i) * 1.5))
                    .collect(),
            )
        })
        .collect();
    let (addr, server) = start_with(ServerConfig {
        traclus: config,
        poll_interval: std::time::Duration::from_millis(10),
        window: Some(48),
        ..ServerConfig::default()
    });

    std::thread::scope(|s| {
        let trajectories = &trajectories;
        let mut workers = Vec::new();
        for worker in 0..CONNECTIONS {
            workers.push(s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // Deterministic per-connection mix (split-mix step).
                let mut rng: u64 = 0x9E37_79B9_7F4A_7C15 ^ (worker as u64);
                let mut draw = |bound: u64| {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (rng >> 33) % bound
                };
                let mut last_epoch = 0u64;
                for _ in 0..REQUESTS_PER_CONNECTION {
                    let request = match draw(10) {
                        0..=3 => {
                            ingest_request(&trajectories[draw(trajectories.len() as u64) as usize])
                        }
                        4 => Request::Remove {
                            trajectory: draw(96) as u32,
                        },
                        5 => Request::Expire {
                            keep: 16 + draw(32) as usize,
                        },
                        6 => Request::Representatives,
                        7 => Request::Stats,
                        8 => Request::Membership {
                            trajectory: draw(96) as u32,
                        },
                        _ => Request::Flush,
                    };
                    let resp = client.request(&request).expect("request");
                    assert_ok(&resp);
                    if let Some(epoch) = resp
                        .get("epoch")
                        .and_then(JsonValue::as_i64)
                        .and_then(|e| u64::try_from(e).ok())
                    {
                        assert!(
                            epoch >= last_epoch,
                            "connection {worker} observed epoch {epoch} after {last_epoch}"
                        );
                        last_epoch = epoch;
                    }
                }
            }));
        }
        for w in workers {
            w.join().expect("soak connection panicked");
        }
    });

    // The window bounds live state no matter what the workload did.
    let mut client = Client::connect(addr).expect("connect");
    assert_ok(&client.request(&Request::Flush).expect("flush"));
    let resp = client.request(&Request::Stats).expect("stats");
    assert_ok(&resp);
    let ingested = resp
        .get("trajectories")
        .and_then(JsonValue::as_i64)
        .expect("trajectories counter");
    let removed = resp
        .get("removals")
        .and_then(JsonValue::as_i64)
        .expect("removals counter");
    assert!(ingested - removed <= 48, "live window stays under the cap");

    assert_ok(&client.request(&Request::Shutdown).expect("shutdown"));
    server.join().expect("join").expect("clean shutdown");
}
