//! Protocol property tests: encode→decode round-trips for every request
//! shape, and parser totality — any line, however mangled, yields a typed
//! [`ProtocolError`] rather than a panic.

use proptest::prelude::*;
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;
use rand::Rng;
use traclus_server::{ProtocolError, Request};

fn arb_coord(rng: &mut TestRng) -> f64 {
    // Finite, mixed magnitude; fractional parts exercise float printing.
    rng.gen_range(-1.0e6..1.0e6)
}

fn arb_point(rng: &mut TestRng) -> [f64; 2] {
    [arb_coord(rng), arb_coord(rng)]
}

struct ArbRequest;

impl Strategy for ArbRequest {
    type Value = Request;
    fn generate(&self, rng: &mut TestRng) -> Request {
        match rng.gen_range(0..10u32) {
            0 => {
                let n = rng.gen_range(0..20usize);
                Request::Ingest {
                    points: (0..n).map(|_| arb_point(rng)).collect(),
                    weight: if rng.gen_range(0..2) == 0 {
                        None
                    } else {
                        Some(rng.gen_range(0.001..100.0f64))
                    },
                }
            }
            1 => Request::Membership {
                trajectory: rng.gen_range(0..u32::MAX),
            },
            2 => Request::Nearest {
                point: arb_point(rng),
            },
            3 => Request::Representatives,
            4 => {
                let a = arb_point(rng);
                let b = arb_point(rng);
                Request::Region {
                    min: [a[0].min(b[0]), a[1].min(b[1])],
                    max: [a[0].max(b[0]), a[1].max(b[1])],
                }
            }
            5 => Request::Stats,
            6 => Request::Flush,
            7 => Request::Remove {
                trajectory: rng.gen_range(0..u32::MAX),
            },
            8 => Request::Expire {
                keep: rng.gen_range(0..1_000_000usize),
            },
            _ => Request::Shutdown,
        }
    }
}

/// Corner pairs for `region` lines — deliberately unordered, so roughly
/// three in four draws invert at least one dimension.
struct ArbCorners;

impl Strategy for ArbCorners {
    type Value = ([f64; 2], [f64; 2]);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (arb_point(rng), arb_point(rng))
    }
}

/// Lines dense in almost-valid requests: protocol keywords, JSON
/// punctuation, numbers, and junk.
struct RequestSoup;

impl Strategy for RequestSoup {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        const FRAGMENTS: &[&str] = &[
            "{",
            "}",
            "[",
            "]",
            "\"",
            ":",
            ",",
            " ",
            "op",
            "ingest",
            "points",
            "weight",
            "membership",
            "trajectory",
            "nearest",
            "point",
            "region",
            "min",
            "max",
            "stats",
            "flush",
            "shutdown",
            "remove",
            "expire",
            "keep",
            "representatives",
            "1",
            "-3.5",
            "1e999",
            "null",
            "true",
            "\\u",
            "\\",
            "\u{0}",
            "é",
        ];
        let n = rng.gen_range(0..25usize);
        (0..n)
            .map(|_| FRAGMENTS[rng.gen_range(0..FRAGMENTS.len())])
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_round_trip_through_the_wire_format(request in ArbRequest) {
        let line = request.to_line();
        prop_assert!(!line.contains('\n'), "wire lines are single lines: {line:?}");
        let parsed = Request::parse_line(&line);
        prop_assert_eq!(parsed.as_ref(), Ok(&request), "line: {}", line);
    }

    #[test]
    fn region_bounds_are_validated_at_parse(corners in ArbCorners) {
        let (min, max) = corners;
        // `Aabb::new` asserts min <= max per dimension, so the parser must
        // reject inverted corners with a typed error — untrusted wire
        // input can never reach that assert.
        let line = format!(
            "{{\"op\": \"region\", \"min\": [{}, {}], \"max\": [{}, {}]}}",
            min[0], min[1], max[0], max[1]
        );
        let parsed = Request::parse_line(&line);
        if min[0] <= max[0] && min[1] <= max[1] {
            prop_assert_eq!(parsed, Ok(Request::Region { min, max }));
        } else {
            prop_assert!(
                matches!(parsed, Err(ProtocolError::BadField { .. })),
                "inverted region must parse to BadField: {}",
                line
            );
        }
    }

    #[test]
    fn parser_is_total_on_soup(line in RequestSoup) {
        // Returning at all is the property; a parsed request must also
        // re-encode and re-parse to itself.
        match Request::parse_line(&line) {
            Ok(request) => {
                let reencoded = request.to_line();
                prop_assert_eq!(Request::parse_line(&reencoded), Ok(request));
            }
            Err(e) => {
                // Every error renders as a non-empty message (it becomes
                // the wire error response).
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }
}

#[test]
fn weight_zero_and_negative_rejected() {
    for w in ["0", "-1", "1e999", "null"] {
        let line = format!("{{\"op\": \"ingest\", \"points\": [], \"weight\": {w}}}");
        let parsed = Request::parse_line(&line);
        if w == "null" {
            assert_eq!(
                parsed,
                Ok(Request::Ingest {
                    points: vec![],
                    weight: None
                }),
                "explicit null weight means unweighted"
            );
        } else {
            assert!(
                matches!(
                    parsed,
                    Err(ProtocolError::BadField { .. }) | Err(ProtocolError::Json(_))
                ),
                "weight {w} must be rejected: {parsed:?}"
            );
        }
    }
}
