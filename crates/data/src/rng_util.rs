//! Small random-sampling helpers shared by the generators.
//!
//! `rand` (the only RNG dependency allowed) does not ship distributions
//! beyond uniform, so the Gaussian sampler is a hand-rolled Box–Muller.

use rand::Rng;

/// Standard normal sample via the Box–Muller transform.
pub fn randn(rng: &mut impl Rng) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
pub fn normal(rng: &mut impl Rng, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * randn(rng)
}

/// Clamped normal sample (keeps generated physical quantities in-range).
pub fn normal_clamped(rng: &mut impl Rng, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
    normal(rng, mean, std_dev).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_has_roughly_standard_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn clamped_normal_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = normal_clamped(&mut rng, 0.0, 100.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| randn(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| randn(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
