//! Synthetic Atlantic hurricane tracks.
//!
//! Stands in for the paper's *Best Track* dataset (Section 5.1: Atlantic
//! hurricanes 1950–2004; 570 trajectories, 17 736 points at 6-hourly
//! intervals, latitude/longitude extracted). The real files are no longer
//! downloadable, so we simulate the basin climatology that the paper's
//! Figure 18 narrative depends on:
//!
//! * genesis in the tropical east/central Atlantic (and the Gulf),
//! * steady **east-to-west** drift in the trade winds with slow poleward
//!   gain (the paper's "lower horizontal cluster"),
//! * latitude-triggered **recurvature** into the westerlies, turning
//!   south-to-north and then **west-to-east** (the "vertical" and "upper
//!   horizontal" clusters),
//! * a minority of storms that never recurve and run straight west.
//!
//! Coordinates are degrees: x = longitude (−100 … −10), y = latitude
//! (5 … 60), matching the scale on which the paper's ε ≈ 30 was tuned is
//! *not* attempted — ε is re-estimated by the entropy heuristic on our
//! data, exactly as a user of the real data would.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traclus_geom::{Point2, Trajectory, TrajectoryId};

use crate::rng_util::{normal, normal_clamped};

/// Configuration of the synthetic hurricane basin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HurricaneConfig {
    /// Number of tracks (the paper's Best Track extract has 570).
    pub tracks: usize,
    /// Mean points per track (the paper's extract averages ≈31).
    pub mean_track_len: f64,
    /// Fraction of storms that never recurve (straight east-to-west).
    pub straight_mover_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HurricaneConfig {
    fn default() -> Self {
        Self {
            tracks: 570,
            mean_track_len: 31.0,
            straight_mover_fraction: 0.3,
            seed: 1950,
        }
    }
}

/// Generates the synthetic Best-Track stand-in.
#[derive(Debug, Clone)]
pub struct HurricaneGenerator {
    config: HurricaneConfig,
}

impl HurricaneGenerator {
    /// Binds a configuration.
    pub fn new(config: HurricaneConfig) -> Self {
        assert!(config.tracks > 0);
        assert!(config.mean_track_len >= 4.0, "tracks need a few fixes");
        assert!((0.0..=1.0).contains(&config.straight_mover_fraction));
        Self { config }
    }

    /// The paper-scale dataset (570 tracks / ≈17.7 k points).
    pub fn paper_scale(seed: u64) -> Vec<Trajectory<2>> {
        Self::new(HurricaneConfig {
            seed,
            ..HurricaneConfig::default()
        })
        .generate()
    }

    /// Generates all tracks.
    pub fn generate(&self) -> Vec<Trajectory<2>> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        (0..self.config.tracks)
            .map(|i| {
                let points = self.one_track(&mut rng);
                Trajectory::new(TrajectoryId(i as u32), points)
            })
            .collect()
    }

    fn one_track(&self, rng: &mut StdRng) -> Vec<Point2> {
        // Genesis: a tight Main Development Region band (the Cape Verde
        // alley) plus a Gulf of Mexico mode. Tight spreads give the basin
        // the distinct density ridges the paper's Figure 18 narrates.
        let gulf = rng.gen::<f64>() >= 0.85;
        let (mut lon, mut lat) = if gulf {
            (
                normal_clamped(rng, -88.0, 2.5, -95.0, -82.0),
                normal_clamped(rng, 23.0, 1.5, 19.0, 27.0),
            )
        } else {
            (
                normal_clamped(rng, -32.0, 5.0, -45.0, -20.0),
                normal_clamped(rng, 12.5, 1.5, 9.0, 17.0),
            )
        };
        let straight = !gulf && rng.gen::<f64>() < self.config.straight_mover_fraction;
        // Recurvature is triggered near the western edge of the subtropical
        // ridge — approximately a fixed longitude — so recurving storms all
        // turn north in the same corridor (the paper's "vertical" cluster).
        let recurve_lon = if gulf {
            lon + 2.0 // Gulf storms arc north almost immediately
        } else {
            normal_clamped(rng, -68.0, 3.0, -78.0, -58.0)
        };
        let len = normal_clamped(
            rng,
            self.config.mean_track_len,
            self.config.mean_track_len * 0.35,
            6.0,
            self.config.mean_track_len * 2.2,
        ) as usize;

        let mut points = Vec::with_capacity(len);
        // Heading state: degrees of lon/lat change per 6-hour fix.
        let mut vx = normal(rng, -1.1, 0.1);
        let mut vy = normal(rng, 0.18, 0.05);
        let mut recurve_start_lat: Option<f64> = None;
        for _ in 0..len {
            points.push(Point2::xy(lon, lat));
            if !straight && recurve_start_lat.is_none() && lon <= recurve_lon {
                recurve_start_lat = Some(lat);
            }
            // Steering currents: trades push west; past the ridge edge the
            // westerlies take over, pulling north then east.
            let (target_vx, target_vy) = match recurve_start_lat {
                Some(start_lat) => {
                    let progress = ((lat - start_lat) / 10.0).clamp(0.0, 1.0);
                    (
                        -1.1 + 2.6 * progress, // −1.1 → +1.5 (west → east)
                        1.1 - 0.2 * progress,  // strong poleward motion
                    )
                }
                None => (-1.1, 0.18),
            };
            // First-order lag toward the steering target + weather noise.
            // The noise scale is small relative to the drift: real best
            // tracks are smooth (6-hourly centre fixes), and the MDL
            // partitioner must be able to merge long straight stretches.
            vx += 0.35 * (target_vx - vx) + normal(rng, 0.0, 0.025);
            vy += 0.35 * (target_vy - vy) + normal(rng, 0.0, 0.02);
            lon += vx;
            lat += vy;
            if !(5.0..=62.0).contains(&lat) || !(-102.0..=-6.0).contains(&lon) {
                break; // left the basin / extratropical transition
            }
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_counts_match() {
        let tracks = HurricaneGenerator::paper_scale(1950);
        assert_eq!(tracks.len(), 570);
        let total_points: usize = tracks.iter().map(|t| t.len()).sum();
        // The paper's extract has 17 736 points; the generator must land in
        // the same ballpark (±25 %).
        assert!(
            (13_000..=23_000).contains(&total_points),
            "total points {total_points}"
        );
        let mean_len = total_points as f64 / tracks.len() as f64;
        assert!((20.0..45.0).contains(&mean_len), "mean length {mean_len}");
    }

    #[test]
    fn tracks_stay_in_the_basin() {
        for t in HurricaneGenerator::paper_scale(7) {
            for p in &t.points {
                assert!((-102.0..=-6.0).contains(&p.x()), "lon {}", p.x());
                assert!((5.0..=62.0).contains(&p.y()), "lat {}", p.y());
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let a = HurricaneGenerator::paper_scale(3);
        let b = HurricaneGenerator::paper_scale(3);
        let c = HurricaneGenerator::paper_scale(4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn low_latitude_motion_is_westward() {
        // The trade-wind regime: while south of ~20°N, storms must move
        // west on average (the paper's lower horizontal cluster).
        let tracks = HurricaneGenerator::paper_scale(11);
        let mut dx_sum = 0.0;
        let mut count = 0usize;
        for t in &tracks {
            for w in t.points.windows(2) {
                if w[0].y() < 20.0 {
                    dx_sum += w[1].x() - w[0].x();
                    count += 1;
                }
            }
        }
        assert!(count > 1000, "enough low-latitude fixes");
        let mean_dx = dx_sum / count as f64;
        assert!(mean_dx < -0.5, "mean westward drift, got {mean_dx}");
    }

    #[test]
    fn recurved_storms_move_east_at_high_latitude() {
        let tracks = HurricaneGenerator::paper_scale(11);
        let mut dx_sum = 0.0;
        let mut count = 0usize;
        for t in &tracks {
            for w in t.points.windows(2) {
                if w[0].y() > 38.0 {
                    dx_sum += w[1].x() - w[0].x();
                    count += 1;
                }
            }
        }
        assert!(count > 200, "enough high-latitude fixes, got {count}");
        assert!(
            dx_sum / count as f64 > 0.3,
            "mean eastward drift after recurvature, got {}",
            dx_sum / count as f64
        );
    }

    #[test]
    fn straight_movers_exist() {
        // With a 30 % straight fraction, a visible share of storms must end
        // their track still heading west.
        let tracks = HurricaneGenerator::paper_scale(5);
        let westward_enders = tracks
            .iter()
            .filter(|t| t.points.len() >= 2)
            .filter(|t| {
                let n = t.points.len();
                t.points[n - 1].x() < t.points[n - 2].x()
            })
            .count();
        assert!(
            westward_enders as f64 / tracks.len() as f64 > 0.15,
            "westward enders: {westward_enders}/570"
        );
    }

    #[test]
    fn custom_config_scales() {
        let small = HurricaneGenerator::new(HurricaneConfig {
            tracks: 25,
            mean_track_len: 12.0,
            straight_mover_fraction: 0.5,
            seed: 1,
        })
        .generate();
        assert_eq!(small.len(), 25);
        assert!(small.iter().all(|t| t.len() >= 2));
    }
}
