//! GeoLife PLT directory loader.
//!
//! The Microsoft Research GeoLife corpus ships one directory per user,
//! each holding `Trajectory/*.plt` GPS logs. A PLT file starts with six
//! header lines, then one fix per line:
//!
//! ```text
//! Geolife trajectory
//! WGS 84
//! Altitude is in Feet
//! Reserved 3
//! 0,2,255,My Track,0,0,2,8421376
//! 0
//! 39.906631,116.385564,0,492,39716.1201388889,2008-10-25,02:53:00
//! ```
//!
//! Fields per fix: latitude, longitude, a reserved `0`, altitude (feet),
//! fractional days since 1899-12-30, date, time. The loader reads
//! latitude/longitude and the fractional-days clock (converted to
//! seconds), producing points as `(x = lon, y = lat)` — the same
//! convention as [`crate::io::parse_best_track`] — and applies
//! [`LoadOptions`] gap splitting, which matters on GPS logs: GeoLife
//! devices pause indoors, and clustering across a multi-hour gap would
//! fabricate a transition segment that was never travelled.

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};

use traclus_geom::{Point2, Trajectory};

use crate::io::IoError;
use crate::loader::{densify_ids, file_stem, DatasetLoader, LoadOptions};

/// Number of header lines a PLT file starts with.
const PLT_HEADER_LINES: usize = 6;

/// [`DatasetLoader`] over a GeoLife-style directory tree.
///
/// `root` may point at the corpus root (user directories containing
/// `Trajectory/` subdirectories), at a single user directory, or directly
/// at a directory of `.plt` files; all three layouts are walked. Files are
/// visited in lexicographic path order so ids are deterministic.
#[derive(Debug, Clone)]
pub struct GeoLifeLoader {
    /// The directory to walk.
    pub root: PathBuf,
    /// Preprocessing; the default splits on gaps longer than 10 minutes,
    /// the conventional GeoLife session break.
    pub options: LoadOptions,
}

impl GeoLifeLoader {
    /// Loader with the conventional 10-minute session split.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self {
            root: root.into(),
            options: LoadOptions {
                gap_split: Some(600.0),
                ..LoadOptions::default()
            },
        }
    }
}

impl DatasetLoader for GeoLifeLoader {
    fn name(&self) -> String {
        format!("geolife:{}", file_stem(&self.root))
    }

    fn load(&self) -> Result<Vec<Trajectory<2>>, IoError> {
        let files = collect_plt_files(&self.root)?;
        if files.is_empty() {
            return Err(IoError::Schema(format!(
                "no .plt files under {}",
                self.root.display()
            )));
        }
        let mut pieces: Vec<Vec<Point2>> = Vec::new();
        for path in files {
            let fixes = read_plt_file(&path)?;
            pieces.extend(self.options.split_track(&fixes));
        }
        Ok(densify_ids(pieces))
    }
}

/// Recursively collects `.plt` paths under `root`, sorted for
/// deterministic trajectory ids.
fn collect_plt_files(root: &Path) -> Result<Vec<PathBuf>, IoError> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir).map_err(|e| IoError::in_file(&dir, e.into()))?;
        for entry in entries {
            let path = entry.map_err(|e| IoError::in_file(&dir, e.into()))?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path
                .extension()
                .is_some_and(|e| e.eq_ignore_ascii_case("plt"))
            {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Parses one PLT file into `(point, seconds)` fixes. Errors are wrapped
/// as [`IoError::InFile`] so multi-file loads report the offending log.
pub fn read_plt_file(path: &Path) -> Result<Vec<(Point2, f64)>, IoError> {
    let file = File::open(path).map_err(|e| IoError::in_file(path, e.into()))?;
    parse_plt(BufReader::new(file)).map_err(|e| IoError::in_file(path, e))
}

/// Parses PLT content from any reader (the testable core of
/// [`read_plt_file`]).
pub fn parse_plt<R: BufRead>(reader: R) -> Result<Vec<(Point2, f64)>, IoError> {
    let mut fixes = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if lineno < PLT_HEADER_LINES {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() < 5 {
            return Err(IoError::Parse {
                line: lineno + 1,
                message: format!("expected at least 5 PLT fields, got {}", fields.len()),
            });
        }
        let num = |idx: usize, what: &str| -> Result<f64, IoError> {
            fields[idx]
                .trim()
                .parse::<f64>()
                .map_err(|e| IoError::Parse {
                    line: lineno + 1,
                    message: format!("bad {what}: {e}"),
                })
        };
        let lat = num(0, "latitude")?;
        let lon = num(1, "longitude")?;
        let days = num(4, "timestamp (days)")?;
        if !(-90.0..=90.0).contains(&lat) || !(-180.0..=180.0).contains(&lon) {
            return Err(IoError::Parse {
                line: lineno + 1,
                message: format!("coordinate out of range: lat {lat}, lon {lon}"),
            });
        }
        // f64::from_str accepts "inf"/"nan"; a NaN clock would silently
        // disable gap splitting (every `t - prev > gap` is false), so
        // reject it here like the CSV path does.
        if !days.is_finite() {
            return Err(IoError::Parse {
                line: lineno + 1,
                message: format!("non-finite timestamp (days): {days}"),
            });
        }
        fixes.push((Point2::xy(lon, lat), days * 86_400.0));
    }
    Ok(fixes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const HEADER: &str = "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n0,2,255,My Track,0,0,2,8421376\n0\n";

    #[test]
    fn parses_fixes_after_the_header() {
        let text = format!(
            "{HEADER}39.9,116.3,0,492,39716.0,2008-10-25,00:00:00\n\
             39.901,116.301,0,492,39716.0001,2008-10-25,00:00:09\n"
        );
        let fixes = parse_plt(Cursor::new(text)).unwrap();
        assert_eq!(fixes.len(), 2);
        assert_eq!(fixes[0].0, Point2::xy(116.3, 39.9), "x = lon, y = lat");
        let dt = fixes[1].1 - fixes[0].1;
        assert!((dt - 8.64).abs() < 1e-6, "0.0001 days = 8.64 s, got {dt}");
    }

    #[test]
    fn short_rows_are_parse_errors_with_line_numbers() {
        let text = format!("{HEADER}39.9,116.3\n");
        match parse_plt(Cursor::new(text)).unwrap_err() {
            IoError::Parse { line, message } => {
                assert_eq!(line, 7);
                assert!(message.contains("PLT fields"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn non_finite_timestamp_rejected() {
        for bad in ["nan", "inf", "-inf"] {
            let text = format!("{HEADER}39.9,116.3,0,492,{bad},2008-10-25,00:00:00\n");
            assert!(
                matches!(
                    parse_plt(Cursor::new(text)).unwrap_err(),
                    IoError::Parse { line: 7, .. }
                ),
                "{bad} must be rejected"
            );
        }
    }

    #[test]
    fn out_of_range_coordinates_rejected() {
        let text = format!("{HEADER}99.0,116.3,0,492,39716.0,2008-10-25,00:00:00\n");
        assert!(matches!(
            parse_plt(Cursor::new(text)).unwrap_err(),
            IoError::Parse { line: 7, .. }
        ));
    }

    #[test]
    fn missing_directory_is_typed() {
        let err = GeoLifeLoader::new("/nonexistent/geolife")
            .load()
            .unwrap_err();
        assert!(matches!(err, IoError::InFile { .. }));
    }
}
