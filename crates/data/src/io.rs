//! Trajectory I/O: a simple CSV interchange format plus a best-track-style
//! parser, so the pipeline runs unchanged on the paper's *real* datasets if
//! a user supplies them (the original URLs are dead; see DESIGN.md §4).
//!
//! CSV format (one point per row, trajectories grouped by id):
//!
//! ```text
//! traj_id,x,y
//! 0,12.5,-70.2
//! 0,13.1,-71.0
//! 1,30.0,-50.0
//! ```

use std::io::{BufRead, Write};

use traclus_geom::{Point2, Trajectory, TrajectoryId};

/// Errors raised by the loaders.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed row, with line number and message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A loader-level schema problem independent of any particular row
    /// (e.g. a column mapping that references a column the file cannot
    /// have, or a dataset directory with the wrong layout).
    Schema(String),
    /// An error raised while reading a specific file of a multi-file
    /// dataset (e.g. one PLT log of a GeoLife directory), wrapping the
    /// inner error with the offending path.
    InFile {
        /// The file that failed to load.
        path: std::path::PathBuf,
        /// What went wrong inside it.
        source: Box<IoError>,
    },
}

impl IoError {
    /// Wraps an error with the path of the file it occurred in, so
    /// multi-file loaders report *which* file is malformed.
    pub fn in_file(path: impl Into<std::path::PathBuf>, source: IoError) -> Self {
        IoError::InFile {
            path: path.into(),
            source: Box::new(source),
        }
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            IoError::Schema(message) => write!(f, "schema error: {message}"),
            IoError::InFile { path, source } => write!(f, "{}: {source}", path.display()),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Parse { .. } | IoError::Schema(_) => None,
            IoError::InFile { source, .. } => Some(source.as_ref()),
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes trajectories as CSV (`traj_id,x,y` with a header row).
pub fn write_csv<W: Write>(mut w: W, trajectories: &[Trajectory<2>]) -> Result<(), IoError> {
    writeln!(w, "traj_id,x,y")?;
    for t in trajectories {
        for p in &t.points {
            writeln!(w, "{},{},{}", t.id.0, p.x(), p.y())?;
        }
    }
    Ok(())
}

/// Reads the CSV written by [`write_csv`] (header optional). Rows with the
/// same `traj_id` must be contiguous; ids are re-densified in first-seen
/// order so the result satisfies the dense-id invariant downstream code
/// expects.
pub fn read_csv<R: BufRead>(r: R) -> Result<Vec<Trajectory<2>>, IoError> {
    let mut out: Vec<Trajectory<2>> = Vec::new();
    let mut current_source_id: Option<u64> = None;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if lineno == 0 && trimmed.starts_with("traj_id") {
            continue; // header
        }
        let mut parts = trimmed.split(',');
        let parse = |field: Option<&str>, what: &str| -> Result<f64, IoError> {
            field
                .ok_or_else(|| IoError::Parse {
                    line: lineno + 1,
                    message: format!("missing {what}"),
                })?
                .trim()
                .parse::<f64>()
                .map_err(|e| IoError::Parse {
                    line: lineno + 1,
                    message: format!("bad {what}: {e}"),
                })
        };
        let id_field = parts.next().ok_or_else(|| IoError::Parse {
            line: lineno + 1,
            message: "missing traj_id".to_string(),
        })?;
        let source_id: u64 = id_field.trim().parse().map_err(|e| IoError::Parse {
            line: lineno + 1,
            message: format!("bad traj_id: {e}"),
        })?;
        let x = parse(parts.next(), "x")?;
        let y = parse(parts.next(), "y")?;
        if current_source_id != Some(source_id) {
            current_source_id = Some(source_id);
            out.push(Trajectory::new(TrajectoryId(out.len() as u32), Vec::new()));
        }
        out.last_mut()
            .expect("pushed above")
            .points
            .push(Point2::xy(x, y));
    }
    Ok(out)
}

/// Parses a best-track-style listing: per-storm header lines followed by
/// 6-hourly fix lines, resembling the Unisys/HURDAT layout the paper's
/// hurricane data used. Expected shape:
///
/// ```text
/// STORM ALPHA 1999
/// 12.5 -45.0 65 990
/// 13.1 -46.2 70 985
/// STORM BETA 1999
/// ...
/// ```
///
/// Fix lines are `lat lon [wind [pressure]]` (whitespace separated; the
/// trailing intensity fields are ignored — the paper extracts latitude and
/// longitude only). Output points are `(x = lon, y = lat)`.
pub fn parse_best_track(text: &str) -> Result<Vec<Trajectory<2>>, IoError> {
    let mut out: Vec<Trajectory<2>> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.to_ascii_uppercase().starts_with("STORM") {
            out.push(Trajectory::new(TrajectoryId(out.len() as u32), Vec::new()));
            continue;
        }
        let mut fields = line.split_whitespace();
        let lat: f64 = fields
            .next()
            .ok_or_else(|| IoError::Parse {
                line: lineno + 1,
                message: "missing latitude".into(),
            })?
            .parse()
            .map_err(|e| IoError::Parse {
                line: lineno + 1,
                message: format!("bad latitude: {e}"),
            })?;
        let lon: f64 = fields
            .next()
            .ok_or_else(|| IoError::Parse {
                line: lineno + 1,
                message: "missing longitude".into(),
            })?
            .parse()
            .map_err(|e| IoError::Parse {
                line: lineno + 1,
                message: format!("bad longitude: {e}"),
            })?;
        let storm = out.last_mut().ok_or_else(|| IoError::Parse {
            line: lineno + 1,
            message: "fix line before any STORM header".into(),
        })?;
        storm.points.push(Point2::xy(lon, lat));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> Vec<Trajectory<2>> {
        vec![
            Trajectory::new(
                TrajectoryId(0),
                vec![Point2::xy(1.0, 2.0), Point2::xy(3.5, -4.25)],
            ),
            Trajectory::new(TrajectoryId(1), vec![Point2::xy(-7.0, 0.0)]),
        ]
    }

    #[test]
    fn csv_round_trip() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &sample()).unwrap();
        let parsed = read_csv(Cursor::new(buf)).unwrap();
        assert_eq!(parsed, sample());
    }

    #[test]
    fn csv_without_header() {
        let text = "0,1.0,2.0\n0,2.0,3.0\n5,9.0,9.0\n";
        let parsed = read_csv(Cursor::new(text)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].points.len(), 2);
        assert_eq!(
            parsed[1].id,
            TrajectoryId(1),
            "source id 5 re-densified to 1"
        );
    }

    #[test]
    fn csv_skips_blank_lines() {
        let text = "traj_id,x,y\n\n0,1,2\n\n0,3,4\n";
        let parsed = read_csv(Cursor::new(text)).unwrap();
        assert_eq!(parsed[0].points.len(), 2);
    }

    #[test]
    fn csv_reports_bad_rows_with_line_numbers() {
        let text = "traj_id,x,y\n0,1.0,not_a_number\n";
        let err = read_csv(Cursor::new(text)).unwrap_err();
        match err {
            IoError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("bad y"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn csv_missing_column() {
        let text = "0,1.0\n";
        assert!(matches!(
            read_csv(Cursor::new(text)),
            Err(IoError::Parse { .. })
        ));
    }

    #[test]
    fn best_track_parsing() {
        let text = "\
# Atlantic 1999 extract
STORM ALPHA 1999
12.5 -45.0 65 990
13.1 -46.2 70 985
STORM BETA 1999
20.0 -80.0
21.5 -81.0 40
";
        let storms = parse_best_track(text).unwrap();
        assert_eq!(storms.len(), 2);
        assert_eq!(storms[0].points.len(), 2);
        assert_eq!(storms[0].points[0], Point2::xy(-45.0, 12.5), "x=lon, y=lat");
        assert_eq!(storms[1].points.len(), 2);
    }

    #[test]
    fn best_track_fix_before_header_is_an_error() {
        let err = parse_best_track("12.0 -40.0\n").unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
    }

    #[test]
    fn best_track_bad_coordinate() {
        let err = parse_best_track("STORM X 2000\nabc -40.0\n").unwrap_err();
        match err {
            IoError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("latitude"));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn error_display_formats() {
        let e = IoError::Parse {
            line: 3,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "line 3: boom");
    }
}
