//! Synthetic animal-movement telemetry.
//!
//! Stands in for the Starkey project data of Section 5.1 (radio-telemetry
//! of elk, deer and cattle; the paper uses Elk1993 — 33 trajectories,
//! 47 204 points — and Deer1995 — 32 trajectories, 20 065 points; x/y
//! coordinates). The Starkey enclosure is roughly a 10 km × 10 km area;
//! we use metres on a 10 000 × 10 000 square.
//!
//! The generator reproduces the structural properties the TRACLUS
//! experiments exercise:
//!
//! * **few, very long trajectories** ("trajectories in the animal movement
//!   data set are much longer than those in the hurricane track data");
//! * **shared movement corridors** between resource sites — animals travel
//!   the same paths repeatedly, producing the dense common sub-trajectories
//!   Figures 21/22 find (13 and 2 clusters respectively);
//! * **diffuse dwelling** around camps — locally random motion that must
//!   end up as noise or be absorbed, not invent corridors;
//! * regions that *look* dense but mix incompatible headings (the paper's
//!   upper-right Elk1993 region that correctly yields no cluster) arise
//!   naturally from dwelling areas.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traclus_geom::{Point2, Trajectory, TrajectoryId, Vector2};

use crate::rng_util::normal;

/// A named waypoint network: camps (dwell sites) and corridors
/// (camp-to-camp polylines all animals share).
#[derive(Debug, Clone)]
pub struct Habitat {
    /// Dwell sites.
    pub camps: Vec<Point2>,
    /// Corridors as index pairs into `camps`, each with fixed via points.
    pub corridors: Vec<Corridor>,
}

/// A shared path between two camps.
#[derive(Debug, Clone)]
pub struct Corridor {
    /// Index of the origin camp.
    pub from: usize,
    /// Index of the destination camp.
    pub to: usize,
    /// Interior via points shaping the path.
    pub via: Vec<Point2>,
}

impl Habitat {
    /// The Elk1993 stand-in: eight spread-out camps and a nine-corridor
    /// web (the paper finds 13 clusters across "most of the dense
    /// regions"; a directed corridor travelled both ways can yield two
    /// clusters, so ~9 corridors support a comparable cluster count).
    pub fn elk() -> Self {
        let camps = vec![
            Point2::xy(1_200.0, 1_300.0),
            Point2::xy(5_300.0, 800.0),
            Point2::xy(9_000.0, 1_700.0),
            Point2::xy(9_200.0, 5_600.0),
            Point2::xy(8_600.0, 9_200.0),
            Point2::xy(4_700.0, 9_000.0),
            Point2::xy(900.0, 8_600.0),
            Point2::xy(4_900.0, 4_900.0),
        ];
        let corridors = vec![
            Corridor {
                from: 0,
                to: 1,
                via: vec![Point2::xy(3_200.0, 700.0)],
            },
            Corridor {
                from: 1,
                to: 2,
                via: vec![Point2::xy(7_200.0, 900.0)],
            },
            Corridor {
                from: 2,
                to: 3,
                via: vec![Point2::xy(9_500.0, 3_600.0)],
            },
            Corridor {
                from: 3,
                to: 4,
                via: vec![Point2::xy(9_300.0, 7_600.0)],
            },
            Corridor {
                from: 4,
                to: 5,
                via: vec![Point2::xy(6_600.0, 9_500.0)],
            },
            Corridor {
                from: 5,
                to: 6,
                via: vec![Point2::xy(2_700.0, 9_300.0)],
            },
            Corridor {
                from: 6,
                to: 0,
                via: vec![Point2::xy(500.0, 5_000.0)],
            },
            Corridor {
                from: 7,
                to: 1,
                via: vec![Point2::xy(5_100.0, 2_900.0)],
            },
            Corridor {
                from: 7,
                to: 5,
                via: vec![Point2::xy(4_800.0, 7_000.0)],
            },
        ];
        Self { camps, corridors }
    }

    /// The Deer1995 stand-in: three camps, **two** heavily used corridors
    /// (the paper finds exactly 2 clusters, "the center region is not so
    /// dense").
    pub fn deer() -> Self {
        let camps = vec![
            Point2::xy(2_000.0, 2_500.0),
            Point2::xy(8_000.0, 2_200.0),
            Point2::xy(5_200.0, 8_000.0),
        ];
        let corridors = vec![
            Corridor {
                from: 0,
                to: 1,
                via: vec![Point2::xy(5_000.0, 1_800.0)],
            },
            Corridor {
                from: 1,
                to: 2,
                via: vec![Point2::xy(7_300.0, 5_300.0)],
            },
        ];
        Self { camps, corridors }
    }

    fn corridor_polyline(&self, c: &Corridor) -> Vec<Point2> {
        let mut pts = vec![self.camps[c.from]];
        pts.extend(c.via.iter().copied());
        pts.push(self.camps[c.to]);
        pts
    }
}

/// Configuration of the telemetry simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnimalConfig {
    /// Number of animals (trajectories).
    pub animals: usize,
    /// Telemetry fixes per animal.
    pub fixes_per_animal: usize,
    /// Mean fix-to-fix step while travelling, in metres.
    pub travel_step: f64,
    /// Cross-track jitter while travelling (corridor width), metres.
    pub corridor_sigma: f64,
    /// Dwell step scale at camps, metres.
    pub dwell_step: f64,
    /// Mean number of fixes spent dwelling before the next trip.
    pub mean_dwell: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnimalConfig {
    fn default() -> Self {
        Self {
            animals: 33,
            fixes_per_animal: 1_430,
            travel_step: 180.0,
            corridor_sigma: 25.0,
            dwell_step: 20.0,
            mean_dwell: 15.0,
            seed: 1993,
        }
    }
}

/// Generates telemetry over a habitat.
#[derive(Debug, Clone)]
pub struct AnimalGenerator {
    habitat: Habitat,
    config: AnimalConfig,
}

impl AnimalGenerator {
    /// Binds a habitat and a configuration.
    pub fn new(habitat: Habitat, config: AnimalConfig) -> Self {
        assert!(config.animals > 0 && config.fixes_per_animal > 1);
        assert!(!habitat.camps.is_empty() && !habitat.corridors.is_empty());
        Self { habitat, config }
    }

    /// The Elk1993 stand-in (33 trajectories, ≈47 k points).
    pub fn elk1993(seed: u64) -> Vec<Trajectory<2>> {
        Self::new(
            Habitat::elk(),
            AnimalConfig {
                seed,
                ..AnimalConfig::default()
            },
        )
        .generate()
    }

    /// The Deer1995 stand-in (32 trajectories, ≈20 k points; deer dwell
    /// more and travel less, and use only two corridors).
    pub fn deer1995(seed: u64) -> Vec<Trajectory<2>> {
        Self::new(
            Habitat::deer(),
            AnimalConfig {
                animals: 32,
                fixes_per_animal: 627,
                mean_dwell: 40.0,
                seed,
                ..AnimalConfig::default()
            },
        )
        .generate()
    }

    /// Generates all animals.
    pub fn generate(&self) -> Vec<Trajectory<2>> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        (0..self.config.animals)
            .map(|i| {
                let points = self.one_animal(&mut rng);
                Trajectory::new(TrajectoryId(i as u32), points)
            })
            .collect()
    }

    fn one_animal(&self, rng: &mut StdRng) -> Vec<Point2> {
        let cfg = &self.config;
        // Individual home ranges: each animal beds at its own offset from
        // every camp (real telemetry shows per-animal bedding sites, not
        // one shared point — without this, camps become hyper-dense hubs
        // that density-chain every corridor into one cluster).
        let home_offsets: Vec<Vector2> = (0..self.habitat.camps.len())
            .map(|_| Vector2::xy(normal(rng, 0.0, 350.0), normal(rng, 0.0, 350.0)))
            .collect();
        let mut camp = rng.gen_range(0..self.habitat.camps.len());
        let mut pos = self.habitat.camps[camp] + home_offsets[camp];
        let mut points = Vec::with_capacity(cfg.fixes_per_animal);
        points.push(pos);
        while points.len() < cfg.fixes_per_animal {
            // Dwell at the animal's own bedding site near the camp.
            let dwell = (normal(rng, cfg.mean_dwell, cfg.mean_dwell * 0.4).max(4.0)) as usize;
            for _ in 0..dwell {
                if points.len() >= cfg.fixes_per_animal {
                    return points;
                }
                let home = self.habitat.camps[camp] + home_offsets[camp];
                // Ornstein–Uhlenbeck-style tether keeps dwellers near camp
                // (weak pull: the stationary cloud spans a few hundred
                // metres, like a real bedding/feeding area, so dwell points
                // do not collapse into an ultra-dense blob).
                pos = Point2::xy(
                    pos.x() + 0.02 * (home.x() - pos.x()) + normal(rng, 0.0, cfg.dwell_step),
                    pos.y() + 0.02 * (home.y() - pos.y()) + normal(rng, 0.0, cfg.dwell_step),
                );
                points.push(pos);
            }
            // Pick a corridor leaving this camp (either direction).
            let options: Vec<(usize, bool)> = self
                .habitat
                .corridors
                .iter()
                .enumerate()
                .filter_map(|(k, c)| {
                    if c.from == camp {
                        Some((k, false))
                    } else if c.to == camp {
                        Some((k, true))
                    } else {
                        None
                    }
                })
                .collect();
            if options.is_empty() {
                // Isolated camp: keep dwelling (config sanity keeps this
                // from looping forever because dwell always emits fixes).
                continue;
            }
            let (corridor_idx, reversed) = options[rng.gen_range(0..options.len())];
            let corridor = &self.habitat.corridors[corridor_idx];
            let mut path = self.habitat.corridor_polyline(corridor);
            if reversed {
                path.reverse();
            }
            camp = if reversed { corridor.from } else { corridor.to };
            // Walk the corridor with cross-track jitter.
            let mut leg = 0usize;
            while leg + 1 < path.len() {
                let goal = path[leg + 1];
                let to_goal = pos.vector_to(&goal);
                let dist = to_goal.norm();
                if dist < cfg.travel_step {
                    leg += 1;
                    continue;
                }
                if points.len() >= cfg.fixes_per_animal {
                    return points;
                }
                let dir = to_goal / dist;
                let step = normal(rng, cfg.travel_step, cfg.travel_step * 0.2).max(10.0);
                // Cross-track jitter perpendicular to the heading.
                let perp = Vector2::xy(-dir.y(), dir.x());
                let lateral = normal(rng, 0.0, cfg.corridor_sigma);
                pos = pos + dir * step + perp * lateral;
                points.push(pos);
            }
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elk_counts_match_paper() {
        let elk = AnimalGenerator::elk1993(1993);
        assert_eq!(elk.len(), 33);
        let total: usize = elk.iter().map(|t| t.len()).sum();
        assert_eq!(total, 33 * 1_430, "exact fix count per animal");
        // Paper: 47 204 points over 33 animals ≈ 1 430 each.
        assert!((total as i64 - 47_204).abs() < 1_000);
    }

    #[test]
    fn deer_counts_match_paper() {
        let deer = AnimalGenerator::deer1995(1995);
        assert_eq!(deer.len(), 32);
        let total: usize = deer.iter().map(|t| t.len()).sum();
        // Paper: 20 065 points.
        assert!((total as i64 - 20_065).abs() < 1_000, "total {total}");
    }

    #[test]
    fn animal_trajectories_are_much_longer_than_hurricanes() {
        let elk = AnimalGenerator::elk1993(2);
        let hurricanes = crate::hurricane::HurricaneGenerator::paper_scale(2);
        let elk_mean = elk.iter().map(|t| t.len()).sum::<usize>() as f64 / elk.len() as f64;
        let hur_mean =
            hurricanes.iter().map(|t| t.len()).sum::<usize>() as f64 / hurricanes.len() as f64;
        assert!(
            elk_mean > 10.0 * hur_mean,
            "elk {elk_mean} vs hurricanes {hur_mean}"
        );
    }

    #[test]
    fn positions_stay_in_the_enclosure_ballpark() {
        for t in AnimalGenerator::elk1993(3) {
            for p in &t.points {
                assert!(
                    (-1_500.0..=11_500.0).contains(&p.x())
                        && (-1_500.0..=11_500.0).contains(&p.y()),
                    "escaped enclosure: {p:?}"
                );
            }
        }
    }

    #[test]
    fn corridors_are_actually_travelled() {
        // Count fixes near the elk corridor between camps 0 and 1 (the
        // southern route): the shared path must be visited by most animals.
        let habitat = Habitat::elk();
        let elk = AnimalGenerator::elk1993(4);
        let mid = Point2::xy(3_200.0, 700.0); // a via point of corridor 0
        let animals_nearby = elk
            .iter()
            .filter(|t| t.points.iter().any(|p| p.distance(&mid) < 600.0))
            .count();
        assert!(
            animals_nearby >= habitat.camps.len(), // ≥ 5 of 33
            "only {animals_nearby} animals used the southern corridor"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(AnimalGenerator::elk1993(9), AnimalGenerator::elk1993(9));
        assert_ne!(AnimalGenerator::elk1993(9), AnimalGenerator::elk1993(10));
    }

    #[test]
    fn habitat_accessors() {
        let elk = Habitat::elk();
        assert_eq!(elk.camps.len(), 8);
        assert_eq!(elk.corridors.len(), 9);
        let deer = Habitat::deer();
        assert_eq!(deer.corridors.len(), 2, "two corridors ⇒ two clusters");
    }
}
