//! # traclus-data
//!
//! Dataset substrate for the TRACLUS reproduction.
//!
//! The paper evaluates on two real datasets that can no longer be
//! downloaded (Section 5.1): the Atlantic *Best Track* hurricane extract
//! (570 trajectories / 17 736 points) and the Starkey telemetry sets
//! Elk1993 (33 / 47 204) and Deer1995 (32 / 20 065). This crate provides
//!
//! * [`hurricane::HurricaneGenerator`] and [`animal::AnimalGenerator`] —
//!   seeded synthetic stand-ins matching those datasets' counts, scales
//!   and movement regimes (see DESIGN.md §4 for the substitution
//!   rationale);
//! * [`scene`] — labelled corridor+noise scenes for the Figure 23
//!   robustness experiment and for ground-truth validation;
//! * [`io`] — CSV and best-track-style parsers so the *real* files can be
//!   dropped in unchanged if available;
//! * [`loader`] and [`geolife`] — the [`DatasetLoader`] trait unifying
//!   every on-disk format (GeoLife PLT directories, generic timestamped
//!   CSV with a configurable column mapping, and the legacy formats)
//!   behind one interface with shared gap-splitting / downsampling
//!   preprocessing.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod animal;
pub mod geolife;
pub mod hurricane;
pub mod io;
pub mod loader;
pub mod rng_util;
pub mod scene;

pub use animal::{AnimalConfig, AnimalGenerator, Corridor, Habitat};
pub use geolife::{parse_plt, read_plt_file, GeoLifeLoader};
pub use hurricane::{HurricaneConfig, HurricaneGenerator};
pub use io::{parse_best_track, read_csv, write_csv, IoError};
pub use loader::{
    parse_timestamp, read_timed_csv, BestTrackLoader, CsvSchema, DatasetLoader,
    InterchangeCsvLoader, LoadOptions, TimedCsvLoader,
};
pub use scene::{default_backbones, generate_scene, Scene, SceneConfig, TruthLabel};
