//! Unified dataset loading: the [`DatasetLoader`] trait plus loaders for
//! generic timestamped CSV and the legacy interchange-CSV / best-track
//! formats ([`geolife`](crate::geolife) adds GeoLife PLT directories).
//!
//! The paper evaluates on real trajectory data (Section 5.1); a
//! benchmarkable system must ingest the common open formats those datasets
//! ship in. Every loader produces dense-id [`Trajectory`] lists ready for
//! the pipeline, applying the same preprocessing ([`LoadOptions`]):
//! splitting on temporal gaps, optional downsampling, and a minimum-length
//! filter — so quality numbers computed downstream are comparable across
//! formats.

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;

use traclus_geom::{Point2, Trajectory, TrajectoryId};

use crate::io::{parse_best_track, read_csv, IoError};

/// A source of planar trajectories with a uniform loading interface.
///
/// Implementors parse one on-disk format; [`LoadOptions`] preprocessing
/// (gap splitting, downsampling, length filtering) is shared, so the
/// evaluation harness treats a GeoLife directory, a timestamped CSV and a
/// best-track file identically.
pub trait DatasetLoader {
    /// Human-readable dataset name, used in reports and error messages.
    fn name(&self) -> String;

    /// Loads every trajectory. Ids are dense (`0..n`) in load order.
    fn load(&self) -> Result<Vec<Trajectory<2>>, IoError>;
}

/// Preprocessing applied by every loader after parsing raw fixes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadOptions {
    /// Split a track into separate trajectories where consecutive fixes
    /// are more than this many seconds apart (`None` = never split;
    /// ignored by formats without timestamps).
    pub gap_split: Option<f64>,
    /// Keep every k-th fix (plus the final one); `1` keeps everything.
    pub downsample: usize,
    /// Drop trajectories with fewer points than this after splitting and
    /// downsampling. The pipeline needs at least 2 points per trajectory.
    pub min_points: usize,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            gap_split: None,
            downsample: 1,
            min_points: 2,
        }
    }
}

impl LoadOptions {
    /// Splits one timed track on temporal gaps, downsamples each piece,
    /// and drops pieces shorter than `min_points`. Fixes must be in
    /// recording order; timestamps are seconds (any epoch — only
    /// differences matter).
    pub fn split_track(&self, fixes: &[(Point2, f64)]) -> Vec<Vec<Point2>> {
        assert!(self.downsample >= 1, "downsample factor must be ≥ 1");
        let mut pieces: Vec<Vec<Point2>> = Vec::new();
        let mut current: Vec<Point2> = Vec::new();
        let mut prev_t: Option<f64> = None;
        for &(p, t) in fixes {
            if let (Some(gap), Some(prev)) = (self.gap_split, prev_t) {
                if t - prev > gap {
                    pieces.push(std::mem::take(&mut current));
                }
            }
            current.push(p);
            prev_t = Some(t);
        }
        pieces.push(current);
        pieces
            .into_iter()
            .map(|piece| self.thin(piece))
            .filter(|piece| piece.len() >= self.min_points)
            .collect()
    }

    /// Applies the same downsampling + length filter to an untimed track
    /// (gap splitting needs timestamps, so it does not apply).
    pub fn split_untimed(&self, points: Vec<Point2>) -> Vec<Vec<Point2>> {
        assert!(self.downsample >= 1, "downsample factor must be ≥ 1");
        let thinned = self.thin(points);
        if thinned.len() >= self.min_points {
            vec![thinned]
        } else {
            Vec::new()
        }
    }

    /// Keeps every k-th point plus the last (so the track's extent is
    /// preserved).
    fn thin(&self, points: Vec<Point2>) -> Vec<Point2> {
        if self.downsample <= 1 || points.len() <= 2 {
            return points;
        }
        let last = points.len() - 1;
        points
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % self.downsample == 0 || *i == last)
            .map(|(_, p)| p)
            .collect()
    }
}

/// Re-identifies a list of point sequences as dense-id trajectories.
pub(crate) fn densify_ids(pieces: Vec<Vec<Point2>>) -> Vec<Trajectory<2>> {
    pieces
        .into_iter()
        .enumerate()
        .map(|(i, points)| Trajectory::new(TrajectoryId(i as u32), points))
        .collect()
}

/// Column mapping of a generic timestamped CSV (0-based indices).
///
/// Covers the common shapes trajectory datasets ship in — `id,lat,lon,ts`,
/// `ts,lon,lat`, T-Drive/Porto-style exports — without a bespoke parser
/// per dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsvSchema {
    /// Column holding the track id (`None` = the whole file is one track).
    /// Rows of the same track must be contiguous; ids are re-densified in
    /// first-seen order.
    pub id_column: Option<usize>,
    /// Column holding the x coordinate (longitude for geographic data).
    pub x_column: usize,
    /// Column holding the y coordinate (latitude).
    pub y_column: usize,
    /// Column holding the timestamp (`None` = no time axis; gap splitting
    /// is then unavailable). Accepted forms: a number (epoch seconds) or
    /// `YYYY-MM-DD[ T]HH:MM[:SS[.frac]]` (also with `/` date separators).
    pub time_column: Option<usize>,
    /// Field delimiter.
    pub delimiter: char,
    /// Skip the first line as a header.
    pub has_header: bool,
}

impl Default for CsvSchema {
    fn default() -> Self {
        Self {
            id_column: Some(0),
            x_column: 1,
            y_column: 2,
            time_column: Some(3),
            delimiter: ',',
            has_header: true,
        }
    }
}

impl CsvSchema {
    fn max_column(&self) -> usize {
        let mut m = self.x_column.max(self.y_column);
        if let Some(c) = self.id_column {
            m = m.max(c);
        }
        if let Some(c) = self.time_column {
            m = m.max(c);
        }
        m
    }
}

/// Parses `YYYY-MM-DD[ T]HH:MM[:SS[.frac]]` (or `/`-separated dates, or a
/// plain number of epoch seconds) into seconds. Only differences are ever
/// used downstream, so the epoch is irrelevant as long as it is shared.
pub fn parse_timestamp(text: &str) -> Result<f64, String> {
    let t = text.trim();
    if t.is_empty() {
        return Err("empty timestamp".to_string());
    }
    if let Ok(v) = t.parse::<f64>() {
        return if v.is_finite() {
            Ok(v)
        } else {
            Err(format!("non-finite timestamp {t:?}"))
        };
    }
    let (date, time) = match t.split_once([' ', 'T']) {
        Some((d, h)) => (d, Some(h)),
        None => (t, None),
    };
    let mut date_parts = date.split(['-', '/']);
    let mut field = |what: &str| -> Result<i64, String> {
        date_parts
            .next()
            .ok_or_else(|| format!("missing {what} in {t:?}"))?
            .parse::<i64>()
            .map_err(|e| format!("bad {what} in {t:?}: {e}"))
    };
    let (year, month, day) = (field("year")?, field("month")?, field("day")?);
    if !(1..=12).contains(&month) || day < 1 || day > days_in_month(year, month as u32) as i64 {
        return Err(format!("calendar field out of range in {t:?}"));
    }
    let mut seconds = civil_days(year, month as u32, day as u32) as f64 * 86_400.0;
    if let Some(clock) = time {
        let mut parts = clock.split(':');
        let hour: f64 = parts
            .next()
            .unwrap_or("")
            .parse()
            .map_err(|e| format!("bad hour in {t:?}: {e}"))?;
        let minute: f64 = parts
            .next()
            .ok_or_else(|| format!("missing minutes in {t:?}"))?
            .parse()
            .map_err(|e| format!("bad minute in {t:?}: {e}"))?;
        let second: f64 = match parts.next() {
            Some(s) => s.parse().map_err(|e| format!("bad second in {t:?}: {e}"))?,
            None => 0.0,
        };
        // 0..61 on seconds admits leap seconds, nothing else.
        if !(0.0..24.0).contains(&hour)
            || !(0.0..60.0).contains(&minute)
            || !(0.0..61.0).contains(&second)
        {
            return Err(format!("clock field out of range in {t:?}"));
        }
        seconds += hour * 3600.0 + minute * 60.0 + second;
    }
    Ok(seconds)
}

/// Days in a proleptic-Gregorian month (rejects Feb 30-style dates that
/// [`civil_days`] would otherwise silently roll into the next month).
fn days_in_month(y: i64, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        _ => {
            if y % 4 == 0 && (y % 100 != 0 || y % 400 == 0) {
                29
            } else {
                28
            }
        }
    }
}

/// Days since 1970-01-01 of a proleptic-Gregorian civil date (Howard
/// Hinnant's `days_from_civil` algorithm; exact for all i64-represented
/// years of interest).
fn civil_days(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = (m + 9) % 12; // March = 0
    let doy = (153 * mp as u64 + 2) / 5 + d as u64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe as i64 - 719_468
}

/// Reads a timestamped CSV from any reader using a [`CsvSchema`] column
/// mapping, applying [`LoadOptions`] preprocessing. The file-path variant
/// is [`TimedCsvLoader`].
pub fn read_timed_csv<R: BufRead>(
    reader: R,
    schema: &CsvSchema,
    options: &LoadOptions,
) -> Result<Vec<Trajectory<2>>, IoError> {
    if schema.time_column.is_none() && options.gap_split.is_some() {
        return Err(IoError::Schema(
            "gap splitting requires a time column".to_string(),
        ));
    }
    let mut pieces: Vec<Vec<Point2>> = Vec::new();
    let mut track: Vec<(Point2, f64)> = Vec::new();
    let mut current_id: Option<String> = None;
    let flush = |track: &mut Vec<(Point2, f64)>, pieces: &mut Vec<Vec<Point2>>| {
        pieces.extend(options.split_track(track));
        track.clear();
    };
    let mut seq = 0.0f64; // fallback clock when there is no time column
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || (lineno == 0 && schema.has_header) {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(schema.delimiter).collect();
        if fields.len() <= schema.max_column() {
            return Err(IoError::Parse {
                line: lineno + 1,
                message: format!(
                    "expected at least {} columns, got {}",
                    schema.max_column() + 1,
                    fields.len()
                ),
            });
        }
        let coord = |col: usize, what: &str| -> Result<f64, IoError> {
            fields[col]
                .trim()
                .parse::<f64>()
                .map_err(|e| IoError::Parse {
                    line: lineno + 1,
                    message: format!("bad {what}: {e}"),
                })
        };
        let x = coord(schema.x_column, "x coordinate")?;
        let y = coord(schema.y_column, "y coordinate")?;
        let t = match schema.time_column {
            Some(col) => parse_timestamp(fields[col]).map_err(|message| IoError::Parse {
                line: lineno + 1,
                message,
            })?,
            None => {
                seq += 1.0;
                seq
            }
        };
        if let Some(col) = schema.id_column {
            let id = fields[col].trim();
            if current_id.as_deref() != Some(id) {
                flush(&mut track, &mut pieces);
                current_id = Some(id.to_string());
            }
        }
        track.push((Point2::xy(x, y), t));
    }
    flush(&mut track, &mut pieces);
    Ok(densify_ids(pieces))
}

/// [`DatasetLoader`] over one timestamped CSV file.
#[derive(Debug, Clone)]
pub struct TimedCsvLoader {
    /// The CSV file.
    pub path: PathBuf,
    /// Column mapping.
    pub schema: CsvSchema,
    /// Preprocessing.
    pub options: LoadOptions,
}

impl TimedCsvLoader {
    /// Loader with the default schema (`id,x,y,time` with header) and
    /// default preprocessing.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            schema: CsvSchema::default(),
            options: LoadOptions::default(),
        }
    }
}

impl DatasetLoader for TimedCsvLoader {
    fn name(&self) -> String {
        file_stem(&self.path)
    }

    fn load(&self) -> Result<Vec<Trajectory<2>>, IoError> {
        let file = File::open(&self.path).map_err(|e| IoError::in_file(&self.path, e.into()))?;
        read_timed_csv(BufReader::new(file), &self.schema, &self.options)
            .map_err(|e| IoError::in_file(&self.path, e))
    }
}

/// [`DatasetLoader`] over the legacy interchange CSV (`traj_id,x,y`) of
/// [`read_csv`] — no timestamps, so only downsampling and length
/// filtering apply.
#[derive(Debug, Clone)]
pub struct InterchangeCsvLoader {
    /// The CSV file.
    pub path: PathBuf,
    /// Preprocessing (gap splitting is unavailable — no time axis).
    pub options: LoadOptions,
}

impl InterchangeCsvLoader {
    /// Loader with default preprocessing.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            options: LoadOptions::default(),
        }
    }
}

impl DatasetLoader for InterchangeCsvLoader {
    fn name(&self) -> String {
        file_stem(&self.path)
    }

    fn load(&self) -> Result<Vec<Trajectory<2>>, IoError> {
        if self.options.gap_split.is_some() {
            return Err(IoError::Schema(
                "interchange CSV has no time axis; gap splitting unavailable".to_string(),
            ));
        }
        let file = File::open(&self.path).map_err(|e| IoError::in_file(&self.path, e.into()))?;
        let raw = read_csv(BufReader::new(file)).map_err(|e| IoError::in_file(&self.path, e))?;
        Ok(densify_ids(
            raw.into_iter()
                .flat_map(|t| self.options.split_untimed(t.points))
                .collect(),
        ))
    }
}

/// [`DatasetLoader`] over a best-track-style file ([`parse_best_track`]) —
/// the format the paper's hurricane data used. Fixes are 6-hourly, so gap
/// splitting does not apply; downsampling and length filtering do.
#[derive(Debug, Clone)]
pub struct BestTrackLoader {
    /// The best-track text file.
    pub path: PathBuf,
    /// Preprocessing (gap splitting is unavailable — fixes carry no
    /// absolute timestamps).
    pub options: LoadOptions,
}

impl BestTrackLoader {
    /// Loader with default preprocessing.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            options: LoadOptions::default(),
        }
    }
}

impl DatasetLoader for BestTrackLoader {
    fn name(&self) -> String {
        file_stem(&self.path)
    }

    fn load(&self) -> Result<Vec<Trajectory<2>>, IoError> {
        if self.options.gap_split.is_some() {
            return Err(IoError::Schema(
                "best-track files have no time axis; gap splitting unavailable".to_string(),
            ));
        }
        let text = std::fs::read_to_string(&self.path)
            .map_err(|e| IoError::in_file(&self.path, e.into()))?;
        let raw = parse_best_track(&text).map_err(|e| IoError::in_file(&self.path, e))?;
        Ok(densify_ids(
            raw.into_iter()
                .flat_map(|t| self.options.split_untimed(t.points))
                .collect(),
        ))
    }
}

pub(crate) fn file_stem(path: &std::path::Path) -> String {
    path.file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn pt(x: f64, y: f64) -> Point2 {
        Point2::xy(x, y)
    }

    #[test]
    fn timestamp_accepts_epoch_seconds_and_civil_dates() {
        assert_eq!(parse_timestamp("12.5").unwrap(), 12.5);
        assert_eq!(parse_timestamp("1970-01-01 00:00:00").unwrap(), 0.0);
        assert_eq!(parse_timestamp("1970-01-02T00:00:30").unwrap(), 86_430.0);
        assert_eq!(
            parse_timestamp("2008/10/23 02:53:04").unwrap(),
            parse_timestamp("2008-10-23 02:53:00").unwrap() + 4.0
        );
        // Minutes-only clocks and date-only stamps parse too.
        assert_eq!(parse_timestamp("1970-01-01 01:30").unwrap(), 5_400.0);
        assert_eq!(parse_timestamp("1970-01-03").unwrap(), 2.0 * 86_400.0);
    }

    #[test]
    fn timestamp_rejects_garbage() {
        for bad in [
            "",
            "yesterday",
            "1970-13-01 00:00:00",
            "1970-01-01 25:00:00",
            "2020-01-01 00:01:-50",
            "2021-02-29 00:00:00",
            "1970-04-31",
            "inf",
        ] {
            assert!(parse_timestamp(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn civil_days_matches_known_epochs() {
        assert_eq!(civil_days(1970, 1, 1), 0);
        assert_eq!(civil_days(2000, 3, 1), 11_017);
        assert_eq!(civil_days(1969, 12, 31), -1);
        // Leap-year handling in the day-of-month validator.
        assert_eq!(days_in_month(2020, 2), 29);
        assert_eq!(days_in_month(2021, 2), 28);
        assert_eq!(days_in_month(1900, 2), 28, "century non-leap");
        assert_eq!(days_in_month(2000, 2), 29, "400-year leap");
        assert!(parse_timestamp("2020-02-29 00:00:00").is_ok());
    }

    #[test]
    fn split_track_splits_on_gaps_only() {
        let options = LoadOptions {
            gap_split: Some(10.0),
            ..LoadOptions::default()
        };
        let fixes = vec![
            (pt(0.0, 0.0), 0.0),
            (pt(1.0, 0.0), 5.0),
            (pt(2.0, 0.0), 30.0), // 25 s gap → split
            (pt(3.0, 0.0), 32.0),
        ];
        let pieces = options.split_track(&fixes);
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0], vec![pt(0.0, 0.0), pt(1.0, 0.0)]);
        assert_eq!(pieces[1], vec![pt(2.0, 0.0), pt(3.0, 0.0)]);
    }

    #[test]
    fn split_track_drops_short_pieces() {
        let options = LoadOptions {
            gap_split: Some(1.0),
            min_points: 2,
            ..LoadOptions::default()
        };
        let fixes = vec![
            (pt(0.0, 0.0), 0.0),
            (pt(1.0, 0.0), 100.0), // isolated singleton pieces on both sides
        ];
        assert!(options.split_track(&fixes).is_empty());
    }

    #[test]
    fn downsampling_keeps_every_kth_and_the_last() {
        let options = LoadOptions {
            downsample: 3,
            ..LoadOptions::default()
        };
        let fixes: Vec<(Point2, f64)> = (0..8).map(|i| (pt(i as f64, 0.0), i as f64)).collect();
        let pieces = options.split_track(&fixes);
        assert_eq!(pieces.len(), 1);
        let xs: Vec<f64> = pieces[0].iter().map(|p| p.x()).collect();
        assert_eq!(xs, vec![0.0, 3.0, 6.0, 7.0], "indices 0,3,6 plus the last");
    }

    #[test]
    fn timed_csv_reads_with_custom_schema() {
        // time first, lon/lat swapped, semicolon-separated, no header.
        let text = "0;2.0;1.0\n10;3.0;1.5\n";
        let schema = CsvSchema {
            id_column: None,
            x_column: 2,
            y_column: 1,
            time_column: Some(0),
            delimiter: ';',
            has_header: false,
        };
        let out = read_timed_csv(Cursor::new(text), &schema, &LoadOptions::default()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].points, vec![pt(1.0, 2.0), pt(1.5, 3.0)]);
    }

    #[test]
    fn timed_csv_requires_time_for_gap_split() {
        let schema = CsvSchema {
            time_column: None,
            ..CsvSchema::default()
        };
        let options = LoadOptions {
            gap_split: Some(60.0),
            ..LoadOptions::default()
        };
        let err = read_timed_csv(Cursor::new("h\n0,1,2,3\n"), &schema, &options).unwrap_err();
        assert!(matches!(err, IoError::Schema(_)));
    }

    #[test]
    fn timed_csv_reports_column_shortfall_with_line_number() {
        let text = "id,x,y,t\n0,1.0,2.0\n";
        let err = read_timed_csv(
            Cursor::new(text),
            &CsvSchema::default(),
            &LoadOptions::default(),
        )
        .unwrap_err();
        match err {
            IoError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("columns"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn loaders_expose_file_stems_as_names() {
        assert_eq!(TimedCsvLoader::new("/tmp/porto.csv").name(), "porto");
        assert_eq!(BestTrackLoader::new("atlantic.txt").name(), "atlantic");
    }

    #[test]
    fn missing_file_is_a_typed_in_file_io_error() {
        let err = TimedCsvLoader::new("/nonexistent/x.csv")
            .load()
            .unwrap_err();
        match err {
            IoError::InFile { path, source } => {
                assert!(path.ends_with("x.csv"));
                assert!(matches!(*source, IoError::Io(_)));
            }
            other => panic!("expected InFile, got {other}"),
        }
    }
}
