//! Labelled synthetic scenes: ground-truth corridors + noise trajectories.
//!
//! Two uses in the reproduction:
//!
//! * the Section 5.5 robustness experiment (Figure 23): "25 % of
//!   trajectories are generated as noises" and the clusters must still be
//!   identified;
//! * controlled correctness tests, where knowing which backbone generated
//!   each trajectory lets us score cluster recovery.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traclus_geom::{Point2, Trajectory, TrajectoryId, Vector2};

use crate::rng_util::normal;

/// Ground truth for one generated trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruthLabel {
    /// Follows backbone `k` (with jitter).
    Corridor(usize),
    /// Pure random walk (should be classified as noise).
    Noise,
}

/// A labelled scene.
#[derive(Debug, Clone)]
pub struct Scene {
    /// The trajectories (corridor followers first, then noise).
    pub trajectories: Vec<Trajectory<2>>,
    /// `truth[i]` labels `trajectories[i]`.
    pub truth: Vec<TruthLabel>,
    /// The backbone polylines.
    pub backbones: Vec<Vec<Point2>>,
}

impl Scene {
    /// Trajectory ids whose ground truth is noise.
    pub fn noise_ids(&self) -> Vec<u32> {
        self.truth
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t, TruthLabel::Noise))
            .map(|(i, _)| i as u32)
            .collect()
    }
}

/// Configuration of the scene generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneConfig {
    /// Backbone polylines (the planted common sub-trajectories).
    pub backbones: Vec<Vec<Point2>>,
    /// Corridor-following trajectories per backbone.
    pub per_backbone: usize,
    /// Fraction of *additional* noise trajectories relative to the total
    /// (0.25 reproduces Figure 23's "25 % of trajectories").
    pub noise_fraction: f64,
    /// Cross-track jitter of corridor followers.
    pub jitter: f64,
    /// Sampling step along backbones.
    pub step: f64,
    /// Bounding square side for noise walks.
    pub extent: f64,
    /// Points per noise trajectory.
    pub noise_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SceneConfig {
    fn default() -> Self {
        Self {
            backbones: default_backbones(),
            per_backbone: 15,
            noise_fraction: 0.25,
            jitter: 1.5,
            step: 8.0,
            extent: 400.0,
            noise_len: 40,
            seed: 23,
        }
    }
}

/// Four well-separated backbones inside a 400 × 400 square (two straight,
/// one L-shaped, one diagonal) — a Figure 23-like layout.
pub fn default_backbones() -> Vec<Vec<Point2>> {
    vec![
        vec![Point2::xy(40.0, 60.0), Point2::xy(360.0, 70.0)],
        vec![Point2::xy(50.0, 330.0), Point2::xy(350.0, 320.0)],
        vec![
            Point2::xy(60.0, 120.0),
            Point2::xy(200.0, 140.0),
            Point2::xy(210.0, 280.0),
        ],
        vec![Point2::xy(320.0, 110.0), Point2::xy(250.0, 260.0)],
    ]
}

/// Generates a labelled scene.
pub fn generate_scene(config: &SceneConfig) -> Scene {
    assert!(!config.backbones.is_empty());
    assert!(config.per_backbone > 0);
    assert!((0.0..1.0).contains(&config.noise_fraction));
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut trajectories = Vec::new();
    let mut truth = Vec::new();
    let mut next_id = 0u32;

    for (b, backbone) in config.backbones.iter().enumerate() {
        for _ in 0..config.per_backbone {
            let points = follow_backbone(&mut rng, backbone, config);
            trajectories.push(Trajectory::new(TrajectoryId(next_id), points));
            truth.push(TruthLabel::Corridor(b));
            next_id += 1;
        }
    }
    // noise_count / (corridor_count + noise_count) = noise_fraction.
    let corridor_count = trajectories.len();
    let noise_count = ((config.noise_fraction * corridor_count as f64)
        / (1.0 - config.noise_fraction))
        .round() as usize;
    for _ in 0..noise_count {
        let points = random_walk(&mut rng, config);
        trajectories.push(Trajectory::new(TrajectoryId(next_id), points));
        truth.push(TruthLabel::Noise);
        next_id += 1;
    }
    Scene {
        trajectories,
        truth,
        backbones: config.backbones.clone(),
    }
}

fn follow_backbone(rng: &mut StdRng, backbone: &[Point2], config: &SceneConfig) -> Vec<Point2> {
    let mut points = Vec::new();
    // Each follower enters a little late / leaves a little early so the
    // corridor is a *common sub*-trajectory, not a shared whole.
    let skip_head = rng.gen_range(0.0..0.15);
    let skip_tail = rng.gen_range(0.0..0.15);
    let polyline = densify(backbone, config.step);
    let n = polyline.len();
    let lo = ((n as f64) * skip_head) as usize;
    let hi = n - ((n as f64) * skip_tail) as usize;
    for p in &polyline[lo..hi.max(lo + 2).min(n)] {
        points.push(Point2::xy(
            p.x() + normal(rng, 0.0, config.jitter),
            p.y() + normal(rng, 0.0, config.jitter),
        ));
    }
    points
}

fn densify(backbone: &[Point2], step: f64) -> Vec<Point2> {
    let mut out = Vec::new();
    for w in backbone.windows(2) {
        let len = w[0].distance(&w[1]);
        let steps = (len / step).ceil().max(1.0) as usize;
        for s in 0..steps {
            out.push(w[0].lerp(&w[1], s as f64 / steps as f64));
        }
    }
    out.push(*backbone.last().expect("non-empty backbone"));
    out
}

fn random_walk(rng: &mut StdRng, config: &SceneConfig) -> Vec<Point2> {
    let mut pos = Point2::xy(
        rng.gen_range(0.0..config.extent),
        rng.gen_range(0.0..config.extent),
    );
    let mut heading = rng.gen_range(0.0..std::f64::consts::TAU);
    let mut points = vec![pos];
    for _ in 1..config.noise_len {
        heading += normal(rng, 0.0, 0.8);
        let step = normal(rng, config.step, config.step * 0.4).max(1.0);
        pos = pos + Vector2::xy(heading.cos(), heading.sin()) * step;
        pos = Point2::xy(
            pos.x().clamp(0.0, config.extent),
            pos.y().clamp(0.0, config.extent),
        );
        points.push(pos);
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_fraction_is_respected() {
        let scene = generate_scene(&SceneConfig::default());
        let noise = scene.noise_ids().len();
        let total = scene.trajectories.len();
        let fraction = noise as f64 / total as f64;
        assert!(
            (fraction - 0.25).abs() < 0.03,
            "noise fraction {fraction} (noise {noise} of {total})"
        );
    }

    #[test]
    fn corridor_followers_hug_their_backbone() {
        let config = SceneConfig::default();
        let scene = generate_scene(&config);
        for (t, label) in scene.trajectories.iter().zip(&scene.truth) {
            if let TruthLabel::Corridor(b) = label {
                let backbone = densify(&scene.backbones[*b], config.step);
                for p in &t.points {
                    let min_dist = backbone
                        .iter()
                        .map(|q| p.distance(q))
                        .fold(f64::INFINITY, f64::min);
                    assert!(
                        min_dist < 10.0 * config.jitter,
                        "follower strays {min_dist} from backbone {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn followers_cover_partial_extents() {
        // Entering late / leaving early makes corridors sub-trajectories.
        let scene = generate_scene(&SceneConfig::default());
        let lens: Vec<usize> = scene
            .trajectories
            .iter()
            .zip(&scene.truth)
            .filter(|(_, l)| matches!(l, TruthLabel::Corridor(0)))
            .map(|(t, _)| t.len())
            .collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        assert!(min < max, "extents vary: {lens:?}");
    }

    #[test]
    fn trajectory_ids_are_dense() {
        let scene = generate_scene(&SceneConfig::default());
        for (i, t) in scene.trajectories.iter().enumerate() {
            assert_eq!(t.id.0 as usize, i);
        }
        assert_eq!(scene.truth.len(), scene.trajectories.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_scene(&SceneConfig::default());
        let b = generate_scene(&SceneConfig::default());
        assert_eq!(a.trajectories, b.trajectories);
    }

    #[test]
    fn noise_walks_stay_in_extent() {
        let config = SceneConfig::default();
        let scene = generate_scene(&config);
        for (t, label) in scene.trajectories.iter().zip(&scene.truth) {
            if matches!(label, TruthLabel::Noise) {
                for p in &t.points {
                    assert!((0.0..=config.extent).contains(&p.x()));
                    assert!((0.0..=config.extent).contains(&p.y()));
                }
            }
        }
    }
}
