//! Property tests for the interchange CSV: `write_csv`/`read_csv` must
//! round-trip any dense-id trajectory list bit for bit (Rust's f64
//! `Display` prints the shortest string that re-parses to the same bits,
//! so exact equality is the right assertion, not approximate).

use std::io::Cursor;

use proptest::prelude::*;
use traclus_data::{read_csv, write_csv};
use traclus_geom::{Point2, Trajectory, TrajectoryId};

prop_compose! {
    fn trajectories()(
        point_lists in prop::collection::vec(
            prop::collection::vec((-1.0e6..1.0e6f64, -1.0e6..1.0e6f64), 1..20),
            0..8,
        )
    ) -> Vec<Trajectory<2>> {
        point_lists
            .into_iter()
            .enumerate()
            .map(|(i, pts)| Trajectory::new(
                TrajectoryId(i as u32),
                pts.into_iter().map(|(x, y)| Point2::xy(x, y)).collect(),
            ))
            .collect()
    }
}

proptest! {
    #[test]
    fn csv_round_trip_is_exact(trajs in trajectories()) {
        let mut buf = Vec::new();
        write_csv(&mut buf, &trajs).expect("serialise");
        let reloaded = read_csv(Cursor::new(buf)).expect("parse our own output");
        prop_assert_eq!(reloaded, trajs);
    }

    #[test]
    fn csv_output_is_stable_under_a_second_round_trip(trajs in trajectories()) {
        // write → read → write must produce identical bytes (the id
        // re-densification is idempotent on dense inputs).
        let mut first = Vec::new();
        write_csv(&mut first, &trajs).expect("serialise");
        let reloaded = read_csv(Cursor::new(first.clone())).expect("parse");
        let mut second = Vec::new();
        write_csv(&mut second, &reloaded).expect("serialise again");
        prop_assert_eq!(first, second);
    }
}
