Geolife trajectory
WGS 84
Altitude is in Feet
Reserved 3
0,2,255,My Track,0,0,2,8421376
0
99.9000,116.3000,0,492,39744.0000000,2008-10-23,00:00:00
