//! Golden-fixture conformance suite for the dataset loaders.
//!
//! The fixtures under `tests/fixtures/` are hand-written, so every
//! assertion here is against exact, hand-computed values: parsed points,
//! gap-splitting boundaries, downsampling, and the typed [`IoError`]s the
//! malformed files must produce. If a loader's behavior drifts, this
//! suite tells you exactly which trajectory or error shape changed.

use traclus_data::{
    BestTrackLoader, CsvSchema, DatasetLoader, GeoLifeLoader, InterchangeCsvLoader, IoError,
    LoadOptions, TimedCsvLoader,
};
use traclus_geom::{Point2, Trajectory, TrajectoryId};

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn traj(id: u32, points: &[(f64, f64)]) -> Trajectory<2> {
    Trajectory::new(
        TrajectoryId(id),
        points.iter().map(|&(x, y)| Point2::xy(x, y)).collect(),
    )
}

#[test]
fn geolife_directory_parses_exactly_with_gap_splitting() {
    // Default GeoLife preprocessing: split on >10-minute gaps. The first
    // log has a 0.0997685-day (~8620 s) pause after its third fix, so it
    // yields two trajectories; the second log yields one. Files are
    // visited in sorted order, so ids are stable.
    let loaded = GeoLifeLoader::new(fixture("geolife")).load().expect("load");
    assert_eq!(
        loaded,
        vec![
            traj(0, &[(116.30, 39.90), (116.301, 39.901), (116.302, 39.902)]),
            traj(1, &[(116.35, 39.95), (116.351, 39.951)]),
            traj(2, &[(116.40, 40.00), (116.401, 40.001), (116.402, 40.002)]),
        ],
        "x = lon, y = lat, split at the 2h24m pause"
    );
}

#[test]
fn geolife_without_gap_splitting_keeps_logs_whole() {
    let loader = GeoLifeLoader {
        options: LoadOptions::default(), // gap_split: None
        ..GeoLifeLoader::new(fixture("geolife"))
    };
    let loaded = loader.load().expect("load");
    assert_eq!(loaded.len(), 2, "one trajectory per PLT log");
    assert_eq!(loaded[0].points.len(), 5);
    assert_eq!(loaded[1].points.len(), 3);
}

#[test]
fn geolife_downsampling_keeps_every_kth_fix_plus_the_last() {
    let loader = GeoLifeLoader {
        options: LoadOptions {
            gap_split: None,
            downsample: 2,
            min_points: 2,
        },
        ..GeoLifeLoader::new(fixture("geolife"))
    };
    let loaded = loader.load().expect("load");
    // First log: fixes 0, 2, 4 of the 5.
    assert_eq!(
        loaded[0],
        traj(0, &[(116.30, 39.90), (116.302, 39.902), (116.351, 39.951)])
    );
}

#[test]
fn geolife_malformed_log_is_a_typed_in_file_parse_error() {
    let err = GeoLifeLoader::new(fixture("geolife_bad"))
        .load()
        .expect_err("latitude 99.9 is out of range");
    match err {
        IoError::InFile { path, source } => {
            assert!(path.ends_with("broken.plt"), "wrong file: {path:?}");
            match *source {
                IoError::Parse { line, ref message } => {
                    assert_eq!(line, 7, "first data line after the 6-line header");
                    assert!(message.contains("out of range"), "{message}");
                }
                ref other => panic!("expected Parse inside InFile, got {other}"),
            }
        }
        other => panic!("expected InFile, got {other}"),
    }
}

#[test]
fn timed_csv_parses_exactly_with_gap_splitting() {
    let loader = TimedCsvLoader {
        options: LoadOptions {
            gap_split: Some(3600.0),
            ..LoadOptions::default()
        },
        ..TimedCsvLoader::new(fixture("timed.csv"))
    };
    let loaded = loader.load().expect("load");
    assert_eq!(
        loaded,
        vec![
            traj(0, &[(0.0, 0.0), (1.0, 0.0)]),
            traj(1, &[(2.0, 0.0), (3.0, 0.0)]),
            traj(2, &[(10.0, 10.0), (11.0, 10.0)]),
        ],
        "track a splits at the ~2 h gap; track b's 60 s gap survives"
    );
}

#[test]
fn timed_csv_without_gap_splitting_groups_by_id_runs() {
    let loaded = TimedCsvLoader::new(fixture("timed.csv"))
        .load()
        .expect("load");
    assert_eq!(loaded.len(), 2, "one trajectory per contiguous id run");
    assert_eq!(loaded[0].points.len(), 4);
    assert_eq!(loaded[1].points.len(), 2);
}

#[test]
fn timed_csv_bad_timestamp_is_a_typed_in_file_parse_error() {
    let err = TimedCsvLoader::new(fixture("timed_bad.csv"))
        .load()
        .expect_err("'not-a-time' must not parse");
    match err {
        IoError::InFile { path, source } => {
            assert!(path.ends_with("timed_bad.csv"));
            assert!(
                matches!(*source, IoError::Parse { line: 3, .. }),
                "expected Parse at line 3, got {source}"
            );
        }
        other => panic!("expected InFile, got {other}"),
    }
}

#[test]
fn timed_csv_schema_mismatch_is_a_parse_error_not_a_panic() {
    // A schema pointing past the file's real width must fail typed.
    let loader = TimedCsvLoader {
        schema: CsvSchema {
            time_column: Some(9),
            ..CsvSchema::default()
        },
        ..TimedCsvLoader::new(fixture("timed.csv"))
    };
    let err = loader.load().expect_err("column 9 does not exist");
    match err {
        IoError::InFile { source, .. } => {
            assert!(matches!(*source, IoError::Parse { line: 2, .. }))
        }
        other => panic!("expected InFile, got {other}"),
    }
}

#[test]
fn best_track_fixture_parses_exactly() {
    let loaded = BestTrackLoader::new(fixture("besttrack.txt"))
        .load()
        .expect("load");
    assert_eq!(
        loaded,
        vec![
            traj(0, &[(-40.0, 10.0), (-41.0, 10.5), (-42.0, 11.0)]),
            traj(1, &[(-60.0, 20.0), (-61.0, 20.5)]),
        ],
        "intensity fields ignored, x = lon, y = lat"
    );
}

#[test]
fn best_track_malformed_fix_is_a_typed_in_file_parse_error() {
    let err = BestTrackLoader::new(fixture("besttrack_bad.txt"))
        .load()
        .expect_err("'notanumber' is not a longitude");
    match err {
        IoError::InFile { path, source } => {
            assert!(path.ends_with("besttrack_bad.txt"));
            match *source {
                IoError::Parse { line, ref message } => {
                    assert_eq!(line, 2);
                    assert!(message.contains("longitude"), "{message}");
                }
                ref other => panic!("expected Parse inside InFile, got {other}"),
            }
        }
        other => panic!("expected InFile, got {other}"),
    }
}

#[test]
fn gap_split_on_untimed_formats_is_a_schema_error() {
    for loader in [
        Box::new(BestTrackLoader {
            options: LoadOptions {
                gap_split: Some(60.0),
                ..LoadOptions::default()
            },
            ..BestTrackLoader::new(fixture("besttrack.txt"))
        }) as Box<dyn DatasetLoader>,
        Box::new(InterchangeCsvLoader {
            options: LoadOptions {
                gap_split: Some(60.0),
                ..LoadOptions::default()
            },
            ..InterchangeCsvLoader::new(fixture("timed.csv"))
        }),
    ] {
        assert!(
            matches!(loader.load(), Err(IoError::Schema(_))),
            "{}: gap splitting without a time axis must be rejected",
            loader.name()
        );
    }
}

#[test]
fn empty_geolife_root_is_a_schema_error() {
    // The fixtures directory itself contains no .plt files at its top
    // level other than via subdirectories — point at a leaf without any.
    let dir = std::env::temp_dir().join("traclus_empty_geolife");
    std::fs::create_dir_all(&dir).unwrap();
    let err = GeoLifeLoader::new(&dir).load().expect_err("no .plt files");
    assert!(matches!(err, IoError::Schema(_)));
}

#[test]
fn loaders_are_usable_as_trait_objects() {
    // The evaluation harness iterates heterogeneous loaders; keep the
    // trait object-safe.
    let loaders: Vec<Box<dyn DatasetLoader>> = vec![
        Box::new(GeoLifeLoader::new(fixture("geolife"))),
        Box::new(TimedCsvLoader::new(fixture("timed.csv"))),
        Box::new(BestTrackLoader::new(fixture("besttrack.txt"))),
    ];
    for loader in &loaders {
        let loaded = loader.load().expect("every golden fixture loads");
        assert!(!loaded.is_empty(), "{}", loader.name());
        for (i, t) in loaded.iter().enumerate() {
            assert_eq!(t.id.0 as usize, i, "{}: dense ids", loader.name());
            assert!(
                t.points.len() >= 2,
                "{}: min_points respected",
                loader.name()
            );
        }
    }
}
