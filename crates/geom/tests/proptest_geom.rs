//! Property-based tests of the geometry kernel.

use proptest::prelude::*;
use traclus_geom::{
    Aabb, AngleMode, DistanceWeights, OrthonormalFrame, Point2, PreparedBase, Segment2,
    SegmentDistance, SegmentSoa, Vector2,
};

fn coord() -> impl Strategy<Value = f64> {
    -1000.0..1000.0f64
}

prop_compose! {
    fn point()(x in coord(), y in coord()) -> Point2 {
        Point2::xy(x, y)
    }
}

prop_compose! {
    fn segment()(a in point(), b in point()) -> Segment2 {
        Segment2::new(a, b)
    }
}

prop_compose! {
    /// A segment that is occasionally degenerate (start == end), so the
    /// batched kernel's rare-lane fallback gets exercised.
    fn segment_maybe_degenerate()(s in segment(), sel in 0u8..8) -> Segment2 {
        if sel == 0 { Segment2::new(s.start, s.start) } else { s }
    }
}

prop_compose! {
    /// A non-negative component weight, zero with probability 1/4 — zero
    /// `w∥`/`w⊥` are the degenerate cases the index filter must respect
    /// and the batched kernel must reproduce exactly.
    fn weight()(sel in 0u8..4, w in 0.01..5.0f64) -> f64 {
        if sel == 0 { 0.0 } else { w }
    }
}

proptest! {
    #[test]
    fn point_distance_satisfies_triangle_inequality(a in point(), b in point(), c in point()) {
        // The *point* metric is a genuine metric (unlike the segment
        // distance, whose violation is itself unit-tested).
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
    }

    #[test]
    fn projection_is_idempotent(s in segment(), p in point()) {
        if let Some(proj) = s.project_onto_line(&p) {
            let again = s.project_onto_line(&proj.point).unwrap();
            prop_assert!(proj.point.distance(&again.point) < 1e-6,
                "projecting a projected point must be a fixed point");
        }
    }

    #[test]
    fn projection_is_closest_point_on_line(s in segment(), p in point()) {
        if let Some(proj) = s.project_onto_line(&p) {
            let d_proj = p.distance(&proj.point);
            for t in [-0.5, 0.0, 0.3, 0.7, 1.0, 1.5] {
                let q = s.point_at(t);
                prop_assert!(d_proj <= p.distance(&q) + 1e-7,
                    "line point at t={t} beat the projection");
            }
        }
    }

    #[test]
    fn segment_min_distance_is_symmetric_and_bounded(a in segment(), b in segment()) {
        let d_ab = a.min_distance(&b);
        let d_ba = b.min_distance(&a);
        prop_assert!((d_ab - d_ba).abs() < 1e-6);
        // Bounded above by any endpoint-pair distance.
        let upper = a.start.distance(&b.start)
            .min(a.start.distance(&b.end))
            .min(a.end.distance(&b.start))
            .min(a.end.distance(&b.end));
        prop_assert!(d_ab <= upper + 1e-9);
    }

    #[test]
    fn mbr_distance_lower_bounds_segment_distance(a in segment(), b in segment()) {
        let box_a = Aabb::from_segment(&a);
        let box_b = Aabb::from_segment(&b);
        prop_assert!(box_a.min_distance(&box_b) <= a.min_distance(&b) + 1e-9);
    }

    #[test]
    fn aabb_union_contains_both(a in segment(), b in segment()) {
        let box_a = Aabb::from_segment(&a);
        let box_b = Aabb::from_segment(&b);
        let u = box_a.union(&box_b);
        prop_assert!(u.contains(&box_a));
        prop_assert!(u.contains(&box_b));
        prop_assert!(u.volume() + 1e-12 >= box_a.volume().max(box_b.volume()));
    }

    #[test]
    fn frame_round_trip(p in point(), dx in -10.0..10.0f64, dy in -10.0..10.0f64) {
        prop_assume!(dx.abs() + dy.abs() > 1e-6);
        let frame = OrthonormalFrame::from_direction(&Vector2::xy(dx, dy)).unwrap();
        let back = frame.from_frame(&frame.to_frame(&p));
        prop_assert!(back.distance(&p) < 1e-6 * (1.0 + p.x().abs() + p.y().abs()));
    }

    #[test]
    fn frame_preserves_distances(p in point(), q in point(),
                                 dx in -10.0..10.0f64, dy in -10.0..10.0f64) {
        prop_assume!(dx.abs() + dy.abs() > 1e-6);
        let frame = OrthonormalFrame::from_direction(&Vector2::xy(dx, dy)).unwrap();
        let fp = frame.to_frame(&p);
        let fq = frame.to_frame(&q);
        let frame_dist = ((fp[0] - fq[0]).powi(2) + (fp[1] - fq[1]).powi(2)).sqrt();
        prop_assert!((frame_dist - p.distance(&q)).abs() < 1e-6 * (1.0 + p.distance(&q)),
            "rotation must be an isometry");
    }

    #[test]
    fn distance_scale_covariance(a in segment(), b in segment(), scale in 0.1..10.0f64) {
        // All three components are lengths, so the composite distance is
        // positively homogeneous: dist(s·a, s·b) = s · dist(a, b).
        let dist = SegmentDistance::default();
        let scale_seg = |s: &Segment2| Segment2::xy(
            s.start.x() * scale, s.start.y() * scale,
            s.end.x() * scale, s.end.y() * scale,
        );
        let d0 = dist.distance(&a, &b);
        let d1 = dist.distance(&scale_seg(&a), &scale_seg(&b));
        prop_assert!((d1 - scale * d0).abs() < 1e-6 * (1.0 + scale * d0),
            "homogeneity violated: {d1} vs {}", scale * d0);
    }

    #[test]
    fn reversing_both_segments_preserves_distance(a in segment(), b in segment()) {
        // Reversing *both* operands flips both direction vectors; θ is
        // unchanged, and the perpendicular/parallel components only depend
        // on the point sets.
        let dist = SegmentDistance::default();
        let d0 = dist.distance(&a, &b);
        let d1 = dist.distance(&a.reversed(), &b.reversed());
        prop_assert!((d0 - d1).abs() < 1e-6 * (1.0 + d0));
    }

    #[test]
    fn distance_many_bit_identical_to_scalar(
        segs in prop::collection::vec(segment_maybe_degenerate(), 1..24),
        wp in weight(), wl in weight(), wa in weight(),
        mode_sel in 0u8..2,
    ) {
        // The batched kernel's contract: for every (query, candidate)
        // pair, the same bits as the scalar path under the same role
        // ordering (cached length, index tie-break).
        let mode = if mode_sel == 0 { AngleMode::Directed } else { AngleMode::Undirected };
        let dist = SegmentDistance::new(DistanceWeights::new(wp, wl, wa), mode);
        let soa = SegmentSoa::from_segments(segs.iter());
        let candidates: Vec<u32> = (0..segs.len() as u32).collect();
        let mut out = Vec::new();
        for q in 0..segs.len() {
            dist.distance_many(&soa, q as u32, &candidates, &mut out);
            prop_assert_eq!(out.len(), segs.len());
            for (c, &got) in out.iter().enumerate() {
                let (la, lb) = (segs[q].length(), segs[c].length());
                let (i, j) = if la > lb {
                    (q, c)
                } else if lb > la {
                    (c, q)
                } else if q <= c {
                    (q, c)
                } else {
                    (c, q)
                };
                let expected = dist.distance_ordered(&segs[i], &segs[j]);
                prop_assert_eq!(got.to_bits(), expected.to_bits(),
                    "batch != scalar at ({}, {}): {} vs {}", q, c, got, expected);
            }
        }
    }

    #[test]
    fn prepared_mdl_components_bit_identical(
        base in segment_maybe_degenerate(),
        edges in prop::collection::vec(segment_maybe_degenerate(), 1..12),
        mode_sel in 0u8..2,
    ) {
        let mode = if mode_sel == 0 { AngleMode::Directed } else { AngleMode::Undirected };
        let dist = SegmentDistance::new(DistanceWeights::uniform(), mode);
        let prepared = PreparedBase::new(&base);
        for edge in &edges {
            let (p, a) = dist.mdl_components_prepared(&prepared, edge);
            let (sp, sa) = dist.mdl_components(&base, edge);
            prop_assert_eq!(p.to_bits(), sp.to_bits(), "perpendicular differs");
            prop_assert_eq!(a.to_bits(), sa.to_bits(), "angle differs");
        }
    }
}
