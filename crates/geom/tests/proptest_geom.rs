//! Property-based tests of the geometry kernel.

use proptest::prelude::*;
use traclus_geom::{Aabb, OrthonormalFrame, Point2, Segment2, SegmentDistance, Vector2};

fn coord() -> impl Strategy<Value = f64> {
    -1000.0..1000.0f64
}

prop_compose! {
    fn point()(x in coord(), y in coord()) -> Point2 {
        Point2::xy(x, y)
    }
}

prop_compose! {
    fn segment()(a in point(), b in point()) -> Segment2 {
        Segment2::new(a, b)
    }
}

proptest! {
    #[test]
    fn point_distance_satisfies_triangle_inequality(a in point(), b in point(), c in point()) {
        // The *point* metric is a genuine metric (unlike the segment
        // distance, whose violation is itself unit-tested).
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
    }

    #[test]
    fn projection_is_idempotent(s in segment(), p in point()) {
        if let Some(proj) = s.project_onto_line(&p) {
            let again = s.project_onto_line(&proj.point).unwrap();
            prop_assert!(proj.point.distance(&again.point) < 1e-6,
                "projecting a projected point must be a fixed point");
        }
    }

    #[test]
    fn projection_is_closest_point_on_line(s in segment(), p in point()) {
        if let Some(proj) = s.project_onto_line(&p) {
            let d_proj = p.distance(&proj.point);
            for t in [-0.5, 0.0, 0.3, 0.7, 1.0, 1.5] {
                let q = s.point_at(t);
                prop_assert!(d_proj <= p.distance(&q) + 1e-7,
                    "line point at t={t} beat the projection");
            }
        }
    }

    #[test]
    fn segment_min_distance_is_symmetric_and_bounded(a in segment(), b in segment()) {
        let d_ab = a.min_distance(&b);
        let d_ba = b.min_distance(&a);
        prop_assert!((d_ab - d_ba).abs() < 1e-6);
        // Bounded above by any endpoint-pair distance.
        let upper = a.start.distance(&b.start)
            .min(a.start.distance(&b.end))
            .min(a.end.distance(&b.start))
            .min(a.end.distance(&b.end));
        prop_assert!(d_ab <= upper + 1e-9);
    }

    #[test]
    fn mbr_distance_lower_bounds_segment_distance(a in segment(), b in segment()) {
        let box_a = Aabb::from_segment(&a);
        let box_b = Aabb::from_segment(&b);
        prop_assert!(box_a.min_distance(&box_b) <= a.min_distance(&b) + 1e-9);
    }

    #[test]
    fn aabb_union_contains_both(a in segment(), b in segment()) {
        let box_a = Aabb::from_segment(&a);
        let box_b = Aabb::from_segment(&b);
        let u = box_a.union(&box_b);
        prop_assert!(u.contains(&box_a));
        prop_assert!(u.contains(&box_b));
        prop_assert!(u.volume() + 1e-12 >= box_a.volume().max(box_b.volume()));
    }

    #[test]
    fn frame_round_trip(p in point(), dx in -10.0..10.0f64, dy in -10.0..10.0f64) {
        prop_assume!(dx.abs() + dy.abs() > 1e-6);
        let frame = OrthonormalFrame::from_direction(&Vector2::xy(dx, dy)).unwrap();
        let back = frame.from_frame(&frame.to_frame(&p));
        prop_assert!(back.distance(&p) < 1e-6 * (1.0 + p.x().abs() + p.y().abs()));
    }

    #[test]
    fn frame_preserves_distances(p in point(), q in point(),
                                 dx in -10.0..10.0f64, dy in -10.0..10.0f64) {
        prop_assume!(dx.abs() + dy.abs() > 1e-6);
        let frame = OrthonormalFrame::from_direction(&Vector2::xy(dx, dy)).unwrap();
        let fp = frame.to_frame(&p);
        let fq = frame.to_frame(&q);
        let frame_dist = ((fp[0] - fq[0]).powi(2) + (fp[1] - fq[1]).powi(2)).sqrt();
        prop_assert!((frame_dist - p.distance(&q)).abs() < 1e-6 * (1.0 + p.distance(&q)),
            "rotation must be an isometry");
    }

    #[test]
    fn distance_scale_covariance(a in segment(), b in segment(), scale in 0.1..10.0f64) {
        // All three components are lengths, so the composite distance is
        // positively homogeneous: dist(s·a, s·b) = s · dist(a, b).
        let dist = SegmentDistance::default();
        let scale_seg = |s: &Segment2| Segment2::xy(
            s.start.x() * scale, s.start.y() * scale,
            s.end.x() * scale, s.end.y() * scale,
        );
        let d0 = dist.distance(&a, &b);
        let d1 = dist.distance(&scale_seg(&a), &scale_seg(&b));
        prop_assert!((d1 - scale * d0).abs() < 1e-6 * (1.0 + scale * d0),
            "homogeneity violated: {d1} vs {}", scale * d0);
    }

    #[test]
    fn reversing_both_segments_preserves_distance(a in segment(), b in segment()) {
        // Reversing *both* operands flips both direction vectors; θ is
        // unchanged, and the perpendicular/parallel components only depend
        // on the point sets.
        let dist = SegmentDistance::default();
        let d0 = dist.distance(&a, &b);
        let d1 = dist.distance(&a.reversed(), &b.reversed());
        prop_assert!((d0 - d1).abs() < 1e-6 * (1.0 + d0));
    }
}
