//! Property-based soundness harness for the filter-and-refine lower
//! bounds (`traclus_geom::lower_bound`).
//!
//! The filter's whole contract is one inequality — every tier
//! lower-bounds the *computed* composite distance — plus two structural
//! properties the pruning path leans on: tiers are monotone (tier k ≤
//! tier k+1 ≤ exact), and the bounds are symmetric wherever the distance
//! is. The strategies deliberately overweight the geometries where a
//! bound proof usually dies: zero-length segments, collinear pairs,
//! shared endpoints, and zero component weights.
//!
//! A dedicated second-seed entry (`admissibility_holds_under_env_seed`)
//! re-runs the admissibility core on an RNG stream chosen by the
//! `LOWER_BOUND_SEED` environment variable, so CI can cheaply double the
//! explored input space without a new binary.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use traclus_geom::{
    lower_bound_tiers, prune_tier, segment_tiers, Aabb, AngleMode, DistanceWeights, Point2,
    Segment2, SegmentDistance, SegmentSoa, TIER_COUNT,
};

fn coord() -> impl Strategy<Value = f64> {
    -1000.0..1000.0f64
}

prop_compose! {
    fn point()(x in coord(), y in coord()) -> Point2 {
        Point2::xy(x, y)
    }
}

prop_compose! {
    /// A segment that is occasionally degenerate (start == end) — the
    /// bound layer must stay admissible when the kernel's rare-lane
    /// fallback produces the degenerate-base distance.
    fn segment_maybe_degenerate()(a in point(), b in point(), sel in 0u8..8) -> Segment2 {
        if sel == 0 { Segment2::new(a, a) } else { Segment2::new(a, b) }
    }
}

prop_compose! {
    /// A segment pair biased toward the adversarial shapes: plain random
    /// (with degenerate members), exactly collinear, or sharing an
    /// endpoint. Collinear pairs stress tier 2 (all separation lives in
    /// d∥, where the midpoint chain is tight); shared endpoints put the
    /// MBR gap at exactly zero.
    fn segment_pair()(
        a in segment_maybe_degenerate(),
        b in segment_maybe_degenerate(),
        t0 in -3.0..3.0f64,
        t1 in -3.0..3.0f64,
        shape in 0u8..4,
    ) -> (Segment2, Segment2) {
        match shape {
            // Collinear with `a`: both endpoints on a's supporting line.
            0 => (a, Segment2::new(a.point_at(t0), a.point_at(t1))),
            // Shared endpoint: b starts where a ends.
            1 => (a, Segment2::new(a.end, b.end)),
            _ => (a, b),
        }
    }
}

prop_compose! {
    /// A non-negative component weight, zero with probability 1/4 — the
    /// degenerate weights collapse individual tiers to zero and must
    /// never make a bound exceed the distance.
    fn weight()(sel in 0u8..4, w in 0.01..5.0f64) -> f64 {
        if sel == 0 { 0.0 } else { w }
    }
}

prop_compose! {
    fn distance_config()(
        wp in weight(), wl in weight(), wa in weight(),
        mode_sel in 0u8..2,
    ) -> SegmentDistance {
        let mode = if mode_sel == 0 { AngleMode::Directed } else { AngleMode::Undirected };
        SegmentDistance::new(DistanceWeights::new(wp, wl, wa), mode)
    }
}

/// The composite distance exactly as the refine step computes it: the
/// batched kernel over a two-slot SoA (role ordering included).
fn exact(a: &Segment2, b: &Segment2, dist: &SegmentDistance) -> f64 {
    let soa = SegmentSoa::from_segments([a, b]);
    let mut out = [0.0];
    dist.distance_many_into(&soa, 0, &[1], &mut out);
    out[0]
}

/// The admissibility core shared by the default-seed property and the
/// env-seeded rerun: every tier ≤ the computed exact distance, tiers
/// monotone, and every `prune_tier` decision sound (the fast squared-space
/// comparisons may decide differently from the value-level `tiers` within
/// their rounding margin — and the fast tier 3 is deliberately weaker —
/// but a pruned pair must always be outside ε, with the deciding tier's
/// value-level bound confirming the decision up to that margin).
fn check_admissible(pair: &(Segment2, Segment2), dist: &SegmentDistance, eps: f64) {
    let (a, b) = pair;
    let t = segment_tiers(a, b, dist);
    let d = exact(a, b, dist);
    for (k, &bound) in t.iter().enumerate() {
        assert!(
            bound <= d,
            "tier {k} bound {bound} exceeds exact distance {d} for {a:?} vs {b:?}"
        );
    }
    assert!(
        t[0] <= t[1] && t[1] <= t[2],
        "tiers must be monotone, got {t:?}"
    );
    let soa = SegmentSoa::from_segments([a, b]);
    let (ba, bb) = (Aabb::from_segment(a), Aabb::from_segment(b));
    let decision = prune_tier(&soa, 0, 1, &ba, &bb, dist, eps);
    if let Some(k) = decision {
        assert!(k < TIER_COUNT, "deciding tier out of range: {k}");
        assert!(
            d > eps,
            "pruned pair (tier {k}) is actually within eps: d={d}, eps={eps}"
        );
        // The fast comparison only fires with a 1e-9-relative margin, so
        // the corresponding value-level bound must at least reach ε up to
        // that margin. Tier 3 drops tier 2's additive part, so its
        // value-level bound is only larger.
        assert!(
            t[k] >= eps * (1.0 - 1e-6),
            "fast tier {k} pruned at eps={eps} but the value-level bound is {}",
            t[k]
        );
    }
    // The decision is symmetric: every comparison is built from
    // operand-order-independent quantities.
    let swapped = SegmentSoa::from_segments([b, a]);
    assert_eq!(
        decision,
        prune_tier(&swapped, 0, 1, &bb, &ba, dist, eps),
        "prune decision must not depend on operand order"
    );
}

proptest! {
    #[test]
    fn every_tier_lower_bounds_the_exact_distance(
        pair in segment_pair(),
        dist in distance_config(),
        eps in 0.0..200.0f64,
    ) {
        check_admissible(&pair, &dist, eps);
    }

    #[test]
    fn bounds_are_bitwise_symmetric(pair in segment_pair(), dist in distance_config()) {
        // The composite distance is symmetric under the shared role
        // ordering (longer segment is the base, ids break exact ties),
        // and the bounds canonicalise roles the same way — so swapping
        // the operands must reproduce the same three bounds bit for bit.
        let (a, b) = &pair;
        let ab = segment_tiers(a, b, &dist);
        let ba = segment_tiers(b, a, &dist);
        for k in 0..TIER_COUNT {
            prop_assert_eq!(
                ab[k].to_bits(), ba[k].to_bits(),
                "tier {} not symmetric: {} vs {}", k, ab[k], ba[k]
            );
        }
        prop_assert_eq!(
            exact(a, b, &dist).to_bits(), exact(b, a, &dist).to_bits(),
            "the exact kernel itself must be symmetric for this to matter"
        );
    }

    #[test]
    fn cached_entry_matches_the_standalone_entry(
        pair in segment_pair(),
        dist in distance_config(),
    ) {
        // `segment_tiers` is the 2-slot convenience wrapper; the hot path
        // calls `tiers` on the database SoA. Same bits required.
        let (a, b) = &pair;
        let soa = SegmentSoa::from_segments([a, b]);
        let (ba_box, bb_box) = (Aabb::from_segment(a), Aabb::from_segment(b));
        let cached = lower_bound_tiers(&soa, 0, 1, &ba_box, &bb_box, &dist);
        let standalone = segment_tiers(a, b, &dist);
        for k in 0..TIER_COUNT {
            prop_assert_eq!(cached[k].to_bits(), standalone[k].to_bits());
        }
    }

    #[test]
    fn self_pairs_admit_no_positive_bound(
        s in segment_maybe_degenerate(),
        dist in distance_config(),
    ) {
        // dist(L, L) = 0, so any positive bound would be inadmissible —
        // and a self-pair must never be pruned at any ε ≥ 0.
        let t = segment_tiers(&s, &s, &dist);
        for (k, &bound) in t.iter().enumerate() {
            prop_assert!(bound <= 0.0, "self-pair tier {} is {}", k, bound);
        }
        let soa = SegmentSoa::from_segments([&s, &s]);
        let bb = Aabb::from_segment(&s);
        prop_assert_eq!(prune_tier(&soa, 0, 1, &bb, &bb, &dist, 0.0), None);
    }
}

/// Satellite harness: the admissibility core on a *second* RNG stream.
///
/// The vendored proptest seeds each property from its test name, so every
/// run explores the same cases. This entry reads `LOWER_BOUND_SEED`
/// (decimal u64; a fixed alternate default otherwise), letting CI assert
/// the soundness properties on a disjoint stream without rebuilding.
#[test]
fn admissibility_holds_under_env_seed() {
    let seed = std::env::var("LOWER_BOUND_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x5eed_2007_1ee5_0b1d);
    let mut rng = TestRng::seed(seed);
    let pairs = segment_pair();
    let configs = distance_config();
    let eps_strategy = 0.0..200.0f64;
    proptest::run_cases(&ProptestConfig::default(), &mut rng, |rng| {
        let pair = pairs.generate(rng);
        let dist = configs.generate(rng);
        let eps = eps_strategy.generate(rng);
        check_admissible(&pair, &dist, eps);
        true
    });
}
