//! # traclus-geom
//!
//! Geometry kernel for the TRACLUS reproduction (Lee, Han, Whang:
//! *Trajectory Clustering: A Partition-and-Group Framework*, SIGMOD 2007).
//!
//! This crate owns everything that is "pure geometry" in the paper:
//!
//! * [`Point`] / [`Vector`] — d-dimensional points and displacements
//!   (Section 2.1's `d`-dimensional points; Formulas 4–5 vector algebra);
//! * [`Segment`] — directed line segments with projections (Formula 4);
//! * [`SegmentDistance`] — the composite perpendicular/parallel/angle
//!   distance of Definitions 1–3, plus the naive
//!   [`endpoint_sum_distance`] of Appendix A for comparison;
//! * [`SegmentSoa`] / [`PreparedBase`] — the structure-of-arrays geometry
//!   cache and batched `distance_many` / prepared-MDL kernels that hoist
//!   the per-query projection setup out of candidate loops (bit-identical
//!   to the scalar path; see [`batch`]);
//! * [`lower_bound`] — provably admissible lower bounds on the composite
//!   distance (MBR, midpoint/length, and exact-angle tiers) backing the
//!   filter-and-refine ε-neighborhood path in `traclus-core`;
//! * [`Trajectory`] / [`IdentifiedSegment`] — identified point sequences
//!   and trajectory partitions (Definition 10 needs segment→trajectory
//!   provenance);
//! * [`Aabb`] — axis-aligned boxes backing the spatial index substrate;
//! * [`OrthonormalFrame`] — the d-dimensional generalisation of the axis
//!   rotation (Formula 9) used for representative trajectories.
//!
//! Everything is `f64`, deterministic, and allocation-free on the hot
//! paths (distance evaluation allocates nothing).

#![warn(missing_docs)]
// Const-generic code indexes several [f64; D] arrays with one loop counter;
// clippy's iterator rewrite would zip up to four iterators and read worse.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod bbox;
pub mod distance;
pub mod frame;
pub mod lower_bound;
pub mod point;
pub mod segment;
pub mod trajectory;

pub use batch::{PreparedBase, SegmentSoa};
pub use bbox::{Aabb, Aabb2};
pub use distance::{
    endpoint_sum_distance, lehmer_mean_2, order_by_length, AngleMode, DistanceComponents,
    DistanceWeights, SegmentDistance,
};
pub use frame::OrthonormalFrame;
pub use lower_bound::{
    prune_tier, segment_tiers, tiers as lower_bound_tiers, PruneFilter, TIER_COUNT,
};
pub use point::{Point, Point2, Vector, Vector2};
pub use segment::{Projection, Segment, Segment2};
pub use trajectory::{
    IdentifiedSegment, IdentifiedSegment2, SegmentId, Trajectory, Trajectory2, TrajectoryId,
};
