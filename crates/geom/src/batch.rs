//! Batched evaluation of the composite segment distance over a
//! structure-of-arrays geometry cache.
//!
//! `SegmentDistance::distance` dominates both TRACLUS phases: every
//! ε-neighborhood query of Figure 12 evaluates it against dozens of
//! candidates, and the MDL cost of Figure 8 evaluates the perpendicular and
//! angle components of one hypothesis segment against every original edge
//! under it. Both workloads share a *one query vs. many candidates* shape,
//! so the per-query projection setup (direction vector, squared norm,
//! length, degeneracy check) can be hoisted out of the candidate loop.
//!
//! Two entry points:
//!
//! * [`SegmentSoa`] + [`SegmentDistance::distance_many`] — the symmetric
//!   clustering-phase distance against cached candidate geometry;
//! * [`PreparedBase`] + [`SegmentDistance::mdl_components_prepared`] — the
//!   role-explicit perpendicular + angle pair used by Formula 7, skipping
//!   the parallel component entirely.
//!
//! # Exactness contract
//!
//! The batched kernels are **bit-identical** to the scalar path
//! ([`SegmentDistance::distance_ordered`] /
//! [`SegmentDistance::mdl_components`]): every floating-point operation is
//! performed in the same order on the same values, with one provably exact
//! rewrite — the parallel distance takes `min` over *squared* endpoint gaps
//! before a single square root instead of four roots before the `min`
//! (`√` is monotone and correctly rounded, so `min(√a, √b) ≡ √min(a, b)`
//! bit-for-bit on non-negative inputs). Cached values (direction vectors,
//! squared norms, lengths, midpoints) are produced by the same expressions
//! the scalar path evaluates inline, so reusing them changes nothing.
//! Property tests in `tests/proptest_geom.rs` compare raw bits.
//!
//! # Role ordering
//!
//! [`SegmentDistance::distance_many`] assigns the *longer* segment the base
//! role `Lᵢ` (Lemma 2), comparing the **cached** lengths; exact-length ties
//! are broken by the smaller SoA index — the paper's "internal identifier"
//! tie-break, matching `SegmentDatabase::distance` in `traclus-core` (which
//! stores segments id-ordered) rather than the coordinate-lexicographic
//! fallback of the id-free scalar [`SegmentDistance::distance`].

use crate::distance::{
    lehmer_mean_2, AngleMode, DistanceComponents, DistanceWeights, SegmentDistance,
};
use crate::point::{Point, Vector};
use crate::segment::Segment;

/// Structure-of-arrays geometry cache: contiguous per-segment starts, ends,
/// direction vectors, squared norms, lengths, and midpoints, precomputed
/// once so batched distance evaluation touches no `Segment` values.
///
/// Index `i` everywhere refers to the `i`-th pushed segment; in
/// `traclus-core` that is exactly the dense segment id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SegmentSoa<const D: usize> {
    starts: Vec<Point<D>>,
    ends: Vec<Point<D>>,
    /// Raw (unnormalised) direction vectors `→se`; kept unnormalised
    /// because the scalar path projects with `(p − s)·v / ‖v‖²` and bit
    /// equality requires the same operands. `dir / length` recovers the
    /// unit direction where one is needed.
    dirs: Vec<Vector<D>>,
    norms_sq: Vec<f64>,
    lengths: Vec<f64>,
    midpoints: Vec<Point<D>>,
}

impl<const D: usize> SegmentSoa<D> {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            starts: Vec::new(),
            ends: Vec::new(),
            dirs: Vec::new(),
            norms_sq: Vec::new(),
            lengths: Vec::new(),
            midpoints: Vec::new(),
        }
    }

    /// Builds the cache from a segment sequence.
    pub fn from_segments<'a>(segments: impl IntoIterator<Item = &'a Segment<D>>) -> Self {
        let mut soa = Self::new();
        for s in segments {
            soa.push(s);
        }
        soa
    }

    /// Appends one segment's derived geometry.
    pub fn push(&mut self, s: &Segment<D>) {
        let v = s.vector();
        let norm_sq = v.norm_squared();
        self.starts.push(s.start);
        self.ends.push(s.end);
        self.dirs.push(v);
        // `‖v‖² = Σ(e−s)² = Σ(s−e)²` exactly, so this √ is bit-identical
        // to `Segment::length()`.
        self.norms_sq.push(norm_sq);
        self.lengths.push(norm_sq.sqrt());
        self.midpoints.push(s.midpoint());
    }

    /// Number of cached segments.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Cached length `‖Lᵢ‖` (bit-identical to `Segment::length()`).
    pub fn length(&self, i: usize) -> f64 {
        self.lengths[i]
    }

    /// Cached squared norm of the direction vector.
    pub fn norm_squared(&self, i: usize) -> f64 {
        self.norms_sq[i]
    }

    /// Cached start point.
    pub fn start(&self, i: usize) -> Point<D> {
        self.starts[i]
    }

    /// Cached end point.
    pub fn end(&self, i: usize) -> Point<D> {
        self.ends[i]
    }

    /// Cached raw direction vector `→se`.
    pub fn direction(&self, i: usize) -> Vector<D> {
        self.dirs[i]
    }

    /// Cached midpoint.
    pub fn midpoint(&self, i: usize) -> Point<D> {
        self.midpoints[i]
    }

    /// Reconstructs the segment at `i`.
    pub fn segment(&self, i: usize) -> Segment<D> {
        Segment::new(self.starts[i], self.ends[i])
    }

    /// All six arrays re-sliced to the common length, so the optimiser can
    /// prove a clamped index is in bounds for *every* array (the parallel
    /// `Vec`s have no shared-length invariant the compiler could see).
    #[inline(always)]
    fn view(&self) -> SoaView<'_, D> {
        let n = self.starts.len();
        SoaView {
            starts: &self.starts[..n],
            ends: &self.ends[..n],
            dirs: &self.dirs[..n],
            norms_sq: &self.norms_sq[..n],
            lengths: &self.lengths[..n],
            midpoints: &self.midpoints[..n],
        }
    }
}

/// Borrowed, equal-length slices of every [`SegmentSoa`] array — the form
/// the hot kernels index so bounds checks vanish from their inner blocks.
#[derive(Clone, Copy)]
struct SoaView<'a, const D: usize> {
    starts: &'a [Point<D>],
    ends: &'a [Point<D>],
    dirs: &'a [Vector<D>],
    norms_sq: &'a [f64],
    lengths: &'a [f64],
    midpoints: &'a [Point<D>],
}

/// A segment prepared to play the base role `Lᵢ` (projection target) across
/// many component evaluations: the per-query state the scalar path
/// recomputes for every pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreparedBase<const D: usize> {
    start: Point<D>,
    end: Point<D>,
    dir: Vector<D>,
    norm_sq: f64,
}

impl<const D: usize> PreparedBase<D> {
    /// Precomputes the projection setup of `base`.
    pub fn new(base: &Segment<D>) -> Self {
        let dir = base.vector();
        Self {
            start: base.start,
            end: base.end,
            dir,
            norm_sq: dir.norm_squared(),
        }
    }
}

impl<const D: usize> From<&Segment<D>> for PreparedBase<D> {
    fn from(s: &Segment<D>) -> Self {
        Self::new(s)
    }
}

impl SegmentDistance {
    /// Batched weighted distances from `query` to each of `candidates`
    /// (indices into `soa`), written into `out[k]` for `candidates[k]`.
    ///
    /// Role ordering matches `SegmentDatabase::distance`: the longer cached
    /// length plays `Lᵢ`, exact ties resolved in favour of the smaller
    /// index. Results are bit-identical to calling the scalar
    /// [`SegmentDistance::distance_ordered`] with that ordering.
    ///
    /// # Panics
    ///
    /// When `out.len() != candidates.len()` or an index is out of bounds.
    pub fn distance_many_into<const D: usize>(
        &self,
        soa: &SegmentSoa<D>,
        query: u32,
        candidates: &[u32],
        out: &mut [f64],
    ) {
        assert_eq!(
            candidates.len(),
            out.len(),
            "distance_many_into needs one output slot per candidate"
        );
        // `view` re-slices all six arrays to one shared length value, so a
        // single bounds-checked `lengths` load per candidate (in `roles`)
        // establishes `index < n` for *every* later array access — the
        // kernel below then compiles to one branch-free basic block, which
        // is what lets the SLP vectorizer pair its divisions and square
        // roots into packed ops.
        let view = soa.view();
        let q = query as usize;
        let q_len = view.lengths[q];
        // Lemma 2 ordering on cached lengths, id tie-break. (Deliberately
        // branchy: a predicted branch lets the role-dependent gathers
        // issue speculatively, where a conditional move would serialise
        // them behind the length compare — measured slower.)
        let roles = |cand: u32| -> (usize, usize) {
            let c = cand as usize;
            let c_len = view.lengths[c];
            if q_len > c_len {
                (q, c)
            } else if c_len > q_len {
                (c, q)
            } else if query <= cand {
                (q, c)
            } else {
                (c, q)
            }
        };
        // Two candidates per step: the kernel is bound by divider-unit
        // throughput (4 divisions + 4 square roots per pair survive the
        // exact rewrites), and two interleaved lanes of isomorphic scalar
        // trees let LLVM's SLP vectorizer pair every one of them into a
        // packed `divpd`/`sqrtpd` — same port cost as one scalar op.
        let mut chunks = candidates.chunks_exact(2);
        let mut slots = out.chunks_exact_mut(2);
        for (pair, slot) in (&mut chunks).zip(&mut slots) {
            let (li_a, lj_a) = roles(pair[0]);
            let (li_b, lj_b) = roles(pair[1]);
            let [s0, s1] = slot else {
                unreachable!("chunks_exact_mut(2) yields exactly two slots")
            };
            if !lane2_kernel(
                &view,
                li_a,
                lj_a,
                li_b,
                lj_b,
                self.angle_mode,
                &self.weights,
                s0,
                s1,
            ) {
                // A rare lane (degenerate geometry, exact collinearity):
                // redo both through the fully-guarded kernel.
                let (da, db) = rare_pair_fallback(
                    &view,
                    li_a,
                    lj_a,
                    li_b,
                    lj_b,
                    self.angle_mode,
                    &self.weights,
                );
                *s0 = da;
                *s1 = db;
            }
        }
        // A possible leftover candidate: the guarded kernel, singly.
        for (&cand, slot) in chunks.remainder().iter().zip(slots.into_remainder()) {
            let (li, lj) = roles(cand);
            *slot = batched_components(&view, li, lj, self.angle_mode).weighted(&self.weights);
        }
    }

    /// [`Self::distance_many_into`] with `out` cleared and resized to match
    /// `candidates`.
    pub fn distance_many<const D: usize>(
        &self,
        soa: &SegmentSoa<D>,
        query: u32,
        candidates: &[u32],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.resize(candidates.len(), 0.0);
        self.distance_many_into(soa, query, candidates, out);
    }

    /// The `(d⊥, dθ)` pair of [`Self::mdl_components`] with the base
    /// segment's projection setup hoisted into `base` — Formula 7 evaluates
    /// one hypothesis against every edge under it, so preparing once
    /// amortises the setup *and* skips the parallel component (with its
    /// four square roots) that the MDL cost discards anyway.
    ///
    /// Bit-identical to `self.mdl_components(base_segment, edge)`.
    pub fn mdl_components_prepared<const D: usize>(
        &self,
        base: &PreparedBase<D>,
        edge: &Segment<D>,
    ) -> (f64, f64) {
        if base.norm_sq <= 0.0 {
            // Degenerate base: the whole positional difference is
            // perpendicular (point-to-midpoint), no directional strength.
            return (base.start.distance(&edge.midpoint()), 0.0);
        }
        let ps = project(&base.start, &base.dir, base.norm_sq, &edge.start);
        let pe = project(&base.start, &base.dir, base.norm_sq, &edge.end);
        let perpendicular = lehmer_mean_2(edge.start.distance(&ps), edge.end.distance(&pe));
        let angle = angle_component(
            &base.dir,
            base.norm_sq,
            &edge.vector(),
            edge.vector().norm_squared(),
            edge.length(),
            self.angle_mode,
        );
        (perpendicular, angle)
    }
}

/// Projection of `p` onto the supporting line through `start` along `dir`
/// (Formula 4) — the same operation order as `Segment::project_onto_line`
/// followed by `translate(scale(u))`.
#[inline(always)]
fn project<const D: usize>(
    start: &Point<D>,
    dir: &Vector<D>,
    norm_sq: f64,
    p: &Point<D>,
) -> Point<D> {
    let u = start.vector_to(p).dot(dir) / norm_sq;
    start.translate(&dir.scale(u))
}

/// The angle distance `dθ` (Definition 3) from cached operands; mirrors the
/// scalar `Vector::sin_angle` + mode dispatch exactly, reusing the single
/// dot product for both the Gram determinant and the direction test.
#[inline(always)]
fn angle_component<const D: usize>(
    vi: &Vector<D>,
    vi_norm_sq: f64,
    vj: &Vector<D>,
    vj_norm_sq: f64,
    lj_len: f64,
    mode: AngleMode,
) -> f64 {
    if lj_len <= 0.0 {
        return 0.0;
    }
    let denom = vi_norm_sq * vj_norm_sq;
    if denom <= 0.0 {
        // `sin_angle` is undefined for a zero vector (scalar path: None).
        return 0.0;
    }
    let vw = vi.dot(vj);
    let gram = (denom - vw * vw).max(0.0);
    let sin_theta = (gram / denom).sqrt().clamp(0.0, 1.0);
    match mode {
        AngleMode::Directed => {
            // Branchless select: `θ ≥ 90°` contributes the full length,
            // i.e. a factor of exactly 1 (`x·1.0 ≡ x` in IEEE 754, so this
            // stays bit-identical to the scalar two-arm branch while the
            // data-dependent direction test becomes a conditional move).
            let factor = if vw > 0.0 { sin_theta } else { 1.0 };
            lj_len * factor
        }
        AngleMode::Undirected => lj_len * sin_theta,
    }
}

/// Two independent (base, other) lane pairs evaluated in lockstep — every
/// statement exists once per lane, adjacent and structurally identical, so
/// the SLP vectorizer can fuse each division and square-root pair into one
/// packed instruction. Lanes never mix: each lane's value sequence is the
/// scalar sequence of [`batched_components`], so results stay bit-identical.
/// Speculatively stores the two weighted distances through `s0`/`s1` —
/// adjacent output slots, so the SLP vectorizer can seed its tree from the
/// store pair — and returns `true` when the stored values are valid.
///
/// The hot path is one straight-line basic block: no degeneracy guards
/// run before the stores, so every division and square root executes
/// unconditionally and the vectorizer cannot sink them behind branches.
/// Instead, one trailing check detects the rare lanes whose scalar
/// version would have branched — degenerate base (no supporting line),
/// zero Lehmer denominator (`lj` exactly on the base line, e.g. the query
/// itself), degenerate `lj` — and returns `false`; the caller then redoes
/// *both* lanes through the fully-guarded single-candidate kernel,
/// overwriting the speculative NaN/∞ garbage. Valid lanes are
/// bit-identical to the scalar path.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn lane2_kernel<const D: usize>(
    soa: &SoaView<'_, D>,
    li_a: usize,
    lj_a: usize,
    li_b: usize,
    lj_b: usize,
    mode: AngleMode,
    weights: &DistanceWeights,
    s0: &mut f64,
    s1: &mut f64,
) -> bool {
    // Every gather up front: the indexed loads carry the (predicted
    // never-taken) bounds-check branches, and grouping them here keeps the
    // arithmetic below in one branch-free basic block — the shape the SLP
    // vectorizer needs to pair the lanes' divisions and square roots.
    let norm_a = soa.norms_sq[li_a];
    let norm_b = soa.norms_sq[li_b];
    let vi_a = soa.dirs[li_a];
    let vi_b = soa.dirs[li_b];
    let start_a = soa.starts[li_a];
    let start_b = soa.starts[li_b];
    let end_a = soa.ends[li_a];
    let end_b = soa.ends[li_b];
    let ts_a = soa.starts[lj_a];
    let ts_b = soa.starts[lj_b];
    let te_a = soa.ends[lj_a];
    let te_b = soa.ends[lj_b];
    let vj_a = soa.dirs[lj_a];
    let vj_b = soa.dirs[lj_b];
    let norm_lj_a = soa.norms_sq[lj_a];
    let norm_lj_b = soa.norms_sq[lj_b];
    let len_a = soa.lengths[lj_a];
    let len_b = soa.lengths[lj_b];
    let directed = matches!(mode, AngleMode::Directed);

    // Projections of both endpoints, both lanes (Formula 4).
    let u1_a = start_a.vector_to(&ts_a).dot(&vi_a) / norm_a;
    let u1_b = start_b.vector_to(&ts_b).dot(&vi_b) / norm_b;
    let u2_a = start_a.vector_to(&te_a).dot(&vi_a) / norm_a;
    let u2_b = start_b.vector_to(&te_b).dot(&vi_b) / norm_b;
    let ps_a = start_a.translate(&vi_a.scale(u1_a));
    let ps_b = start_b.translate(&vi_b.scale(u1_b));
    let pe_a = start_a.translate(&vi_a.scale(u2_a));
    let pe_b = start_b.translate(&vi_b.scale(u2_b));

    // Perpendicular offsets (Definition 1).
    let perp1_a = ts_a.distance_squared(&ps_a).sqrt();
    let perp1_b = ts_b.distance_squared(&ps_b).sqrt();
    let perp2_a = te_a.distance_squared(&pe_a).sqrt();
    let perp2_b = te_b.distance_squared(&pe_b).sqrt();

    // Parallel gaps (Definition 2), min over squared gaps before one √.
    let gap_a = ps_a
        .distance_squared(&start_a)
        .min(ps_a.distance_squared(&end_a))
        .min(
            pe_a.distance_squared(&start_a)
                .min(pe_a.distance_squared(&end_a)),
        );
    let gap_b = ps_b
        .distance_squared(&start_b)
        .min(ps_b.distance_squared(&end_b))
        .min(
            pe_b.distance_squared(&start_b)
                .min(pe_b.distance_squared(&end_b)),
        );

    // Angle operands (Definition 3).
    let vw_a = vi_a.dot(&vj_a);
    let vw_b = vi_b.dot(&vj_b);
    let sin_den_a = norm_a * norm_lj_a;
    let sin_den_b = norm_b * norm_lj_b;
    let gram_a = (sin_den_a - vw_a * vw_a).max(0.0);
    let gram_b = (sin_den_b - vw_b * vw_b).max(0.0);

    let lehmer_den_a = perp1_a + perp2_a;
    let lehmer_den_b = perp1_b + perp2_b;
    let lehmer_q_a = (perp1_a * perp1_a + perp2_a * perp2_a) / lehmer_den_a;
    let lehmer_q_b = (perp1_b * perp1_b + perp2_b * perp2_b) / lehmer_den_b;
    let sin_q_a = gram_a / sin_den_a;
    let sin_q_b = gram_b / sin_den_b;

    let parallel_a = gap_a.sqrt();
    let parallel_b = gap_b.sqrt();
    let sin_root_a = sin_q_a.sqrt();
    let sin_root_b = sin_q_b.sqrt();

    // `θ ≥ 90°` contributes the full length, i.e. a factor of exactly 1
    // (`x·1.0 ≡ x` in IEEE 754, so the select is bit-identical to the
    // scalar two-arm branch). Both select operands are already computed,
    // so this compiles to a conditional move, not a block split.
    let sin_a = sin_root_a.clamp(0.0, 1.0);
    let sin_b = sin_root_b.clamp(0.0, 1.0);
    let dir_a = if vw_a > 0.0 { sin_a } else { 1.0 };
    let dir_b = if vw_b > 0.0 { sin_b } else { 1.0 };
    let factor_a = if directed { dir_a } else { sin_a };
    let factor_b = if directed { dir_b } else { sin_b };
    let angle_a = len_a * factor_a;
    let angle_b = len_b * factor_b;

    *s0 = DistanceComponents {
        perpendicular: lehmer_q_a,
        parallel: parallel_a,
        angle: angle_a,
    }
    .weighted(weights);
    *s1 = DistanceComponents {
        perpendicular: lehmer_q_b,
        parallel: parallel_b,
        angle: angle_b,
    }
    .weighted(weights);

    // The scalar path short-circuits on any of these (returning exact
    // zeros for the affected components); redo such lanes the guarded way.
    let rare = (norm_a <= 0.0)
        | (norm_b <= 0.0)
        | (lehmer_den_a <= 0.0)
        | (lehmer_den_b <= 0.0)
        | (len_a <= 0.0)
        | (len_b <= 0.0)
        // `sin_den` can underflow to zero for tiny-but-proper segments;
        // the scalar path short-circuits there too.
        | (sin_den_a <= 0.0)
        | (sin_den_b <= 0.0);
    !rare
}

/// Cold path for a lane pair whose speculative results were invalid
/// (degenerate geometry or exact collinearity): defer to the
/// single-candidate kernel, which guards every branch the scalar path has.
#[cold]
#[inline(never)]
fn rare_pair_fallback<const D: usize>(
    soa: &SoaView<'_, D>,
    li_a: usize,
    lj_a: usize,
    li_b: usize,
    lj_b: usize,
    mode: AngleMode,
    weights: &DistanceWeights,
) -> (f64, f64) {
    (
        batched_components(soa, li_a, lj_a, mode).weighted(weights),
        batched_components(soa, li_b, lj_b, mode).weighted(weights),
    )
}

/// `components_with_roles` over cached geometry: `li` is the base segment.
#[inline(always)]
fn batched_components<const D: usize>(
    soa: &SoaView<'_, D>,
    li: usize,
    lj: usize,
    mode: AngleMode,
) -> DistanceComponents {
    let norm_sq = soa.norms_sq[li];
    if norm_sq <= 0.0 {
        return DistanceComponents {
            perpendicular: soa.starts[li].distance(&soa.midpoints[lj]),
            parallel: 0.0,
            angle: 0.0,
        };
    }
    let li_start = soa.starts[li];
    let li_end = soa.ends[li];
    let vi = soa.dirs[li];
    let lj_start = soa.starts[lj];
    let lj_end = soa.ends[lj];

    // Both endpoint projections in lockstep `[f64; 2]` lanes: the divider
    // unit is the kernel's throughput bottleneck, and pairing the two
    // independent divisions (and the two perpendicular square roots below)
    // lets LLVM's SLP vectorizer emit one packed `divpd`/`sqrtpd` with the
    // same port cost as a single scalar op. Lanes never interact, so every
    // lane result is bit-identical to the scalar sequence.
    let u = [
        li_start.vector_to(&lj_start).dot(&vi) / norm_sq,
        li_start.vector_to(&lj_end).dot(&vi) / norm_sq,
    ];
    let ps = li_start.translate(&vi.scale(u[0]));
    let pe = li_start.translate(&vi.scale(u[1]));

    let perp_sq = [lj_start.distance_squared(&ps), lj_end.distance_squared(&pe)];
    let perp = [perp_sq[0].sqrt(), perp_sq[1].sqrt()];

    // Definition 2 as one √ instead of four: min over squared gaps first
    // (exact — √ is monotone and correctly rounded on non-negatives).
    let gap1 = ps
        .distance_squared(&li_start)
        .min(ps.distance_squared(&li_end));
    let gap2 = pe
        .distance_squared(&li_start)
        .min(pe.distance_squared(&li_end));
    let gap_min = gap1.min(gap2);

    // Remaining divider work packed two-by-two as well: the Lehmer-mean
    // division (Definition 1) pairs with the Gram-determinant division of
    // `sin θ` (Definition 3), and the parallel-gap root pairs with the
    // `sin θ` root. The divisions run speculatively — a lane whose scalar
    // branch would have short-circuited (zero Lehmer denominator,
    // degenerate `lj`) yields NaN/∞ that the selects below discard, so
    // every surviving lane is still bit-identical to the scalar path.
    let lehmer_den = perp[0] + perp[1];
    let vj = soa.dirs[lj];
    let vw = vi.dot(&vj);
    let sin_den = norm_sq * soa.norms_sq[lj];
    let gram = (sin_den - vw * vw).max(0.0);
    let quot = [
        (perp[0] * perp[0] + perp[1] * perp[1]) / lehmer_den,
        gram / sin_den,
    ];
    let root = [gap_min.sqrt(), quot[1].sqrt()];

    let perpendicular = if lehmer_den <= 0.0 { 0.0 } else { quot[0] };
    let parallel = root[0];
    let lj_len = soa.lengths[lj];
    let angle = if lj_len <= 0.0 || sin_den <= 0.0 {
        // Scalar path: zero-length `lj` has no directional strength, and
        // `sin_angle` is undefined (None) for a zero vector.
        0.0
    } else {
        let sin_theta = root[1].clamp(0.0, 1.0);
        match mode {
            AngleMode::Directed => {
                if vw > 0.0 {
                    lj_len * sin_theta
                } else {
                    lj_len
                }
            }
            AngleMode::Undirected => lj_len * sin_theta,
        }
    };

    DistanceComponents {
        perpendicular,
        parallel,
        angle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistanceWeights;
    use crate::segment::Segment2;

    fn sample_segments() -> Vec<Segment2> {
        vec![
            Segment2::xy(0.0, 0.0, 10.0, 0.0),
            Segment2::xy(2.0, 1.0, 8.0, 1.0),
            Segment2::xy(0.0, 2.0, 10.0, 2.5),
            Segment2::xy(5.0, 5.0, 5.0, 5.0), // degenerate
            Segment2::xy(100.0, -3.0, 90.0, 4.0),
            Segment2::xy(0.0, 0.0, 0.0, 10.0), // equal length to id 0
            Segment2::xy(1.0, 1.0, 1.0, 1.0),  // second degenerate
        ]
    }

    /// The scalar reference with the same role rule as the batch kernel:
    /// cached-length ordering, index tie-break.
    fn scalar_reference(dist: &SegmentDistance, segs: &[Segment2], a: usize, b: usize) -> f64 {
        let la = segs[a].length();
        let lb = segs[b].length();
        let (i, j) = if la > lb {
            (a, b)
        } else if lb > la {
            (b, a)
        } else if a <= b {
            (a, b)
        } else {
            (b, a)
        };
        dist.distance_ordered(&segs[i], &segs[j])
    }

    #[test]
    fn batched_distances_bit_identical_to_scalar() {
        let segs = sample_segments();
        let soa = SegmentSoa::from_segments(segs.iter());
        let candidates: Vec<u32> = (0..segs.len() as u32).collect();
        let weight_sets = [
            DistanceWeights::uniform(),
            DistanceWeights::new(2.0, 0.5, 3.0),
            DistanceWeights::new(0.0, 1.0, 1.0),
            DistanceWeights::new(1.0, 0.0, 0.0),
        ];
        for weights in weight_sets {
            for mode in [AngleMode::Directed, AngleMode::Undirected] {
                let dist = SegmentDistance::new(weights, mode);
                let mut out = Vec::new();
                for q in 0..segs.len() {
                    dist.distance_many(&soa, q as u32, &candidates, &mut out);
                    for (c, &d) in out.iter().enumerate() {
                        let expected = scalar_reference(&dist, &segs, q, c);
                        assert_eq!(
                            d.to_bits(),
                            expected.to_bits(),
                            "batch != scalar at ({q},{c}) with {weights:?} {mode:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batched_self_distance_is_zero() {
        let segs = sample_segments();
        let soa = SegmentSoa::from_segments(segs.iter());
        let dist = SegmentDistance::default();
        let mut out = Vec::new();
        for q in 0..segs.len() as u32 {
            dist.distance_many(&soa, q, &[q], &mut out);
            assert_eq!(out[0], 0.0, "dist(L, L) must be exactly 0 for {q}");
        }
    }

    #[test]
    fn distance_many_into_slice_variant() {
        let segs = sample_segments();
        let soa = SegmentSoa::from_segments(segs.iter());
        let dist = SegmentDistance::default();
        let candidates = [1u32, 4, 2];
        let mut out = [0.0f64; 3];
        dist.distance_many_into(&soa, 0, &candidates, &mut out);
        let mut vec_out = Vec::new();
        dist.distance_many(&soa, 0, &candidates, &mut vec_out);
        assert_eq!(out.as_slice(), vec_out.as_slice());
    }

    #[test]
    #[should_panic(expected = "one output slot")]
    fn mismatched_output_length_rejected() {
        let segs = sample_segments();
        let soa = SegmentSoa::from_segments(segs.iter());
        let mut out = [0.0f64; 1];
        SegmentDistance::default().distance_many_into(&soa, 0, &[0, 1], &mut out);
    }

    #[test]
    fn prepared_mdl_components_bit_identical() {
        let segs = sample_segments();
        let dist = SegmentDistance::default();
        for base_seg in &segs {
            let base = PreparedBase::new(base_seg);
            for edge in &segs {
                let (perp, angle) = dist.mdl_components_prepared(&base, edge);
                let (sp, sa) = dist.mdl_components(base_seg, edge);
                assert_eq!(perp.to_bits(), sp.to_bits());
                assert_eq!(angle.to_bits(), sa.to_bits());
            }
        }
    }

    #[test]
    fn soa_accessors_round_trip() {
        let segs = sample_segments();
        let soa = SegmentSoa::from_segments(segs.iter());
        assert_eq!(soa.len(), segs.len());
        assert!(!soa.is_empty());
        for (i, s) in segs.iter().enumerate() {
            assert_eq!(soa.segment(i), *s);
            assert_eq!(soa.start(i), s.start);
            assert_eq!(soa.end(i), s.end);
            assert_eq!(soa.direction(i), s.vector());
            assert_eq!(soa.length(i).to_bits(), s.length().to_bits());
            assert_eq!(soa.norm_squared(i), s.vector().norm_squared());
            assert_eq!(soa.midpoint(i), s.midpoint());
        }
        assert!(SegmentSoa::<2>::new().is_empty());
    }
}
