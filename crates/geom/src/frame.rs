//! Orthonormal frames: the d-dimensional generalisation of the axis
//! rotation in Formula (9).
//!
//! Representative-trajectory generation (Section 4.3) rotates the axes so
//! that X becomes parallel to the cluster's average direction vector,
//! averages coordinates in the rotated system, and rotates back. The paper
//! gives the 2-D rotation matrix and notes the approach extends to 3-D
//! (footnote 3); an orthonormal frame whose first axis is the average
//! direction implements exactly that for any `D`.

use crate::point::{Point, Vector};

/// An orthonormal basis of `ℝ^D` whose first axis is a chosen direction.
///
/// ```
/// use traclus_geom::{OrthonormalFrame, Point2, Vector2};
///
/// let frame = OrthonormalFrame::from_direction(&Vector2::xy(1.0, 1.0)).unwrap();
/// let p = Point2::xy(2.0, 2.0);
/// let local = frame.to_frame(&p);
/// assert!((local[0] - 8.0f64.sqrt()).abs() < 1e-12); // along the diagonal
/// assert!(local[1].abs() < 1e-12);                    // no off-axis part
/// let back = frame.from_frame(&local);
/// assert!(back.distance(&p) < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OrthonormalFrame<const D: usize> {
    /// Row `k` is the `k`-th basis vector; row 0 is the chosen direction.
    axes: [Vector<D>; D],
}

impl<const D: usize> OrthonormalFrame<D> {
    /// Builds a frame whose first axis is `direction` (normalised), the
    /// remaining axes completed by Gram–Schmidt over the standard basis.
    /// Returns `None` for a (numerically) zero direction.
    pub fn from_direction(direction: &Vector<D>) -> Option<Self> {
        let first = direction.normalized()?;
        let mut axes = [Vector::<D>::zero(); D];
        axes[0] = first;
        let mut filled = 1;
        // Greedily orthonormalise standard basis vectors against what we
        // already have; skip the ones that are (numerically) dependent.
        // The dependence threshold must be far above machine epsilon:
        // a nearly-dependent unit candidate leaves a residual of pure
        // rounding noise (~1e-9 for unlucky directions), and normalising
        // that noise would produce a bogus axis nearly parallel to an
        // existing one. A genuinely new dimension always leaves a residual
        // of at least sin(angle to the current span), so skipping
        // candidates below 1e-6 is safe — another standard basis vector
        // will fill the slot.
        const DEPENDENCE_TOLERANCE: f64 = 1e-6;
        for k in 0..D {
            if filled == D {
                break;
            }
            let mut candidate = Vector::<D>::zero();
            candidate.components[k] = 1.0;
            for axis in axes.iter().take(filled) {
                let proj = candidate.dot(axis);
                candidate -= axis.scale(proj);
            }
            if candidate.norm() > DEPENDENCE_TOLERANCE {
                if let Some(unit) = candidate.normalized() {
                    axes[filled] = unit;
                    filled += 1;
                }
            }
        }
        debug_assert_eq!(filled, D, "Gram–Schmidt must complete the basis");
        Some(Self { axes })
    }

    /// The identity frame (standard basis).
    pub fn identity() -> Self {
        let mut axes = [Vector::<D>::zero(); D];
        for (k, axis) in axes.iter_mut().enumerate() {
            axis.components[k] = 1.0;
        }
        Self { axes }
    }

    /// The `k`-th basis vector.
    pub fn axis(&self, k: usize) -> &Vector<D> {
        &self.axes[k]
    }

    /// Coordinates of `p` in this frame (the rotated `X′Y′…` system).
    pub fn to_frame(&self, p: &Point<D>) -> [f64; D] {
        let v = p.to_vector();
        let mut out = [0.0; D];
        for k in 0..D {
            out[k] = v.dot(&self.axes[k]);
        }
        out
    }

    /// Inverse transform: frame coordinates back to world space
    /// ("undo the rotation" in Figure 15 line 11).
    pub fn from_frame(&self, local: &[f64; D]) -> Point<D> {
        let mut v = Vector::<D>::zero();
        for k in 0..D {
            v += self.axes[k].scale(local[k]);
        }
        v.to_point()
    }

    /// Only the first coordinate (the sweep axis `X′`); cheaper than
    /// [`Self::to_frame`] when sorting sweep events.
    pub fn sweep_coordinate(&self, p: &Point<D>) -> f64 {
        p.to_vector().dot(&self.axes[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{Point2, Vector2};

    const EPS: f64 = 1e-10;

    #[test]
    fn axes_are_orthonormal() {
        let f = OrthonormalFrame::from_direction(&Vector2::xy(3.0, 4.0)).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let dot = f.axis(i).dot(f.axis(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < EPS, "axes[{i}]·axes[{j}] = {dot}");
            }
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let f = OrthonormalFrame::from_direction(&Vector2::xy(-2.0, 5.0)).unwrap();
        for &(x, y) in &[(0.0, 0.0), (1.0, 2.0), (-7.5, 3.25), (1e5, -1e5)] {
            let p = Point2::xy(x, y);
            let back = f.from_frame(&f.to_frame(&p));
            assert!(back.distance(&p) < 1e-6 * (1.0 + x.abs() + y.abs()));
        }
    }

    #[test]
    fn matches_formula_9_rotation_matrix_in_2d() {
        // Formula (9): x′ = cosφ·x + sinφ·y ; y′ = −sinφ·x + cosφ·y,
        // where φ is the angle of the average direction vector.
        let phi: f64 = 0.7;
        let dir = Vector2::xy(phi.cos(), phi.sin());
        let f = OrthonormalFrame::from_direction(&dir).unwrap();
        let p = Point2::xy(3.0, -2.0);
        let local = f.to_frame(&p);
        let expected_x = phi.cos() * 3.0 + phi.sin() * (-2.0);
        let expected_y = -phi.sin() * 3.0 + phi.cos() * (-2.0);
        assert!((local[0] - expected_x).abs() < EPS);
        // The Gram–Schmidt second axis equals (−sinφ, cosφ) up to sign.
        assert!(
            (local[1] - expected_y).abs() < EPS || (local[1] + expected_y).abs() < EPS,
            "second axis may differ in sign; |y′| must match"
        );
    }

    #[test]
    fn zero_direction_yields_none() {
        assert!(OrthonormalFrame::<2>::from_direction(&Vector2::zero()).is_none());
    }

    #[test]
    fn identity_frame_is_standard_basis() {
        let f = OrthonormalFrame::<3>::identity();
        let p: Point<3> = Point::new([1.0, 2.0, 3.0]);
        assert_eq!(f.to_frame(&p), [1.0, 2.0, 3.0]);
    }

    #[test]
    fn sweep_coordinate_matches_full_transform() {
        let f = OrthonormalFrame::from_direction(&Vector2::xy(1.0, 2.0)).unwrap();
        let p = Point2::xy(4.0, -1.0);
        assert!((f.sweep_coordinate(&p) - f.to_frame(&p)[0]).abs() < EPS);
    }

    #[test]
    fn works_with_axis_aligned_direction() {
        // Direction collinear with a standard basis vector: Gram–Schmidt
        // must skip the dependent candidate.
        let f = OrthonormalFrame::from_direction(&Vector2::xy(0.0, -3.0)).unwrap();
        let p = Point2::xy(2.0, -5.0);
        let local = f.to_frame(&p);
        assert!((local[0] - 5.0).abs() < EPS, "along −y");
        assert!((local[1].abs() - 2.0).abs() < EPS);
        let back = f.from_frame(&local);
        assert!(back.distance(&p) < EPS);
    }

    #[test]
    fn nearly_axis_aligned_direction_yields_orthonormal_axes() {
        // Regression: a direction within ~5e-4 of +x used to leave a
        // rounding-noise residual for the second standard basis candidate,
        // which was normalised into a bogus axis parallel to axes[0]
        // (axes[0]·axes[2] = −1) — breaking 3-D representative
        // trajectories.
        let dir: Vector<3> = Vector::new([468.0, 0.25, 0.0]);
        let f = OrthonormalFrame::from_direction(&dir).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let dot = f.axis(i).dot(f.axis(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-9, "axes[{i}]·axes[{j}] = {dot}");
            }
        }
        let p: Point<3> = Point::new([234.0, 1.5, 35.6]);
        let back = f.from_frame(&f.to_frame(&p));
        assert!(back.distance(&p) < 1e-6);
    }

    #[test]
    fn three_dimensional_frame() {
        let dir: Vector<3> = Vector::new([1.0, 1.0, 1.0]);
        let f = OrthonormalFrame::from_direction(&dir).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let dot = f.axis(i).dot(f.axis(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < EPS);
            }
        }
        let p: Point<3> = Point::new([1.0, 2.0, 3.0]);
        let back = f.from_frame(&f.to_frame(&p));
        assert!(back.distance(&p) < 1e-9);
    }
}
