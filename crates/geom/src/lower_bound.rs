//! Admissible lower bounds on the composite segment distance — the
//! *filter* half of the filter-and-refine ε-neighborhood path.
//!
//! Every bound here is a true lower bound of the weighted composite
//! distance **as computed** by the batched kernel
//! ([`SegmentDistance::distance_many_into`]), not merely of its
//! real-number idealisation. A candidate whose bound already exceeds ε can
//! therefore be discarded without evaluating the full distance, and the
//! surviving candidates produce *bit-identical* neighborhoods — the
//! refine step runs the unchanged exact kernel, and nothing the filter
//! removed could have passed `d ≤ ε`.
//!
//! # The three tiers
//!
//! Writing `w⊥, w∥, wθ` for the weights, `d⊥` (order-2 Lehmer mean of the
//! perpendicular offsets, Definition 1), `d∥` (minimum endpoint gap along
//! the base line, Definition 2) and `dθ` (Definition 3) for the exact
//! components, the weighted distance is `w⊥·d⊥ + w∥·d∥ + wθ·dθ` with every
//! term non-negative. Each tier sharpens the previous one and costs a
//! little more:
//!
//! **Tier 1 — MBR distance.** Let `dmin` be the minimum Euclidean
//! distance between the two segments and `mbrd` the [`Aabb::min_distance`]
//! of their bounding boxes, so `mbrd ≤ dmin` (segments lie inside their
//! boxes). The filter-radius derivation in `traclus-index` shows
//! `dmin ≤ √((2d⊥)² + d∥²)`; substituting `x = 2d⊥, y = d∥ ≥ 0` and
//! minimising `(w⊥/2)·x + w∥·y` over the exterior of the circle
//! `√(x² + y²) ≥ mbrd` (using `a·x + b·y ≥ min(a,b)·(x+y) ≥
//! min(a,b)·√(x²+y²)`) gives
//!
//! ```text
//! w⊥·d⊥ + w∥·d∥ ≥ min(w⊥/2, w∥) · mbrd
//! ```
//!
//! **Tier 2 — midpoint/length.** Let `M` be the distance between the two
//! segment midpoints and `h = (‖Lᵢ‖ + ‖Lⱼ‖)/2`. Project `Lⱼ`'s midpoint
//! onto `Lᵢ`'s supporting line: projection is affine, so the image `pm` is
//! the midpoint of the projected endpoints `ps, pe`, and
//! `dist(mid_j, pm) = ½‖(s_j − ps) + (e_j − pe)‖ ≤ ½(l⊥1 + l⊥2) ≤ d⊥`
//! (the arithmetic mean never exceeds the order-2 Lehmer mean). Projection
//! is 1-Lipschitz, so `dist(pm, p) ≤ ‖Lⱼ‖/2` for whichever `p ∈ {ps, pe}`
//! achieves `d∥` against some endpoint `e` of `Lᵢ`, and `dist(mid_i, e) =
//! ‖Lᵢ‖/2` exactly. Chaining `mid_i → e → p → pm → mid_j`:
//!
//! ```text
//! M ≤ h + d⊥ + d∥   ⟹   w⊥·d⊥ + w∥·d∥ ≥ min(w⊥, w∥) · (M − h)
//! ```
//!
//! (For a degenerate base the exact distance collapses to
//! `w⊥·dist(start_i, mid_j) = w⊥·M` with `h = 0`, and both tiers still
//! hold with coefficients `≤ w⊥`.)
//!
//! **Tier 3 — exact angle.** `dθ` depends only on cached directions,
//! norms, and one length — no projections — so the tier evaluates it
//! *exactly*, replaying the batched kernel's operation sequence bit for
//! bit, and adds `wθ·dθ` on top of tier 2.
//!
//! # Floating-point admissibility
//!
//! The inequalities above are real-number facts; the computed bound must
//! not exceed the computed distance. Two mechanisms guarantee that:
//!
//! * Tiers 1–2 subtract a **slack** of `1e-9 · (h + Σ|midpoint coords|)`
//!   before scaling. `h + Σ|midpoint coords|` is a magnitude scale for
//!   every operand involved (endpoints lie within `h` of a midpoint, `M`
//!   is at most the L1 midpoint sum), each quantity (`mbrd`, `M`, `h`) is
//!   produced by a handful of correctly rounded operations on those
//!   operands, so accumulated rounding is within a few units of `1e-15`
//!   of the scale — five orders of magnitude below the slack. The
//!   subtraction makes the computed tier a strict under-approximation of
//!   the real bound, which the real inequality then relates to the real
//!   distance, which rounding keeps within the same margin of the
//!   computed distance.
//! * Tier 3 needs no slack of its own: the batched kernel evaluates
//!   `(w⊥·d⊥ + w∥·d∥) + wθ·dθ` left-associated, so with `P̂` the computed
//!   perpendicular+parallel partial sum and `Â = fl(wθ·dθ)` computed from
//!   the bit-identical angle, `tier3 = fl(tier2 + Â) ≤ fl(P̂ + Â) =
//!   distance` because `tier2 ≤ P̂` (tiers 1–2) and rounded addition is
//!   monotone.
//!
//! # The fast decision path
//!
//! [`tiers`] is the value-level reference: it materialises all three
//! bounds (two square roots and the exact angle's divide) and exists for
//! diagnostics and the property suites. The hot path —
//! [`PruneFilter::check`] behind [`prune_tier`] — only needs the
//! *decisions* `bound > ε`, and evaluates each one in squared space with
//! no square root or division:
//!
//! * tier 1 prunes on `c₁²·mbrd² > (ε + c₁·slack)²`, equivalent over the
//!   reals to `c₁·(mbrd − slack) > ε`;
//! * tier 2 prunes on `c₂²·M² > (ε + c₂·(h + slack))²`, equivalent to
//!   `c₂·(M − h − slack) > ε`;
//! * tier 3 drops tier 2's additive part (strictly conservative — it can
//!   only prune *less*) and tests `wθ·dθ > ε` alone:
//!   `wθ²·‖Lⱼ‖²·gram > (ε·(1+1e-9))²·sin_den` in the sine branch (and
//!   `wθ²·‖Lⱼ‖² > (ε·(1+1e-9))²` in the directed reversed branch, where
//!   the kernel's `dθ` is exactly `‖Lⱼ‖`), with `gram`/`sin_den` computed
//!   by the kernel's own operation sequence.
//!
//! The tests run cheapest-first — midpoint, then MBR, then angle (whose
//! dot product is gated on the necessary `wθ²·‖Lⱼ‖² > ε²` condition) —
//! so the counter attribution follows that order, not the tier
//! numbering.
//!
//! Squaring both sides of `a > b` with `a, b ≥ 0` is exact over the
//! reals; the finite-precision comparisons differ from the value-level
//! ones by a few ulps at most. For tiers 1–2 the `1e-9`-relative slack
//! dominates that error by six orders of magnitude, and for tier 3 the
//! explicit `1e-9` inflation of ε plays the same role — so a fast-path
//! prune always implies the *real* bound exceeds ε with margin to spare,
//! which the value-level argument above converts into the computed
//! distance exceeding ε. The decisions may disagree with the value-level
//! `tiers()[k] > ε` within that margin (tier 3 is deliberately weaker),
//! but every
//! `Some` is sound; the soundness suite asserts exactly that, plus
//! decision symmetry.
//!
//! Non-finite or negative weights admit no bound — every tier returns
//! `-∞` and nothing is ever pruned. `NaN` geometry poisons the bounds into
//! `0` or `NaN`, neither of which satisfies `bound > ε`, so corrupt input
//! degrades to "no pruning", never to a wrong neighborhood. The
//! `lower_bound_soundness` property suite checks admissibility, symmetry,
//! and tier monotonicity on random (including degenerate, collinear, and
//! shared-endpoint) geometry; `traclus-core`'s `invariant-checks` feature
//! re-scores every pruned candidate exactly and aborts on the first
//! inadmissible discard.

use crate::batch::SegmentSoa;
use crate::bbox::Aabb;
use crate::distance::{AngleMode, SegmentDistance};
use crate::point::{Point, Vector};
use crate::segment::Segment;

/// Number of bound tiers (`tiers()[k]` for `k < TIER_COUNT`).
pub const TIER_COUNT: usize = 3;

/// Relative slack subtracted from tiers 1–2 (scaled by the pair's
/// magnitude scale `h + Σ|midpoint coords|`) so accumulated f64 rounding
/// can never push a computed bound above the computed distance. The same
/// constant inflates ε in the fast tier-3 comparison. See the module docs.
pub const BOUND_SLACK: f64 = 1e-9;

/// The tier coefficients `(min(w⊥/2, w∥), min(w⊥, w∥))` when the weights
/// admit a sound bound; `None` for negative or non-finite weights.
#[inline(always)]
fn admissible_coefficients(dist: &SegmentDistance) -> Option<(f64, f64)> {
    let w = &dist.weights;
    let ok = |x: f64| x.is_finite() && x >= 0.0;
    if !(ok(w.perpendicular) && ok(w.parallel) && ok(w.angle)) {
        return None;
    }
    Some((
        (0.5 * w.perpendicular).min(w.parallel),
        w.perpendicular.min(w.parallel),
    ))
}

/// Midpoint separation `M`, half-length sum `h`, and the magnitude-scaled
/// slack shared by tiers 1 and 2.
#[inline(always)]
fn midpoint_context<const D: usize>(soa: &SegmentSoa<D>, i: usize, j: usize) -> (f64, f64, f64) {
    let mi = soa.midpoint(i);
    let mj = soa.midpoint(j);
    let m = mi.distance(&mj);
    let h = 0.5 * (soa.length(i) + soa.length(j));
    let mut mag = 0.0;
    for k in 0..D {
        mag += mi.coords[k].abs() + mj.coords[k].abs();
    }
    (m, h, BOUND_SLACK * (h + mag))
}

/// Tier 1: `min(w⊥/2, w∥) · max(0, mbrd − slack)`.
#[inline(always)]
fn tier1_value(c1: f64, mbrd: f64, slack: f64) -> f64 {
    c1 * (mbrd - slack).max(0.0)
}

/// Tier 2: tier 1 sharpened by `min(w⊥, w∥) · max(0, (M − h) − slack)`.
#[inline(always)]
fn tier2_value(t1: f64, c2: f64, m: f64, h: f64, slack: f64) -> f64 {
    t1.max(c2 * ((m - h) - slack).max(0.0))
}

/// The exact angle component `dθ` with `li` in the base role — the same
/// value sequence as the batched kernel (`batched_components`), so the
/// result is bit-identical to the angle term inside the refined distance.
#[inline(always)]
fn exact_angle<const D: usize>(soa: &SegmentSoa<D>, li: usize, lj: usize, mode: AngleMode) -> f64 {
    let norm_sq = soa.norm_squared(li);
    if norm_sq <= 0.0 {
        // Degenerate base: no supporting line, the kernel reports dθ = 0.
        return 0.0;
    }
    let vw = soa.direction(li).dot(&soa.direction(lj));
    let sin_den = norm_sq * soa.norm_squared(lj);
    let lj_len = soa.length(lj);
    if lj_len <= 0.0 || sin_den <= 0.0 {
        // Zero-length lj has no directional strength; sin_angle is
        // undefined for a zero (or underflowed) denominator.
        return 0.0;
    }
    let gram = (sin_den - vw * vw).max(0.0);
    let sin_theta = (gram / sin_den).sqrt().clamp(0.0, 1.0);
    match mode {
        AngleMode::Directed => {
            if vw > 0.0 {
                lj_len * sin_theta
            } else {
                lj_len
            }
        }
        AngleMode::Undirected => lj_len * sin_theta,
    }
}

/// Lemma 2 role ordering on cached lengths with the id tie-break — the
/// rule `SegmentDatabase::distance` and the batched kernel share, so the
/// tier-3 angle is evaluated for exactly the `(Lᵢ, Lⱼ)` assignment the
/// refine step would use.
#[inline(always)]
fn base_role<const D: usize>(soa: &SegmentSoa<D>, a: u32, b: u32) -> (usize, usize) {
    let (ai, bi) = (a as usize, b as usize);
    let la = soa.length(ai);
    let lb = soa.length(bi);
    if la > lb {
        (ai, bi)
    } else if lb > la {
        (bi, ai)
    } else if a <= b {
        (ai, bi)
    } else {
        (bi, ai)
    }
}

/// All three lower bounds on the composite distance between segments `a`
/// and `b` of `soa`, weakest first: `tiers[0] ≤ tiers[1] ≤ tiers[2] ≤
/// distance` (as computed floats). `bbox_a` / `bbox_b` are the segments'
/// cached bounding boxes. Degenerate (negative or non-finite) weights
/// return `[-∞; 3]`, which no ε can be below — nothing is prunable.
///
/// This is the value-level reference surface for property tests and
/// diagnostics; the hot path ([`PruneFilter`] behind [`prune_tier`])
/// evaluates the same inequalities as square-root-free comparisons and
/// may decide differently within the slack margin (see the module docs).
pub fn tiers<const D: usize>(
    soa: &SegmentSoa<D>,
    a: u32,
    b: u32,
    bbox_a: &Aabb<D>,
    bbox_b: &Aabb<D>,
    dist: &SegmentDistance,
) -> [f64; TIER_COUNT] {
    let Some((c1, c2)) = admissible_coefficients(dist) else {
        return [f64::NEG_INFINITY; TIER_COUNT];
    };
    let (li, lj) = base_role(soa, a, b);
    let (m, h, slack) = midpoint_context(soa, li, lj);
    let t1 = tier1_value(c1, bbox_a.min_distance(bbox_b), slack);
    let t2 = tier2_value(t1, c2, m, h, slack);
    let t3 = t2 + dist.weights.angle * exact_angle(soa, li, lj, dist.angle_mode);
    [t1, t2, t3]
}

/// The filter decision: the index of the tier whose bound rules the pair
/// out at `eps` (see [`PruneFilter::check`] for the evaluation order), or
/// `None` when the exact distance must be refined. Thin wrapper over
/// [`PruneFilter`] for one-off pairs; the neighborhood hot path builds
/// the filter once per query instead.
///
/// Sound by construction: `Some(t)` implies the pair's computed exact
/// distance exceeds `eps` (see the fast-decision-path module docs) —
/// discarding it cannot change the neighborhood. `NaN` bounds never
/// satisfy a prune comparison, so corrupt geometry refines instead of
/// pruning.
pub fn prune_tier<const D: usize>(
    soa: &SegmentSoa<D>,
    a: u32,
    b: u32,
    bbox_a: &Aabb<D>,
    bbox_b: &Aabb<D>,
    dist: &SegmentDistance,
    eps: f64,
) -> Option<usize> {
    let filter = PruneFilter::new(soa, a, bbox_a, dist, eps)?;
    filter.check(soa, b, bbox_b)
}

/// One ε-neighborhood query's hoisted filter state: the query segment's
/// cached geometry plus every weight- and ε-derived constant, so
/// [`check`](Self::check) costs a handful of multiply/compare operations
/// per candidate — no square root, no division, no role sort. See the
/// module docs for the comparisons and their admissibility argument.
///
/// All three comparisons are symmetric in the two segments (`mbrd`, `M`,
/// `h`, `gram`, `sin_den`, and the shorter length don't depend on which
/// one is the query), so `check` agrees with the decision for the
/// swapped pair.
#[derive(Debug, Clone, Copy)]
pub struct PruneFilter<const D: usize> {
    bbox: Aabb<D>,
    mid: Point<D>,
    dir: Vector<D>,
    norm_sq: f64,
    half_len: f64,
    mag: f64,
    c1: f64,
    c1_sq: f64,
    c2: f64,
    c2_sq: f64,
    wa_sq: f64,
    eps: f64,
    eps_infl_sq: f64,
    directed: bool,
}

impl<const D: usize> PruneFilter<D> {
    /// Hoists the query-side state for segment `query` of `soa` (with its
    /// cached bounding box). Returns `None` when the weights admit no
    /// sound bound (negative or non-finite) — the caller refines every
    /// candidate, exactly as the `-∞` tiers would dictate.
    pub fn new(
        soa: &SegmentSoa<D>,
        query: u32,
        bbox: &Aabb<D>,
        dist: &SegmentDistance,
        eps: f64,
    ) -> Option<Self> {
        let (c1, c2) = admissible_coefficients(dist)?;
        let q = query as usize;
        let mid = soa.midpoint(q);
        let mut mag = 0.0;
        for k in 0..D {
            mag += mid.coords[k].abs();
        }
        let wa = dist.weights.angle;
        let eps_infl = eps * (1.0 + BOUND_SLACK);
        Some(Self {
            bbox: *bbox,
            mid,
            dir: soa.direction(q),
            norm_sq: soa.norm_squared(q),
            half_len: 0.5 * soa.length(q),
            mag,
            c1,
            c1_sq: c1 * c1,
            c2,
            c2_sq: c2 * c2,
            wa_sq: wa * wa,
            eps,
            eps_infl_sq: eps_infl * eps_infl,
            directed: matches!(dist.angle_mode, AngleMode::Directed),
        })
    }

    /// The filter step for one candidate: `Some(tier)` when a deciding
    /// comparison rules the pair out at ε, `None` to refine. The returned
    /// index names the bound that fired (0 = MBR, 1 = midpoint/length,
    /// 2 = angle); evaluation order is a cost decision — the midpoint test
    /// runs first (one cached point against six flops) and the wider MBR
    /// load only for its survivors — so a pair both tests exclude is
    /// attributed to the midpoint tier.
    #[inline(always)]
    pub fn check(&self, soa: &SegmentSoa<D>, cand: u32, cand_bbox: &Aabb<D>) -> Option<usize> {
        let c = cand as usize;
        let mid_c = soa.midpoint(c);
        let mut mag = self.mag;
        for k in 0..D {
            mag += mid_c.coords[k].abs();
        }
        let h = self.half_len + 0.5 * soa.length(c);
        let slack = BOUND_SLACK * (h + mag);
        // Tier 2: c2·(M − h − slack) > ε, compared in squared space.
        let m_sq = self.mid.distance_squared(&mid_c);
        let rhs2 = self.eps + self.c2 * (h + slack);
        if self.c2_sq * m_sq > rhs2 * rhs2 {
            return Some(1);
        }
        // Tier 1: c1·(mbrd − slack) > ε, compared in squared space.
        let mbrd_sq = self.bbox.min_distance_squared(cand_bbox);
        let rhs1 = self.eps + self.c1 * slack;
        if self.c1_sq * mbrd_sq > rhs1 * rhs1 {
            return Some(0);
        }
        // Tier 3: wθ·dθ > ε·(1+slack), with gram/sin_den computed by the
        // kernel's own operation sequence (role order doesn't matter: the
        // Gram quantities are symmetric and dθ scales the shorter length).
        // Both branches need wθ²·‖Lⱼ‖² to clear the inflated ε² (the sine
        // ratio never exceeds 1), so the direction dot product is only
        // evaluated when that necessary condition holds.
        let norm_sq_c = soa.norm_squared(c);
        let lj_nsq = self.norm_sq.min(norm_sq_c);
        if self.wa_sq * lj_nsq > self.eps_infl_sq {
            let sin_den = self.norm_sq * norm_sq_c;
            if sin_den > 0.0 {
                let vw = self.dir.dot(&soa.direction(c));
                if self.directed && vw <= 0.0 {
                    // Reversed directions: the kernel's dθ is exactly ‖Lⱼ‖.
                    return Some(2);
                }
                let gram = (sin_den - vw * vw).max(0.0);
                if self.wa_sq * lj_nsq * gram > self.eps_infl_sq * sin_den {
                    return Some(2);
                }
            }
        }
        None
    }
}

/// [`tiers`] for a standalone segment pair: builds the two-slot geometry
/// cache and tight boxes the database would hold, with `a` in the
/// smaller-id role. Convenience for tests and one-off checks — the hot
/// path goes through the cached [`tiers`] / [`prune_tier`].
pub fn segment_tiers<const D: usize>(
    a: &Segment<D>,
    b: &Segment<D>,
    dist: &SegmentDistance,
) -> [f64; TIER_COUNT] {
    let soa = SegmentSoa::from_segments([a, b]);
    tiers(
        &soa,
        0,
        1,
        &Aabb::from_segment(a),
        &Aabb::from_segment(b),
        dist,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistanceWeights;
    use crate::segment::Segment2;

    fn exact(a: &Segment2, b: &Segment2, dist: &SegmentDistance) -> f64 {
        let soa = SegmentSoa::from_segments([a, b]);
        let mut out = [0.0];
        dist.distance_many_into(&soa, 0, &[1], &mut out);
        out[0]
    }

    #[test]
    fn far_pair_is_pruned_at_the_mbr_tier() {
        let a = Segment2::xy(0.0, 0.0, 10.0, 0.0);
        let b = Segment2::xy(1000.0, 1000.0, 1010.0, 1000.0);
        let dist = SegmentDistance::default();
        let t = segment_tiers(&a, &b, &dist);
        assert!(t[0] > 100.0, "MBR tier sees the gap: {t:?}");
        assert!(t[0] <= t[1] && t[1] <= t[2], "tiers are monotone: {t:?}");
        assert!(t[2] <= exact(&a, &b, &dist), "bound ≤ exact");
        let soa = SegmentSoa::from_segments([&a, &b]);
        let (ba, bb) = (Aabb::from_segment(&a), Aabb::from_segment(&b));
        assert_eq!(
            prune_tier(&soa, 0, 1, &ba, &bb, &dist, 100.0),
            Some(1),
            "the midpoint test runs first and already excludes the pair"
        );
        assert_eq!(prune_tier(&soa, 0, 1, &ba, &bb, &dist, 1e9), None);
    }

    #[test]
    fn self_pair_is_never_pruned() {
        let a = Segment2::xy(3.0, 4.0, 13.0, 4.0);
        let dist = SegmentDistance::default();
        let t = segment_tiers(&a, &a, &dist);
        assert_eq!(t, [0.0; 3], "dist(L, L) = 0 admits no positive bound");
        let soa = SegmentSoa::from_segments([&a, &a]);
        let bb = Aabb::from_segment(&a);
        assert_eq!(prune_tier(&soa, 0, 1, &bb, &bb, &dist, 0.0), None);
    }

    #[test]
    fn angle_tier_matches_the_kernel_bitwise() {
        // Perpendicular unit-overlap segments: d⊥ = d∥ = 0 contributions
        // aside, the angle term is the whole distance — tier 3 must hit
        // the exact value to the bit.
        let a = Segment2::xy(0.0, 0.0, 10.0, 0.0);
        let b = Segment2::xy(5.0, -2.0, 5.0, 2.0);
        for weights in [
            DistanceWeights::uniform(),
            DistanceWeights::new(0.0, 0.0, 3.0),
        ] {
            for mode in [AngleMode::Directed, AngleMode::Undirected] {
                let dist = SegmentDistance::new(weights, mode);
                let soa = SegmentSoa::from_segments([&a, &b]);
                // a is longer → base role regardless of ids.
                let angle = exact_angle(&soa, 0, 1, mode);
                let t = segment_tiers(&a, &b, &dist);
                assert!(t[2] <= exact(&a, &b, &dist));
                assert!(
                    t[2] >= weights.angle * angle,
                    "tier 3 includes the full angle term"
                );
            }
        }
    }

    #[test]
    fn degenerate_weights_disable_pruning() {
        let a = Segment2::xy(0.0, 0.0, 10.0, 0.0);
        let b = Segment2::xy(1000.0, 1000.0, 1010.0, 1000.0);
        // `DistanceWeights::new` rejects these, but the fields are public —
        // the bound layer must stay safe for hand-built configurations.
        let raw = |perpendicular, parallel, angle| DistanceWeights {
            perpendicular,
            parallel,
            angle,
        };
        for weights in [
            raw(-1.0, 1.0, 1.0),
            raw(1.0, f64::NAN, 1.0),
            raw(1.0, 1.0, f64::INFINITY),
        ] {
            let dist = SegmentDistance::new(weights, AngleMode::Directed);
            assert_eq!(segment_tiers(&a, &b, &dist), [f64::NEG_INFINITY; 3]);
            let soa = SegmentSoa::from_segments([&a, &b]);
            let (ba, bb) = (Aabb::from_segment(&a), Aabb::from_segment(&b));
            assert_eq!(prune_tier(&soa, 0, 1, &ba, &bb, &dist, 0.0), None);
        }
    }

    #[test]
    fn zero_perpendicular_weight_still_bounds_via_angle() {
        // w⊥ = 0 zeroes tiers 1–2 (a collinear far-away pair really is at
        // distance w∥·d∥, which the positional tiers cannot see without
        // w⊥), but the angle tier still fires on crossed directions.
        let a = Segment2::xy(0.0, 0.0, 10.0, 0.0);
        let b = Segment2::xy(0.0, 5.0, 0.0, 15.0);
        let dist = SegmentDistance::new(DistanceWeights::new(0.0, 0.0, 1.0), AngleMode::Undirected);
        let t = segment_tiers(&a, &b, &dist);
        assert_eq!(t[0], 0.0);
        assert_eq!(t[1], 0.0);
        assert!(t[2] > 9.0, "perpendicular directions: dθ = ‖Lⱼ‖ = 10");
        assert!(t[2] <= exact(&a, &b, &dist));
    }
}
