//! Directed line segments and projections onto their supporting lines.
//!
//! A *trajectory partition* (Section 3.1) is a directed line segment between
//! two characteristic points; the grouping phase clusters these segments.

use crate::point::{Point, Vector};

/// A directed line segment `start → end` in `D` dimensions.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Segment<const D: usize> {
    /// The starting point (`sᵢ` in the paper's notation).
    pub start: Point<D>,
    /// The ending point (`eᵢ`).
    pub end: Point<D>,
}

/// Shorthand for planar segments.
pub type Segment2 = Segment<2>;

/// Result of projecting a point onto the supporting line of a segment
/// (Formula 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Projection<const D: usize> {
    /// The projected point `p = sᵢ + u · →sᵢeᵢ` on the supporting line.
    pub point: Point<D>,
    /// The line parameter `u`; `u ∈ [0, 1]` iff the projection falls within
    /// the segment.
    pub u: f64,
}

impl<const D: usize> Segment<D> {
    /// Creates a segment from its endpoints.
    pub const fn new(start: Point<D>, end: Point<D>) -> Self {
        Self { start, end }
    }

    /// Euclidean length `‖L‖` of the segment.
    pub fn length(&self) -> f64 {
        self.start.distance(&self.end)
    }

    /// Squared length (cheaper when only comparisons are needed).
    pub fn length_squared(&self) -> f64 {
        self.start.distance_squared(&self.end)
    }

    /// The direction vector `→se` (not normalised).
    pub fn vector(&self) -> Vector<D> {
        self.start.vector_to(&self.end)
    }

    /// The unit direction, or `None` for a degenerate (zero-length) segment.
    pub fn direction(&self) -> Option<Vector<D>> {
        self.vector().normalized()
    }

    /// The midpoint of the segment.
    pub fn midpoint(&self) -> Point<D> {
        self.start.midpoint(&self.end)
    }

    /// The segment with start and end swapped.
    pub fn reversed(&self) -> Self {
        Self {
            start: self.end,
            end: self.start,
        }
    }

    /// True when start and end coincide (within exact float equality); such
    /// segments carry no direction (see the Section 4.1.3 discussion of
    /// short segments — a degenerate segment is the limiting case).
    pub fn is_degenerate(&self) -> bool {
        self.length_squared() <= 0.0
    }

    /// The point on the segment at parameter `t ∈ [0, 1]`.
    pub fn point_at(&self, t: f64) -> Point<D> {
        self.start.lerp(&self.end, t)
    }

    /// Projects `p` onto the supporting **line** of this segment
    /// (Formula 4). Returns `None` when the segment is degenerate and the
    /// supporting line is undefined.
    pub fn project_onto_line(&self, p: &Point<D>) -> Option<Projection<D>> {
        let v = self.vector();
        let denom = v.norm_squared();
        if denom <= 0.0 {
            return None;
        }
        let u = self.start.vector_to(p).dot(&v) / denom;
        Some(Projection {
            point: self.start.translate(&v.scale(u)),
            u,
        })
    }

    /// Distance from `p` to the supporting line of this segment; for a
    /// degenerate segment this is the distance to the (single) point.
    pub fn line_distance(&self, p: &Point<D>) -> f64 {
        match self.project_onto_line(p) {
            Some(proj) => p.distance(&proj.point),
            None => p.distance(&self.start),
        }
    }

    /// Distance from `p` to the **segment** (projection clamped to
    /// `[start, end]`).
    pub fn segment_distance(&self, p: &Point<D>) -> f64 {
        match self.project_onto_line(p) {
            Some(proj) => {
                let t = proj.u.clamp(0.0, 1.0);
                p.distance(&self.point_at(t))
            }
            None => p.distance(&self.start),
        }
    }

    /// Minimum Euclidean distance between two segments, computed by sampling
    /// the four endpoint-to-segment distances plus, in 2-D-like configs, the
    /// crossing case. For arbitrary `D` the endpoint distances suffice
    /// whenever the segments do not intersect; intersection is detected via
    /// the mutual-projection criterion.
    pub fn min_distance(&self, other: &Self) -> f64 {
        // If the segments intersect, the distance is zero. A robust,
        // dimension-generic test: the closest points of the two supporting
        // lines (clamped to the segments) realise the minimum; we compute
        // them via the standard segment-segment closest-point algorithm.
        let p1 = self.start;
        let d1 = self.vector();
        let p2 = other.start;
        let d2 = other.vector();
        let r = p2.vector_to(&p1);
        let a = d1.norm_squared();
        let e = d2.norm_squared();
        let f = d2.dot(&r);
        let (s, t);
        if a <= 0.0 && e <= 0.0 {
            return p1.distance(&p2);
        }
        if a <= 0.0 {
            s = 0.0;
            t = (f / e).clamp(0.0, 1.0);
        } else {
            let c = d1.dot(&r);
            if e <= 0.0 {
                t = 0.0;
                s = (-c / a).clamp(0.0, 1.0);
            } else {
                let b = d1.dot(&d2);
                let denom = a * e - b * b;
                let mut s_val = if denom > 0.0 {
                    ((b * f - c * e) / denom).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let mut t_val = (b * s_val + f) / e;
                if t_val < 0.0 {
                    t_val = 0.0;
                    s_val = (-c / a).clamp(0.0, 1.0);
                } else if t_val > 1.0 {
                    t_val = 1.0;
                    s_val = ((b - c) / a).clamp(0.0, 1.0);
                }
                s = s_val;
                t = t_val;
            }
        }
        self.point_at(s).distance(&other.point_at(t))
    }

    /// Translates the segment by `v`.
    pub fn translated(&self, v: &Vector<D>) -> Self {
        Self {
            start: self.start.translate(v),
            end: self.end.translate(v),
        }
    }

    /// True when every coordinate of both endpoints is finite.
    pub fn is_finite(&self) -> bool {
        self.start.is_finite() && self.end.is_finite()
    }

    /// Lexicographic comparison on `(start, end)` coordinates; the
    /// deterministic fallback tie-breaker used to keep the segment distance
    /// symmetric for equal-length segments (Lemma 2).
    pub fn lex_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.start
            .lex_cmp(&other.start)
            .then_with(|| self.end.lex_cmp(&other.end))
    }
}

impl Segment2 {
    /// Convenience constructor for planar segments.
    pub const fn xy(x1: f64, y1: f64, x2: f64, y2: f64) -> Self {
        Self {
            start: Point::xy(x1, y1),
            end: Point::xy(x2, y2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point2;

    const EPS: f64 = 1e-12;

    #[test]
    fn length_and_midpoint() {
        let s = Segment2::xy(0.0, 0.0, 6.0, 8.0);
        assert!((s.length() - 10.0).abs() < EPS);
        assert_eq!(s.midpoint(), Point2::xy(3.0, 4.0));
    }

    #[test]
    fn projection_inside_segment() {
        let s = Segment2::xy(0.0, 0.0, 10.0, 0.0);
        let proj = s.project_onto_line(&Point2::xy(3.0, 5.0)).unwrap();
        assert!((proj.u - 0.3).abs() < EPS);
        assert_eq!(proj.point, Point2::xy(3.0, 0.0));
    }

    #[test]
    fn projection_beyond_segment_extrapolates() {
        let s = Segment2::xy(0.0, 0.0, 10.0, 0.0);
        let proj = s.project_onto_line(&Point2::xy(15.0, 2.0)).unwrap();
        assert!((proj.u - 1.5).abs() < EPS);
        assert_eq!(proj.point, Point2::xy(15.0, 0.0));
    }

    #[test]
    fn degenerate_segment_has_no_projection() {
        let s = Segment2::xy(1.0, 1.0, 1.0, 1.0);
        assert!(s.is_degenerate());
        assert!(s.project_onto_line(&Point2::xy(0.0, 0.0)).is_none());
        assert!((s.line_distance(&Point2::xy(4.0, 5.0)) - 5.0).abs() < EPS);
    }

    #[test]
    fn line_vs_segment_distance() {
        let s = Segment2::xy(0.0, 0.0, 10.0, 0.0);
        let p = Point2::xy(13.0, 4.0);
        assert!((s.line_distance(&p) - 4.0).abs() < EPS);
        assert!((s.segment_distance(&p) - 5.0).abs() < EPS);
    }

    #[test]
    fn min_distance_between_parallel_segments() {
        let a = Segment2::xy(0.0, 0.0, 10.0, 0.0);
        let b = Segment2::xy(0.0, 3.0, 10.0, 3.0);
        assert!((a.min_distance(&b) - 3.0).abs() < EPS);
    }

    #[test]
    fn min_distance_of_crossing_segments_is_zero() {
        let a = Segment2::xy(0.0, 0.0, 10.0, 10.0);
        let b = Segment2::xy(0.0, 10.0, 10.0, 0.0);
        assert!(a.min_distance(&b) < EPS);
    }

    #[test]
    fn min_distance_endpoint_case() {
        let a = Segment2::xy(0.0, 0.0, 1.0, 0.0);
        let b = Segment2::xy(4.0, 4.0, 5.0, 5.0);
        assert!((a.min_distance(&b) - 5.0).abs() < EPS);
    }

    #[test]
    fn min_distance_degenerate_cases() {
        let a = Segment2::xy(0.0, 0.0, 0.0, 0.0);
        let b = Segment2::xy(3.0, 4.0, 3.0, 4.0);
        assert!((a.min_distance(&b) - 5.0).abs() < EPS);
        let c = Segment2::xy(0.0, 1.0, 10.0, 1.0);
        assert!((a.min_distance(&c) - 1.0).abs() < EPS);
        assert!((c.min_distance(&a) - 1.0).abs() < EPS);
    }

    #[test]
    fn min_distance_is_symmetric() {
        let a = Segment2::xy(0.0, 0.0, 5.0, 2.0);
        let b = Segment2::xy(7.0, -3.0, 2.0, 9.0);
        assert!((a.min_distance(&b) - b.min_distance(&a)).abs() < 1e-9);
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let s = Segment2::xy(1.0, 2.0, 3.0, 4.0);
        let r = s.reversed();
        assert_eq!(r.start, s.end);
        assert_eq!(r.end, s.start);
        assert!((s.length() - r.length()).abs() < EPS);
    }

    #[test]
    fn point_at_parameterisation() {
        let s = Segment2::xy(0.0, 0.0, 10.0, 20.0);
        assert_eq!(s.point_at(0.0), s.start);
        assert_eq!(s.point_at(1.0), s.end);
        assert_eq!(s.point_at(0.5), s.midpoint());
    }

    #[test]
    fn translated_preserves_length() {
        let s = Segment2::xy(1.0, 1.0, 4.0, 5.0);
        let t = s.translated(&crate::point::Vector2::xy(100.0, -50.0));
        assert!((s.length() - t.length()).abs() < EPS);
        assert_eq!(t.start, Point2::xy(101.0, -49.0));
    }
}
