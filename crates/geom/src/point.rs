//! `d`-dimensional points and vectors.
//!
//! The paper (Section 2.1) defines a trajectory as a sequence of
//! *d*-dimensional points. We model dimensionality with a const generic so
//! the same code serves the 2-D evaluation data and the 3-D extension the
//! paper mentions in Section 4.3 (footnote 3).

use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A point in `D`-dimensional Euclidean space.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point<const D: usize> {
    /// Cartesian coordinates.
    pub coords: [f64; D],
}

impl<const D: usize> Default for Point<D> {
    fn default() -> Self {
        Self::origin()
    }
}

/// A displacement in `D`-dimensional Euclidean space.
///
/// Kept distinct from [`Point`] so that signatures such as
/// [`Point::translate`] document intent, mirroring the paper's use of
/// `→ab` vectors in Formulas (4) and (5).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vector<const D: usize> {
    /// Cartesian components.
    pub components: [f64; D],
}

impl<const D: usize> Default for Vector<D> {
    fn default() -> Self {
        Self::zero()
    }
}

/// Shorthand for the planar case used throughout the paper's evaluation.
pub type Point2 = Point<2>;
/// Shorthand for planar displacement vectors.
pub type Vector2 = Vector<2>;

impl<const D: usize> Point<D> {
    /// Creates a point from its coordinate array.
    pub const fn new(coords: [f64; D]) -> Self {
        Self { coords }
    }

    /// The origin (all coordinates zero).
    pub const fn origin() -> Self {
        Self { coords: [0.0; D] }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Self) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when
    /// only comparisons are needed).
    pub fn distance_squared(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for k in 0..D {
            let d = self.coords[k] - other.coords[k];
            acc += d * d;
        }
        acc
    }

    /// The displacement vector from `self` to `other` (`→self other`).
    pub fn vector_to(&self, other: &Self) -> Vector<D> {
        let mut components = [0.0; D];
        for k in 0..D {
            components[k] = other.coords[k] - self.coords[k];
        }
        Vector { components }
    }

    /// Returns the point displaced by `v`.
    pub fn translate(&self, v: &Vector<D>) -> Self {
        let mut coords = self.coords;
        for k in 0..D {
            coords[k] += v.components[k];
        }
        Self { coords }
    }

    /// Linear interpolation: `self + t · (other − self)`.
    ///
    /// `t = 0` yields `self`, `t = 1` yields `other`; values outside `[0, 1]`
    /// extrapolate along the supporting line.
    pub fn lerp(&self, other: &Self, t: f64) -> Self {
        let mut coords = [0.0; D];
        for k in 0..D {
            coords[k] = self.coords[k] + t * (other.coords[k] - self.coords[k]);
        }
        Self { coords }
    }

    /// Component-wise midpoint of `self` and `other`.
    pub fn midpoint(&self, other: &Self) -> Self {
        self.lerp(other, 0.5)
    }

    /// Reinterprets the point as a position vector from the origin.
    pub fn to_vector(&self) -> Vector<D> {
        Vector {
            components: self.coords,
        }
    }

    /// True when every coordinate is finite (no NaN/∞).
    pub fn is_finite(&self) -> bool {
        self.coords.iter().all(|c| c.is_finite())
    }

    /// Total order on coordinates (lexicographic, NaN-free inputs assumed).
    ///
    /// Used as the deterministic tie-breaker that Lemma 2 obtains from the
    /// "internal identifier" when two segments have exactly equal length.
    pub fn lex_cmp(&self, other: &Self) -> std::cmp::Ordering {
        for k in 0..D {
            match self.coords[k].partial_cmp(&other.coords[k]) {
                Some(std::cmp::Ordering::Equal) | None => continue,
                Some(ord) => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl Point2 {
    /// Convenience constructor for the planar case.
    pub const fn xy(x: f64, y: f64) -> Self {
        Self { coords: [x, y] }
    }

    /// The first coordinate.
    pub fn x(&self) -> f64 {
        self.coords[0]
    }

    /// The second coordinate.
    pub fn y(&self) -> f64 {
        self.coords[1]
    }
}

impl<const D: usize> Vector<D> {
    /// Creates a vector from its component array.
    pub const fn new(components: [f64; D]) -> Self {
        Self { components }
    }

    /// The zero vector.
    pub const fn zero() -> Self {
        Self {
            components: [0.0; D],
        }
    }

    /// Dot product with `other`.
    pub fn dot(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for k in 0..D {
            acc += self.components[k] * other.components[k];
        }
        acc
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    pub fn norm_squared(&self) -> f64 {
        self.dot(self)
    }

    /// Returns the unit vector in the same direction, or `None` when the
    /// vector is (numerically) zero and has no direction.
    pub fn normalized(&self) -> Option<Self> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(*self / n)
        }
    }

    /// The vector scaled by `s`.
    pub fn scale(&self, s: f64) -> Self {
        let mut components = self.components;
        for c in &mut components {
            *c *= s;
        }
        Self { components }
    }

    /// Cosine of the angle between `self` and `other`, clamped to `[-1, 1]`
    /// (Formula 5). Returns `None` when either vector is zero, i.e. when the
    /// angle is undefined.
    pub fn cos_angle(&self, other: &Self) -> Option<f64> {
        let denom = self.norm() * other.norm();
        if denom <= f64::EPSILON {
            None
        } else {
            Some((self.dot(other) / denom).clamp(-1.0, 1.0))
        }
    }

    /// The smaller intersecting angle `θ ∈ [0, π]` between the directions of
    /// `self` and `other` (Definition 3). `None` when either vector is zero.
    pub fn angle(&self, other: &Self) -> Option<f64> {
        self.cos_angle(other).map(f64::acos)
    }

    /// `sin θ` of the angle between `self` and `other`, computed from the
    /// Gram determinant `√(‖v‖²‖w‖² − (v·w)²) / (‖v‖‖w‖)` rather than
    /// `√(1 − cos²θ)`: the determinant form is exactly zero for identical
    /// vectors and does not amplify a 1-ULP cosine error into ~1e-8 (which
    /// would break `dist(L, L) = 0`). `None` when either vector is zero.
    pub fn sin_angle(&self, other: &Self) -> Option<f64> {
        let vv = self.norm_squared();
        let ww = other.norm_squared();
        let denom = vv * ww;
        if denom <= 0.0 {
            return None;
        }
        let vw = self.dot(other);
        let gram = (denom - vw * vw).max(0.0);
        Some((gram / denom).sqrt().clamp(0.0, 1.0))
    }

    /// Reinterprets the vector as a point (position from the origin).
    pub fn to_point(&self) -> Point<D> {
        Point {
            coords: self.components,
        }
    }

    /// True when every component is finite.
    pub fn is_finite(&self) -> bool {
        self.components.iter().all(|c| c.is_finite())
    }
}

impl Vector2 {
    /// Convenience constructor for the planar case.
    pub const fn xy(x: f64, y: f64) -> Self {
        Self { components: [x, y] }
    }

    /// The first component.
    pub fn x(&self) -> f64 {
        self.components[0]
    }

    /// The second component.
    pub fn y(&self) -> f64 {
        self.components[1]
    }

    /// The 2-D cross product (`z` component of the 3-D cross product).
    pub fn cross(&self, other: &Self) -> f64 {
        self.components[0] * other.components[1] - self.components[1] * other.components[0]
    }

    /// Rotates the vector by `angle` radians counter-clockwise.
    pub fn rotated(&self, angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Self {
            components: [
                c * self.components[0] - s * self.components[1],
                s * self.components[0] + c * self.components[1],
            ],
        }
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.coords[i]
    }
}

impl<const D: usize> IndexMut<usize> for Point<D> {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.coords[i]
    }
}

impl<const D: usize> Index<usize> for Vector<D> {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.components[i]
    }
}

impl<const D: usize> IndexMut<usize> for Vector<D> {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.components[i]
    }
}

impl<const D: usize> Add<Vector<D>> for Point<D> {
    type Output = Point<D>;
    fn add(self, v: Vector<D>) -> Point<D> {
        self.translate(&v)
    }
}

impl<const D: usize> Sub for Point<D> {
    type Output = Vector<D>;
    fn sub(self, other: Point<D>) -> Vector<D> {
        other.vector_to(&self)
    }
}

impl<const D: usize> Add for Vector<D> {
    type Output = Vector<D>;
    fn add(self, other: Vector<D>) -> Vector<D> {
        let mut components = self.components;
        for k in 0..D {
            components[k] += other.components[k];
        }
        Vector { components }
    }
}

impl<const D: usize> AddAssign for Vector<D> {
    fn add_assign(&mut self, other: Vector<D>) {
        for k in 0..D {
            self.components[k] += other.components[k];
        }
    }
}

impl<const D: usize> Sub for Vector<D> {
    type Output = Vector<D>;
    fn sub(self, other: Vector<D>) -> Vector<D> {
        let mut components = self.components;
        for k in 0..D {
            components[k] -= other.components[k];
        }
        Vector { components }
    }
}

impl<const D: usize> SubAssign for Vector<D> {
    fn sub_assign(&mut self, other: Vector<D>) {
        for k in 0..D {
            self.components[k] -= other.components[k];
        }
    }
}

impl<const D: usize> Mul<f64> for Vector<D> {
    type Output = Vector<D>;
    fn mul(self, s: f64) -> Vector<D> {
        self.scale(s)
    }
}

impl<const D: usize> Div<f64> for Vector<D> {
    type Output = Vector<D>;
    fn div(self, s: f64) -> Vector<D> {
        self.scale(1.0 / s)
    }
}

impl<const D: usize> Neg for Vector<D> {
    type Output = Vector<D>;
    fn neg(self) -> Vector<D> {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn distance_is_euclidean() {
        let a = Point2::xy(0.0, 0.0);
        let b = Point2::xy(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < EPS);
        assert!((a.distance_squared(&b) - 25.0).abs() < EPS);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point2::xy(-1.5, 2.0);
        let b = Point2::xy(4.0, -7.25);
        assert!((a.distance(&b) - b.distance(&a)).abs() < EPS);
    }

    #[test]
    fn vector_to_and_translate_round_trip() {
        let a = Point2::xy(1.0, 2.0);
        let b = Point2::xy(-3.0, 5.0);
        let v = a.vector_to(&b);
        let back = a.translate(&v);
        assert!((back.x() - b.x()).abs() < EPS);
        assert!((back.y() - b.y()).abs() < EPS);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point2::xy(0.0, 0.0);
        let b = Point2::xy(10.0, -4.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let m = a.midpoint(&b);
        assert!((m.x() - 5.0).abs() < EPS);
        assert!((m.y() + 2.0).abs() < EPS);
    }

    #[test]
    fn dot_and_norm() {
        let v = Vector2::xy(3.0, 4.0);
        let w = Vector2::xy(-4.0, 3.0);
        assert!((v.dot(&w)).abs() < EPS, "orthogonal vectors");
        assert!((v.norm() - 5.0).abs() < EPS);
        assert!((v.norm_squared() - 25.0).abs() < EPS);
    }

    #[test]
    fn normalized_unit_and_zero() {
        let v = Vector2::xy(0.0, 2.0);
        let u = v.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < EPS);
        assert!(Vector2::zero().normalized().is_none());
    }

    #[test]
    fn angle_between_vectors() {
        let v = Vector2::xy(1.0, 0.0);
        let w = Vector2::xy(0.0, 1.0);
        assert!((v.angle(&w).unwrap() - std::f64::consts::FRAC_PI_2).abs() < EPS);
        let opposite = Vector2::xy(-1.0, 0.0);
        assert!((v.angle(&opposite).unwrap() - std::f64::consts::PI).abs() < EPS);
        assert!(v.angle(&Vector2::zero()).is_none());
    }

    #[test]
    fn cos_angle_clamps_rounding_noise() {
        // Nearly parallel vectors whose naive cosine can exceed 1.0 by a ULP.
        let v = Vector2::xy(1e8, 1e-8);
        let w = Vector2::xy(2e8, 2e-8);
        let c = v.cos_angle(&w).unwrap();
        assert!((0.999_999_999..=1.0).contains(&c));
        assert!(v.angle(&w).unwrap().is_finite());
    }

    #[test]
    fn cross_sign_encodes_orientation() {
        let v = Vector2::xy(1.0, 0.0);
        let w = Vector2::xy(0.0, 1.0);
        assert!(v.cross(&w) > 0.0);
        assert!(w.cross(&v) < 0.0);
    }

    #[test]
    fn rotation_by_quarter_turn() {
        let v = Vector2::xy(1.0, 0.0);
        let r = v.rotated(std::f64::consts::FRAC_PI_2);
        assert!((r.x()).abs() < EPS);
        assert!((r.y() - 1.0).abs() < EPS);
    }

    #[test]
    fn operators_match_methods() {
        let a = Point2::xy(1.0, 1.0);
        let b = Point2::xy(4.0, 5.0);
        let v = b - a;
        assert_eq!(v, a.vector_to(&b));
        assert_eq!(a + v, b);
        assert_eq!(v * 2.0, Vector2::xy(6.0, 8.0));
        assert_eq!(v / 2.0, Vector2::xy(1.5, 2.0));
        assert_eq!(-v, Vector2::xy(-3.0, -4.0));
        let mut acc = Vector2::zero();
        acc += v;
        acc -= Vector2::xy(1.0, 1.0);
        assert_eq!(acc, Vector2::xy(2.0, 3.0));
    }

    #[test]
    fn lex_cmp_orders_by_first_differing_coordinate() {
        use std::cmp::Ordering;
        let a = Point2::xy(1.0, 9.0);
        let b = Point2::xy(2.0, 0.0);
        assert_eq!(a.lex_cmp(&b), Ordering::Less);
        assert_eq!(b.lex_cmp(&a), Ordering::Greater);
        assert_eq!(a.lex_cmp(&a), Ordering::Equal);
        let c = Point2::xy(1.0, 10.0);
        assert_eq!(a.lex_cmp(&c), Ordering::Less);
    }

    #[test]
    fn works_in_three_dimensions() {
        let a: Point<3> = Point::new([1.0, 2.0, 3.0]);
        let b: Point<3> = Point::new([4.0, 6.0, 3.0]);
        assert!((a.distance(&b) - 5.0).abs() < EPS);
        let v = a.vector_to(&b);
        assert!((v.norm() - 5.0).abs() < EPS);
    }
}
