//! The composite line-segment distance of Section 2.3.
//!
//! `dist(Lᵢ, Lⱼ) = w⊥·d⊥ + w∥·d∥ + wθ·dθ` where
//!
//! * **perpendicular distance** `d⊥` (Definition 1) is the order-2 Lehmer
//!   mean of the two perpendicular offsets of the shorter segment's
//!   endpoints from the longer segment's supporting line;
//! * **parallel distance** `d∥` (Definition 2) is the smaller of the two
//!   along-line gaps between the projected endpoints and the longer
//!   segment's endpoints (MIN, for robustness to broken segments);
//! * **angle distance** `dθ` (Definition 3) is `‖Lⱼ‖·sin θ` for θ < 90° and
//!   `‖Lⱼ‖` otherwise (directed trajectories), or always `‖Lⱼ‖·sin θ` for
//!   undirected ones (the paper's remark after Definition 3).
//!
//! Symmetry (Lemma 2) is obtained by always assigning the longer segment to
//! `Lᵢ`; exact ties are broken by a caller-supplied identifier or, absent
//! one, lexicographically on coordinates.
//!
//! The distance is **not a metric**: the triangle inequality fails (see
//! `triangle_inequality_fails` below, and Section 4.2 of the paper), which
//! is why the index crate must use a conservative filter bound.

use crate::point::Point;
use crate::segment::Segment;

/// The order-2 Lehmer mean `(a² + b²) / (a + b)` used by Definition 1.
///
/// For non-negative inputs it lies between `max(a,b)/2` and `max(a,b)`
/// (both bounds are relied upon by the index filter; see
/// `lehmer_mean_bounds` in the tests). Returns 0 when both inputs are 0.
pub fn lehmer_mean_2(a: f64, b: f64) -> f64 {
    debug_assert!(a >= 0.0 && b >= 0.0, "Lehmer mean needs non-negative input");
    let denom = a + b;
    if denom <= 0.0 {
        0.0
    } else {
        (a * a + b * b) / denom
    }
}

/// How the angle distance treats direction (remark after Definition 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AngleMode {
    /// Trajectories have directions: `dθ = ‖Lⱼ‖·sin θ` for `θ < 90°`, else
    /// the full `‖Lⱼ‖`.
    #[default]
    Directed,
    /// Undirected trajectories: `dθ = ‖Lⱼ‖·sin θ` always (θ folded to
    /// `[0°, 90°]`).
    Undirected,
}

/// The three components of the segment distance, before weighting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceComponents {
    /// `d⊥` of Definition 1.
    pub perpendicular: f64,
    /// `d∥` of Definition 2.
    pub parallel: f64,
    /// `dθ` of Definition 3.
    pub angle: f64,
}

impl DistanceComponents {
    /// Weighted sum `w⊥·d⊥ + w∥·d∥ + wθ·dθ`.
    pub fn weighted(&self, weights: &DistanceWeights) -> f64 {
        weights.perpendicular * self.perpendicular
            + weights.parallel * self.parallel
            + weights.angle * self.angle
    }

    /// Unweighted sum (the paper's default `w⊥ = w∥ = wθ = 1`).
    pub fn sum(&self) -> f64 {
        self.perpendicular + self.parallel + self.angle
    }
}

/// Component weights `(w⊥, w∥, wθ)`; Appendix B discusses when non-uniform
/// weights pay off.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DistanceWeights {
    /// Weight of the perpendicular component.
    pub perpendicular: f64,
    /// Weight of the parallel component.
    pub parallel: f64,
    /// Weight of the angle component.
    pub angle: f64,
}

impl Default for DistanceWeights {
    fn default() -> Self {
        Self {
            perpendicular: 1.0,
            parallel: 1.0,
            angle: 1.0,
        }
    }
}

impl DistanceWeights {
    /// Uniform weights (the paper's default, which "generally works well").
    pub const fn uniform() -> Self {
        Self {
            perpendicular: 1.0,
            parallel: 1.0,
            angle: 1.0,
        }
    }

    /// Creates weights, panicking on negative or non-finite values: the
    /// distance must stay non-negative for density-based clustering to be
    /// meaningful.
    pub fn new(perpendicular: f64, parallel: f64, angle: f64) -> Self {
        assert!(
            perpendicular >= 0.0 && parallel >= 0.0 && angle >= 0.0,
            "distance weights must be non-negative"
        );
        assert!(
            perpendicular.is_finite() && parallel.is_finite() && angle.is_finite(),
            "distance weights must be finite"
        );
        Self {
            perpendicular,
            parallel,
            angle,
        }
    }
}

/// The configured segment distance function.
///
/// ```
/// use traclus_geom::{Segment2, SegmentDistance};
///
/// let dist = SegmentDistance::default();
/// let a = Segment2::xy(0.0, 0.0, 10.0, 0.0);
/// let b = Segment2::xy(2.0, 1.0, 8.0, 1.0);
/// let d = dist.distance(&a, &b);
/// assert!(d > 0.0 && d < 4.0);
/// assert_eq!(d, dist.distance(&b, &a)); // Lemma 2: symmetric
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SegmentDistance {
    /// Component weights.
    pub weights: DistanceWeights,
    /// Directed or undirected angle treatment.
    pub angle_mode: AngleMode,
}

impl SegmentDistance {
    /// The paper's default: uniform weights, directed trajectories.
    pub fn new(weights: DistanceWeights, angle_mode: AngleMode) -> Self {
        Self {
            weights,
            angle_mode,
        }
    }

    /// Undirected variant with uniform weights.
    pub fn undirected() -> Self {
        Self {
            weights: DistanceWeights::uniform(),
            angle_mode: AngleMode::Undirected,
        }
    }

    /// Computes the three raw components with `a`/`b` in caller order;
    /// internally the longer segment plays `Lᵢ` (ties broken
    /// lexicographically) so the result is symmetric.
    pub fn components<const D: usize>(&self, a: &Segment<D>, b: &Segment<D>) -> DistanceComponents {
        let (li, lj) = order_by_length(a, b);
        components_with_roles(li, lj, self.angle_mode)
    }

    /// The weighted distance `dist(a, b)`.
    pub fn distance<const D: usize>(&self, a: &Segment<D>, b: &Segment<D>) -> f64 {
        self.components(a, b).weighted(&self.weights)
    }

    /// Distance when the caller already knows which segment is longer
    /// (`li` must have `length ≥ lj.length`); used by the clustering code,
    /// which orders by cached length + segment id and so never relies on the
    /// coordinate tie-break.
    pub fn distance_ordered<const D: usize>(&self, li: &Segment<D>, lj: &Segment<D>) -> f64 {
        debug_assert!(
            li.length_squared() >= lj.length_squared()
                || approx_eq(li.length_squared(), lj.length_squared()),
            "distance_ordered requires the longer segment first"
        );
        components_with_roles(li, lj, self.angle_mode).weighted(&self.weights)
    }

    /// Components with **explicit roles**: `li` plays the base segment that
    /// `lj`'s endpoints are projected onto, regardless of which is longer.
    ///
    /// The MDL cost (Formula 7) needs this: it measures
    /// `d⊥(p_{c_j}p_{c_{j+1}}, p_k p_{k+1})` with the trajectory partition
    /// always playing `Lᵢ`, even when an individual zig-zag edge is longer
    /// than the partition that summarises it. Not symmetric in general.
    pub fn components_with_roles<const D: usize>(
        &self,
        li: &Segment<D>,
        lj: &Segment<D>,
    ) -> DistanceComponents {
        components_with_roles(li, lj, self.angle_mode)
    }

    /// The perpendicular + angle part used by the MDL cost `L(D|H)`
    /// (Formula 7 ignores the parallel distance because "a trajectory
    /// encloses its trajectory partitions"). `enclosing` is the candidate
    /// trajectory partition, `enclosed` one of the original edges under it.
    pub fn mdl_components<const D: usize>(
        &self,
        enclosing: &Segment<D>,
        enclosed: &Segment<D>,
    ) -> (f64, f64) {
        let c = components_with_roles(enclosing, enclosed, self.angle_mode);
        (c.perpendicular, c.angle)
    }
}

/// Orders two segments so the first is the longer (Lemma 2); exact-length
/// ties fall back to coordinate-lexicographic order so that
/// `order(a, b) == order(b, a)` always holds.
pub fn order_by_length<'s, const D: usize>(
    a: &'s Segment<D>,
    b: &'s Segment<D>,
) -> (&'s Segment<D>, &'s Segment<D>) {
    let la = a.length_squared();
    let lb = b.length_squared();
    if la > lb {
        (a, b)
    } else if lb > la {
        (b, a)
    } else if a.lex_cmp(b) != std::cmp::Ordering::Greater {
        (a, b)
    } else {
        (b, a)
    }
}

/// Raw component computation with `li` the base (projection target).
///
/// Degenerate handling (documented in DESIGN.md §5):
/// * `li` degenerate → the whole positional difference goes into the
///   perpendicular component (point-to-midpoint distance), parallel =
///   angle = 0;
/// * only `lj` degenerate → its single point projects normally, the angle
///   distance is 0 (`‖Lⱼ‖ = 0`: no directional strength).
fn components_with_roles<const D: usize>(
    li: &Segment<D>,
    lj: &Segment<D>,
    angle_mode: AngleMode,
) -> DistanceComponents {
    let vi = li.vector();
    if vi.norm_squared() <= 0.0 {
        // li degenerate: no supporting line to project onto.
        return DistanceComponents {
            perpendicular: li.start.distance(&lj.midpoint()),
            parallel: 0.0,
            angle: 0.0,
        };
    }

    let ps = li
        .project_onto_line(&lj.start)
        .expect("non-degenerate li projects");
    let pe = li
        .project_onto_line(&lj.end)
        .expect("non-degenerate li projects");

    let l_perp1 = lj.start.distance(&ps.point);
    let l_perp2 = lj.end.distance(&pe.point);
    let perpendicular = lehmer_mean_2(l_perp1, l_perp2);

    let l_par1 = parallel_gap(li, &ps.point);
    let l_par2 = parallel_gap(li, &pe.point);
    let parallel = l_par1.min(l_par2);

    let lj_len = lj.length();
    let angle = if lj_len <= 0.0 {
        0.0
    } else {
        let vj = lj.vector();
        match vi.sin_angle(&vj) {
            None => 0.0,
            Some(sin_theta) => match angle_mode {
                AngleMode::Directed => {
                    if vi.dot(&vj) > 0.0 {
                        // θ < 90°: ‖Lj‖·sin θ.
                        lj_len * sin_theta
                    } else {
                        // θ ≥ 90°: the entire length contributes.
                        lj_len
                    }
                }
                // Fold θ to [0°, 90°]: sin is symmetric about 90°.
                AngleMode::Undirected => lj_len * sin_theta,
            },
        }
    };

    DistanceComponents {
        perpendicular,
        parallel,
        angle,
    }
}

/// `min(‖p − sᵢ‖, ‖p − eᵢ‖)` for a projected point `p` on the supporting
/// line of `li` — the per-endpoint quantity of Definition 2.
fn parallel_gap<const D: usize>(li: &Segment<D>, projected: &Point<D>) -> f64 {
    projected
        .distance(&li.start)
        .min(projected.distance(&li.end))
}

/// The naive "sum of endpoint distances" measure the paper argues against in
/// Appendix A: `‖s₁ − s₂‖ + ‖e₁ − e₂‖`.
pub fn endpoint_sum_distance<const D: usize>(a: &Segment<D>, b: &Segment<D>) -> f64 {
    a.start.distance(&b.start) + a.end.distance(&b.end)
}

fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs() + b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::Segment2;

    const EPS: f64 = 1e-9;

    fn default_dist() -> SegmentDistance {
        SegmentDistance::default()
    }

    #[test]
    fn lehmer_mean_basics() {
        assert_eq!(lehmer_mean_2(0.0, 0.0), 0.0);
        assert!((lehmer_mean_2(3.0, 3.0) - 3.0).abs() < EPS);
        assert!((lehmer_mean_2(4.0, 0.0) - 4.0).abs() < EPS);
        // (9 + 1) / (3 + 1) = 2.5
        assert!((lehmer_mean_2(3.0, 1.0) - 2.5).abs() < EPS);
    }

    #[test]
    fn lehmer_mean_bounds() {
        // max/2 ≤ L₂(a,b) ≤ max — the bounds DESIGN.md §5 relies on.
        for &(a, b) in &[(0.0, 5.0), (1.0, 2.0), (7.5, 7.5), (100.0, 0.01)] {
            let m: f64 = lehmer_mean_2(a, b);
            let max = a.max(b);
            assert!(m <= max + EPS, "L2({a},{b}) = {m} > max");
            assert!(m >= max / 2.0 - EPS, "L2({a},{b}) = {m} < max/2");
        }
    }

    #[test]
    fn parallel_segments_have_pure_perpendicular_distance() {
        let a = Segment2::xy(0.0, 0.0, 10.0, 0.0);
        let b = Segment2::xy(0.0, 2.0, 10.0, 2.0);
        let c = default_dist().components(&a, &b);
        assert!((c.perpendicular - 2.0).abs() < EPS);
        assert!(c.parallel.abs() < EPS);
        assert!(c.angle.abs() < EPS);
    }

    #[test]
    fn adjacent_partitions_have_zero_parallel_distance() {
        // Section 4.1.1: "the parallel distance between two adjacent line
        // segments in a trajectory is always zero."
        let a = Segment2::xy(0.0, 0.0, 10.0, 0.0);
        let b = Segment2::xy(10.0, 0.0, 14.0, 3.0);
        let c = default_dist().components(&a, &b);
        assert!(c.parallel.abs() < EPS);
    }

    #[test]
    fn contained_shorter_segment_parallel_distance() {
        // Lj strictly inside Li: the parallel gap is the smaller inset.
        let a = Segment2::xy(0.0, 0.0, 10.0, 0.0);
        let b = Segment2::xy(3.0, 0.0, 6.0, 0.0);
        let c = default_dist().components(&a, &b);
        // ps = (3,0): min(3, 7) = 3; pe = (6,0): min(6, 4) = 4; MIN = 3.
        assert!((c.parallel - 3.0).abs() < EPS);
        assert!(c.perpendicular.abs() < EPS);
        assert!(c.angle.abs() < EPS);
    }

    #[test]
    fn disjoint_collinear_segments_have_parallel_gap() {
        let a = Segment2::xy(0.0, 0.0, 10.0, 0.0);
        let b = Segment2::xy(15.0, 0.0, 18.0, 0.0);
        let c = default_dist().components(&a, &b);
        // ps = (15,0): min(15,5) = 5; pe = (18,0): min(18,8) = 8; MIN = 5.
        assert!((c.parallel - 5.0).abs() < EPS);
        assert!(c.perpendicular.abs() < EPS);
    }

    #[test]
    fn perpendicular_uses_lehmer_mean() {
        let a = Segment2::xy(0.0, 0.0, 10.0, 0.0);
        // Slanted short segment: offsets 1 and 3.
        let b = Segment2::xy(4.0, 1.0, 6.0, 3.0);
        let c = default_dist().components(&a, &b);
        assert!((c.perpendicular - lehmer_mean_2(1.0, 3.0)).abs() < EPS);
    }

    #[test]
    fn angle_distance_right_angle_is_full_length() {
        let a = Segment2::xy(0.0, 0.0, 10.0, 0.0);
        let b = Segment2::xy(5.0, 0.0, 5.0, 4.0);
        let c = default_dist().components(&a, &b);
        assert!((c.angle - 4.0).abs() < EPS, "θ = 90° ⇒ dθ = ‖Lj‖");
    }

    #[test]
    fn angle_distance_opposite_direction_directed_vs_undirected() {
        let a = Segment2::xy(0.0, 0.0, 10.0, 0.0);
        let b = Segment2::xy(8.0, 1.0, 2.0, 1.0); // anti-parallel, length 6
        let directed = default_dist().components(&a, &b);
        assert!((directed.angle - 6.0).abs() < EPS, "θ = 180° ⇒ dθ = ‖Lj‖");
        let undirected = SegmentDistance::undirected().components(&a, &b);
        assert!(undirected.angle.abs() < EPS, "undirected folds θ to 0");
    }

    #[test]
    fn angle_distance_45_degrees() {
        let a = Segment2::xy(0.0, 0.0, 10.0, 0.0);
        let b = Segment2::xy(0.0, 0.0, 3.0, 3.0); // length 3√2, θ = 45°
        let c = default_dist().components(&a, &b);
        let expected = (18.0f64).sqrt() * (std::f64::consts::FRAC_PI_4).sin();
        assert!((c.angle - expected).abs() < EPS);
    }

    #[test]
    fn distance_is_symmetric_lemma_2() {
        let dist = default_dist();
        let a = Segment2::xy(0.0, 0.0, 10.0, 2.0);
        let b = Segment2::xy(1.0, 5.0, 4.0, 6.0);
        assert!((dist.distance(&a, &b) - dist.distance(&b, &a)).abs() < EPS);
        // Equal-length tie: still symmetric thanks to the lexicographic
        // fallback.
        let c = Segment2::xy(0.0, 0.0, 0.0, 10.0);
        let d = Segment2::xy(5.0, 0.0, 5.0, 10.0);
        assert!((dist.distance(&c, &d) - dist.distance(&d, &c)).abs() < EPS);
    }

    #[test]
    fn identical_segments_have_zero_distance() {
        let dist = default_dist();
        let a = Segment2::xy(1.0, 2.0, 8.0, 9.0);
        assert!(dist.distance(&a, &a).abs() < EPS);
    }

    #[test]
    fn translation_invariance() {
        // The design rationale of Section 3.2 / Appendix C: relative
        // distances must not change under a global shift.
        let dist = default_dist();
        let a = Segment2::xy(0.0, 0.0, 10.0, 0.0);
        let b = Segment2::xy(2.0, 3.0, 9.0, 5.0);
        let shift = crate::point::Vector2::xy(10_000.0, 10_000.0);
        let d0 = dist.distance(&a, &b);
        let d1 = dist.distance(&a.translated(&shift), &b.translated(&shift));
        assert!((d0 - d1).abs() < 1e-6);
    }

    #[test]
    fn degenerate_pair_distances() {
        let dist = default_dist();
        let p = Segment2::xy(0.0, 0.0, 0.0, 0.0);
        let q = Segment2::xy(3.0, 4.0, 3.0, 4.0);
        assert!((dist.distance(&p, &q) - 5.0).abs() < EPS);
        // One degenerate, one proper: angle contribution must be zero.
        let s = Segment2::xy(0.0, 0.0, 10.0, 0.0);
        let c = dist.components(&s, &q);
        assert!(c.angle.abs() < EPS);
        assert!((c.perpendicular - 4.0).abs() < EPS);
        assert!(
            (c.parallel - 3.0).abs() < EPS,
            "projection (3,0): min(3,7)=3"
        );
    }

    #[test]
    fn short_segment_shrinks_angle_distance() {
        // The Section 4.1.3 observation: a very short Lj has low directional
        // strength, so dθ is small regardless of the actual angle.
        let a = Segment2::xy(0.0, 0.0, 10.0, 0.0);
        let short = Segment2::xy(5.0, 1.0, 5.0, 1.2); // ⊥ but tiny
        let long = Segment2::xy(5.0, 1.0, 5.0, 6.0); // ⊥ and long
        let dist = default_dist();
        let c_short = dist.components(&a, &short);
        let c_long = dist.components(&a, &long);
        assert!(c_short.angle < 0.3);
        assert!(c_long.angle > 4.0);
    }

    #[test]
    fn triangle_inequality_fails() {
        // Section 4.2: "our distance function is not a metric". Witness: two
        // long segments meeting at a right angle, bridged by a tiny diagonal
        // segment at the shared corner. The tiny bridge is near both long
        // segments (its short length caps d⊥ and dθ, and the shared corner
        // zeroes d∥), yet the long segments are far from each other.
        let dist = default_dist();
        let l1 = Segment2::xy(0.0, 0.0, 100.0, 0.0);
        let l2 = Segment2::xy(100.0, 0.0, 100.5, 0.5); // tiny corner bridge
        let l3 = Segment2::xy(100.0, 0.0, 100.0, 100.0);
        let d13 = dist.distance(&l1, &l3);
        let d12 = dist.distance(&l1, &l2);
        let d23 = dist.distance(&l2, &l3);
        assert!(d13 > d12 + d23, "expected violation: {d13} ≤ {d12} + {d23}");
    }

    #[test]
    fn appendix_a_endpoint_sum_cannot_discriminate() {
        // Figure 24's point: the endpoint-sum distance assigns the *same*
        // value to a parallel translate of L1 and to a rotated segment, so
        // it "cannot decide which one is more similar"; the composite
        // distance separates the two through its angle component.
        let l1 = Segment2::xy(0.0, 0.0, 200.0, 0.0);
        let l2 = Segment2::xy(100.0, 100.0, 300.0, 100.0); // parallel shift

        // L3: same endpoint-sum as L2 by construction (each endpoint at
        // distance 100√2 from the corresponding L1 endpoint) but rotated.
        let l3 = Segment2::xy(100.0, 100.0, 200.0, 100.0 * 2.0f64.sqrt());
        let naive12 = endpoint_sum_distance(&l1, &l2);
        let naive13 = endpoint_sum_distance(&l1, &l3);
        assert!((naive12 - 200.0 * 2.0f64.sqrt()).abs() < 1e-6);
        assert!((naive13 - naive12).abs() < 1e-6, "naive measure ties");
        let dist = default_dist();
        let d12 = dist.distance(&l1, &l2);
        let d13 = dist.distance(&l1, &l3);
        assert!(
            (d12 - d13).abs() > 10.0,
            "composite distance must separate what the naive measure ties: {d12} vs {d13}"
        );
        let c12 = dist.components(&l1, &l2);
        let c13 = dist.components(&l1, &l3);
        assert!(c12.angle.abs() < 1e-9, "parallel translate: dθ = 0");
        assert!(c13.angle > 10.0, "rotated segment: dθ is the separator");
        // With the paper's printed Figure 24 coordinates (L3 tilted up to
        // (200,200)) the composite distance also ranks the parallel L2
        // strictly closer than L3.
        let l3_paper = Segment2::xy(100.0, 100.0, 200.0, 200.0);
        let d13_paper = dist.distance(&l1, &l3_paper);
        assert!(d13_paper > d12, "{d13_paper} vs {d12}");
    }

    #[test]
    fn components_nonnegative_and_finite() {
        let dist = default_dist();
        let segs = [
            Segment2::xy(0.0, 0.0, 1.0, 1.0),
            Segment2::xy(-5.0, 2.0, 3.0, -4.0),
            Segment2::xy(0.0, 0.0, 0.0, 0.0),
            Segment2::xy(1e6, 1e6, 1e6 + 1.0, 1e6),
        ];
        for a in &segs {
            for b in &segs {
                let c = dist.components(a, b);
                assert!(c.perpendicular >= 0.0 && c.perpendicular.is_finite());
                assert!(c.parallel >= 0.0 && c.parallel.is_finite());
                assert!(c.angle >= 0.0 && c.angle.is_finite());
            }
        }
    }

    #[test]
    fn weights_scale_components() {
        let a = Segment2::xy(0.0, 0.0, 10.0, 0.0);
        let b = Segment2::xy(0.0, 2.0, 10.0, 2.0);
        let heavy_perp =
            SegmentDistance::new(DistanceWeights::new(10.0, 1.0, 1.0), AngleMode::Directed);
        let base = default_dist();
        assert!((heavy_perp.distance(&a, &b) - 10.0 * base.distance(&a, &b)).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        let _ = DistanceWeights::new(-1.0, 1.0, 1.0);
    }

    #[test]
    fn three_dimensional_distance() {
        let dist = SegmentDistance::default();
        let a: Segment<3> = Segment::new(Point::new([0.0, 0.0, 0.0]), Point::new([10.0, 0.0, 0.0]));
        let b: Segment<3> = Segment::new(Point::new([0.0, 3.0, 4.0]), Point::new([10.0, 3.0, 4.0]));
        let c = dist.components(&a, &b);
        assert!((c.perpendicular - 5.0).abs() < EPS);
        assert!(c.parallel.abs() < EPS);
        assert!(c.angle.abs() < EPS);
    }
}
