//! Axis-aligned bounding boxes, the building block of the R-tree substrate.

use crate::point::Point;
use crate::segment::Segment;

/// An axis-aligned bounding box in `D` dimensions.
///
/// An *empty* box (see [`Aabb::empty`]) has `min > max` in every dimension
/// and acts as the identity for [`Aabb::union`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Aabb<const D: usize> {
    /// Lower corner.
    pub min: [f64; D],
    /// Upper corner.
    pub max: [f64; D],
}

/// Shorthand for planar boxes.
pub type Aabb2 = Aabb<2>;

impl<const D: usize> Aabb<D> {
    /// The empty box (identity for union; intersects nothing).
    pub const fn empty() -> Self {
        Self {
            min: [f64::INFINITY; D],
            max: [f64::NEG_INFINITY; D],
        }
    }

    /// A degenerate box containing a single point.
    pub fn from_point(p: &Point<D>) -> Self {
        Self {
            min: p.coords,
            max: p.coords,
        }
    }

    /// The tight box around a segment's endpoints.
    pub fn from_segment(s: &Segment<D>) -> Self {
        let mut b = Self::from_point(&s.start);
        b.extend_point(&s.end);
        b
    }

    /// The tight box around a set of points; empty for an empty slice.
    pub fn from_points(points: &[Point<D>]) -> Self {
        let mut b = Self::empty();
        for p in points {
            b.extend_point(p);
        }
        b
    }

    /// Creates a box from explicit corners; panics if `min > max` anywhere.
    pub fn new(min: [f64; D], max: [f64; D]) -> Self {
        for k in 0..D {
            assert!(min[k] <= max[k], "Aabb::new: min > max in dimension {k}");
        }
        Self { min, max }
    }

    /// True for the empty box.
    pub fn is_empty(&self) -> bool {
        (0..D).any(|k| self.min[k] > self.max[k])
    }

    /// Grows the box to include `p`.
    pub fn extend_point(&mut self, p: &Point<D>) {
        for k in 0..D {
            self.min[k] = self.min[k].min(p.coords[k]);
            self.max[k] = self.max[k].max(p.coords[k]);
        }
    }

    /// Grows the box to include all of `other`.
    pub fn extend(&mut self, other: &Self) {
        for k in 0..D {
            self.min[k] = self.min[k].min(other.min[k]);
            self.max[k] = self.max[k].max(other.max[k]);
        }
    }

    /// The union of two boxes.
    pub fn union(&self, other: &Self) -> Self {
        let mut b = *self;
        b.extend(other);
        b
    }

    /// True when the boxes overlap (closed-interval semantics).
    pub fn intersects(&self, other: &Self) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        (0..D).all(|k| self.min[k] <= other.max[k] && self.max[k] >= other.min[k])
    }

    /// True when `p` lies inside the closed box.
    pub fn contains_point(&self, p: &Point<D>) -> bool {
        (0..D).all(|k| self.min[k] <= p.coords[k] && p.coords[k] <= self.max[k])
    }

    /// True when `other` lies entirely inside `self`.
    pub fn contains(&self, other: &Self) -> bool {
        if self.is_empty() || other.is_empty() {
            return other.is_empty();
        }
        (0..D).all(|k| self.min[k] <= other.min[k] && other.max[k] <= self.max[k])
    }

    /// The box expanded by `r ≥ 0` in every direction.
    pub fn expanded(&self, r: f64) -> Self {
        debug_assert!(r >= 0.0);
        if self.is_empty() {
            return *self;
        }
        let mut b = *self;
        for k in 0..D {
            b.min[k] -= r;
            b.max[k] += r;
        }
        b
    }

    /// Minimum Euclidean distance between the two boxes (0 when they
    /// overlap). Lower-bounds the distance between any contained geometry,
    /// which is what makes the index filter conservative.
    pub fn min_distance(&self, other: &Self) -> f64 {
        self.min_distance_squared(other).sqrt()
    }

    /// Squared [`min_distance`](Self::min_distance) — the filter-and-refine
    /// hot path compares against a squared threshold to skip the sqrt.
    pub fn min_distance_squared(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for k in 0..D {
            let gap = (other.min[k] - self.max[k])
                .max(self.min[k] - other.max[k])
                .max(0.0);
            acc += gap * gap;
        }
        acc
    }

    /// The centre of the box.
    pub fn center(&self) -> Point<D> {
        let mut coords = [0.0; D];
        for k in 0..D {
            coords[k] = 0.5 * (self.min[k] + self.max[k]);
        }
        Point { coords }
    }

    /// Sum of the side lengths (the "margin"; used by R-tree heuristics).
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..D).map(|k| self.max[k] - self.min[k]).sum()
    }

    /// The `D`-dimensional volume (area in 2-D).
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..D).map(|k| self.max[k] - self.min[k]).product()
    }

    /// Volume increase caused by absorbing `other` (R-tree insertion
    /// heuristic).
    pub fn enlargement(&self, other: &Self) -> f64 {
        self.union(other).volume() - self.volume()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point2;
    use crate::segment::Segment2;

    #[test]
    fn empty_box_behaviour() {
        let e = Aabb2::empty();
        assert!(e.is_empty());
        assert!(!e.intersects(&e));
        assert_eq!(e.volume(), 0.0);
        assert_eq!(e.margin(), 0.0);
        let b = Aabb2::new([0.0, 0.0], [1.0, 1.0]);
        assert_eq!(e.union(&b), b, "empty is the identity for union");
    }

    #[test]
    fn from_segment_is_tight() {
        let s = Segment2::xy(3.0, -1.0, 0.0, 4.0);
        let b = Aabb2::from_segment(&s);
        assert_eq!(b.min, [0.0, -1.0]);
        assert_eq!(b.max, [3.0, 4.0]);
    }

    #[test]
    fn intersection_and_containment() {
        let a = Aabb2::new([0.0, 0.0], [2.0, 2.0]);
        let b = Aabb2::new([1.0, 1.0], [3.0, 3.0]);
        let c = Aabb2::new([5.0, 5.0], [6.0, 6.0]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.contains_point(&Point2::xy(1.0, 1.0)));
        assert!(!a.contains_point(&Point2::xy(2.1, 1.0)));
        assert!(a.contains(&Aabb2::new([0.5, 0.5], [1.5, 1.5])));
        assert!(!a.contains(&b));
    }

    #[test]
    fn touching_boxes_intersect() {
        let a = Aabb2::new([0.0, 0.0], [1.0, 1.0]);
        let b = Aabb2::new([1.0, 0.0], [2.0, 1.0]);
        assert!(a.intersects(&b), "closed-interval semantics");
        assert_eq!(a.min_distance(&b), 0.0);
    }

    #[test]
    fn min_distance_diagonal_gap() {
        let a = Aabb2::new([0.0, 0.0], [1.0, 1.0]);
        let b = Aabb2::new([4.0, 5.0], [6.0, 7.0]);
        assert!((a.min_distance(&b) - 5.0).abs() < 1e-12);
        assert!((b.min_distance(&a) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn expansion_grows_every_side() {
        let a = Aabb2::new([0.0, 0.0], [1.0, 1.0]);
        let e = a.expanded(2.0);
        assert_eq!(e.min, [-2.0, -2.0]);
        assert_eq!(e.max, [3.0, 3.0]);
    }

    #[test]
    fn volume_margin_enlargement() {
        let a = Aabb2::new([0.0, 0.0], [2.0, 3.0]);
        assert!((a.volume() - 6.0).abs() < 1e-12);
        assert!((a.margin() - 5.0).abs() < 1e-12);
        let b = Aabb2::new([2.0, 3.0], [4.0, 4.0]);
        // union = [0,0]-[4,4] → volume 16; enlargement = 10.
        assert!((a.enlargement(&b) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn min_distance_lower_bounds_segment_distance() {
        let s1 = Segment2::xy(0.0, 0.0, 1.0, 1.0);
        let s2 = Segment2::xy(5.0, 5.0, 6.0, 4.0);
        let b1 = Aabb2::from_segment(&s1);
        let b2 = Aabb2::from_segment(&s2);
        assert!(b1.min_distance(&b2) <= s1.min_distance(&s2) + 1e-12);
    }
}
