//! Trajectories and the identified line segments the grouping phase
//! consumes.
//!
//! Section 2.1: a trajectory `TRᵢ = p₁p₂…p_lenᵢ` is a sequence of
//! *d*-dimensional points; a *trajectory partition* is a directed segment
//! between two of its points. The clustering phase must remember which
//! trajectory each segment came from (Definition 10 filters clusters by
//! *trajectory cardinality*), so segments carry a [`TrajectoryId`].

use crate::bbox::Aabb;
use crate::point::Point;
use crate::segment::Segment;

/// Identifier of a trajectory within a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrajectoryId(pub u32);

/// Identifier of a line segment within a segment database `D`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SegmentId(pub u32);

impl std::fmt::Display for TrajectoryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TR{}", self.0)
    }
}

impl std::fmt::Display for SegmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A trajectory: an identified point sequence with an optional weight.
///
/// The weight feeds the paper's weighted-trajectory extension
/// (Section 4.2 end: "a stronger hurricane should have a higher weight");
/// it defaults to 1 and is ignored unless weighted clustering is enabled.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trajectory<const D: usize> {
    /// Dataset-unique identifier.
    pub id: TrajectoryId,
    /// The point sequence `p₁…p_len`.
    pub points: Vec<Point<D>>,
    /// Clustering weight (default 1.0).
    pub weight: f64,
}

/// Shorthand for planar trajectories.
pub type Trajectory2 = Trajectory<2>;

impl<const D: usize> Trajectory<D> {
    /// Creates a unit-weight trajectory.
    pub fn new(id: TrajectoryId, points: Vec<Point<D>>) -> Self {
        Self {
            id,
            points,
            weight: 1.0,
        }
    }

    /// Creates a weighted trajectory; the weight must be positive and
    /// finite.
    pub fn with_weight(id: TrajectoryId, points: Vec<Point<D>>, weight: f64) -> Self {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "trajectory weight must be positive and finite"
        );
        Self { id, points, weight }
    }

    /// Number of points (`lenᵢ` in the paper).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True for an empty point sequence.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The consecutive-point segments `p₁p₂, p₂p₃, …` (i.e. the finest
    /// possible partitioning).
    pub fn edges(&self) -> impl Iterator<Item = Segment<D>> + '_ {
        self.points.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// Total polyline length.
    pub fn path_length(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// Bounding box of all points.
    pub fn bounding_box(&self) -> Aabb<D> {
        Aabb::from_points(&self.points)
    }

    /// The sub-trajectory through the given point indices (must be strictly
    /// increasing and in range), per the Section 2.1 definition.
    pub fn sub_trajectory(&self, indices: &[usize]) -> Self {
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        Self {
            id: self.id,
            points: indices.iter().map(|&i| self.points[i]).collect(),
            weight: self.weight,
        }
    }
}

/// A line segment tagged with its provenance: which trajectory produced it
/// and its own id in the segment database. This is the unit of clustering.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IdentifiedSegment<const D: usize> {
    /// Id within the segment database `D` of Figure 12.
    pub id: SegmentId,
    /// The trajectory this partition was extracted from (`TR(Lⱼ)` in
    /// Definition 10).
    pub trajectory: TrajectoryId,
    /// The geometry.
    pub segment: Segment<D>,
    /// Weight inherited from the trajectory (1.0 unless weighted).
    pub weight: f64,
}

/// Shorthand for planar identified segments.
pub type IdentifiedSegment2 = IdentifiedSegment<2>;

impl<const D: usize> IdentifiedSegment<D> {
    /// Creates an identified segment with unit weight.
    pub fn new(id: SegmentId, trajectory: TrajectoryId, segment: Segment<D>) -> Self {
        Self {
            id,
            trajectory,
            segment,
            weight: 1.0,
        }
    }

    /// The segment's bounding box (used by spatial indexes).
    pub fn bounding_box(&self) -> Aabb<D> {
        Aabb::from_segment(&self.segment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point2;

    fn traj(points: &[(f64, f64)]) -> Trajectory2 {
        Trajectory::new(
            TrajectoryId(7),
            points.iter().map(|&(x, y)| Point2::xy(x, y)).collect(),
        )
    }

    #[test]
    fn edges_are_consecutive_pairs() {
        let t = traj(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)]);
        let edges: Vec<_> = t.edges().collect();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].start, Point2::xy(0.0, 0.0));
        assert_eq!(edges[0].end, Point2::xy(1.0, 0.0));
        assert_eq!(edges[1].end, Point2::xy(1.0, 1.0));
    }

    #[test]
    fn path_length_sums_edges() {
        let t = traj(&[(0.0, 0.0), (3.0, 4.0), (3.0, 10.0)]);
        assert!((t.path_length() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_trajectories() {
        let e = traj(&[]);
        assert!(e.is_empty());
        assert_eq!(e.edges().count(), 0);
        assert_eq!(e.path_length(), 0.0);
        let s = traj(&[(1.0, 1.0)]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.edges().count(), 0);
    }

    #[test]
    fn sub_trajectory_picks_indices() {
        let t = traj(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let sub = t.sub_trajectory(&[0, 2, 3]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.points[1], Point2::xy(2.0, 0.0));
        assert_eq!(sub.id, t.id, "sub-trajectory keeps provenance");
    }

    #[test]
    fn bounding_box_covers_all_points() {
        let t = traj(&[(0.0, 5.0), (-2.0, 1.0), (4.0, -3.0)]);
        let b = t.bounding_box();
        assert_eq!(b.min, [-2.0, -3.0]);
        assert_eq!(b.max, [4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let _ = Trajectory2::with_weight(TrajectoryId(0), vec![], 0.0);
    }

    #[test]
    fn identified_segment_bbox() {
        let s = IdentifiedSegment2::new(
            SegmentId(3),
            TrajectoryId(1),
            crate::segment::Segment2::xy(1.0, 2.0, -1.0, 4.0),
        );
        let b = s.bounding_box();
        assert_eq!(b.min, [-1.0, 2.0]);
        assert_eq!(b.max, [1.0, 4.0]);
        assert_eq!(s.weight, 1.0);
    }
}
