//! # traclus-viz
//!
//! Dependency-free SVG rendering of trajectory scenes and TRACLUS results.
//!
//! The paper validates clustering by *visual inspection* ("We have
//! implemented a visual inspection tool for cluster validation",
//! Section 7.2) and presents Figures 18/21/22/23 as plots of thin green
//! trajectories overlaid with thick red representative trajectories. This
//! crate regenerates those images: [`SvgCanvas`] is a minimal SVG writer,
//! [`render_clustering`] reproduces the paper's visual convention.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;

use traclus_core::TraclusOutcome;
use traclus_geom::{Aabb2, Point2, Trajectory};

/// An RGB colour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Color(pub u8, pub u8, pub u8);

impl Color {
    /// Hex string `#rrggbb`.
    pub fn hex(&self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.0, self.1, self.2)
    }

    /// The paper's thin-green trajectory colour.
    pub const TRAJECTORY_GREEN: Color = Color(0x2e, 0x8b, 0x57);
    /// The paper's thick-red representative colour.
    pub const REPRESENTATIVE_RED: Color = Color(0xd6, 0x2a, 0x2a);
    /// Muted grey for noise segments.
    pub const NOISE_GREY: Color = Color(0xb0, 0xb0, 0xb0);

    /// A qualitative palette for per-cluster colouring.
    pub fn palette(i: usize) -> Color {
        const PALETTE: [Color; 10] = [
            Color(0x1f, 0x77, 0xb4),
            Color(0xff, 0x7f, 0x0e),
            Color(0x2c, 0xa0, 0x2c),
            Color(0xd6, 0x27, 0x28),
            Color(0x94, 0x67, 0xbd),
            Color(0x8c, 0x56, 0x4b),
            Color(0xe3, 0x77, 0xc2),
            Color(0x7f, 0x7f, 0x7f),
            Color(0xbc, 0xbd, 0x22),
            Color(0x17, 0xbe, 0xcf),
        ];
        PALETTE[i % PALETTE.len()]
    }
}

/// A minimal SVG document builder mapping world coordinates to pixels
/// (y-axis flipped so larger y draws upward, as on a map).
#[derive(Debug, Clone)]
pub struct SvgCanvas {
    width: f64,
    height: f64,
    world: Aabb2,
    body: String,
}

impl SvgCanvas {
    /// Creates a canvas for the given world box, scaled into
    /// `width × height` pixels with a small margin. Panics on an empty
    /// world box.
    pub fn new(world: Aabb2, width: f64, height: f64) -> Self {
        assert!(!world.is_empty(), "cannot render an empty world box");
        assert!(width > 0.0 && height > 0.0);
        Self {
            width,
            height,
            world,
            body: String::new(),
        }
    }

    fn tx(&self, p: &Point2) -> (f64, f64) {
        let margin = 10.0;
        let w = (self.world.max[0] - self.world.min[0]).max(1e-12);
        let h = (self.world.max[1] - self.world.min[1]).max(1e-12);
        let sx = (self.width - 2.0 * margin) / w;
        let sy = (self.height - 2.0 * margin) / h;
        let x = margin + (p.x() - self.world.min[0]) * sx;
        let y = self.height - margin - (p.y() - self.world.min[1]) * sy;
        (x, y)
    }

    /// Draws a polyline through `points`.
    pub fn polyline(&mut self, points: &[Point2], color: Color, stroke_width: f64, opacity: f64) {
        if points.len() < 2 {
            return;
        }
        let mut attr = String::new();
        for p in points {
            let (x, y) = self.tx(p);
            let _ = write!(attr, "{x:.2},{y:.2} ");
        }
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="{stroke_width}" stroke-opacity="{opacity}" stroke-linecap="round"/>"#,
            attr.trim_end(),
            color.hex(),
        );
    }

    /// Draws a single line segment.
    pub fn segment(
        &mut self,
        a: &Point2,
        b: &Point2,
        color: Color,
        stroke_width: f64,
        opacity: f64,
    ) {
        let (x1, y1) = self.tx(a);
        let (x2, y2) = self.tx(b);
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{}" stroke-width="{stroke_width}" stroke-opacity="{opacity}"/>"#,
            color.hex(),
        );
    }

    /// Draws a filled circle of pixel radius `r` at world point `p`.
    pub fn circle(&mut self, p: &Point2, r: f64, color: Color) {
        let (cx, cy) = self.tx(p);
        let _ = writeln!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r}" fill="{}"/>"#,
            color.hex(),
        );
    }

    /// Places a text label at world point `p`.
    pub fn label(&mut self, p: &Point2, text: &str, size: f64) {
        let (x, y) = self.tx(p);
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size}" font-family="sans-serif">{}</text>"#,
            escape(text),
        );
    }

    /// Finalises the SVG document string.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\">\n<rect width=\"{w}\" height=\"{h}\" fill=\"white\"/>\n{body}</svg>\n",
            w = self.width,
            h = self.height,
            body = self.body,
        )
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders a clustering result in the paper's Figure 18/21/22 style: thin
/// green input trajectories under thick red representative trajectories.
pub fn render_clustering(
    trajectories: &[Trajectory<2>],
    outcome: &TraclusOutcome<2>,
    width: f64,
    height: f64,
) -> String {
    let mut world = Aabb2::empty();
    for t in trajectories {
        world.extend(&t.bounding_box());
    }
    if world.is_empty() {
        world = Aabb2::new([0.0, 0.0], [1.0, 1.0]);
    }
    let mut canvas = SvgCanvas::new(world, width, height);
    for t in trajectories {
        canvas.polyline(&t.points, Color::TRAJECTORY_GREEN, 0.7, 0.45);
    }
    for c in &outcome.clusters {
        canvas.polyline(
            &c.representative.points,
            Color::REPRESENTATIVE_RED,
            3.0,
            0.95,
        );
    }
    canvas.finish()
}

/// Renders the segment database coloured by cluster label (noise in grey),
/// useful for debugging the grouping phase.
pub fn render_segments(outcome: &TraclusOutcome<2>, width: f64, height: f64) -> String {
    let world = outcome.database.bounding_box();
    let world = if world.is_empty() {
        Aabb2::new([0.0, 0.0], [1.0, 1.0])
    } else {
        world
    };
    let mut canvas = SvgCanvas::new(world, width, height);
    for (i, seg) in outcome.database.segments().iter().enumerate() {
        let (color, width_px, opacity) = match outcome.clustering.labels[i] {
            traclus_core::SegmentLabel::Cluster(id) => (Color::palette(id.0 as usize), 1.5, 0.9),
            _ => (Color::NOISE_GREY, 0.7, 0.5),
        };
        let s = &seg.segment;
        canvas.segment(&s.start, &s.end, color, width_px, opacity);
    }
    for c in &outcome.clusters {
        canvas.polyline(
            &c.representative.points,
            Color::REPRESENTATIVE_RED,
            3.0,
            0.95,
        );
    }
    canvas.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use traclus_core::{Traclus, TraclusConfig};
    use traclus_geom::{Trajectory, TrajectoryId};

    fn scene() -> Vec<Trajectory<2>> {
        (0..6)
            .map(|i| {
                Trajectory::new(
                    TrajectoryId(i),
                    (0..20)
                        .map(|k| Point2::xy(k as f64 * 5.0, i as f64 * 0.5))
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn canvas_produces_well_formed_svg() {
        let mut canvas = SvgCanvas::new(Aabb2::new([0.0, 0.0], [10.0, 10.0]), 200.0, 100.0);
        canvas.polyline(
            &[Point2::xy(0.0, 0.0), Point2::xy(10.0, 10.0)],
            Color::TRAJECTORY_GREEN,
            1.0,
            1.0,
        );
        canvas.circle(&Point2::xy(5.0, 5.0), 3.0, Color::REPRESENTATIVE_RED);
        canvas.label(&Point2::xy(1.0, 1.0), "C0 <&>", 12.0);
        let svg = canvas.finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("&lt;&amp;&gt;"), "labels are escaped");
    }

    #[test]
    fn y_axis_is_flipped() {
        let canvas = SvgCanvas::new(Aabb2::new([0.0, 0.0], [10.0, 10.0]), 100.0, 100.0);
        let (_, y_low) = canvas.tx(&Point2::xy(0.0, 0.0));
        let (_, y_high) = canvas.tx(&Point2::xy(0.0, 10.0));
        assert!(y_high < y_low, "larger world y draws nearer the top");
    }

    #[test]
    fn polyline_needs_two_points() {
        let mut canvas = SvgCanvas::new(Aabb2::new([0.0, 0.0], [1.0, 1.0]), 10.0, 10.0);
        canvas.polyline(&[Point2::xy(0.0, 0.0)], Color::NOISE_GREY, 1.0, 1.0);
        assert!(!canvas.finish().contains("<polyline"));
    }

    #[test]
    fn render_clustering_has_green_and_red_layers() {
        let trajs = scene();
        let outcome = Traclus::new(TraclusConfig {
            eps: 3.0,
            min_lns: 3,
            ..TraclusConfig::default()
        })
        .run(&trajs);
        assert!(!outcome.clusters.is_empty(), "scene must cluster");
        let svg = render_clustering(&trajs, &outcome, 400.0, 300.0);
        assert!(svg.contains(&Color::TRAJECTORY_GREEN.hex()));
        assert!(svg.contains(&Color::REPRESENTATIVE_RED.hex()));
    }

    #[test]
    fn render_segments_colours_by_cluster() {
        let trajs = scene();
        let outcome = Traclus::new(TraclusConfig {
            eps: 3.0,
            min_lns: 3,
            ..TraclusConfig::default()
        })
        .run(&trajs);
        let svg = render_segments(&outcome, 400.0, 300.0);
        assert!(svg.contains("<line"));
        assert!(svg.contains(&Color::palette(0).hex()));
    }

    #[test]
    fn palette_cycles() {
        assert_eq!(Color::palette(0), Color::palette(10));
        assert_ne!(Color::palette(0), Color::palette(1));
    }

    #[test]
    #[should_panic(expected = "empty world")]
    fn empty_world_rejected() {
        let _ = SvgCanvas::new(Aabb2::empty(), 10.0, 10.0);
    }
}
