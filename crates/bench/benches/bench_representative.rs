//! Representative-trajectory generation (Figure 15) benchmark: the sweep
//! over a large single cluster.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use traclus_core::{
    representative_trajectory, Cluster, ClusterId, RepresentativeConfig, SegmentDatabase,
};
use traclus_geom::{IdentifiedSegment, Segment2, SegmentDistance, SegmentId, TrajectoryId};

fn bundle_db(n: usize) -> (SegmentDatabase<2>, Cluster) {
    let segs: Vec<IdentifiedSegment<2>> = (0..n)
        .map(|i| {
            let y = (i % 40) as f64 * 0.3;
            let x0 = (i % 7) as f64 * 3.0;
            IdentifiedSegment::new(
                SegmentId(i as u32),
                TrajectoryId(i as u32),
                Segment2::xy(x0, y, x0 + 50.0, y + 0.5),
            )
        })
        .collect();
    let db = SegmentDatabase::from_segments(segs, SegmentDistance::default());
    let cluster = Cluster {
        id: ClusterId(0),
        members: (0..n as u32).collect(),
        trajectories: (0..n as u32).map(TrajectoryId).collect(),
    };
    (db, cluster)
}

fn bench_representative(c: &mut Criterion) {
    let mut group = c.benchmark_group("representative");
    for n in [100usize, 400, 1600] {
        let (db, cluster) = bundle_db(n);
        let config = RepresentativeConfig::new(5, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| representative_trajectory(&db, &cluster, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_representative);
criterion_main!(benches);
