//! Section 4.4 benchmarks: neighborhood-statistics/entropy evaluation cost
//! (one point of the Figure 16/19 curves) and simulated-annealing ε
//! selection on a small scene.

use criterion::{criterion_group, criterion_main, Criterion};
use traclus_core::{
    partition_trajectories, select_eps_annealing, AnnealConfig, IndexKind, NeighborhoodStats,
    PartitionConfig, SegmentDatabase,
};
use traclus_data::{generate_scene, SceneConfig};
use traclus_geom::SegmentDistance;

fn database(per_backbone: usize) -> SegmentDatabase<2> {
    let scene = generate_scene(&SceneConfig {
        per_backbone,
        seed: 13,
        ..SceneConfig::default()
    });
    SegmentDatabase::from_segments(
        partition_trajectories(&PartitionConfig::default(), &scene.trajectories),
        SegmentDistance::default(),
    )
}

fn bench_params(c: &mut Criterion) {
    let db = database(40);
    let index = db.build_index(IndexKind::RTree, 7.0);
    let mut group = c.benchmark_group("params");
    group.sample_size(20);
    group.bench_function("entropy_single_eps", |b| {
        b.iter(|| {
            let stats = NeighborhoodStats::compute(&db, &index, 7.0, false);
            stats.entropy()
        })
    });
    let small = database(10);
    group.bench_function("annealing_50_iterations", |b| {
        b.iter(|| {
            select_eps_annealing(
                &small,
                IndexKind::RTree,
                1.0..=20.0,
                false,
                &AnnealConfig {
                    iterations: 50,
                    ..AnnealConfig::default()
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_params);
criterion_main!(benches);
