//! End-to-end TRACLUS pipeline benchmark (Figure 4: partition → group →
//! representative trajectories) on scaled synthetic scenes and a
//! hurricane-sized dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use traclus_core::{Traclus, TraclusConfig};
use traclus_data::{generate_scene, HurricaneConfig, HurricaneGenerator, SceneConfig};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/scene");
    group.sample_size(10);
    for per_backbone in [15usize, 60] {
        let scene = generate_scene(&SceneConfig {
            per_backbone,
            seed: 3,
            ..SceneConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(scene.trajectories.len()),
            &scene.trajectories,
            |b, trajs| {
                b.iter(|| {
                    Traclus::new(TraclusConfig {
                        eps: 7.0,
                        min_lns: 6,
                        ..TraclusConfig::default()
                    })
                    .run(trajs)
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("pipeline/hurricane");
    group.sample_size(10);
    let tracks = HurricaneGenerator::new(HurricaneConfig {
        tracks: 150,
        seed: 4,
        ..HurricaneConfig::default()
    })
    .generate();
    group.bench_function("150_tracks", |b| {
        b.iter(|| {
            Traclus::new(TraclusConfig {
                eps: 2.0,
                min_lns: 5,
                ..TraclusConfig::default()
            })
            .run(&tracks)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
