//! Lemma 3 micro-benchmark: line-segment clustering with and without a
//! spatial index (linear scan = the O(n²) arm; grid and R-tree = the
//! O(n log n) arm), plus the sharded parallel path across thread counts
//! and the streaming engine's insert throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use traclus_bench::experiments::scaling::scaled_database;
use traclus_core::{
    ClusterConfig, IncrementalClustering, IndexKind, LineSegmentClustering, Parallelism,
    PartitionConfig, SegmentDatabase, ShardPlan, SnapshotCell, StreamConfig, Traclus,
    TraclusConfig,
};
use traclus_data::{HurricaneConfig, HurricaneGenerator};
use traclus_geom::{Aabb, SegmentDistance, Trajectory, TrajectoryId};
use traclus_index::{RTree, RTreeParams};

fn bench_cluster(c: &mut Criterion) {
    for (kind, label) in [
        (IndexKind::Linear, "linear"),
        (IndexKind::Grid, "grid"),
        (IndexKind::RTree, "rtree"),
    ] {
        let mut group = c.benchmark_group(format!("cluster/{label}"));
        group.sample_size(10);
        for n in [500usize, 1000, 2000] {
            let db = scaled_database(n, 5);
            group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
                b.iter(|| {
                    LineSegmentClustering::new(
                        db,
                        ClusterConfig {
                            index: kind,
                            ..ClusterConfig::new(7.0, 6)
                        },
                    )
                    .run()
                })
            });
        }
        group.finish();
    }
}

/// Sequential vs sharded-parallel grouping on the 32-trajectory hurricane
/// workload (t = 1 is the sequential Figure 12 loop; larger t take the
/// split/merge path). On a ≥ 4-core runner t = 4 should beat t = 1 by
/// ≥ 1.5×; outputs are identical by construction, so this measures pure
/// wall-clock.
fn bench_cluster_parallel(c: &mut Criterion) {
    let tracks = HurricaneGenerator::new(HurricaneConfig {
        tracks: 32,
        seed: 2007,
        ..HurricaneConfig::default()
    })
    .generate();
    let db = SegmentDatabase::from_trajectories(
        &tracks,
        &PartitionConfig::default(),
        SegmentDistance::default(),
    );
    let config = ClusterConfig::new(5.0, 5);
    let mut group = c.benchmark_group("cluster/parallel_hurricane32");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| LineSegmentClustering::new(&db, config).run_parallel(threads)),
        );
    }
    group.finish();

    // Same sweep on the constant-density scaled scene, a heavier load
    // where the per-seed neighborhood work dominates the merge overhead.
    let db = scaled_database(2000, 5);
    let config = ClusterConfig::new(7.0, 6);
    let mut group = c.benchmark_group("cluster/parallel_scaled2000");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| LineSegmentClustering::new(&db, config).run_parallel(threads)),
        );
    }
    group.finish();
}

/// Streaming insert throughput: ingest the hurricane basin one storm at a
/// time through `IncrementalClustering` and snapshot at the end.
///
/// Two sweeps:
///
/// * dataset size (32 / 64 / 128 storms) at the default dirty-region
///   threshold, with a batch (`partition-all + run`) arm at each size —
///   the cost of keeping the clustering current versus recomputing it
///   once at the end;
/// * the `rebuild_threshold` knob at a fixed size — 0.0 re-clusters on
///   every insertion (the naive serving loop), 1.0 never does (pure local
///   repair on an incrementally grown R-tree).
fn bench_stream_insert(c: &mut Criterion) {
    let storms = |tracks: usize| -> Vec<Trajectory<2>> {
        HurricaneGenerator::new(HurricaneConfig {
            tracks,
            seed: 2007,
            ..HurricaneConfig::default()
        })
        .generate()
    };
    let config = TraclusConfig {
        eps: 5.0,
        min_lns: 5,
        ..TraclusConfig::default()
    };
    let ingest = |config: TraclusConfig, tracks: &[Trajectory<2>]| {
        let mut engine: IncrementalClustering<2> = Traclus::new(config).stream();
        for tr in tracks {
            engine.insert(tr);
        }
        engine.snapshot()
    };

    let mut group = c.benchmark_group("cluster/stream_ingest_hurricane");
    group.sample_size(10);
    for tracks in [32usize, 64, 128] {
        let dataset = storms(tracks);
        group.bench_with_input(
            BenchmarkId::new("stream", tracks),
            &dataset,
            |b, dataset| b.iter(|| ingest(config, dataset)),
        );
        group.bench_with_input(BenchmarkId::new("batch", tracks), &dataset, |b, dataset| {
            b.iter(|| {
                let db =
                    SegmentDatabase::from_trajectories(dataset, &config.partition, config.distance);
                LineSegmentClustering::new(&db, ClusterConfig::new(config.eps, config.min_lns))
                    .run()
            })
        });
    }
    group.finish();

    let dataset = storms(64);
    let mut group = c.benchmark_group("cluster/stream_rebuild_threshold");
    group.sample_size(10);
    for threshold in [0.0f64, 0.25, 1.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, &threshold| {
                let config = TraclusConfig {
                    stream: StreamConfig {
                        rebuild_threshold: threshold,
                        ..StreamConfig::default()
                    },
                    ..config
                };
                b.iter(|| ingest(config, &dataset))
            },
        );
    }
    group.finish();
}

/// Sliding-window decremental costs.
///
/// Two sweeps:
///
/// * steady-state windowed ingest — a 128-storm stream pushed through a
///   capacity-bounded window (16 / 32 / 64 live trajectories), so every
///   insertion past the warm-up also pays one oldest-trajectory expiry;
///   compare against the unbounded `stream_ingest_hurricane` arms for the
///   price of keeping the window trimmed;
/// * a single explicit removal out of a steady 64-storm window, at the
///   default dirty-region threshold (free to fall back to the full
///   re-cluster) versus a threshold of 10 (pinned to scoped local
///   repair) — the engine clone inside the loop is shared overhead of
///   both arms, so their *difference* isolates repair vs rebuild.
fn bench_sliding_window(c: &mut Criterion) {
    let storms = |tracks: usize| -> Vec<Trajectory<2>> {
        HurricaneGenerator::new(HurricaneConfig {
            tracks,
            seed: 2007,
            ..HurricaneConfig::default()
        })
        .generate()
    };
    let base = TraclusConfig {
        eps: 5.0,
        min_lns: 5,
        ..TraclusConfig::default()
    };

    let dataset = storms(128);
    let mut group = c.benchmark_group("cluster/stream_sliding_window");
    group.sample_size(10);
    for capacity in [16usize, 32, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(capacity),
            &dataset,
            |b, dataset| {
                let config = TraclusConfig {
                    stream: StreamConfig {
                        capacity: Some(capacity),
                        ..StreamConfig::default()
                    },
                    ..base
                };
                b.iter(|| {
                    let mut engine: IncrementalClustering<2> = Traclus::new(config).stream();
                    for tr in dataset {
                        engine.insert(tr);
                    }
                    engine.snapshot()
                })
            },
        );
    }
    group.finish();

    let dataset = storms(64);
    let mut group = c.benchmark_group("cluster/stream_remove");
    group.sample_size(10);
    for (threshold, label) in [(0.25f64, "rebuild-allowed"), (10.0, "repair-pinned")] {
        let config = TraclusConfig {
            stream: StreamConfig {
                rebuild_threshold: threshold,
                ..StreamConfig::default()
            },
            ..base
        };
        let mut engine: IncrementalClustering<2> = Traclus::new(config).stream();
        for tr in &dataset {
            engine.insert(tr);
        }
        let ids: Vec<TrajectoryId> = dataset.iter().map(|t| t.id).collect();
        group.bench_with_input(BenchmarkId::from_parameter(label), &engine, |b, engine| {
            let mut k = 0usize;
            b.iter(|| {
                let mut live = engine.clone();
                let id = ids[k % ids.len()];
                k += 1;
                live.remove_trajectory(id)
            })
        });
    }
    group.finish();
}

/// Serving-layer snapshot costs: what the writer pays per batch to turn
/// the engine's mutable state into an immutable `ClusterSnapshot`
/// (clustering capture + representative materialisation + `Arc` swap),
/// and the per-query `load()` on the reader side that it buys — the
/// latter is the number every server request pays, the former bounds the
/// publication rate.
fn bench_snapshot_publish(c: &mut Criterion) {
    let config = TraclusConfig {
        eps: 5.0,
        min_lns: 5,
        ..TraclusConfig::default()
    };

    let mut group = c.benchmark_group("cluster/snapshot_publish_hurricane");
    group.sample_size(10);
    for tracks in [32usize, 64, 128] {
        let dataset = HurricaneGenerator::new(HurricaneConfig {
            tracks,
            seed: 2007,
            ..HurricaneConfig::default()
        })
        .generate();
        let mut engine: IncrementalClustering<2> = Traclus::new(config).stream();
        for tr in &dataset {
            engine.insert(tr);
        }
        let cell: SnapshotCell<2> = SnapshotCell::new(config);
        group.bench_with_input(BenchmarkId::from_parameter(tracks), &engine, |b, engine| {
            b.iter(|| cell.publish_from(engine))
        });
    }
    group.finish();

    let dataset = HurricaneGenerator::new(HurricaneConfig {
        tracks: 64,
        seed: 2007,
        ..HurricaneConfig::default()
    })
    .generate();
    let mut engine: IncrementalClustering<2> = Traclus::new(config).stream();
    for tr in &dataset {
        engine.insert(tr);
    }
    let cell: SnapshotCell<2> = SnapshotCell::new(config);
    cell.publish_from(&engine);
    let mut group = c.benchmark_group("cluster/snapshot_load");
    group.bench_function("64", |b| b.iter(|| cell.load()));
    group.finish();
}

/// Filter-and-refine pruning: wall-clock with the lower-bound filter on
/// vs off, on the hurricane workload (tight ε — spread-out geometry where
/// the MBR tier bites) and the constant-density scaled scene.
///
/// Besides the two wall-clock arms per workload, each workload emits its
/// measured candidate-reduction ratio as a pseudo-bench line in permille
/// (`…/candidate_reduction_permille/<workload> median <N>ns/iter`, i.e.
/// `N` discarded per 1000 candidates — the `ns` suffix is only there so
/// the snapshot parser ingests the line). The clustering itself is
/// bit-identical across both arms, so the delta is pure filter economics:
/// bound evaluations saved minus bound evaluations wasted.
fn bench_prune(c: &mut Criterion) {
    let hurricane = {
        let tracks = HurricaneGenerator::new(HurricaneConfig {
            tracks: 64,
            seed: 2007,
            ..HurricaneConfig::default()
        })
        .generate();
        SegmentDatabase::from_trajectories(
            &tracks,
            &PartitionConfig::default(),
            SegmentDistance::default(),
        )
    };
    let scaled = scaled_database(1000, 5);
    // The spatial-index workloads measure the filter's overhead when the
    // grid/R-tree window has already discarded the far field (the filter
    // roughly pays for itself); the `_scan` workload runs the Linear
    // full-scan arm, where the bounds are the only thing standing between
    // every query and an O(n) kernel sweep — that's the headline win.
    for (db, label, eps, min_lns, index) in [
        (&hurricane, "hurricane64", 2.0, 3usize, IndexKind::default()),
        (&scaled, "scaled1000", 7.0, 6, IndexKind::default()),
        (&hurricane, "hurricane64_scan", 2.0, 3, IndexKind::Linear),
    ] {
        let mut group = c.benchmark_group(format!("cluster/prune/{label}"));
        group.sample_size(10);
        for (pruning, arm) in [(true, "on"), (false, "off")] {
            group.bench_with_input(BenchmarkId::from_parameter(arm), &pruning, |b, &pruning| {
                b.iter(|| {
                    LineSegmentClustering::new(
                        db,
                        ClusterConfig {
                            pruning,
                            index,
                            ..ClusterConfig::new(eps, min_lns)
                        },
                    )
                    .run()
                })
            });
        }
        group.finish();

        let (_, stats) = LineSegmentClustering::new(
            db,
            ClusterConfig {
                index,
                ..ClusterConfig::new(eps, min_lns)
            },
        )
        .run_with_stats();
        let p = stats.prune;
        let permille = (p.pruned_total() * 1000)
            .checked_div(p.candidates)
            .unwrap_or(0);
        println!(
            "bench: cluster/prune/candidate_reduction_permille/{label:<15} median {permille}ns/iter"
        );
    }
}

/// Parallel STR bulk load across thread counts (t = 1 is the sequential
/// sort/tile/pack recursion; larger t sort and pack on scoped workers).
/// The resulting tree is byte-identical at every t, so this is pure
/// wall-clock for the index (re)build — the term every full rebuild and
/// every sharded run pays before any clustering starts.
fn bench_bulk_load(c: &mut Criterion) {
    let tracks = HurricaneGenerator::new(HurricaneConfig {
        tracks: 64,
        seed: 2007,
        ..HurricaneConfig::default()
    })
    .generate();
    let db = SegmentDatabase::from_trajectories(
        &tracks,
        &PartitionConfig::default(),
        SegmentDistance::default(),
    );
    let entries: Vec<(u32, Aabb<2>)> = (0..db.len() as u32)
        .map(|id| (id, *db.bbox_of(id)))
        .collect();
    let mut group = c.benchmark_group("bulk_load/hurricane64");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    RTree::bulk_load_parallel(RTreeParams::default(), entries.clone(), threads)
                })
            },
        );
    }
    group.finish();
}

/// Work-aware shard packing on a density-skewed scene: half the segments
/// pile into a few dense corridors (each ε-query there touches many
/// candidates), the rest spread thin. Count-balanced packing would hand
/// the dense half to one straggling worker; the work-aware plan splits by
/// estimated query cost. The `plan` arm prices the planner itself; the
/// `t*` arms are end-to-end sharded runs on the skewed scene.
fn bench_shard_balance(c: &mut Criterion) {
    let mut trajectories: Vec<Trajectory<2>> = Vec::new();
    let mut id = 0u32;
    // Dense band: 48 corridors stacked within a couple of tiles.
    for i in 0..48 {
        trajectories.push(Trajectory::new(
            TrajectoryId(id),
            (0..20)
                .map(|k| traclus_geom::Point2::xy(k as f64 * 2.0, i as f64 * 0.05))
                .collect(),
        ));
        id += 1;
    }
    // Sparse field: 48 corridors fanned far apart.
    for i in 0..48 {
        trajectories.push(Trajectory::new(
            TrajectoryId(id),
            (0..20)
                .map(|k| traclus_geom::Point2::xy(k as f64 * 2.0, 50.0 + i as f64 * 9.0))
                .collect(),
        ));
        id += 1;
    }
    let db = SegmentDatabase::from_trajectories(
        &trajectories,
        &PartitionConfig::default(),
        SegmentDistance::default(),
    );
    let config = ClusterConfig::new(2.0, 4);
    let mut group = c.benchmark_group("shard_balance/skewed");
    group.sample_size(10);
    group.bench_function("plan", |b| b.iter(|| ShardPlan::new(&db, 4, config.eps)));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("t", threads), &threads, |b, &threads| {
            b.iter(|| LineSegmentClustering::new(&db, config).run_parallel(threads))
        });
    }
    group.finish();
}

/// Parallel repair re-expansion in the streaming engine: the hurricane
/// stream ingested with `rebuild_threshold = 0` (every insertion takes
/// the full re-cluster path, whose ε-query sweep is the heaviest repair
/// loop) under Sequential vs Threads(4) parallelism. Snapshots are
/// bit-identical across arms; the delta is the Amdahl term the parallel
/// repair removes.
fn bench_stream_repair_par(c: &mut Criterion) {
    let dataset = HurricaneGenerator::new(HurricaneConfig {
        tracks: 64,
        seed: 2007,
        ..HurricaneConfig::default()
    })
    .generate();
    let mut group = c.benchmark_group("stream_repair_par/hurricane64");
    group.sample_size(10);
    for threads in [1usize, 4] {
        let config = TraclusConfig {
            eps: 5.0,
            min_lns: 5,
            parallelism: if threads == 1 {
                Parallelism::Sequential
            } else {
                Parallelism::Threads(threads)
            },
            stream: StreamConfig {
                rebuild_threshold: 0.0,
                ..StreamConfig::default()
            },
            ..TraclusConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("t", threads), &dataset, |b, dataset| {
            b.iter(|| {
                let mut engine: IncrementalClustering<2> = Traclus::new(config).stream();
                for tr in dataset {
                    engine.insert(tr);
                }
                engine.snapshot()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cluster,
    bench_cluster_parallel,
    bench_bulk_load,
    bench_shard_balance,
    bench_stream_repair_par,
    bench_stream_insert,
    bench_sliding_window,
    bench_snapshot_publish,
    bench_prune
);
criterion_main!(benches);
