//! Lemma 3 micro-benchmark: line-segment clustering with and without a
//! spatial index (linear scan = the O(n²) arm; grid and R-tree = the
//! O(n log n) arm), plus the sharded parallel path across thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use traclus_bench::experiments::scaling::scaled_database;
use traclus_core::{
    ClusterConfig, IndexKind, LineSegmentClustering, PartitionConfig, SegmentDatabase,
};
use traclus_data::{HurricaneConfig, HurricaneGenerator};
use traclus_geom::SegmentDistance;

fn bench_cluster(c: &mut Criterion) {
    for (kind, label) in [
        (IndexKind::Linear, "linear"),
        (IndexKind::Grid, "grid"),
        (IndexKind::RTree, "rtree"),
    ] {
        let mut group = c.benchmark_group(format!("cluster/{label}"));
        group.sample_size(10);
        for n in [500usize, 1000, 2000] {
            let db = scaled_database(n, 5);
            group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
                b.iter(|| {
                    LineSegmentClustering::new(
                        db,
                        ClusterConfig {
                            index: kind,
                            ..ClusterConfig::new(7.0, 6)
                        },
                    )
                    .run()
                })
            });
        }
        group.finish();
    }
}

/// Sequential vs sharded-parallel grouping on the 32-trajectory hurricane
/// workload (t = 1 is the sequential Figure 12 loop; larger t take the
/// split/merge path). On a ≥ 4-core runner t = 4 should beat t = 1 by
/// ≥ 1.5×; outputs are identical by construction, so this measures pure
/// wall-clock.
fn bench_cluster_parallel(c: &mut Criterion) {
    let tracks = HurricaneGenerator::new(HurricaneConfig {
        tracks: 32,
        seed: 2007,
        ..HurricaneConfig::default()
    })
    .generate();
    let db = SegmentDatabase::from_trajectories(
        &tracks,
        &PartitionConfig::default(),
        SegmentDistance::default(),
    );
    let config = ClusterConfig::new(5.0, 5);
    let mut group = c.benchmark_group("cluster/parallel_hurricane32");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| LineSegmentClustering::new(&db, config).run_parallel(threads)),
        );
    }
    group.finish();

    // Same sweep on the constant-density scaled scene, a heavier load
    // where the per-seed neighborhood work dominates the merge overhead.
    let db = scaled_database(2000, 5);
    let config = ClusterConfig::new(7.0, 6);
    let mut group = c.benchmark_group("cluster/parallel_scaled2000");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| LineSegmentClustering::new(&db, config).run_parallel(threads)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cluster, bench_cluster_parallel);
criterion_main!(benches);
