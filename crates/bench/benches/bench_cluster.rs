//! Lemma 3 micro-benchmark: line-segment clustering with and without a
//! spatial index (linear scan = the O(n²) arm; grid and R-tree = the
//! O(n log n) arm).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use traclus_bench::experiments::scaling::scaled_database;
use traclus_core::{ClusterConfig, IndexKind, LineSegmentClustering};

fn bench_cluster(c: &mut Criterion) {
    for (kind, label) in [
        (IndexKind::Linear, "linear"),
        (IndexKind::Grid, "grid"),
        (IndexKind::RTree, "rtree"),
    ] {
        let mut group = c.benchmark_group(format!("cluster/{label}"));
        group.sample_size(10);
        for n in [500usize, 1000, 2000] {
            let db = scaled_database(n, 5);
            group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
                b.iter(|| {
                    LineSegmentClustering::new(
                        db,
                        ClusterConfig {
                            index: kind,
                            ..ClusterConfig::new(7.0, 6)
                        },
                    )
                    .run()
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
