//! Lemma 1 micro-benchmark: approximate MDL partitioning is O(n) in the
//! trajectory length; the exact DP optimum is polynomial and only viable
//! on short trajectories.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use traclus_core::{approximate_partition, optimal_partition, PartitionConfig};
use traclus_geom::Point2;

fn wavy(n: usize) -> Vec<Point2> {
    (0..n)
        .map(|i| {
            let x = i as f64 * 3.0;
            Point2::xy(x, 40.0 * (x * 0.02).sin() + 8.0 * (x * 0.11).sin())
        })
        .collect()
}

fn bench_partition(c: &mut Criterion) {
    let config = PartitionConfig::default();
    let mut group = c.benchmark_group("partition/approximate");
    for n in [512usize, 1024, 2048, 4096] {
        let points = wavy(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, pts| {
            b.iter(|| approximate_partition(black_box(&config), black_box(pts)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("partition/optimal_dp");
    group.sample_size(10);
    for n in [32usize, 64, 96] {
        let points = wavy(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, pts| {
            b.iter(|| optimal_partition(black_box(&config), black_box(pts), None))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
