//! Micro-benchmarks of the segment distance function (Definitions 1–3) —
//! the innermost kernel of both TRACLUS phases — against the naive
//! endpoint-sum distance of Appendix A.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traclus_geom::{endpoint_sum_distance, Segment2, SegmentDistance};

fn random_segments(n: usize, seed: u64) -> Vec<Segment2> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Segment2::xy(
                rng.gen_range(0.0..1000.0),
                rng.gen_range(0.0..1000.0),
                rng.gen_range(0.0..1000.0),
                rng.gen_range(0.0..1000.0),
            )
        })
        .collect()
}

fn bench_distance(c: &mut Criterion) {
    let segs = random_segments(1024, 7);
    let dist = SegmentDistance::default();
    let mut group = c.benchmark_group("distance");
    group.bench_function("composite_pairwise_32x32", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in (0..segs.len()).step_by(32) {
                for j in (0..segs.len()).step_by(32) {
                    acc += dist.distance(black_box(&segs[i]), black_box(&segs[j]));
                }
            }
            acc
        })
    });
    group.bench_function("endpoint_sum_pairwise_32x32", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in (0..segs.len()).step_by(32) {
                for j in (0..segs.len()).step_by(32) {
                    acc += endpoint_sum_distance(black_box(&segs[i]), black_box(&segs[j]));
                }
            }
            acc
        })
    });
    group.bench_function("components_single", |b| {
        b.iter(|| dist.components(black_box(&segs[0]), black_box(&segs[1])))
    });
    group.finish();
}

criterion_group!(benches, bench_distance);
criterion_main!(benches);
