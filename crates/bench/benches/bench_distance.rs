//! Micro-benchmarks of the segment distance function (Definitions 1–3) —
//! the innermost kernel of both TRACLUS phases — against the naive
//! endpoint-sum distance of Appendix A, plus the batched SoA kernel
//! (`distance_many`) against the scalar path on the identical workload.
//!
//! The ROADMAP target for the batched path is ≥2× on
//! `composite_pairwise_32x32` vs. the scalar arm.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traclus_geom::{endpoint_sum_distance, Segment2, SegmentDistance, SegmentSoa};

fn random_segments(n: usize, seed: u64) -> Vec<Segment2> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Segment2::xy(
                rng.gen_range(0.0..1000.0),
                rng.gen_range(0.0..1000.0),
                rng.gen_range(0.0..1000.0),
                rng.gen_range(0.0..1000.0),
            )
        })
        .collect()
}

fn bench_distance(c: &mut Criterion) {
    let segs = random_segments(1024, 7);
    let dist = SegmentDistance::default();
    let mut group = c.benchmark_group("distance");
    group.bench_function("composite_pairwise_32x32", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in (0..segs.len()).step_by(32) {
                for j in (0..segs.len()).step_by(32) {
                    acc += dist.distance(black_box(&segs[i]), black_box(&segs[j]));
                }
            }
            acc
        })
    });
    // The same 32×32 pair workload through the batched SoA kernel: one
    // hoisted query setup per row, cached geometry per candidate.
    let soa = SegmentSoa::from_segments(segs.iter());
    let ids: Vec<u32> = (0..segs.len() as u32).step_by(32).collect();
    let mut dists = vec![0.0f64; ids.len()];
    group.bench_function("composite_pairwise_32x32_batched", |b| {
        b.iter(|| {
            for &i in &ids {
                dist.distance_many_into(black_box(&soa), black_box(i), black_box(&ids), &mut dists);
                black_box(&dists);
            }
        })
    });
    group.bench_function("endpoint_sum_pairwise_32x32", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in (0..segs.len()).step_by(32) {
                for j in (0..segs.len()).step_by(32) {
                    acc += endpoint_sum_distance(black_box(&segs[i]), black_box(&segs[j]));
                }
            }
            acc
        })
    });
    group.bench_function("components_single", |b| {
        b.iter(|| dist.components(black_box(&segs[0]), black_box(&segs[1])))
    });
    group.finish();
}

criterion_group!(benches, bench_distance);
criterion_main!(benches);
