//! Baseline algorithm benchmarks: regression-mixture EM, trajectory
//! k-means, point DBSCAN and segment OPTICS — the comparative cost context
//! for TRACLUS.

use criterion::{criterion_group, criterion_main, Criterion};
use traclus_baselines::{
    dbscan_points, fit_regression_mixture, kmeans_trajectories, optics_segments, KMeansConfig,
    RegressionMixtureConfig,
};
use traclus_core::{partition_trajectories, IndexKind, PartitionConfig, SegmentDatabase};
use traclus_data::{generate_scene, SceneConfig};
use traclus_geom::{Point2, SegmentDistance};

fn bench_baselines(c: &mut Criterion) {
    let scene = generate_scene(&SceneConfig {
        per_backbone: 15,
        seed: 21,
        ..SceneConfig::default()
    });
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    group.bench_function("regression_mixture_k4", |b| {
        b.iter(|| {
            fit_regression_mixture(
                &scene.trajectories,
                &RegressionMixtureConfig {
                    components: 4,
                    max_iterations: 30,
                    ..RegressionMixtureConfig::default()
                },
            )
        })
    });
    group.bench_function("kmeans_k4", |b| {
        b.iter(|| {
            kmeans_trajectories(
                &scene.trajectories,
                &KMeansConfig {
                    k: 4,
                    ..KMeansConfig::default()
                },
            )
        })
    });
    let points: Vec<Point2> = scene
        .trajectories
        .iter()
        .flat_map(|t| t.points.iter().copied())
        .collect();
    group.bench_function("point_dbscan", |b| {
        b.iter(|| dbscan_points(&points, 5.0, 6))
    });
    let db = SegmentDatabase::from_segments(
        partition_trajectories(&PartitionConfig::default(), &scene.trajectories),
        SegmentDistance::default(),
    );
    let index = db.build_index(IndexKind::RTree, 7.0);
    group.bench_function("optics_segments", |b| {
        b.iter(|| optics_segments(&db, &index, 7.0, 6))
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
