//! Evaluation-harness benchmarks: the cost of scoring a clustering
//! (exact vs sampled silhouette) and of a full cross-algorithm sweep —
//! the numbers that decide how large a survey run can afford to be.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use traclus_core::{Parallelism, SegmentDatabase, Traclus, TraclusConfig};
use traclus_data::{generate_scene, SceneConfig};
use traclus_eval::{
    compute_metrics_sampled, evaluate_dataset, segment_silhouette_sampled, ClusteringResult,
    EvalConfig,
};

fn scene_outcome() -> (
    Vec<traclus_geom::Trajectory<2>>,
    traclus_core::TraclusOutcome<2>,
) {
    let scene = generate_scene(&SceneConfig {
        per_backbone: 12,
        noise_fraction: 0.2,
        seed: 5,
        ..SceneConfig::default()
    });
    let outcome = Traclus::new(TraclusConfig {
        eps: 7.0,
        min_lns: 5,
        parallelism: Parallelism::Sequential,
        ..TraclusConfig::default()
    })
    .run(&scene.trajectories);
    (scene.trajectories, outcome)
}

fn bench_eval(c: &mut Criterion) {
    let (trajectories, outcome) = scene_outcome();
    let db: &SegmentDatabase<2> = &outcome.database;
    let result = ClusteringResult::from_outcome("traclus", &outcome);

    let mut group = c.benchmark_group("eval");
    group.sample_size(10);

    // Silhouette cost vs sampling cap: the knob that keeps survey-scale
    // runs affordable (cap = usize::MAX is the exact O(n²) sweep).
    for cap in [16usize, 64, 256, usize::MAX] {
        let label = if cap == usize::MAX {
            "exact".to_string()
        } else {
            cap.to_string()
        };
        group.bench_with_input(
            BenchmarkId::new("silhouette_cap", label),
            &cap,
            |b, &cap| {
                b.iter(|| {
                    black_box(segment_silhouette_sampled(
                        black_box(db),
                        black_box(&result.labels),
                        cap,
                        17,
                    ))
                })
            },
        );
    }

    group.bench_function("all_metrics_cap256", |b| {
        b.iter(|| black_box(compute_metrics_sampled(db, &result, 256, 17)))
    });

    group.bench_function("full_sweep_7_entries", |b| {
        b.iter(|| {
            black_box(evaluate_dataset(
                "scene",
                black_box(&trajectories),
                &EvalConfig::single(7.0, 5),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
