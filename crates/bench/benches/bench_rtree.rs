//! R-tree substrate benchmarks: STR bulk load, incremental insertion, and
//! window queries vs the linear-scan reference.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traclus_geom::Aabb;
use traclus_index::{GridIndex, LinearScanIndex, RTree, RTreeParams, SpatialIndex};

fn random_boxes(n: usize, seed: u64) -> Vec<(u32, Aabb<2>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let x = rng.gen_range(0.0..1000.0);
            let y = rng.gen_range(0.0..1000.0);
            let w = rng.gen_range(0.5..10.0);
            let h = rng.gen_range(0.5..10.0);
            (i as u32, Aabb::new([x, y], [x + w, y + h]))
        })
        .collect()
}

fn bench_rtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree/bulk_load");
    for n in [1_000usize, 10_000] {
        let boxes = random_boxes(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &boxes, |b, boxes| {
            b.iter(|| RTree::bulk_load(RTreeParams::default(), boxes.iter().copied()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("rtree/insert");
    group.sample_size(20);
    let boxes = random_boxes(10_000, 3);
    group.bench_function("10k_sequential", |b| {
        b.iter(|| {
            let mut tree = RTree::new(RTreeParams::default());
            for (id, bb) in &boxes {
                tree.insert(*id, *bb);
            }
            tree
        })
    });
    group.finish();

    let boxes = random_boxes(20_000, 9);
    let rtree = RTree::bulk_load(RTreeParams::default(), boxes.iter().copied());
    let grid = GridIndex::build(25.0, boxes.iter().copied());
    let linear = LinearScanIndex::build(boxes.iter().copied());
    let windows: Vec<Aabb<2>> = random_boxes(100, 11)
        .into_iter()
        .map(|(_, b)| b.expanded(15.0))
        .collect();
    let mut group = c.benchmark_group("query/100_windows_on_20k");
    group.bench_function("rtree", |b| {
        b.iter(|| {
            let mut total = 0usize;
            let mut out = Vec::new();
            for w in &windows {
                out.clear();
                rtree.query_into(black_box(w), &mut out);
                total += out.len();
            }
            total
        })
    });
    group.bench_function("grid", |b| {
        b.iter(|| {
            let mut total = 0usize;
            let mut out = Vec::new();
            for w in &windows {
                out.clear();
                grid.query_into(black_box(w), &mut out);
                total += out.len();
            }
            total
        })
    });
    group.bench_function("linear", |b| {
        b.iter(|| {
            let mut total = 0usize;
            let mut out = Vec::new();
            for w in &windows {
                out.clear();
                linear.query_into(black_box(w), &mut out);
                total += out.len();
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rtree);
criterion_main!(benches);
