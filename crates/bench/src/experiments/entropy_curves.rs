//! Figures 16 and 19: the entropy-vs-ε curves driving ε selection.
//!
//! The paper scans ε = 1…60 on the hurricane data (minimum at ε = 31 with
//! avg|Nε| = 4.39) and on Elk1993 (minimum at ε = 25, avg|Nε| = 7.63).
//! Our synthetic stand-ins live on their own coordinate scales, so each
//! curve scans a range appropriate to its data; what must reproduce is the
//! *shape* — high entropy at both extremes, an interior minimum — and the
//! workflow: the chosen ε feeds `select_min_lns`.

use traclus_core::{select_min_lns, SegmentDatabase};

use crate::util::{
    elk_database, hurricane_database, parallel_entropy_curve, timed, ExperimentContext,
};

/// ε grid used for the hurricane curve (degrees; the paper scans 60 values
/// — its data sat on a coarser coordinate scale, ours on lat/lon degrees).
pub fn hurricane_eps_grid() -> Vec<f64> {
    (1..=60).map(|i| i as f64 * 0.25).collect()
}

/// ε grid used for the elk/deer curves (metres; the Starkey stand-in uses
/// a 10 km square, so the interesting range sits around tens…hundreds of
/// metres).
pub fn animal_eps_grid() -> Vec<f64> {
    (1..=60).map(|i| i as f64 * 5.0).collect()
}

fn run_curve(
    ctx: &ExperimentContext,
    name: &str,
    db: &SegmentDatabase<2>,
    grid: Vec<f64>,
) -> std::io::Result<()> {
    let (curve, secs) = timed(|| parallel_entropy_curve(db, &grid, false));
    let mut csv = ctx.csv(
        &format!("{name}.csv"),
        &["eps", "entropy", "avg_neighborhood"],
    )?;
    for p in &curve.points {
        csv.num_row(&[p.eps, p.entropy, p.avg_neighborhood])?;
    }
    let path = csv.finish()?;
    let min = curve.minimum().expect("non-empty curve");
    let min_lns = select_min_lns(min.avg_neighborhood);
    println!(
        "[{name}] {} segments, scan {secs:.1}s -> {}",
        db.len(),
        path.display()
    );
    println!(
        "[{name}] entropy minimum at eps = {:.2} (H = {:.4}); avg|Neps| = {:.2} -> MinLns in {:?}",
        min.eps, min.entropy, min.avg_neighborhood, min_lns
    );
    Ok(())
}

/// Figure 16 (hurricane).
pub fn fig16(ctx: &ExperimentContext) -> std::io::Result<()> {
    let (_, db) = hurricane_database(1950);
    run_curve(ctx, "fig16_entropy_hurricane", &db, hurricane_eps_grid())
}

/// Figure 19 (Elk1993).
pub fn fig19(ctx: &ExperimentContext) -> std::io::Result<()> {
    let (_, db) = elk_database(1993);
    run_curve(ctx, "fig19_entropy_elk1993", &db, animal_eps_grid())
}

/// Shared helper: the entropy-optimal (ε, avg|Nε|) for a database.
pub fn optimal_params(db: &SegmentDatabase<2>, grid: Vec<f64>) -> (f64, f64) {
    let curve = parallel_entropy_curve(db, &grid, false);
    let min = curve.minimum().expect("non-empty curve");
    (min.eps, min.avg_neighborhood)
}

/// Memoised hurricane-optimum (several experiments need it; the scan is
/// the expensive part and the dataset is deterministic per seed 1950).
pub fn hurricane_optimal_cached() -> (f64, f64) {
    static CACHE: std::sync::OnceLock<(f64, f64)> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        let (_, db) = hurricane_database(1950);
        optimal_params(&db, hurricane_eps_grid())
    })
}

/// Memoised Elk1993 optimum.
pub fn elk_optimal_cached() -> (f64, f64) {
    static CACHE: std::sync::OnceLock<(f64, f64)> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        let (_, db) = elk_database(1993);
        optimal_params(&db, animal_eps_grid())
    })
}
