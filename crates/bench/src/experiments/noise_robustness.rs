//! Figure 23 / Section 5.5: robustness to noise.
//!
//! The paper generates a synthetic set where "25 % of trajectories are
//! generated as noises" and observes "the clusters are correctly identified
//! despite many noises". With a labelled scene we can quantify that:
//!
//! * every planted corridor is recovered as (at least) one cluster whose
//!   representative hugs the backbone;
//! * segments from ground-truth noise trajectories are overwhelmingly
//!   labelled noise;
//! * the result barely changes between the 0 % and 25 % noise variants.

use traclus_core::{SegmentLabel, Traclus, TraclusConfig};
use traclus_data::{generate_scene, SceneConfig, TruthLabel};
use traclus_viz::render_clustering;

use crate::util::ExperimentContext;

/// Per-scene recovery metrics.
struct Recovery {
    clusters: usize,
    corridor_clustered_fraction: f64,
    noise_rejected_fraction: f64,
}

fn evaluate(
    noise_fraction: f64,
    seed: u64,
) -> (
    Recovery,
    traclus_data::Scene,
    traclus_core::TraclusOutcome<2>,
) {
    let scene = generate_scene(&SceneConfig {
        noise_fraction,
        seed,
        ..SceneConfig::default()
    });
    let outcome = Traclus::new(TraclusConfig {
        eps: 7.0,
        min_lns: 6,
        ..TraclusConfig::default()
    })
    .run(&scene.trajectories);
    // Segment-level truth from trajectory provenance.
    let mut corridor_segments = 0usize;
    let mut corridor_clustered = 0usize;
    let mut noise_segments = 0usize;
    let mut noise_rejected = 0usize;
    for (i, seg) in outcome.database.segments().iter().enumerate() {
        let truth = scene.truth[seg.trajectory.0 as usize];
        let label = outcome.clustering.labels[i];
        match truth {
            TruthLabel::Corridor(_) => {
                corridor_segments += 1;
                if matches!(label, SegmentLabel::Cluster(_)) {
                    corridor_clustered += 1;
                }
            }
            TruthLabel::Noise => {
                noise_segments += 1;
                if matches!(label, SegmentLabel::Noise) {
                    noise_rejected += 1;
                }
            }
        }
    }
    let recovery = Recovery {
        clusters: outcome.clusters.len(),
        corridor_clustered_fraction: corridor_clustered as f64 / corridor_segments.max(1) as f64,
        noise_rejected_fraction: if noise_segments == 0 {
            1.0 // vacuously: nothing to reject
        } else {
            noise_rejected as f64 / noise_segments as f64
        },
    };
    (recovery, scene, outcome)
}

/// Runs the Figure 23 experiment.
pub fn fig23(ctx: &ExperimentContext) -> std::io::Result<()> {
    let mut csv = ctx.csv(
        "fig23_noise_robustness.csv",
        &[
            "noise_fraction",
            "clusters",
            "corridor_clustered_fraction",
            "noise_rejected_fraction",
        ],
    )?;
    let backbones = traclus_data::default_backbones().len();
    println!(
        "[fig23] {backbones} planted corridors; paper: clusters correctly identified at 25% noise"
    );
    for &noise in &[0.0, 0.25, 0.4] {
        let (recovery, scene, outcome) = evaluate(noise, 23);
        csv.num_row(&[
            noise,
            recovery.clusters as f64,
            recovery.corridor_clustered_fraction,
            recovery.noise_rejected_fraction,
        ])?;
        println!(
            "[fig23] noise {:>4.0}%: {} clusters, corridor segments clustered {:.1}%, noise segments rejected {:.1}%",
            noise * 100.0,
            recovery.clusters,
            recovery.corridor_clustered_fraction * 100.0,
            recovery.noise_rejected_fraction * 100.0
        );
        if (noise - 0.25).abs() < 1e-9 {
            let svg = render_clustering(&scene.trajectories, &outcome, 800.0, 800.0);
            let path = ctx.write_text("fig23_noise25.svg", &svg)?;
            println!("[fig23] rendered {}", path.display());
        }
    }
    let path = csv.finish()?;
    println!("[fig23] -> {}", path.display());
    Ok(())
}
