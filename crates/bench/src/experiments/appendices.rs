//! Appendices A–D of the paper, each as a small quantitative experiment.

use traclus_baselines::{optics_points, optics_segments};
use traclus_core::{
    approximate_partition, ClusterConfig, IndexKind, LineSegmentClustering, MdlCost,
    PartitionConfig, SegmentDatabase,
};
use traclus_geom::{
    endpoint_sum_distance, DistanceWeights, IdentifiedSegment, Point2, Segment, Segment2,
    SegmentDistance, SegmentId, TrajectoryId,
};

use crate::experiments::entropy_curves::{hurricane_eps_grid, optimal_params};
use crate::util::{
    hurricane_database, partition_with_precision, ExperimentContext, HURRICANE_MDL_PRECISION,
};

/// Appendix A / Figure 24: the endpoint-sum distance cannot discriminate
/// segments the composite distance separates.
pub fn appendix_a(ctx: &ExperimentContext) -> std::io::Result<()> {
    let dist = SegmentDistance::default();
    let l1 = Segment2::xy(0.0, 0.0, 200.0, 0.0);
    // The paper's printed coordinates.
    let l2 = Segment2::xy(100.0, 100.0, 300.0, 100.0);
    let l3_paper = Segment2::xy(100.0, 100.0, 200.0, 200.0);
    // An exact endpoint-sum tie (each endpoint 100√2 from its counterpart).
    let l3_tie = Segment2::xy(100.0, 100.0, 200.0, 100.0 * 2.0f64.sqrt());
    let mut csv = ctx.csv(
        "appendix_a_distance_comparison.csv",
        &[
            "pair",
            "endpoint_sum",
            "composite",
            "perpendicular",
            "parallel",
            "angle",
        ],
    )?;
    println!("[appendix_a] endpoint-sum vs composite distance (Figure 24)");
    for (name, other) in [
        ("L1-L2", &l2),
        ("L1-L3_paper", &l3_paper),
        ("L1-L3_tie", &l3_tie),
    ] {
        let naive = endpoint_sum_distance(&l1, other);
        let c = dist.components(&l1, other);
        let composite = dist.distance(&l1, other);
        csv.row(&[
            name.to_string(),
            format!("{naive}"),
            format!("{composite}"),
            format!("{}", c.perpendicular),
            format!("{}", c.parallel),
            format!("{}", c.angle),
        ])?;
        println!(
            "[appendix_a] {name}: endpoint-sum {naive:.1}, composite {composite:.1} (dθ = {:.1})",
            c.angle
        );
    }
    let tie_gap = (endpoint_sum_distance(&l1, &l2) - endpoint_sum_distance(&l1, &l3_tie)).abs();
    let comp_gap = (dist.distance(&l1, &l2) - dist.distance(&l1, &l3_tie)).abs();
    println!(
        "[appendix_a] naive gap on the tie pair = {tie_gap:.3} (cannot discriminate); composite gap = {comp_gap:.1}"
    );
    let path = csv.finish()?;
    println!("[appendix_a] -> {}", path.display());
    Ok(())
}

/// Appendix B: clustering under different distance-component weights.
pub fn appendix_b(ctx: &ExperimentContext) -> std::io::Result<()> {
    let (trajectories, _) = hurricane_database(1950);
    let base_partition = partition_with_precision(HURRICANE_MDL_PRECISION);
    let mut csv = ctx.csv(
        "appendix_b_weights.csv",
        &[
            "w_perp",
            "w_par",
            "w_angle",
            "eps",
            "clusters",
            "noise_ratio",
            "mean_cluster_size",
        ],
    )?;
    println!("[appendix_b] weight sensitivity on the hurricane stand-in");
    for (wp, wl, wa) in [
        (1.0, 1.0, 1.0),
        (2.0, 1.0, 1.0),
        (1.0, 2.0, 1.0),
        (1.0, 1.0, 2.0),
    ] {
        let distance = SegmentDistance::new(
            DistanceWeights::new(wp, wl, wa),
            traclus_geom::AngleMode::Directed,
        );
        let db = SegmentDatabase::from_trajectories(&trajectories, &base_partition, distance);
        // Re-estimate ε per weighting — weights rescale the distance, so a
        // fixed ε would not compare like with like.
        let (eps, avg) = optimal_params(&db, hurricane_eps_grid());
        let min_lns = *traclus_core::select_min_lns(avg).start() + 1;
        let clustering = LineSegmentClustering::new(
            &db,
            ClusterConfig {
                index: IndexKind::RTree,
                ..ClusterConfig::new(eps, min_lns)
            },
        )
        .run();
        csv.num_row(&[
            wp,
            wl,
            wa,
            eps,
            clustering.clusters.len() as f64,
            clustering.noise_ratio(),
            clustering.mean_cluster_size(),
        ])?;
        println!(
            "[appendix_b] w = ({wp},{wl},{wa}): eps {eps:.2}, {} clusters, noise {:.1}%",
            clustering.clusters.len(),
            clustering.noise_ratio() * 100.0
        );
    }
    let path = csv.finish()?;
    println!("[appendix_b] -> {}", path.display());
    Ok(())
}

/// Appendix C: the length-based `L(H)` is shift invariant; an
/// endpoint-coordinate encoding is not.
pub fn appendix_c(ctx: &ExperimentContext) -> std::io::Result<()> {
    let config = PartitionConfig::default();
    // The appendix's TR1 and TR3 = TR1 + (10000, 10000), extended with a
    // few more vertices so partitioning has actual choices to make.
    let base: Vec<Point2> = vec![
        Point2::xy(100.0, 100.0),
        Point2::xy(150.0, 155.0),
        Point2::xy(200.0, 200.0),
        Point2::xy(250.0, 160.0),
        Point2::xy(300.0, 100.0),
        Point2::xy(360.0, 95.0),
        Point2::xy(420.0, 110.0),
    ];
    let shifted: Vec<Point2> = base
        .iter()
        .map(|p| Point2::xy(p.x() + 10_000.0, p.y() + 10_000.0))
        .collect();
    let p_base = approximate_partition(&config, &base);
    let p_shifted = approximate_partition(&config, &shifted);
    // The broken alternative: encode the hypothesis by its endpoint
    // coordinate magnitudes (what Appendix C warns against). Implemented
    // inline since the library deliberately does not ship it.
    let endpoint_lh = |points: &[Point2], i: usize, j: usize| -> f64 {
        let cost = MdlCost::default();
        points[i]
            .coords
            .iter()
            .chain(points[j].coords.iter())
            .map(|c| cost.bits(c.abs()))
            .sum()
    };
    let lh_base = endpoint_lh(&base, 0, base.len() - 1);
    let lh_shifted = endpoint_lh(&shifted, 0, shifted.len() - 1);
    let mut csv = ctx.csv(
        "appendix_c_shift_invariance.csv",
        &["variant", "characteristic_points", "endpoint_lh_bits"],
    )?;
    csv.row(&[
        "base".into(),
        format!("{:?}", p_base.characteristic_points).replace(',', ";"),
        format!("{lh_base}"),
    ])?;
    csv.row(&[
        "shifted_+10000".into(),
        format!("{:?}", p_shifted.characteristic_points).replace(',', ";"),
        format!("{lh_shifted}"),
    ])?;
    let path = csv.finish()?;
    println!(
        "[appendix_c] length-based L(H): characteristic points {:?} vs {:?} (identical: {})",
        p_base.characteristic_points,
        p_shifted.characteristic_points,
        p_base.characteristic_points == p_shifted.characteristic_points
    );
    println!(
        "[appendix_c] endpoint-coordinate encoding would pay {lh_base:.1} bits vs {lh_shifted:.1} bits for the same geometry -> shift-dependent"
    );
    println!("[appendix_c] -> {}", path.display());
    assert_eq!(
        p_base.characteristic_points, p_shifted.characteristic_points,
        "length-based L(H) must be shift invariant"
    );
    Ok(())
}

/// Appendix D / Figure 25: OPTICS reachability for points vs segments.
pub fn appendix_d(ctx: &ExperimentContext) -> std::io::Result<()> {
    let eps = 5.0;
    let min_pts = 5;
    // A corridor of long overlapping segments (matched cross-track spacing
    // for the point arm), plus an offset second bundle.
    let mut segs: Vec<Segment2> = Vec::new();
    for i in 0..40 {
        let y = (i % 20) as f64 * 0.6 + if i >= 20 { 60.0 } else { 0.0 };
        let x0 = (i % 5) as f64 * 7.0;
        segs.push(Segment2::xy(x0, y, x0 + 35.0 + (i % 3) as f64 * 12.0, y));
    }
    let identified: Vec<IdentifiedSegment<2>> = segs
        .iter()
        .enumerate()
        .map(|(k, s)| IdentifiedSegment::new(SegmentId(k as u32), TrajectoryId(k as u32), *s))
        .collect();
    let db = SegmentDatabase::from_segments(identified, SegmentDistance::default());
    let index = db.build_index(IndexKind::Linear, eps);
    let seg_optics = optics_segments(&db, &index, eps, min_pts);
    let points: Vec<Point2> = segs.iter().map(|s| Point2::xy(0.0, s.start.y())).collect();
    let pt_optics = optics_points(&points, eps, min_pts);
    let mut csv = ctx.csv(
        "appendix_d_reachability.csv",
        &["kind", "order", "reachability", "core_distance"],
    )?;
    for (kind, result) in [("segments", &seg_optics), ("points", &pt_optics)] {
        for (order, e) in result.ordering.iter().enumerate() {
            csv.row(&[
                kind.to_string(),
                order.to_string(),
                format!("{}", e.reachability),
                format!("{}", e.core_distance),
            ])?;
        }
    }
    let path = csv.finish()?;
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let seg_mean = mean(&seg_optics.finite_reachabilities());
    let pt_mean = mean(&pt_optics.finite_reachabilities());
    println!(
        "[appendix_d] mean reachability: segments {seg_mean:.2} vs points {pt_mean:.2} (paper: segments sit closer to eps = {eps})"
    );
    println!(
        "[appendix_d] reachability / eps: segments {:.2}, points {:.2} -> {}",
        seg_mean / eps,
        pt_mean / eps,
        path.display()
    );
    Ok(())
}

#[allow(dead_code)]
fn unused_segment_alias(_: Segment<2>) {}
