//! Section 3.3: precision of the approximate partitioning.
//!
//! "Our experience indicates that the precision is about 80 % on average,
//! which means that 80 % of the approximate solutions appear also in the
//! exact solutions." We measure exactly that: run the O(n) greedy scan and
//! the exact DP optimum over a corpus of trajectories and report the mean
//! fraction of approximate characteristic points present in the exact set.

use traclus_core::{approximate_partition, optimal_partition, partition_precision};
use traclus_data::{AnimalGenerator, HurricaneGenerator};
use traclus_geom::Trajectory;

use crate::util::ExperimentContext;

/// Caps trajectory length fed to the cubic DP.
const MAX_DP_POINTS: usize = 120;

fn corpus() -> Vec<(String, Vec<Trajectory<2>>)> {
    let hurricanes = HurricaneGenerator::paper_scale(77);
    // Elk trajectories are ~1 400 points; slice windows for the DP.
    let elk: Vec<Trajectory<2>> = AnimalGenerator::elk1993(77)
        .into_iter()
        .flat_map(|t| {
            t.points
                .chunks(MAX_DP_POINTS)
                .enumerate()
                .map(|(k, chunk)| {
                    Trajectory::new(
                        traclus_geom::TrajectoryId(t.id.0 * 100 + k as u32),
                        chunk.to_vec(),
                    )
                })
                .collect::<Vec<_>>()
        })
        .take(120)
        .collect();
    vec![
        (
            "hurricane".to_string(),
            hurricanes.into_iter().take(200).collect(),
        ),
        ("elk_windows".to_string(), elk),
    ]
}

/// Runs the precision measurement.
pub fn prec80(ctx: &ExperimentContext) -> std::io::Result<()> {
    let mut csv = ctx.csv(
        "prec80_partition_precision.csv",
        &[
            "dataset",
            "trajectories",
            "mean_precision",
            "mean_approx_cps",
            "mean_exact_cps",
        ],
    )?;
    println!("[prec80] paper: precision is about 80% on average");
    for (name, trajectories) in corpus() {
        let config = if name.starts_with("hurricane") {
            crate::util::partition_with_precision(crate::util::HURRICANE_MDL_PRECISION)
        } else {
            crate::util::partition_with_precision(crate::util::ANIMAL_MDL_PRECISION)
        };
        let mut precisions = Vec::new();
        let mut approx_cps = 0usize;
        let mut exact_cps = 0usize;
        let mut counted = 0usize;
        for t in &trajectories {
            if t.points.len() < 5 || t.points.len() > MAX_DP_POINTS {
                continue;
            }
            let approx = approximate_partition(&config, &t.points);
            let exact = optimal_partition(&config, &t.points, None);
            if let Some(p) = partition_precision(&approx, &exact) {
                precisions.push(p);
                approx_cps += approx.characteristic_points.len();
                exact_cps += exact.characteristic_points.len();
                counted += 1;
            }
        }
        let mean = precisions.iter().sum::<f64>() / precisions.len().max(1) as f64;
        csv.row(&[
            name.clone(),
            counted.to_string(),
            format!("{mean}"),
            format!("{}", approx_cps as f64 / counted.max(1) as f64),
            format!("{}", exact_cps as f64 / counted.max(1) as f64),
        ])?;
        println!(
            "[prec80] {name}: mean precision {:.1}% over {counted} trajectories",
            mean * 100.0
        );
    }
    let path = csv.finish()?;
    println!("[prec80] -> {}", path.display());
    Ok(())
}
