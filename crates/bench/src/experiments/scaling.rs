//! Lemmas 1 and 3: asymptotic behaviour measurements.
//!
//! * Lemma 1: approximate partitioning is O(n) in the trajectory length —
//!   doubling n should roughly double the time.
//! * Lemma 3: clustering is O(n²) without an index and O(n log n) with one
//!   — the linear-scan arm's time ratio per doubling approaches 4×, the
//!   indexed arms' stay near 2×.

use traclus_core::{
    approximate_partition, ClusterConfig, IndexKind, LineSegmentClustering, PartitionConfig,
    SegmentDatabase,
};
use traclus_data::{generate_scene, SceneConfig};
use traclus_geom::{Point2, SegmentDistance, Trajectory, TrajectoryId};

use crate::util::{timed, ExperimentContext};

/// A long wavy trajectory of `n` points (never collinear, so the
/// partitioner does real work).
fn wavy_trajectory(n: usize) -> Vec<Point2> {
    (0..n)
        .map(|i| {
            let x = i as f64 * 3.0;
            let y = 40.0 * (x * 0.02).sin() + 8.0 * (x * 0.11).sin();
            Point2::xy(x, y)
        })
        .collect()
}

/// Lemma 1 runner.
pub fn lemma1(ctx: &ExperimentContext) -> std::io::Result<()> {
    let config = PartitionConfig::default();
    let mut csv = ctx.csv(
        "lemma1_partition_scaling.csv",
        &["points", "seconds", "ratio_vs_previous"],
    )?;
    println!("[lemma1] partitioning time vs trajectory length (expect ~2x per doubling)");
    let mut prev: Option<f64> = None;
    for &n in &[2_000usize, 4_000, 8_000, 16_000, 32_000, 64_000] {
        let points = wavy_trajectory(n);
        // Repeat to stabilise timing on small inputs.
        let reps = (64_000 / n).max(1);
        let (_, secs) = timed(|| {
            for _ in 0..reps {
                std::hint::black_box(approximate_partition(&config, &points));
            }
        });
        let per_run = secs / reps as f64;
        let ratio = prev.map(|p| per_run / p).unwrap_or(f64::NAN);
        csv.num_row(&[n as f64, per_run, ratio])?;
        println!("[lemma1] n = {n:>6}: {per_run:.4}s (x{ratio:.2} vs previous)");
        prev = Some(per_run);
    }
    let path = csv.finish()?;
    println!("[lemma1] -> {}", path.display());
    Ok(())
}

/// Builds a segment database of roughly `target_segments` segments at
/// **constant density**: the base scene is tiled over a growing k×k grid,
/// so doubling the segment count doubles the covered area rather than the
/// local crowding. (If density grew with n, every ε-neighborhood would
/// hold O(n) segments and even a perfect index would pay O(n) refinement
/// per query — masking the O(n log n) vs O(n²) contrast Lemma 3 states.)
pub fn scaled_database(target_segments: usize, seed: u64) -> SegmentDatabase<2> {
    let base_scene = generate_scene(&SceneConfig {
        per_backbone: 15,
        noise_fraction: 0.2,
        seed,
        ..SceneConfig::default()
    });
    let base_segments =
        traclus_core::partition_trajectories(&PartitionConfig::default(), &base_scene.trajectories);
    let per_tile = base_segments.len().max(1);
    let tiles_needed = target_segments.div_ceil(per_tile);
    let grid_side = (tiles_needed as f64).sqrt().ceil() as usize;
    let extent = 450.0; // base scene extent + margin
    let mut segments = Vec::with_capacity(target_segments);
    'fill: for ty in 0..grid_side {
        for tx in 0..grid_side {
            let shift = traclus_geom::Vector2::xy(tx as f64 * extent, ty as f64 * extent);
            for s in &base_segments {
                if segments.len() >= target_segments {
                    break 'fill;
                }
                segments.push(traclus_geom::IdentifiedSegment {
                    id: traclus_geom::SegmentId(segments.len() as u32),
                    trajectory: traclus_geom::TrajectoryId(
                        s.trajectory.0 + (ty * grid_side + tx) as u32 * 10_000,
                    ),
                    segment: s.segment.translated(&shift),
                    weight: s.weight,
                });
            }
        }
    }
    SegmentDatabase::from_segments(segments, SegmentDistance::default())
}

/// Lemma 3 runner.
pub fn lemma3(ctx: &ExperimentContext) -> std::io::Result<()> {
    let mut csv = ctx.csv(
        "lemma3_cluster_scaling.csv",
        &["segments", "index", "seconds", "ratio_vs_previous"],
    )?;
    println!("[lemma3] clustering time vs segment count per index (linear expect ~4x per doubling, indexed ~2x)");
    for (kind, label) in [
        (IndexKind::Linear, "linear"),
        (IndexKind::Grid, "grid"),
        (IndexKind::RTree, "rtree"),
    ] {
        let mut prev: Option<f64> = None;
        for &n in &[1_000usize, 2_000, 4_000, 8_000] {
            let db = scaled_database(n, 5);
            let (clustering, secs) = timed(|| {
                LineSegmentClustering::new(
                    &db,
                    ClusterConfig {
                        index: kind,
                        ..ClusterConfig::new(7.0, 6)
                    },
                )
                .run()
            });
            std::hint::black_box(clustering.clusters.len());
            let ratio = prev.map(|p| secs / p).unwrap_or(f64::NAN);
            csv.row(&[
                n.to_string(),
                label.to_string(),
                format!("{secs}"),
                format!("{ratio}"),
            ])?;
            println!("[lemma3] {label:>6} n = {n:>5}: {secs:.3}s (x{ratio:.2})");
            prev = Some(secs);
        }
    }
    let path = csv.finish()?;
    println!("[lemma3] -> {}", path.display());
    Ok(())
}

/// Helper used by tests to build a long trajectory quickly.
pub fn wavy(n: usize) -> Trajectory<2> {
    Trajectory::new(TrajectoryId(0), wavy_trajectory(n))
}
