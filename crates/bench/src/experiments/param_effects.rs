//! Section 5.4: effects of parameter values.
//!
//! Paper (hurricane data, MinLns fixed): "when ε = 25, nine clusters are
//! discovered, and each cluster contains 38 line segments on average; in
//! contrast, when ε = 35, three clusters are discovered, and each cluster
//! contains 174 line segments on average" — smaller ε (or larger MinLns)
//! ⇒ more, smaller clusters; larger ε (or smaller MinLns) ⇒ fewer, larger
//! clusters. We sweep the same ±17 % band around the entropy-optimal ε and
//! additionally sweep MinLns at fixed ε to confirm the mirrored trend.

use traclus_core::{select_min_lns, ClusterConfig, IndexKind, LineSegmentClustering};

use crate::experiments::entropy_curves::hurricane_optimal_cached;
use crate::util::{hurricane_database, ExperimentContext};

/// Runs the Section 5.4 sweeps on the hurricane stand-in.
pub fn sec54(ctx: &ExperimentContext) -> std::io::Result<()> {
    let (_, db) = hurricane_database(1950);
    let (eps_opt, avg) = hurricane_optimal_cached();
    let min_lns = *select_min_lns(avg).start() + 1; // the heuristic's middle value

    // ε sweep at fixed MinLns — the paper's 25/30/35 pattern, scaled.
    let mut csv = ctx.csv(
        "sec54_param_effects.csv",
        &[
            "eps",
            "min_lns",
            "clusters",
            "mean_cluster_size",
            "noise_ratio",
        ],
    )?;
    println!("[sec54] hurricane stand-in, entropy-optimal eps = {eps_opt:.2}, MinLns = {min_lns}");
    println!("[sec54] paper reference: eps 25 -> 9 clusters (avg 38); eps 30 -> 7; eps 35 -> 3 (avg 174)");
    let mut rows: Vec<(f64, usize, usize, f64)> = Vec::new();
    for factor in [25.0 / 30.0, 1.0, 35.0 / 30.0] {
        let eps = eps_opt * factor;
        let clustering = LineSegmentClustering::new(
            &db,
            ClusterConfig {
                index: IndexKind::RTree,
                ..ClusterConfig::new(eps, min_lns)
            },
        )
        .run();
        let clusters = clustering.clusters.len();
        let mean = clustering.mean_cluster_size();
        csv.num_row(&[
            eps,
            min_lns as f64,
            clusters as f64,
            mean,
            clustering.noise_ratio(),
        ])?;
        println!(
            "[sec54] eps = {eps:.2}: {clusters} clusters, mean size {mean:.1}, noise {:.1}%",
            clustering.noise_ratio() * 100.0
        );
        rows.push((eps, min_lns, clusters, mean));
    }
    // MinLns sweep at fixed ε: larger MinLns ⇒ more/smaller clusters trend.
    for delta in [-2i64, 0, 2] {
        let m = (min_lns as i64 + delta).max(2) as usize;
        let clustering = LineSegmentClustering::new(
            &db,
            ClusterConfig {
                index: IndexKind::RTree,
                ..ClusterConfig::new(eps_opt, m)
            },
        )
        .run();
        csv.num_row(&[
            eps_opt,
            m as f64,
            clustering.clusters.len() as f64,
            clustering.mean_cluster_size(),
            clustering.noise_ratio(),
        ])?;
        println!(
            "[sec54] MinLns = {m}: {} clusters, mean size {:.1}",
            clustering.clusters.len(),
            clustering.mean_cluster_size()
        );
    }
    let path = csv.finish()?;
    // The headline shape check: small ε yields at least as many clusters as
    // large ε, with smaller mean size.
    let (small, large) = (&rows[0], &rows[2]);
    println!(
        "[sec54] shape check: clusters {} >= {} ? {}; mean size {:.1} <= {:.1} ? {} -> {}",
        small.2,
        large.2,
        small.2 >= large.2,
        small.3,
        large.3,
        small.3 <= large.3,
        path.display()
    );
    Ok(())
}
