//! One module per reproduced experiment; the registry maps experiment ids
//! (as used on the `experiments` CLI and in DESIGN.md §3) to runners.

pub mod appendices;
pub mod clustering_figures;
pub mod entropy_curves;
pub mod noise_robustness;
pub mod param_effects;
pub mod partition_precision;
pub mod quality_sweeps;
pub mod scaling;
pub mod suppression;
pub mod whole_trajectory;

use crate::util::ExperimentContext;

/// A registered experiment.
pub struct Experiment {
    /// CLI id (e.g. `fig16`).
    pub id: &'static str,
    /// What it reproduces.
    pub description: &'static str,
    /// Runner; writes artifacts into the context and prints a summary.
    pub run: fn(&ExperimentContext) -> std::io::Result<()>,
}

/// All experiments, in the order of DESIGN.md §3.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig16",
            description: "Figure 16: entropy vs eps, hurricane data",
            run: entropy_curves::fig16,
        },
        Experiment {
            id: "fig17",
            description: "Figure 17: QMeasure vs eps (MinLns sweep), hurricane data",
            run: quality_sweeps::fig17,
        },
        Experiment {
            id: "fig18",
            description: "Figure 18: clustering result, hurricane data (paper: 7 clusters)",
            run: clustering_figures::fig18,
        },
        Experiment {
            id: "fig19",
            description: "Figure 19: entropy vs eps, Elk1993",
            run: entropy_curves::fig19,
        },
        Experiment {
            id: "fig20",
            description: "Figure 20: QMeasure vs eps (MinLns sweep), Elk1993",
            run: quality_sweeps::fig20,
        },
        Experiment {
            id: "fig21",
            description: "Figure 21: clustering result, Elk1993 (paper: 13 clusters)",
            run: clustering_figures::fig21,
        },
        Experiment {
            id: "fig22",
            description: "Figure 22: clustering result, Deer1995 (paper: 2 clusters)",
            run: clustering_figures::fig22,
        },
        Experiment {
            id: "sec54",
            description: "Section 5.4: effects of parameter values (eps sweep, cluster count/size)",
            run: param_effects::sec54,
        },
        Experiment {
            id: "fig23",
            description: "Figure 23: robustness to noise (25% noise trajectories)",
            run: noise_robustness::fig23,
        },
        Experiment {
            id: "prec80",
            description: "Section 3.3: approximate-vs-exact partitioning precision (~80%)",
            run: partition_precision::prec80,
        },
        Experiment {
            id: "lemma1",
            description: "Lemma 1: O(n) partitioning scaling",
            run: scaling::lemma1,
        },
        Experiment {
            id: "lemma3",
            description: "Lemma 3: clustering O(n log n) with index vs O(n^2) without",
            run: scaling::lemma3,
        },
        Experiment {
            id: "appendix_a",
            description: "Appendix A / Figure 24: composite vs endpoint-sum distance",
            run: appendices::appendix_a,
        },
        Experiment {
            id: "appendix_b",
            description: "Appendix B: effect of distance-component weights",
            run: appendices::appendix_b,
        },
        Experiment {
            id: "appendix_c",
            description: "Appendix C: shift invariance of the length-based L(H)",
            run: appendices::appendix_c,
        },
        Experiment {
            id: "appendix_d",
            description: "Appendix D / Figure 25: OPTICS reachability, points vs segments",
            run: appendices::appendix_d,
        },
        Experiment {
            id: "sec413",
            description:
                "Section 4.1.3: partitioning suppression lengthens segments, improves quality",
            run: suppression::sec413,
        },
        Experiment {
            id: "gaffney",
            description:
                "Figure 1 motivation: regression-mixture EM misses common sub-trajectories",
            run: whole_trajectory::gaffney,
        },
    ]
}
