//! Figures 18, 21, 22: the headline clustering results.
//!
//! Paper outcomes: 7 hurricane clusters (two horizontal regimes + verticals
//! after recurvature), 13 elk clusters in "most of the dense regions", and
//! exactly 2 deer clusters. Each runner estimates (ε, MinLns) with the
//! Section 4.4 heuristic, clusters, reports cluster statistics, and renders
//! the paper-style SVG (thin green trajectories, thick red representative
//! trajectories).

use traclus_core::{select_min_lns, PartitionConfig, SegmentDatabase, Traclus, TraclusConfig};
use traclus_geom::Trajectory;
use traclus_viz::render_clustering;

use crate::experiments::entropy_curves::{
    animal_eps_grid, elk_optimal_cached, hurricane_optimal_cached, optimal_params,
};
use crate::util::{
    deer_database, elk_database, hurricane_database, partition_with_precision, timed,
    ExperimentContext, ANIMAL_MDL_PRECISION, HURRICANE_MDL_PRECISION,
};

fn run_figure(
    ctx: &ExperimentContext,
    name: &str,
    trajectories: &[Trajectory<2>],
    db: SegmentDatabase<2>,
    partition: PartitionConfig,
    optimum: (f64, f64),
    paper_clusters: usize,
) -> std::io::Result<()> {
    let (eps_opt, avg) = optimum;
    let min_lns_range = select_min_lns(avg);
    let mut csv = ctx.csv(
        &format!("{name}_summary.csv"),
        &[
            "min_lns",
            "eps",
            "clusters",
            "noise_ratio",
            "mean_cluster_size",
        ],
    )?;
    println!(
        "[{name}] heuristic: eps = {eps_opt:.2}, avg|Neps| = {avg:.2}, MinLns candidates {min_lns_range:?} (paper found {paper_clusters} clusters)"
    );
    // The paper tries the heuristic's MinLns candidates and picks by visual
    // inspection; we report all candidates and render the middle one.
    let candidates: Vec<usize> = min_lns_range.collect();
    let chosen = candidates[candidates.len() / 2];
    let mut rendered = false;
    for &min_lns in &candidates {
        let config = TraclusConfig {
            eps: eps_opt,
            min_lns,
            partition,
            ..TraclusConfig::default()
        };
        let (outcome, secs) = timed(|| Traclus::new(config).run(trajectories));
        csv.num_row(&[
            min_lns as f64,
            eps_opt,
            outcome.clusters.len() as f64,
            outcome.clustering.noise_ratio(),
            outcome.clustering.mean_cluster_size(),
        ])?;
        println!(
            "[{name}] MinLns = {min_lns}: {} clusters, noise {:.1}%, mean size {:.1} ({secs:.1}s)",
            outcome.clusters.len(),
            outcome.clustering.noise_ratio() * 100.0,
            outcome.clustering.mean_cluster_size()
        );
        if min_lns == chosen && !rendered {
            let svg = render_clustering(trajectories, &outcome, 900.0, 600.0);
            let path = ctx.write_text(&format!("{name}.svg"), &svg)?;
            println!("[{name}] rendered {}", path.display());
            let mut reps = ctx.csv(
                &format!("{name}_representatives.csv"),
                &["cluster", "point_index", "x", "y"],
            )?;
            for c in &outcome.clusters {
                for (k, p) in c.representative.points.iter().enumerate() {
                    reps.num_row(&[c.cluster.id.0 as f64, k as f64, p.x(), p.y()])?;
                }
            }
            reps.finish()?;
            rendered = true;
        }
    }
    csv.finish()?;
    drop(db);
    Ok(())
}

/// Figure 18 (hurricane; paper: 7 clusters at ε = 30, MinLns = 6).
pub fn fig18(ctx: &ExperimentContext) -> std::io::Result<()> {
    let (trajectories, db) = hurricane_database(1950);
    run_figure(
        ctx,
        "fig18_hurricane",
        &trajectories,
        db,
        partition_with_precision(HURRICANE_MDL_PRECISION),
        hurricane_optimal_cached(),
        7,
    )
}

/// Figure 21 (Elk1993; paper: 13 clusters at ε = 27, MinLns = 9).
pub fn fig21(ctx: &ExperimentContext) -> std::io::Result<()> {
    let (trajectories, db) = elk_database(1993);
    run_figure(
        ctx,
        "fig21_elk1993",
        &trajectories,
        db,
        partition_with_precision(ANIMAL_MDL_PRECISION),
        elk_optimal_cached(),
        13,
    )
}

/// Figure 22 (Deer1995; paper: 2 clusters at ε = 29, MinLns = 8).
pub fn fig22(ctx: &ExperimentContext) -> std::io::Result<()> {
    let (trajectories, db) = deer_database(1995);
    let optimum = optimal_params(&db, animal_eps_grid());
    run_figure(
        ctx,
        "fig22_deer1995",
        &trajectories,
        db,
        partition_with_precision(ANIMAL_MDL_PRECISION),
        optimum,
        2,
    )
}
