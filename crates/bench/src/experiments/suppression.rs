//! Section 4.1.3: suppressing partitioning to lengthen trajectory
//! partitions.
//!
//! "To suppress partitioning, we add a small constant to cost_nopar …
//! increasing the length of trajectory partitions by 20∼30 % generally
//! improves the clustering quality." We sweep the suppression constant,
//! reporting mean partition length (relative to the unsuppressed run),
//! segment counts, cluster counts and QMeasure at fixed (ε, MinLns).

use traclus_core::{
    partition_trajectories, ClusterConfig, IndexKind, LineSegmentClustering, PartitionConfig,
    QMeasure, SegmentDatabase,
};
use traclus_data::HurricaneGenerator;
use traclus_geom::SegmentDistance;

use crate::experiments::entropy_curves::hurricane_optimal_cached;
use crate::util::{partition_with_precision, ExperimentContext, HURRICANE_MDL_PRECISION};

/// Runs the suppression sweep.
pub fn sec413(ctx: &ExperimentContext) -> std::io::Result<()> {
    let trajectories = HurricaneGenerator::paper_scale(1950);
    let mut csv = ctx.csv(
        "sec413_suppression.csv",
        &[
            "suppression_bits",
            "segments",
            "mean_segment_length",
            "length_increase_pct",
            "clusters",
            "noise_ratio",
            "qmeasure",
        ],
    )?;
    println!("[sec413] paper: +20-30% partition length generally improves clustering quality");
    let mut base_len: Option<f64> = None;
    // Baseline (suppression 0) fixes (eps, MinLns) for all runs so only the
    // partitioning changes.
    let (eps, avg) = hurricane_optimal_cached();
    let min_lns = *traclus_core::select_min_lns(avg).start() + 1;
    for suppression in [0.0, 1.0, 2.0, 4.0, 6.0, 9.0] {
        let config = PartitionConfig {
            suppression,
            ..partition_with_precision(HURRICANE_MDL_PRECISION)
        };
        let segments = partition_trajectories(&config, &trajectories);
        let count = segments.len();
        let mean_len =
            segments.iter().map(|s| s.segment.length()).sum::<f64>() / count.max(1) as f64;
        let increase = match base_len {
            None => {
                base_len = Some(mean_len);
                0.0
            }
            Some(b) => (mean_len / b - 1.0) * 100.0,
        };
        let db = SegmentDatabase::from_segments(segments, SegmentDistance::default());
        let clustering = LineSegmentClustering::new(
            &db,
            ClusterConfig {
                index: IndexKind::RTree,
                ..ClusterConfig::new(eps, min_lns)
            },
        )
        .run();
        let q = QMeasure::compute_sampled(&db, &clustering, 400_000, 17);
        csv.num_row(&[
            suppression,
            count as f64,
            mean_len,
            increase,
            clustering.clusters.len() as f64,
            clustering.noise_ratio(),
            q.value(),
        ])?;
        println!(
            "[sec413] suppression {suppression:>3.1} bits: {count} segments, mean length {mean_len:.2} (+{increase:.0}%), {} clusters, QMeasure {:.0}",
            clustering.clusters.len(),
            q.value()
        );
    }
    let path = csv.finish()?;
    println!("[sec413] -> {}", path.display());
    Ok(())
}
