//! Figures 17 and 20: `QMeasure` vs ε for three `MinLns` values around the
//! heuristic estimate.
//!
//! The paper sweeps ε = 27…33 × MinLns ∈ {5,6,7} on the hurricane data and
//! ε = 25…31 × MinLns ∈ {8,9,10} on Elk1993, and observes that QMeasure is
//! "nearly minimal when the optimal value of ε is used" within a MinLns
//! row. We regenerate the same grid around *our* entropy-optimal ε.

use traclus_core::{
    select_min_lns, ClusterConfig, IndexKind, LineSegmentClustering, QMeasure, SegmentDatabase,
};

use crate::experiments::entropy_curves::{elk_optimal_cached, hurricane_optimal_cached};
use crate::util::{elk_database, hurricane_database, ExperimentContext};

/// Sampled-QMeasure pair budget (exact below this, sampled above; the
/// noise set of a full dataset has millions of pairs).
const QMEASURE_PAIR_CAP: usize = 400_000;

fn run_sweep(
    ctx: &ExperimentContext,
    name: &str,
    db: &SegmentDatabase<2>,
    eps_opt: f64,
    avg_neighborhood: f64,
    eps_step: f64,
) -> std::io::Result<()> {
    let min_lns_range = select_min_lns(avg_neighborhood);
    let min_lns_values: Vec<usize> = min_lns_range.clone().collect();
    let eps_values: Vec<f64> = (-3..=3).map(|i| eps_opt + i as f64 * eps_step).collect();
    let mut csv = ctx.csv(
        &format!("{name}.csv"),
        &[
            "eps",
            "min_lns",
            "clusters",
            "noise_ratio",
            "total_sse",
            "noise_penalty",
            "qmeasure",
        ],
    )?;
    println!(
        "[{name}] sweeping eps in {:.2}..{:.2} x MinLns {:?} (entropy-optimal eps = {eps_opt:.2})",
        eps_values.first().unwrap(),
        eps_values.last().unwrap(),
        min_lns_values
    );
    let combos: Vec<(f64, usize)> = min_lns_values
        .iter()
        .flat_map(|&m| {
            eps_values
                .iter()
                .filter(|&&e| e > 0.0)
                .map(move |&e| (e, m))
        })
        .collect();
    let rows = crate::util::parallel_map(combos, |&(eps, min_lns)| {
        let clustering = LineSegmentClustering::new(
            db,
            ClusterConfig {
                index: IndexKind::RTree,
                ..ClusterConfig::new(eps, min_lns)
            },
        )
        .run();
        let q = QMeasure::compute_sampled(db, &clustering, QMEASURE_PAIR_CAP, 99);
        (
            eps,
            min_lns,
            clustering.clusters.len(),
            clustering.noise_ratio(),
            q,
        )
    });
    let mut best: Option<(f64, usize, f64)> = None;
    for (eps, min_lns, clusters, noise_ratio, q) in rows {
        csv.num_row(&[
            eps,
            min_lns as f64,
            clusters as f64,
            noise_ratio,
            q.total_sse,
            q.noise_penalty,
            q.value(),
        ])?;
        if best.is_none_or(|(_, _, bq)| q.value() < bq) {
            best = Some((eps, min_lns, q.value()));
        }
    }
    let path = csv.finish()?;
    if let Some((eps, min_lns, q)) = best {
        println!(
            "[{name}] minimum QMeasure = {q:.1} at eps = {eps:.2}, MinLns = {min_lns} -> {}",
            path.display()
        );
    }
    Ok(())
}

/// Figure 17 (hurricane).
pub fn fig17(ctx: &ExperimentContext) -> std::io::Result<()> {
    let (_, db) = hurricane_database(1950);
    let (eps_opt, avg) = hurricane_optimal_cached();
    // The paper steps ε by 1 around 30 (≈3 %); we mirror that relative step.
    run_sweep(
        ctx,
        "fig17_qmeasure_hurricane",
        &db,
        eps_opt,
        avg,
        eps_opt / 30.0,
    )
}

/// Figure 20 (Elk1993).
pub fn fig20(ctx: &ExperimentContext) -> std::io::Result<()> {
    let (_, db) = elk_database(1993);
    let (eps_opt, avg) = elk_optimal_cached();
    run_sweep(
        ctx,
        "fig20_qmeasure_elk1993",
        &db,
        eps_opt,
        avg,
        eps_opt / 27.0,
    )
}
