//! The Figure 1 motivation, quantified: whole-trajectory clustering
//! (Gaffney-style regression mixtures, trajectory k-means) cannot isolate a
//! common sub-trajectory that TRACLUS finds.
//!
//! Scene: trajectories share a long west→east corridor and then fan out in
//! five directions. TRACLUS should report one corridor cluster whose
//! representative hugs the corridor; the whole-trajectory baselines split
//! the fan by tail direction and no component isolates the corridor.

use traclus_baselines::{
    fit_regression_mixture, kmeans_trajectories, KMeansConfig, RegressionMixtureConfig,
};
use traclus_core::{Traclus, TraclusConfig};
use traclus_geom::{Point2, Trajectory, TrajectoryId};
use traclus_viz::render_clustering;

use crate::util::ExperimentContext;

/// Builds the fan scene: `per_heading` trajectories per divergence heading.
pub fn fan_scene(per_heading: usize) -> Vec<Trajectory<2>> {
    let headings = [
        (1.0f64, 1.0f64),
        (1.0, 0.5),
        (1.0, 0.0),
        (1.0, -0.5),
        (1.0, -1.0),
    ];
    let mut out = Vec::new();
    let mut id = 0u32;
    for (h, &(dx, dy)) in headings.iter().enumerate() {
        for j in 0..per_heading {
            let offset = (h * per_heading + j) as f64 * 0.4;
            let mut points = Vec::new();
            for k in 0..30 {
                points.push(Point2::xy(k as f64 * 4.0, offset));
            }
            let (ox, oy) = (29.0 * 4.0, offset);
            for k in 1..16 {
                let t = k as f64 * 4.0;
                points.push(Point2::xy(ox + dx * t, oy + dy * t));
            }
            out.push(Trajectory::new(TrajectoryId(id), points));
            id += 1;
        }
    }
    out
}

/// Runs the comparison.
pub fn gaffney(ctx: &ExperimentContext) -> std::io::Result<()> {
    let trajectories = fan_scene(4); // 20 trajectories, 5 headings
    println!("[gaffney] 20 trajectories: shared corridor then 5-way fan (Figure 1 scene)");

    // TRACLUS.
    let outcome = Traclus::new(TraclusConfig {
        eps: 10.0,
        min_lns: 6,
        ..TraclusConfig::default()
    })
    .run(&trajectories);
    let corridor_cluster = outcome.clusters.iter().find(|c| {
        // A corridor cluster draws members from (nearly) all trajectories.
        c.trajectories.len() >= 15
    });
    println!(
        "[gaffney] TRACLUS: {} clusters; corridor cluster present: {} (trajectory cardinalities: {:?})",
        outcome.clusters.len(),
        corridor_cluster.is_some(),
        outcome
            .clusters
            .iter()
            .map(|c| c.trajectories.len())
            .collect::<Vec<_>>()
    );
    let svg = render_clustering(&trajectories, &outcome, 800.0, 500.0);
    ctx.write_text("gaffney_traclus.svg", &svg)?;

    // Regression mixture over whole trajectories, K = 2..5.
    let mut csv = ctx.csv(
        "gaffney_comparison.csv",
        &["method", "k", "max_component_share", "splits_fan"],
    )?;
    csv.row(&[
        "traclus".into(),
        format!("{}", outcome.clusters.len()),
        format!(
            "{}",
            corridor_cluster
                .map(|c| c.trajectories.len() as f64 / 20.0)
                .unwrap_or(0.0)
        ),
        "false".into(),
    ])?;
    for k in [2usize, 3, 5] {
        let model = fit_regression_mixture(
            &trajectories,
            &RegressionMixtureConfig {
                components: k,
                degree: 2,
                ..RegressionMixtureConfig::default()
            },
        );
        // Does any component hold (nearly) all trajectories? If not, the
        // fan was split and no cluster captures the shared corridor.
        let mut counts = vec![0usize; k];
        for &a in &model.assignments {
            counts[a] += 1;
        }
        let max_share = counts.iter().copied().max().unwrap_or(0) as f64 / 20.0;
        let splits_fan = max_share < 0.95;
        csv.row(&[
            "regression_mixture".into(),
            k.to_string(),
            format!("{max_share}"),
            splits_fan.to_string(),
        ])?;
        println!(
            "[gaffney] regression mixture K = {k}: component sizes {counts:?} (max share {:.0}%) -> corridor not isolated",
            max_share * 100.0
        );
    }
    // Trajectory k-means for completeness.
    for k in [2usize, 5] {
        let result = kmeans_trajectories(
            &trajectories,
            &KMeansConfig {
                k,
                ..KMeansConfig::default()
            },
        );
        let mut counts = vec![0usize; k];
        for &a in &result.assignments {
            counts[a] += 1;
        }
        let max_share = counts.iter().copied().max().unwrap_or(0) as f64 / 20.0;
        csv.row(&[
            "kmeans".into(),
            k.to_string(),
            format!("{max_share}"),
            (max_share < 0.95).to_string(),
        ])?;
        println!("[gaffney] k-means K = {k}: component sizes {counts:?}");
    }
    let path = csv.finish()?;
    println!("[gaffney] -> {}", path.display());
    Ok(())
}
