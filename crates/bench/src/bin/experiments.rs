//! CLI driver regenerating the paper's tables and figures.
//!
//! ```text
//! experiments [--out DIR] <id>...   run specific experiments
//! experiments [--out DIR] all      run everything
//! experiments --list               list experiment ids
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

use traclus_bench::experiments::registry;
use traclus_bench::util::ExperimentContext;

// Wall-clock capture is the point: the experiment driver prints per-figure
// timings; nothing downstream consumes them.
#[allow(clippy::disallowed_methods)]
fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = "results".to_string();
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(dir) => out_dir = dir,
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--list" => {
                for e in registry() {
                    println!("{:<12} {}", e.id, e.description);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: experiments [--out DIR] (<id>... | all | --list)");
                println!("experiments:");
                for e in registry() {
                    println!("  {:<12} {}", e.id, e.description);
                }
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("no experiment requested; try --list or `all`");
        return ExitCode::FAILURE;
    }
    let experiments = registry();
    let selected: Vec<_> = if ids.len() == 1 && ids[0] == "all" {
        experiments.iter().collect()
    } else {
        let mut selected = Vec::new();
        for id in &ids {
            match experiments.iter().find(|e| e.id == *id) {
                Some(e) => selected.push(e),
                None => {
                    eprintln!("unknown experiment `{id}`; try --list");
                    return ExitCode::FAILURE;
                }
            }
        }
        selected
    };
    let ctx = match ExperimentContext::new(&out_dir) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("cannot create output directory {out_dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for e in selected {
        println!("=== {} — {} ===", e.id, e.description);
        let start = std::time::Instant::now();
        if let Err(err) = (e.run)(&ctx) {
            eprintln!("experiment {} failed: {err}", e.id);
            return ExitCode::FAILURE;
        }
        println!(
            "=== {} done in {:.1}s ===\n",
            e.id,
            start.elapsed().as_secs_f64()
        );
    }
    ExitCode::SUCCESS
}
