//! Shared harness utilities: output management, CSV emission, dataset
//! construction and timing.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use traclus_core::{
    EntropyCurve, EntropyPoint, IndexKind, NeighborhoodStats, PartitionConfig, SegmentDatabase,
};
use traclus_data::{AnimalGenerator, HurricaneGenerator};
use traclus_geom::{SegmentDistance, Trajectory};

/// Where an experiment writes its artifacts and how it logs.
pub struct ExperimentContext {
    /// Output directory (created on demand).
    pub out_dir: PathBuf,
}

impl ExperimentContext {
    /// Creates the context, ensuring the output directory exists.
    pub fn new(out_dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let out_dir = out_dir.into();
        fs::create_dir_all(&out_dir)?;
        Ok(Self { out_dir })
    }

    /// Opens a CSV file in the output directory.
    pub fn csv(&self, name: &str, header: &[&str]) -> std::io::Result<CsvWriter> {
        CsvWriter::create(self.out_dir.join(name), header)
    }

    /// Writes a string artifact (e.g. an SVG) into the output directory.
    pub fn write_text(&self, name: &str, content: &str) -> std::io::Result<PathBuf> {
        let path = self.out_dir.join(name);
        fs::write(&path, content)?;
        Ok(path)
    }
}

/// A tiny CSV emitter (numbers formatted with full precision).
pub struct CsvWriter {
    file: std::io::BufWriter<fs::File>,
    path: PathBuf,
    columns: usize,
}

impl CsvWriter {
    /// Creates the file and writes the header row.
    pub fn create(path: impl AsRef<Path>, header: &[&str]) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = std::io::BufWriter::new(fs::File::create(&path)?);
        writeln!(file, "{}", header.join(","))?;
        Ok(Self {
            file,
            path,
            columns: header.len(),
        })
    }

    /// Writes one row of stringified fields.
    pub fn row(&mut self, fields: &[String]) -> std::io::Result<()> {
        debug_assert_eq!(fields.len(), self.columns, "column count mismatch");
        writeln!(self.file, "{}", fields.join(","))
    }

    /// Writes one row of numbers.
    pub fn num_row(&mut self, fields: &[f64]) -> std::io::Result<()> {
        let fields: Vec<String> = fields.iter().map(|f| format!("{f}")).collect();
        self.row(&fields)
    }

    /// Flushes and returns the written path.
    pub fn finish(mut self) -> std::io::Result<PathBuf> {
        self.file.flush()?;
        Ok(self.path)
    }
}

/// Times a closure, returning (result, seconds).
// Wall-clock capture is the point: this is the experiment harness's one
// timing primitive, and the reading feeds only reported CSV columns.
#[allow(clippy::disallowed_methods)]
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// The default partitioning + distance setup shared by the experiments
/// (uniform weights, directed angle, no suppression).
pub fn default_pipeline() -> (PartitionConfig, SegmentDistance) {
    (PartitionConfig::default(), SegmentDistance::default())
}

/// Entropy curve computed with one worker thread per CPU (each ε sample is
/// independent; each worker builds its own R-tree — bulk loading is
/// milliseconds). Semantically identical to [`EntropyCurve::scan`].
pub fn parallel_entropy_curve(
    db: &SegmentDatabase<2>,
    grid: &[f64],
    weighted: bool,
) -> EntropyCurve {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(grid.len().max(1));
    let results: Vec<Mutex<Option<EntropyPoint>>> =
        (0..grid.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let index = db.build_index(IndexKind::RTree, 1.0);
                loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= grid.len() {
                        break;
                    }
                    let eps = grid[i];
                    let stats = NeighborhoodStats::compute(db, &index, eps, weighted);
                    *results[i].lock().expect("entropy workers do not panic") =
                        Some(EntropyPoint {
                            eps,
                            entropy: stats.entropy(),
                            avg_neighborhood: stats.average(),
                        });
                }
            });
        }
    });
    EntropyCurve {
        points: results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("entropy workers do not panic")
                    .expect("all grid points computed")
            })
            .collect(),
    }
}

// Re-exported for the experiment binaries; the implementation moved into
// `traclus_eval` so the evaluation harness itself can use it (bench
// depends on eval, so the dependency can only point that way).
pub use traclus_eval::parallel_map;

/// MDL coding precision for the hurricane stand-in: 0.05° ≈ the accuracy
/// of best-track centre fixes on a lat/lon grid.
pub const HURRICANE_MDL_PRECISION: f64 = 0.05;

/// MDL coding precision for the telemetry stand-ins: 10 m, a typical
/// radio-telemetry location error on the Starkey grid.
pub const ANIMAL_MDL_PRECISION: f64 = 10.0;

/// Partitioning config with a dataset-appropriate δ (see
/// [`traclus_core::MdlCost`] on why δ must match the coordinate scale).
pub fn partition_with_precision(precision: f64) -> PartitionConfig {
    PartitionConfig {
        cost: traclus_core::MdlCost::with_precision(precision),
        ..PartitionConfig::default()
    }
}

/// Builds the hurricane stand-in dataset and its segment database.
pub fn hurricane_database(seed: u64) -> (Vec<Trajectory<2>>, SegmentDatabase<2>) {
    let trajectories = HurricaneGenerator::paper_scale(seed);
    let partition = partition_with_precision(HURRICANE_MDL_PRECISION);
    let db =
        SegmentDatabase::from_trajectories(&trajectories, &partition, SegmentDistance::default());
    (trajectories, db)
}

/// Builds the Elk1993 stand-in dataset and database.
pub fn elk_database(seed: u64) -> (Vec<Trajectory<2>>, SegmentDatabase<2>) {
    let trajectories = AnimalGenerator::elk1993(seed);
    let partition = partition_with_precision(ANIMAL_MDL_PRECISION);
    let db =
        SegmentDatabase::from_trajectories(&trajectories, &partition, SegmentDistance::default());
    (trajectories, db)
}

/// Builds the Deer1995 stand-in dataset and database.
pub fn deer_database(seed: u64) -> (Vec<Trajectory<2>>, SegmentDatabase<2>) {
    let trajectories = AnimalGenerator::deer1995(seed);
    let partition = partition_with_precision(ANIMAL_MDL_PRECISION);
    let db =
        SegmentDatabase::from_trajectories(&trajectories, &partition, SegmentDistance::default());
    (trajectories, db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_writer_emits_header_and_rows() {
        let dir = std::env::temp_dir().join("traclus_bench_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let mut w = CsvWriter::create(&path, &["a", "b"]).unwrap();
        w.num_row(&[1.0, 2.5]).unwrap();
        w.row(&["x".into(), "y".into()]).unwrap();
        let written = w.finish().unwrap();
        let content = fs::read_to_string(written).unwrap();
        assert_eq!(content, "a,b\n1,2.5\nx,y\n");
    }

    #[test]
    fn timed_returns_result() {
        let (v, secs) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn hurricane_database_builds() {
        let (trajs, db) = hurricane_database(1);
        assert_eq!(trajs.len(), 570);
        assert!(
            db.len() > 1_000,
            "partitioning yields many segments: {}",
            db.len()
        );
    }
}
