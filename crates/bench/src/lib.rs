//! # traclus-bench
//!
//! Experiment harness regenerating every table and figure of the TRACLUS
//! evaluation (Section 5 + appendices), plus Criterion micro-benchmarks.
//!
//! Run `cargo run -p traclus-bench --release --bin experiments -- all`
//! to regenerate everything into `results/` (CSV + SVG), or pass a single
//! experiment id (`fig16`, `fig17`, …; see `experiments --help`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod util;

pub use util::{CsvWriter, ExperimentContext};
