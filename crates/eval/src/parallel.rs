//! An ordered parallel map over scoped threads — the one concurrency
//! primitive the evaluation harness needs (std-only; the workspace has no
//! rayon). Moved here from `traclus_bench::util` so the harness itself
//! can parallelise metric scoring without a dependency cycle (bench
//! depends on eval); bench re-exports it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f` over every input on a pool of scoped threads (one per CPU,
/// capped at the input count), returning results in input order.
///
/// Work is handed out by an atomic cursor, so long jobs don't serialise
/// behind a static partition. If `f` panics on any input, the panic
/// propagates out of the enclosing `thread::scope` after all workers
/// join — results are never silently dropped.
pub fn parallel_map<T: Sync, R: Send>(inputs: Vec<T>, f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(inputs.len().max(1));
    let results: Vec<Mutex<Option<R>>> = (0..inputs.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= inputs.len() {
                    break;
                }
                let result = f(&inputs[i]);
                // A slot mutex is only ever locked by the worker that drew
                // its index, so a poisoned lock is unreachable — and were a
                // worker to panic, the scope re-raises before results are
                // read. `into_inner` on the error keeps this panic-free.
                let mut slot = match results[i].lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                *slot = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            let slot = match m.into_inner() {
                Ok(v) => v,
                Err(poisoned) => poisoned.into_inner(),
            };
            match slot {
                Some(r) => r,
                // Unreachable: the cursor hands out every index exactly
                // once and the scope joins all workers.
                None => unreachable!("parallel_map: a job never completed"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_map(inputs, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        assert_eq!(parallel_map(Vec::<u8>::new(), |&x| x), Vec::<u8>::new());
        assert_eq!(parallel_map(vec![7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn results_match_sequential_on_nontrivial_work() {
        let inputs: Vec<usize> = (1..40).collect();
        let expensive = |&n: &usize| (0..n * 1000).fold(0u64, |a, b| a.wrapping_add(b as u64));
        let parallel = parallel_map(inputs.clone(), expensive);
        let sequential: Vec<u64> = inputs.iter().map(expensive).collect();
        assert_eq!(parallel, sequential);
    }
}
