//! [`ClusteringResult`]: one uniform shape for every algorithm's output.
//!
//! The metrics in [`crate::metrics`] need per-segment cluster labels over
//! a shared [`SegmentDatabase`]. Each algorithm family reaches that shape
//! differently:
//!
//! * TRACLUS (sequential / parallel / streaming) labels segments
//!   directly — [`ClusteringResult::from_clustering`];
//! * whole-trajectory baselines (k-means, regression mixture) assign a
//!   cluster per trajectory; every segment inherits its trajectory's
//!   assignment — [`ClusteringResult::from_trajectory_assignments`];
//! * point DBSCAN runs over segment **midpoints**, so its labels align
//!   with segment ids — [`ClusteringResult::from_point_labels`];
//! * OPTICS emits a cluster-ordering; labels are extracted at a
//!   reachability threshold and mapped back from ordering positions to
//!   segment ids — [`ClusteringResult::from_optics`].

use traclus_baselines::{OpticsResult, PointLabel};
use traclus_core::cluster::{Clustering, SegmentLabel};
use traclus_core::{SegmentDatabase, TraclusOutcome};
use traclus_geom::Trajectory;

/// An algorithm's output normalised to per-segment labels, with the
/// metadata a report entry needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringResult<const D: usize> {
    /// Display name of the algorithm ("traclus-seq", "kmeans", …).
    pub algorithm: String,
    /// Parameter name/value pairs, for the report.
    pub params: Vec<(String, String)>,
    /// `labels[i]` = cluster of segment `i` (ids of the shared database),
    /// `None` = noise. Label values need not be dense — metrics are
    /// invariant under relabeling.
    pub labels: Vec<Option<u32>>,
    /// Wall-clock seconds of the clustering call (end to end from
    /// trajectories, so engines with different pipelines stay
    /// comparable).
    pub runtime_secs: f64,
    /// Representative trajectories keyed by label value, when the
    /// algorithm produces them (TRACLUS does; the baselines do not).
    pub representatives: Vec<(u32, Trajectory<D>)>,
}

impl<const D: usize> ClusteringResult<D> {
    /// Bare result from explicit labels.
    pub fn new(algorithm: impl Into<String>, labels: Vec<Option<u32>>) -> Self {
        Self {
            algorithm: algorithm.into(),
            params: Vec::new(),
            labels,
            runtime_secs: 0.0,
            representatives: Vec::new(),
        }
    }

    /// Attaches report parameters (builder style).
    pub fn with_params(mut self, params: Vec<(String, String)>) -> Self {
        self.params = params;
        self
    }

    /// Attaches the measured runtime (builder style).
    pub fn with_runtime(mut self, secs: f64) -> Self {
        self.runtime_secs = secs;
        self
    }

    /// From a TRACLUS grouping-phase [`Clustering`] (no representatives).
    pub fn from_clustering(algorithm: impl Into<String>, clustering: &Clustering) -> Self {
        let labels = clustering
            .labels
            .iter()
            .map(|l| match l {
                SegmentLabel::Cluster(id) => Some(id.0),
                SegmentLabel::Noise | SegmentLabel::Unclassified => None,
            })
            .collect();
        Self::new(algorithm, labels)
    }

    /// From a full TRACLUS pipeline outcome, including the representative
    /// trajectories (enabling the SSQ metric).
    pub fn from_outcome(algorithm: impl Into<String>, outcome: &TraclusOutcome<D>) -> Self {
        let mut result = Self::from_clustering(algorithm, &outcome.clustering);
        result.representatives = outcome
            .clusters
            .iter()
            .map(|c| (c.cluster.id.0, c.representative.clone()))
            .collect();
        result
    }

    /// From per-trajectory assignments (k-means, regression mixture):
    /// each segment inherits the cluster of the trajectory it was
    /// partitioned from.
    ///
    /// `assignments[k]` must be the cluster of the trajectory with id
    /// `k`. The baselines return assignments by **slice position**, so
    /// this only lines up when the trajectory list they ran on was
    /// ordered by dense id (`trajectories[k].id.0 == k`) — the
    /// [`evaluate_dataset`](crate::evaluate_dataset) harness asserts
    /// exactly that before running them.
    pub fn from_trajectory_assignments(
        algorithm: impl Into<String>,
        db: &SegmentDatabase<D>,
        assignments: &[usize],
    ) -> Self {
        let labels = (0..db.len() as u32)
            .map(|id| {
                let t = db.trajectory_of(id).0 as usize;
                assert!(
                    t < assignments.len(),
                    "trajectory {t} missing from the {}-entry assignment vector \
                     (trajectory ids must be dense)",
                    assignments.len()
                );
                Some(assignments[t] as u32)
            })
            .collect();
        Self::new(algorithm, labels)
    }

    /// From point-DBSCAN labels computed over the database's segment
    /// midpoints (`point_labels[i]` labels segment `i`'s midpoint).
    pub fn from_point_labels(algorithm: impl Into<String>, point_labels: &[PointLabel]) -> Self {
        let labels = point_labels
            .iter()
            .map(|l| match l {
                PointLabel::Cluster(k) => Some(*k as u32),
                PointLabel::Noise => None,
            })
            .collect();
        Self::new(algorithm, labels)
    }

    /// From an OPTICS ordering over the database's segments, extracting a
    /// DBSCAN-equivalent clustering at reachability threshold
    /// `eps_prime` and mapping ordering positions back to segment ids.
    pub fn from_optics(
        algorithm: impl Into<String>,
        optics: &OpticsResult,
        eps_prime: f64,
    ) -> Self {
        let by_position = optics.extract_clusters(eps_prime);
        let mut labels = vec![None; optics.ordering.len()];
        for (pos, entry) in optics.ordering.iter().enumerate() {
            labels[entry.id as usize] = by_position[pos].map(|k| k as u32);
        }
        Self::new(algorithm, labels)
    }

    /// Number of distinct cluster labels.
    pub fn cluster_count(&self) -> usize {
        let mut seen: Vec<u32> = self.labels.iter().filter_map(|l| *l).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traclus_baselines::OpticsEntry;
    use traclus_core::cluster::ClusterId;

    #[test]
    fn clustering_labels_map_noise_to_none() {
        let clustering = Clustering {
            labels: vec![
                SegmentLabel::Cluster(ClusterId(0)),
                SegmentLabel::Noise,
                SegmentLabel::Cluster(ClusterId(1)),
            ],
            clusters: Vec::new(),
            filtered_out: 0,
        };
        let r = ClusteringResult::<2>::from_clustering("t", &clustering);
        assert_eq!(r.labels, vec![Some(0), None, Some(1)]);
        assert_eq!(r.cluster_count(), 2);
    }

    #[test]
    fn point_labels_map_positionally() {
        let r = ClusteringResult::<2>::from_point_labels(
            "dbscan",
            &[PointLabel::Cluster(2), PointLabel::Noise],
        );
        assert_eq!(r.labels, vec![Some(2), None]);
    }

    #[test]
    fn optics_positions_map_back_to_ids() {
        // Ordering visits ids 1, 0; both in one cluster at threshold 5.
        let optics = OpticsResult {
            ordering: vec![
                OpticsEntry {
                    id: 1,
                    reachability: f64::INFINITY,
                    core_distance: 1.0,
                },
                OpticsEntry {
                    id: 0,
                    reachability: 1.0,
                    core_distance: 1.0,
                },
            ],
        };
        let r = ClusteringResult::<2>::from_optics("optics", &optics, 5.0);
        assert_eq!(r.labels, vec![Some(0), Some(0)]);
    }
}
