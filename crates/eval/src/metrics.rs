//! Segment-level clustering-quality metrics under the composite distance.
//!
//! All metrics consume the uniform label shape of
//! [`ClusteringResult`] over a shared
//! [`SegmentDatabase`], so TRACLUS and every baseline are scored on the
//! same substrate (the Rahmani et al. point: trajectory quality must be
//! measured on segments, not raw points). Invariants the property suite
//! locks down: silhouette ∈ [-1, 1], noise ratio ∈ [0, 1], and every
//! metric is invariant under relabeling cluster ids.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traclus_core::SegmentDatabase;
use traclus_geom::{Segment, Trajectory};

use crate::result::ClusteringResult;

/// Distribution statistics of cluster sizes (in segments).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeStats {
    /// Number of clusters.
    pub clusters: usize,
    /// Smallest cluster (0 when there are none).
    pub min: usize,
    /// Largest cluster (0 when there are none).
    pub max: usize,
    /// Mean cluster size (0 when there are none).
    pub mean: f64,
    /// Median cluster size (0 when there are none).
    pub median: f64,
}

impl SizeStats {
    /// Statistics of a size list (any order).
    pub fn from_sizes(mut sizes: Vec<usize>) -> Self {
        if sizes.is_empty() {
            return Self {
                clusters: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                median: 0.0,
            };
        }
        sizes.sort_unstable();
        let n = sizes.len();
        let median = if n % 2 == 1 {
            sizes[n / 2] as f64
        } else {
            (sizes[n / 2 - 1] + sizes[n / 2]) as f64 / 2.0
        };
        Self {
            clusters: n,
            min: sizes[0],
            max: sizes[n - 1],
            mean: sizes.iter().sum::<usize>() as f64 / n as f64,
            median,
        }
    }
}

/// The quality slice of a report entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityMetrics {
    /// Mean segment-level silhouette over clustered segments, under the
    /// database's composite distance. `None` when undefined (fewer than
    /// two clusters).
    pub silhouette: Option<f64>,
    /// Fraction of segments labelled noise.
    pub noise_ratio: f64,
    /// Number of clusters.
    pub cluster_count: usize,
    /// Cluster-size distribution.
    pub sizes: SizeStats,
    /// Mean squared composite distance from each clustered segment to its
    /// cluster's representative trajectory (closest representative edge).
    /// `None` when the algorithm produced no representatives.
    pub ssq: Option<f64>,
}

impl QualityMetrics {
    /// Rejects NaN / out-of-range values — the CI smoke gate. A valid
    /// report has silhouette in [-1, 1], noise ratio in [0, 1], finite
    /// non-negative SSQ, and size statistics consistent with the cluster
    /// count.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(s) = self.silhouette {
            if !s.is_finite() || !(-1.0..=1.0).contains(&s) {
                return Err(format!("silhouette {s} outside [-1, 1]"));
            }
        }
        if !self.noise_ratio.is_finite() || !(0.0..=1.0).contains(&self.noise_ratio) {
            return Err(format!("noise ratio {} outside [0, 1]", self.noise_ratio));
        }
        if let Some(q) = self.ssq {
            if !q.is_finite() || q < 0.0 {
                return Err(format!("SSQ {q} is not a finite non-negative number"));
            }
        }
        if self.sizes.clusters != self.cluster_count {
            return Err(format!(
                "size stats cover {} clusters but the labeling has {}",
                self.sizes.clusters, self.cluster_count
            ));
        }
        if !self.sizes.mean.is_finite() || !self.sizes.median.is_finite() {
            return Err("non-finite cluster-size statistics".to_string());
        }
        Ok(())
    }
}

/// Fraction of segments labelled noise (0 for an empty labeling).
pub fn noise_ratio(labels: &[Option<u32>]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    labels.iter().filter(|l| l.is_none()).count() as f64 / labels.len() as f64
}

/// Cluster sizes in descending order — a relabeling-invariant summary of
/// the size distribution.
pub fn cluster_sizes(labels: &[Option<u32>]) -> Vec<usize> {
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for l in labels.iter().flatten() {
        *counts.entry(*l).or_insert(0) += 1;
    }
    let mut sizes: Vec<usize> = counts.into_values().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

/// Exact mean segment silhouette: O(n²) composite-distance evaluations.
/// `None` when fewer than two clusters exist (the coefficient is
/// undefined). Segments in singleton clusters score 0, the standard
/// convention.
pub fn segment_silhouette<const D: usize>(
    db: &SegmentDatabase<D>,
    labels: &[Option<u32>],
) -> Option<f64> {
    segment_silhouette_sampled(db, labels, usize::MAX, 0)
}

/// Silhouette with a per-(segment, cluster) sampling cap: each mean
/// distance from a segment to a cluster is estimated from at most `cap`
/// sampled members. Deterministic for a fixed seed; `cap = usize::MAX`
/// recovers the exact value. Use on survey-scale databases where the
/// exact O(n²) sweep is prohibitive.
pub fn segment_silhouette_sampled<const D: usize>(
    db: &SegmentDatabase<D>,
    labels: &[Option<u32>],
    cap: usize,
    seed: u64,
) -> Option<f64> {
    assert_eq!(labels.len(), db.len(), "labels must cover the database");
    assert!(cap > 0, "sampling cap must be positive");
    let mut clusters: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for (i, l) in labels.iter().enumerate() {
        if let Some(k) = l {
            clusters.entry(*k).or_default().push(i as u32);
        }
    }
    if clusters.len() < 2 {
        return None;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for (k, members) in &clusters {
        for &i in members {
            let s = if members.len() == 1 {
                0.0
            } else {
                let a = mean_distance(db, i, members, true, cap, seed);
                let b = clusters
                    .iter()
                    .filter(|(other, _)| *other != k)
                    .map(|(_, other_members)| mean_distance(db, i, other_members, false, cap, seed))
                    .fold(f64::INFINITY, f64::min);
                let denom = a.max(b);
                if denom > 0.0 {
                    (b - a) / denom
                } else {
                    0.0 // all distances zero: perfectly tied, neutral score
                }
            };
            total += s;
            count += 1;
        }
    }
    Some(total / count as f64)
}

/// Mean composite distance from segment `i` to a member group, optionally
/// excluding `i` itself (the silhouette `a(i)` convention), sampling when
/// the group exceeds `cap`.
///
/// The sampling RNG is re-derived per `(segment, group)` from the seed
/// plus the group's *first member id* — a cluster's identity is its
/// membership, never its label value — so the estimate is invariant
/// under relabeling and under the order clusters are visited in.
fn mean_distance<const D: usize>(
    db: &SegmentDatabase<D>,
    i: u32,
    members: &[u32],
    exclude_self: bool,
    cap: usize,
    seed: u64,
) -> f64 {
    let n = members.len();
    let effective = if exclude_self { n - 1 } else { n };
    if effective == 0 {
        return 0.0;
    }
    if effective <= cap {
        let sum: f64 = members
            .iter()
            .filter(|&&j| !(exclude_self && j == i))
            .map(|&j| db.distance(i, j))
            .sum();
        return sum / effective as f64;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ ((i as u64) << 32) ^ members[0] as u64);
    let mut acc = 0.0;
    for _ in 0..cap {
        let mut j = members[rng.gen_range(0..n)];
        if exclude_self && j == i {
            // Deterministic neighbour swap keeps the draw unbiased enough
            // for an estimate while avoiding a rejection loop.
            let pos = members.iter().position(|&m| m == i).expect("i is a member");
            j = members[(pos + 1) % n];
        }
        acc += db.distance(i, j);
    }
    acc / cap as f64
}

/// Mean squared composite distance from every clustered segment to the
/// closest edge of its cluster's representative trajectory — the SSQ
/// quality axis for algorithms that emit representatives. `None` when no
/// representative covers any clustered segment.
pub fn ssq_to_representatives<const D: usize>(
    db: &SegmentDatabase<D>,
    labels: &[Option<u32>],
    representatives: &[(u32, Trajectory<D>)],
) -> Option<f64> {
    assert_eq!(labels.len(), db.len(), "labels must cover the database");
    let edges: BTreeMap<u32, Vec<Segment<D>>> = representatives
        .iter()
        .map(|(k, rep)| (*k, rep.edges().collect()))
        .collect();
    let dist = db.distance_fn();
    let mut total = 0.0;
    let mut count = 0usize;
    for (i, label) in labels.iter().enumerate() {
        let Some(k) = label else { continue };
        let Some(rep_edges) = edges.get(k) else {
            continue;
        };
        if rep_edges.is_empty() {
            continue;
        }
        let seg = &db.segment(i as u32).segment;
        let d = rep_edges
            .iter()
            .map(|e| dist.distance(seg, e))
            .fold(f64::INFINITY, f64::min);
        total += d * d;
        count += 1;
    }
    (count > 0).then(|| total / count as f64)
}

/// All metrics of one result, with exact silhouette.
pub fn compute_metrics<const D: usize>(
    db: &SegmentDatabase<D>,
    result: &ClusteringResult<D>,
) -> QualityMetrics {
    compute_metrics_sampled(db, result, usize::MAX, 0)
}

/// All metrics of one result, with the sampled silhouette estimator.
pub fn compute_metrics_sampled<const D: usize>(
    db: &SegmentDatabase<D>,
    result: &ClusteringResult<D>,
    silhouette_cap: usize,
    seed: u64,
) -> QualityMetrics {
    let labels = &result.labels;
    let sizes = SizeStats::from_sizes(cluster_sizes(labels));
    QualityMetrics {
        silhouette: segment_silhouette_sampled(db, labels, silhouette_cap, seed),
        noise_ratio: noise_ratio(labels),
        cluster_count: sizes.clusters,
        sizes,
        ssq: ssq_to_representatives(db, labels, &result.representatives),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traclus_geom::{
        IdentifiedSegment, Point, Segment2, SegmentDistance, SegmentId, TrajectoryId,
    };

    /// Two tight horizontal bundles far apart: the canonical
    /// well-separated fixture.
    fn two_bundle_db() -> SegmentDatabase<2> {
        let mut segs = Vec::new();
        for i in 0..4 {
            segs.push(Segment2::xy(0.0, i as f64 * 0.2, 10.0, i as f64 * 0.2));
        }
        for i in 0..4 {
            segs.push(Segment2::xy(
                0.0,
                100.0 + i as f64 * 0.2,
                10.0,
                100.0 + i as f64 * 0.2,
            ));
        }
        let identified = segs
            .into_iter()
            .enumerate()
            .map(|(k, s)| IdentifiedSegment::new(SegmentId(k as u32), TrajectoryId(k as u32), s))
            .collect();
        SegmentDatabase::from_segments(identified, SegmentDistance::default())
    }

    fn two_bundle_labels() -> Vec<Option<u32>> {
        (0..8).map(|i| Some((i / 4) as u32)).collect()
    }

    #[test]
    fn silhouette_near_one_on_separated_bundles() {
        let db = two_bundle_db();
        let s = segment_silhouette(&db, &two_bundle_labels()).expect("two clusters");
        assert!(
            s > 0.95,
            "well-separated bundles must score near 1, got {s}"
        );
    }

    #[test]
    fn silhouette_undefined_for_one_cluster() {
        let db = two_bundle_db();
        let labels: Vec<Option<u32>> = vec![Some(0); 8];
        assert_eq!(segment_silhouette(&db, &labels), None);
    }

    #[test]
    fn silhouette_negative_when_clusters_are_scrambled() {
        let db = two_bundle_db();
        // Alternate labels across the two bundles: every segment's own
        // cluster is mostly far away.
        let labels: Vec<Option<u32>> = (0..8).map(|i| Some((i % 2) as u32)).collect();
        let s = segment_silhouette(&db, &labels).expect("two clusters");
        assert!(s < 0.0, "scrambled labeling must score negative, got {s}");
    }

    #[test]
    fn sampled_silhouette_matches_exact_under_cap_and_tracks_above() {
        let db = two_bundle_db();
        let labels = two_bundle_labels();
        let exact = segment_silhouette(&db, &labels).unwrap();
        let under_cap = segment_silhouette_sampled(&db, &labels, 100, 7).unwrap();
        assert_eq!(exact, under_cap, "cap above group sizes ⇒ exact path");
        let sampled = segment_silhouette_sampled(&db, &labels, 2, 7).unwrap();
        assert!(
            (sampled - exact).abs() < 0.2,
            "sampled {sampled} vs {exact}"
        );
    }

    #[test]
    fn sampled_silhouette_is_relabeling_invariant() {
        // Cap 2 < cluster size 4 forces the sampling path; the per-group
        // RNG is keyed on membership, not label, so renaming labels (and
        // thereby reversing cluster iteration order) must not move the
        // estimate beyond float-summation jitter.
        let db = two_bundle_db();
        let labels = two_bundle_labels();
        let renamed: Vec<Option<u32>> = labels.iter().map(|l| l.map(|k| 500 - 7 * k)).collect();
        let a = segment_silhouette_sampled(&db, &labels, 2, 9).unwrap();
        let b = segment_silhouette_sampled(&db, &renamed, 2, 9).unwrap();
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn noise_ratio_counts_none() {
        assert_eq!(noise_ratio(&[]), 0.0);
        assert_eq!(noise_ratio(&[Some(0), None, None, Some(1)]), 0.5);
    }

    #[test]
    fn cluster_sizes_are_descending_and_relabel_invariant() {
        let a = cluster_sizes(&[Some(0), Some(0), Some(1), None]);
        let b = cluster_sizes(&[Some(9), Some(9), Some(3), None]);
        assert_eq!(a, vec![2, 1]);
        assert_eq!(a, b);
    }

    #[test]
    fn size_stats_median_handles_even_counts() {
        let s = SizeStats::from_sizes(vec![1, 3, 5, 7]);
        assert_eq!(s.median, 4.0);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 7);
        assert_eq!(s.mean, 4.0);
    }

    #[test]
    fn ssq_zero_when_representative_overlays_members() {
        let db = two_bundle_db();
        let labels: Vec<Option<u32>> = vec![Some(0); 4].into_iter().chain(vec![None; 4]).collect();
        // A representative running through the middle of bundle 0.
        let rep = Trajectory::new(
            TrajectoryId(0),
            vec![Point::new([0.0, 0.3]), Point::new([10.0, 0.3])],
        );
        let ssq = ssq_to_representatives(&db, &labels, &[(0, rep)]).expect("covered");
        assert!(ssq < 1.0, "members hug the representative, got {ssq}");
        assert!(ssq > 0.0, "offset members have positive SSQ");
    }

    #[test]
    fn ssq_none_without_representatives() {
        let db = two_bundle_db();
        assert_eq!(ssq_to_representatives(&db, &two_bundle_labels(), &[]), None);
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let good = QualityMetrics {
            silhouette: Some(0.5),
            noise_ratio: 0.1,
            cluster_count: 1,
            sizes: SizeStats::from_sizes(vec![4]),
            ssq: Some(1.0),
        };
        assert!(good.validate().is_ok());
        let mut bad = good;
        bad.silhouette = Some(f64::NAN);
        assert!(bad.validate().is_err());
        let mut bad = good;
        bad.noise_ratio = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = good;
        bad.ssq = Some(-1.0);
        assert!(bad.validate().is_err());
        let mut bad = good;
        bad.cluster_count = 7;
        assert!(bad.validate().is_err());
    }
}
