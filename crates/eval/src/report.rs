//! The comparison report: machine-readable JSON (via the shared
//! serde-free [`traclus_json`] writer — the workspace builds offline)
//! plus an aligned text table for terminals and READMEs.
//!
//! The JSON layout is pinned byte for byte by the golden-report
//! regression test (`tests/golden_report.rs`): downstream tooling diffs
//! checked-in reports, so formatting is part of the contract.

use crate::metrics::QualityMetrics;
use traclus_json::JsonValue;

/// One algorithm × parameter-point evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalEntry {
    /// Algorithm display name.
    pub algorithm: String,
    /// Parameter name/value pairs.
    pub params: Vec<(String, String)>,
    /// Quality metrics.
    pub metrics: QualityMetrics,
    /// Wall-clock seconds, end to end from trajectories.
    pub runtime_secs: f64,
}

/// A full cross-algorithm comparison on one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Dataset display name.
    pub dataset: String,
    /// Trajectories evaluated.
    pub trajectories: usize,
    /// Segments in the shared database.
    pub segments: usize,
    /// One entry per algorithm × parameter point.
    pub entries: Vec<EvalEntry>,
}

impl EvalReport {
    /// Validates every entry's metrics plus the runtimes — the smoke gate
    /// CI runs on the bundled fixtures: any NaN or out-of-range value
    /// fails with a message naming the offending entry.
    pub fn validate(&self) -> Result<(), String> {
        for e in &self.entries {
            e.metrics
                .validate()
                .map_err(|msg| format!("{}/{}: {msg}", self.dataset, e.algorithm))?;
            if !e.runtime_secs.is_finite() || e.runtime_secs < 0.0 {
                return Err(format!(
                    "{}/{}: runtime {} is not a finite non-negative number",
                    self.dataset, e.algorithm, e.runtime_secs
                ));
            }
        }
        Ok(())
    }

    /// Serialises the report as JSON. Optional metrics serialise as
    /// `null`; non-finite numbers also map to `null` so the output is
    /// always valid JSON (and [`Self::validate`] rejects them anyway).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_pretty() + "\n"
    }

    /// The report as a [`JsonValue`] tree — what [`Self::to_json`]
    /// serialises, exposed so callers can embed reports in larger
    /// documents (the perf snapshots do) without re-parsing.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("dataset", JsonValue::from(self.dataset.as_str())),
            ("trajectories", JsonValue::from(self.trajectories)),
            ("segments", JsonValue::from(self.segments)),
            (
                "entries",
                JsonValue::array(self.entries.iter().map(EvalEntry::to_json_value)),
            ),
        ])
    }

    /// Renders an aligned text table (one row per entry).
    pub fn to_table(&self) -> String {
        let header = [
            "algorithm".to_string(),
            "parameters".to_string(),
            "silhouette".to_string(),
            "noise".to_string(),
            "clusters".to_string(),
            "ssq".to_string(),
            "runtime".to_string(),
        ];
        let mut rows: Vec<[String; 7]> = vec![header];
        for e in &self.entries {
            let m = &e.metrics;
            rows.push([
                e.algorithm.clone(),
                e.params
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(" "),
                m.silhouette
                    .map(|s| format!("{s:+.3}"))
                    .unwrap_or_else(|| "—".to_string()),
                format!("{:.1}%", m.noise_ratio * 100.0),
                format!("{}", m.cluster_count),
                m.ssq
                    .map(|q| format!("{q:.3}"))
                    .unwrap_or_else(|| "—".to_string()),
                format!("{:.1} ms", e.runtime_secs * 1e3),
            ]);
        }
        let mut widths = [0usize; 7];
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = format!(
            "{} — {} trajectories, {} segments\n",
            self.dataset, self.trajectories, self.segments
        );
        for (r, row) in rows.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .zip(widths)
                .map(|(cell, w)| format!("{cell:<w$}"))
                .collect();
            out.push_str(line.join("  ").trim_end());
            out.push('\n');
            if r == 0 {
                out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
                out.push('\n');
            }
        }
        out
    }
}

impl EvalEntry {
    /// One entry as a [`JsonValue`] object (see
    /// [`EvalReport::to_json_value`]).
    pub fn to_json_value(&self) -> JsonValue {
        let m = &self.metrics;
        JsonValue::object([
            ("algorithm", JsonValue::from(self.algorithm.as_str())),
            (
                "params",
                JsonValue::object(
                    self.params
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::from(v.as_str()))),
                ),
            ),
            ("silhouette", JsonValue::opt_f64(m.silhouette)),
            ("noise_ratio", JsonValue::from(m.noise_ratio)),
            ("cluster_count", JsonValue::from(m.cluster_count)),
            (
                "cluster_sizes",
                JsonValue::object([
                    ("min", JsonValue::from(m.sizes.min)),
                    ("max", JsonValue::from(m.sizes.max)),
                    ("mean", JsonValue::from(m.sizes.mean)),
                    ("median", JsonValue::from(m.sizes.median)),
                ]),
            ),
            ("ssq", JsonValue::opt_f64(m.ssq)),
            ("runtime_secs", JsonValue::from(self.runtime_secs)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SizeStats;

    fn sample_report() -> EvalReport {
        EvalReport {
            dataset: "unit".to_string(),
            trajectories: 3,
            segments: 12,
            entries: vec![EvalEntry {
                algorithm: "traclus-seq".to_string(),
                params: vec![("eps".to_string(), "5".to_string())],
                metrics: QualityMetrics {
                    silhouette: Some(0.75),
                    noise_ratio: 0.25,
                    cluster_count: 2,
                    sizes: SizeStats::from_sizes(vec![5, 4]),
                    ssq: None,
                },
                runtime_secs: 0.001,
            }],
        }
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let json = sample_report().to_json();
        for needle in [
            "\"dataset\": \"unit\"",
            "\"algorithm\": \"traclus-seq\"",
            "\"params\": {\"eps\": \"5\"}",
            "\"silhouette\": 0.75",
            "\"ssq\": null",
            "\"cluster_count\": 2",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Full well-formedness via the shared parser.
        let parsed = JsonValue::parse(&json).expect("report JSON parses");
        assert_eq!(
            parsed.get("dataset").and_then(JsonValue::as_str),
            Some("unit")
        );
    }

    #[test]
    fn json_escapes_strings() {
        let mut r = sample_report();
        r.dataset = "a\"b\\c\n".to_string();
        let json = r.to_json();
        assert!(json.contains("\"dataset\": \"a\\\"b\\\\c\\n\""), "{json}");
        // …and the escaped form parses back to the original.
        let parsed = JsonValue::parse(&json).expect("escaped report parses");
        assert_eq!(
            parsed.get("dataset").and_then(JsonValue::as_str),
            Some("a\"b\\c\n")
        );
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let mut r = sample_report();
        r.entries[0].metrics.silhouette = Some(f64::NAN);
        r.entries[0].runtime_secs = f64::INFINITY;
        let json = r.to_json();
        assert!(json.contains("\"silhouette\": null"), "{json}");
        assert!(json.contains("\"runtime_secs\": null"), "{json}");
    }

    #[test]
    fn table_renders_every_entry() {
        let table = sample_report().to_table();
        assert!(table.contains("traclus-seq"));
        assert!(table.contains("eps=5"));
        assert!(table.contains("25.0%"));
        assert!(table.contains("1.0 ms"));
    }

    #[test]
    fn validate_flags_bad_runtime() {
        let mut r = sample_report();
        r.entries[0].runtime_secs = f64::NAN;
        let err = r.validate().unwrap_err();
        assert!(err.contains("traclus-seq"), "{err}");
    }
}
