//! The comparison report: machine-readable JSON (serde-free, hand-rolled
//! writer — the workspace builds offline) plus an aligned text table for
//! terminals and READMEs.

use crate::metrics::QualityMetrics;

/// One algorithm × parameter-point evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalEntry {
    /// Algorithm display name.
    pub algorithm: String,
    /// Parameter name/value pairs.
    pub params: Vec<(String, String)>,
    /// Quality metrics.
    pub metrics: QualityMetrics,
    /// Wall-clock seconds, end to end from trajectories.
    pub runtime_secs: f64,
}

/// A full cross-algorithm comparison on one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Dataset display name.
    pub dataset: String,
    /// Trajectories evaluated.
    pub trajectories: usize,
    /// Segments in the shared database.
    pub segments: usize,
    /// One entry per algorithm × parameter point.
    pub entries: Vec<EvalEntry>,
}

impl EvalReport {
    /// Validates every entry's metrics plus the runtimes — the smoke gate
    /// CI runs on the bundled fixtures: any NaN or out-of-range value
    /// fails with a message naming the offending entry.
    pub fn validate(&self) -> Result<(), String> {
        for e in &self.entries {
            e.metrics
                .validate()
                .map_err(|msg| format!("{}/{}: {msg}", self.dataset, e.algorithm))?;
            if !e.runtime_secs.is_finite() || e.runtime_secs < 0.0 {
                return Err(format!(
                    "{}/{}: runtime {} is not a finite non-negative number",
                    self.dataset, e.algorithm, e.runtime_secs
                ));
            }
        }
        Ok(())
    }

    /// Serialises the report as JSON. Optional metrics serialise as
    /// `null`; non-finite numbers also map to `null` so the output is
    /// always valid JSON (and [`Self::validate`] rejects them anyway).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"dataset\": {},\n", json_string(&self.dataset)));
        out.push_str(&format!("  \"trajectories\": {},\n", self.trajectories));
        out.push_str(&format!("  \"segments\": {},\n", self.segments));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!(
                "      \"algorithm\": {},\n",
                json_string(&e.algorithm)
            ));
            out.push_str("      \"params\": {");
            for (j, (k, v)) in e.params.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json_string(k), json_string(v)));
            }
            out.push_str("},\n");
            let m = &e.metrics;
            out.push_str(&format!(
                "      \"silhouette\": {},\n",
                json_opt_f64(m.silhouette)
            ));
            out.push_str(&format!(
                "      \"noise_ratio\": {},\n",
                json_f64(m.noise_ratio)
            ));
            out.push_str(&format!("      \"cluster_count\": {},\n", m.cluster_count));
            out.push_str(&format!(
                "      \"cluster_sizes\": {{\"min\": {}, \"max\": {}, \"mean\": {}, \"median\": {}}},\n",
                m.sizes.min,
                m.sizes.max,
                json_f64(m.sizes.mean),
                json_f64(m.sizes.median)
            ));
            out.push_str(&format!("      \"ssq\": {},\n", json_opt_f64(m.ssq)));
            out.push_str(&format!(
                "      \"runtime_secs\": {}\n",
                json_f64(e.runtime_secs)
            ));
            out.push_str(if i + 1 < self.entries.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders an aligned text table (one row per entry).
    pub fn to_table(&self) -> String {
        let header = [
            "algorithm".to_string(),
            "parameters".to_string(),
            "silhouette".to_string(),
            "noise".to_string(),
            "clusters".to_string(),
            "ssq".to_string(),
            "runtime".to_string(),
        ];
        let mut rows: Vec<[String; 7]> = vec![header];
        for e in &self.entries {
            let m = &e.metrics;
            rows.push([
                e.algorithm.clone(),
                e.params
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(" "),
                m.silhouette
                    .map(|s| format!("{s:+.3}"))
                    .unwrap_or_else(|| "—".to_string()),
                format!("{:.1}%", m.noise_ratio * 100.0),
                format!("{}", m.cluster_count),
                m.ssq
                    .map(|q| format!("{q:.3}"))
                    .unwrap_or_else(|| "—".to_string()),
                format!("{:.1} ms", e.runtime_secs * 1e3),
            ]);
        }
        let mut widths = [0usize; 7];
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = format!(
            "{} — {} trajectories, {} segments\n",
            self.dataset, self.trajectories, self.segments
        );
        for (r, row) in rows.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .zip(widths)
                .map(|(cell, w)| format!("{cell:<w$}"))
                .collect();
            out.push_str(line.join("  ").trim_end());
            out.push('\n');
            if r == 0 {
                out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
                out.push('\n');
            }
        }
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_opt_f64(v: Option<f64>) -> String {
    v.map(json_f64).unwrap_or_else(|| "null".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SizeStats;

    fn sample_report() -> EvalReport {
        EvalReport {
            dataset: "unit".to_string(),
            trajectories: 3,
            segments: 12,
            entries: vec![EvalEntry {
                algorithm: "traclus-seq".to_string(),
                params: vec![("eps".to_string(), "5".to_string())],
                metrics: QualityMetrics {
                    silhouette: Some(0.75),
                    noise_ratio: 0.25,
                    cluster_count: 2,
                    sizes: SizeStats::from_sizes(vec![5, 4]),
                    ssq: None,
                },
                runtime_secs: 0.001,
            }],
        }
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let json = sample_report().to_json();
        for needle in [
            "\"dataset\": \"unit\"",
            "\"algorithm\": \"traclus-seq\"",
            "\"params\": {\"eps\": \"5\"}",
            "\"silhouette\": 0.75",
            "\"ssq\": null",
            "\"cluster_count\": 2",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Balanced braces/brackets — a cheap well-formedness check with
        // no JSON parser available offline.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn table_renders_every_entry() {
        let table = sample_report().to_table();
        assert!(table.contains("traclus-seq"));
        assert!(table.contains("eps=5"));
        assert!(table.contains("25.0%"));
        assert!(table.contains("1.0 ms"));
    }

    #[test]
    fn validate_flags_bad_runtime() {
        let mut r = sample_report();
        r.entries[0].runtime_secs = f64::NAN;
        let err = r.validate().unwrap_err();
        assert!(err.contains("traclus-seq"), "{err}");
    }
}
