//! # traclus-eval
//!
//! Survey-scale evaluation for the TRACLUS reproduction.
//!
//! Every earlier test suite in this workspace checks *internal*
//! equivalence (parallel == sequential, stream == batch); this crate adds
//! the missing *external* axes framed by the Bian et al. trajectory-
//! clustering survey (arXiv:1802.06971): clustering quality vs runtime vs
//! parameters, compared across algorithms on the same dataset. Following
//! Rahmani et al. (arXiv:2504.21808), quality is computed at the
//! **segment** level under the paper's composite distance — never on raw
//! points — so TRACLUS and the whole-trajectory baselines are scored on
//! one common substrate:
//!
//! * [`result`] — [`ClusteringResult`], the uniform adapter mapping any
//!   algorithm's output (TRACLUS labels, trajectory assignments, point
//!   labels, an OPTICS ordering) onto per-segment cluster labels over a
//!   shared [`SegmentDatabase`](traclus_core::SegmentDatabase);
//! * [`metrics`] — segment-level silhouette, noise ratio, cluster-size
//!   statistics, and SSQ against representative trajectories, plus range
//!   validation so NaNs cannot slip into reports;
//! * [`report`] — a machine-readable (serde-free) JSON report and an
//!   aligned text table;
//! * [`harness`] — [`evaluate_dataset`], running TRACLUS (sequential,
//!   parallel, streaming) and all four baselines over a parameter grid
//!   with wall-clock capture;
//! * [`parallel`] — [`parallel_map`], the std-only ordered parallel map
//!   the harness uses to score metrics across entries concurrently.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;
pub mod metrics;
pub mod parallel;
pub mod report;
pub mod result;

pub use harness::{evaluate_dataset, EvalConfig};
pub use metrics::{
    cluster_sizes, compute_metrics, compute_metrics_sampled, noise_ratio, segment_silhouette,
    segment_silhouette_sampled, ssq_to_representatives, QualityMetrics, SizeStats,
};
pub use parallel::parallel_map;
pub use report::{EvalEntry, EvalReport};
pub use result::ClusteringResult;
