//! [`evaluate_dataset`]: the cross-algorithm comparison harness.
//!
//! One call runs TRACLUS with all three engines (sequential, sharded
//! parallel, streaming) and the four baseline algorithms (trajectory
//! k-means, regression-mixture EM, point DBSCAN over segment midpoints,
//! OPTICS over segments) over a parameter grid, scores every run with the
//! segment-level metrics of [`crate::metrics`], captures wall-clock
//! runtimes, and returns an [`EvalReport`] — the survey's three axes
//! (quality / runtime / parameters) in one machine-readable object.
//!
//! Runtimes are measured end to end **from trajectories**: the TRACLUS
//! entries include partitioning and representative generation, the
//! streaming entry includes incremental index growth, and the baselines
//! include their own preprocessing (resampling, midpoint extraction) — so
//! the runtime column compares what a user would actually pay.

// xtask:allow-file(wall-clock): runtime capture is this harness's job —
// every Instant::now pair feeds only the report's runtime_seconds column,
// never a clustering decision, so outputs stay input-deterministic.

use std::time::Instant;

use traclus_baselines::{
    dbscan_points, fit_regression_mixture, kmeans_trajectories, optics_segments, KMeansConfig,
    RegressionMixtureConfig,
};
use traclus_core::{
    IndexKind, Parallelism, PartitionConfig, SegmentDatabase, Traclus, TraclusConfig,
};
use traclus_geom::{Point, SegmentDistance, Trajectory};

use crate::metrics::compute_metrics_sampled;
use crate::parallel::parallel_map;
use crate::report::{EvalEntry, EvalReport};
use crate::result::ClusteringResult;

/// The parameter grid and shared pipeline settings of one evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalConfig {
    /// TRACLUS `(ε, MinLns)` points; each is run with the sequential,
    /// parallel and streaming engines.
    pub traclus_params: Vec<(f64, usize)>,
    /// `k` values for trajectory k-means.
    pub kmeans_ks: Vec<usize>,
    /// Component counts for the regression-mixture EM.
    pub mixture_components: Vec<usize>,
    /// `(ε, MinPts)` points for point DBSCAN over segment midpoints.
    pub point_dbscan_params: Vec<(f64, usize)>,
    /// `(ε, MinPts)` points for OPTICS over segments (clusters extracted
    /// at reachability threshold ε).
    pub optics_params: Vec<(f64, usize)>,
    /// Partitioning configuration shared by every segment-level run.
    pub partition: PartitionConfig,
    /// The composite distance shared by clustering and metrics.
    pub distance: SegmentDistance,
    /// Spatial index for ε-neighborhood queries.
    pub index: IndexKind,
    /// Per-(segment, cluster) sampling cap of the silhouette estimator
    /// (`usize::MAX` = exact).
    pub silhouette_cap: usize,
    /// Seed for the sampled estimators and the seeded baselines.
    pub seed: u64,
}

impl EvalConfig {
    /// A one-point grid: TRACLUS at `(eps, min_lns)` and every baseline
    /// at parameters derived from it (point DBSCAN and OPTICS reuse the
    /// same ε and MinLns; k-means and the mixture get `k = 3`). Extend
    /// the vectors for a sweep.
    pub fn single(eps: f64, min_lns: usize) -> Self {
        Self {
            traclus_params: vec![(eps, min_lns)],
            kmeans_ks: vec![3],
            mixture_components: vec![3],
            point_dbscan_params: vec![(eps, min_lns)],
            optics_params: vec![(eps, min_lns)],
            partition: PartitionConfig::default(),
            distance: SegmentDistance::default(),
            index: IndexKind::default(),
            silhouette_cap: 256,
            seed: 17,
        }
    }
}

fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// Runs the full comparison on one dataset and returns the report.
///
/// Trajectory ids must be dense and in slice order
/// (`trajectories[k].id.0 == k` — every loader and generator in this
/// workspace guarantees it). The whole-trajectory baselines return
/// assignments by slice position while the segment database records
/// trajectory *ids*, so a reordered list would silently cross the two;
/// this is asserted up front rather than trusted.
// Wall-clock capture is this function's job: the harness reports measured
// runtimes next to quality metrics, and the readings feed only the
// `runtime_seconds` report field — never a clustering decision.
#[allow(clippy::disallowed_methods)]
pub fn evaluate_dataset(
    dataset: &str,
    trajectories: &[Trajectory<2>],
    config: &EvalConfig,
) -> EvalReport {
    for (k, t) in trajectories.iter().enumerate() {
        assert_eq!(
            t.id.0 as usize, k,
            "trajectory ids must be dense and in slice order (see evaluate_dataset docs)"
        );
    }
    // The shared database every result is scored against. Each engine
    // re-derives its own copy inside the timed region; partitioning is
    // deterministic, so labels align with this one.
    let db = SegmentDatabase::from_trajectories(trajectories, &config.partition, config.distance);
    let mut entries = Vec::new();

    for &(eps, min_lns) in &config.traclus_params {
        let traclus_config = TraclusConfig {
            eps,
            min_lns,
            distance: config.distance,
            partition: config.partition,
            index: config.index,
            ..TraclusConfig::default()
        };
        let params = vec![
            ("eps".to_string(), fmt_f64(eps)),
            ("min_lns".to_string(), min_lns.to_string()),
        ];

        for (name, parallelism) in [
            ("traclus-seq", Parallelism::Sequential),
            ("traclus-par", Parallelism::Available),
        ] {
            let engine = Traclus::new(TraclusConfig {
                parallelism,
                ..traclus_config
            });
            let start = Instant::now();
            let outcome = engine.run(trajectories);
            let runtime = start.elapsed().as_secs_f64();
            entries.push((
                ClusteringResult::from_outcome(name, &outcome)
                    .with_params(params.clone())
                    .with_runtime(runtime),
                db.len(),
            ));
        }

        let engine = Traclus::new(traclus_config);
        let start = Instant::now();
        let mut stream = engine.stream();
        for t in trajectories {
            stream.insert(t);
        }
        let outcome = stream.finish();
        let runtime = start.elapsed().as_secs_f64();
        entries.push((
            ClusteringResult::from_outcome("traclus-stream", &outcome)
                .with_params(params.clone())
                .with_runtime(runtime),
            db.len(),
        ));
    }

    for &k in &config.kmeans_ks {
        let start = Instant::now();
        let result = kmeans_trajectories(
            trajectories,
            &KMeansConfig {
                k,
                seed: config.seed,
                ..KMeansConfig::default()
            },
        );
        let runtime = start.elapsed().as_secs_f64();
        entries.push((
            ClusteringResult::from_trajectory_assignments("kmeans", &db, &result.assignments)
                .with_params(vec![("k".to_string(), k.to_string())])
                .with_runtime(runtime),
            db.len(),
        ));
    }

    for &components in &config.mixture_components {
        let start = Instant::now();
        let model = fit_regression_mixture(
            trajectories,
            &RegressionMixtureConfig {
                components,
                seed: config.seed,
                ..RegressionMixtureConfig::default()
            },
        );
        let runtime = start.elapsed().as_secs_f64();
        entries.push((
            ClusteringResult::from_trajectory_assignments("regmix", &db, &model.assignments)
                .with_params(vec![("components".to_string(), components.to_string())])
                .with_runtime(runtime),
            db.len(),
        ));
    }

    for &(eps, min_pts) in &config.point_dbscan_params {
        // Partition inside the timed span: a user running the segment-
        // substrate baselines "from trajectories" pays for partitioning
        // just like the TRACLUS entries do (the re-derived database is
        // identical to the shared one — partitioning is deterministic).
        let start = Instant::now();
        let own_db =
            SegmentDatabase::from_trajectories(trajectories, &config.partition, config.distance);
        let midpoints: Vec<Point<2>> = (0..own_db.len() as u32)
            .map(|id| own_db.midpoint(id))
            .collect();
        let labels = dbscan_points(&midpoints, eps, min_pts);
        let runtime = start.elapsed().as_secs_f64();
        entries.push((
            ClusteringResult::from_point_labels("point-dbscan", &labels)
                .with_params(vec![
                    ("eps".to_string(), fmt_f64(eps)),
                    ("min_pts".to_string(), min_pts.to_string()),
                ])
                .with_runtime(runtime),
            db.len(),
        ));
    }

    for &(eps, min_pts) in &config.optics_params {
        // Same end-to-end accounting as point DBSCAN above.
        let start = Instant::now();
        let own_db =
            SegmentDatabase::from_trajectories(trajectories, &config.partition, config.distance);
        let index = own_db.build_index(config.index, eps);
        let optics = optics_segments(&own_db, &index, eps, min_pts);
        let runtime = start.elapsed().as_secs_f64();
        entries.push((
            ClusteringResult::from_optics("optics", &optics, eps)
                .with_params(vec![
                    ("eps".to_string(), fmt_f64(eps)),
                    ("min_pts".to_string(), min_pts.to_string()),
                ])
                .with_runtime(runtime),
            db.len(),
        ));
    }

    // Score entries in parallel: silhouette sampling dominates harness
    // time once the grid grows, and each entry's metrics depend only on
    // the shared (read-only) database. Only scoring runs here — every
    // algorithm above executed inside its own timed span already, so
    // parallelising this pass cannot distort the runtime column. The
    // estimators are seeded per entry, and `parallel_map` preserves input
    // order, so the report is byte-identical to the sequential harness.
    let entries = parallel_map(entries, |(result, expected_len)| {
        assert_eq!(
            result.labels.len(),
            *expected_len,
            "{}: labels must cover the shared database",
            result.algorithm
        );
        EvalEntry {
            algorithm: result.algorithm.clone(),
            params: result.params.clone(),
            metrics: compute_metrics_sampled(&db, result, config.silhouette_cap, config.seed),
            runtime_secs: result.runtime_secs,
        }
    });

    EvalReport {
        dataset: dataset.to_string(),
        trajectories: trajectories.len(),
        segments: db.len(),
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traclus_data::{generate_scene, SceneConfig};

    #[test]
    fn harness_runs_all_seven_entries_and_validates() {
        let scene = generate_scene(&SceneConfig {
            per_backbone: 6,
            noise_fraction: 0.1,
            seed: 41,
            ..SceneConfig::default()
        });
        let report = evaluate_dataset("scene", &scene.trajectories, &EvalConfig::single(7.0, 4));
        assert_eq!(
            report.entries.len(),
            7,
            "3 TRACLUS engines + 4 baselines: {:?}",
            report
                .entries
                .iter()
                .map(|e| e.algorithm.as_str())
                .collect::<Vec<_>>()
        );
        report.validate().expect("no NaN / out-of-range metrics");
        // The three TRACLUS engines are provably equivalent, so their
        // quality metrics must agree exactly.
        let traclus: Vec<&EvalEntry> = report
            .entries
            .iter()
            .filter(|e| e.algorithm.starts_with("traclus"))
            .collect();
        assert_eq!(traclus.len(), 3);
        assert_eq!(
            traclus[0].metrics.cluster_count,
            traclus[1].metrics.cluster_count
        );
        assert_eq!(
            traclus[0].metrics.noise_ratio,
            traclus[2].metrics.noise_ratio
        );
        // TRACLUS emits representatives, so SSQ is available there and
        // absent for the whole-trajectory baselines.
        assert!(traclus[0].metrics.ssq.is_some() || traclus[0].metrics.cluster_count == 0);
        let kmeans = report
            .entries
            .iter()
            .find(|e| e.algorithm == "kmeans")
            .expect("kmeans entry");
        assert_eq!(kmeans.metrics.ssq, None);
        assert_eq!(
            kmeans.metrics.noise_ratio, 0.0,
            "assignments cover everything"
        );
    }

    #[test]
    fn grid_sweeps_multiply_entries() {
        let scene = generate_scene(&SceneConfig {
            per_backbone: 4,
            noise_fraction: 0.1,
            seed: 42,
            ..SceneConfig::default()
        });
        let config = EvalConfig {
            traclus_params: vec![(5.0, 4), (9.0, 4)],
            kmeans_ks: vec![2, 4],
            mixture_components: vec![],
            point_dbscan_params: vec![],
            optics_params: vec![],
            ..EvalConfig::single(5.0, 4)
        };
        let report = evaluate_dataset("scene", &scene.trajectories, &config);
        assert_eq!(report.entries.len(), 2 * 3 + 2);
        report.validate().expect("valid");
    }
}
