//! Cross-algorithm sanity on a well-separated fixture: the metrics must
//! track *ground truth*, not just typecheck. On four widely separated
//! corridor bundles, TRACLUS and point DBSCAN must both score
//! near-perfect quality, and degenerate labelings (everything in one
//! cluster; bundles merged pairwise; bundles scrambled) must score
//! strictly worse on the axis where each is defined.

use traclus_baselines::dbscan_points;
use traclus_core::{Parallelism, Traclus, TraclusConfig};
use traclus_eval::{compute_metrics, segment_silhouette, ssq_to_representatives, ClusteringResult};
use traclus_geom::{Point, Point2, Trajectory, TrajectoryId};

/// Four bundles of six straight parallel trajectories at the corners of a
/// 400 × 400 square — well-separated ground truth with no noise.
fn grid_fixture() -> Vec<Trajectory<2>> {
    let anchors = [(0.0, 0.0), (400.0, 0.0), (0.0, 400.0), (400.0, 400.0)];
    let mut out = Vec::new();
    let mut id = 0u32;
    for &(ax, ay) in &anchors {
        for i in 0..6 {
            let y = ay + i as f64 * 0.4;
            let points: Vec<Point2> = (0..11)
                .map(|k| Point2::xy(ax + k as f64 * 4.0, y))
                .collect();
            out.push(Trajectory::new(TrajectoryId(id), points));
            id += 1;
        }
    }
    out
}

fn traclus_config() -> TraclusConfig {
    TraclusConfig {
        eps: 3.0,
        min_lns: 3,
        parallelism: Parallelism::Sequential,
        ..TraclusConfig::default()
    }
}

#[test]
fn traclus_and_point_dbscan_both_score_near_perfect() {
    let trajectories = grid_fixture();
    let outcome = Traclus::new(traclus_config()).run(&trajectories);
    assert_eq!(outcome.clusters.len(), 4, "one cluster per bundle");
    let db = &outcome.database;

    let traclus = ClusteringResult::from_outcome("traclus", &outcome);
    let traclus_metrics = compute_metrics(db, &traclus);
    traclus_metrics.validate().expect("valid metrics");
    let s_traclus = traclus_metrics.silhouette.expect("4 clusters");
    assert!(
        s_traclus > 0.9,
        "TRACLUS on separated bundles must be near-perfect, got {s_traclus}"
    );
    assert!(
        traclus_metrics.noise_ratio < 0.05,
        "almost nothing is noise, got {}",
        traclus_metrics.noise_ratio
    );

    let midpoints: Vec<Point<2>> = (0..db.len() as u32).map(|id| db.midpoint(id)).collect();
    let dbscan =
        ClusteringResult::from_point_labels("point-dbscan", &dbscan_points(&midpoints, 3.0, 3));
    let dbscan_metrics = compute_metrics(db, &dbscan);
    dbscan_metrics.validate().expect("valid metrics");
    assert_eq!(
        dbscan_metrics.cluster_count, 4,
        "midpoint blobs are separable"
    );
    let s_dbscan = dbscan_metrics.silhouette.expect("4 clusters");
    assert!(
        s_dbscan > 0.9,
        "point DBSCAN on separated bundles must be near-perfect, got {s_dbscan}"
    );
}

#[test]
fn one_cluster_degenerate_labeling_scores_strictly_worse() {
    let trajectories = grid_fixture();
    let outcome = Traclus::new(traclus_config()).run(&trajectories);
    let db = &outcome.database;
    let good = ClusteringResult::from_outcome("traclus", &outcome);

    // Degenerate: every segment in one cluster, "represented" by the
    // first bundle's representative alone.
    let one_cluster: Vec<Option<u32>> = vec![Some(0); db.len()];

    // Silhouette is undefined for a single cluster — that alone
    // disqualifies the labeling on the silhouette axis.
    assert_eq!(segment_silhouette(db, &one_cluster), None);

    // On the SSQ axis both labelings are defined, and the degenerate one
    // must be strictly (here: vastly) worse — far-corner bundles are
    // ~400 away from the borrowed representative.
    let ssq_good =
        ssq_to_representatives(db, &good.labels, &good.representatives).expect("covered");
    let first_rep = vec![(0u32, good.representatives[0].1.clone())];
    let ssq_degenerate = ssq_to_representatives(db, &one_cluster, &first_rep).expect("covered");
    assert!(
        ssq_degenerate > 100.0 * ssq_good.max(1e-9),
        "one-cluster labeling must be strictly worse: {ssq_degenerate} vs {ssq_good}"
    );
}

#[test]
fn merged_and_scrambled_labelings_score_strictly_lower_silhouette() {
    let trajectories = grid_fixture();
    let outcome = Traclus::new(traclus_config()).run(&trajectories);
    let db = &outcome.database;
    let good = ClusteringResult::from_outcome("traclus", &outcome);
    let s_good = segment_silhouette(db, &good.labels).expect("4 clusters");

    // Merge the four true clusters pairwise into two.
    let merged: Vec<Option<u32>> = good.labels.iter().map(|l| l.map(|k| k / 2)).collect();
    let s_merged = segment_silhouette(db, &merged).expect("2 clusters");
    assert!(
        s_merged < s_good,
        "merging true clusters must hurt: {s_merged} vs {s_good}"
    );

    // Scramble: alternate labels independent of geometry.
    let scrambled: Vec<Option<u32>> = (0..db.len()).map(|i| Some((i % 2) as u32)).collect();
    let s_scrambled = segment_silhouette(db, &scrambled).expect("2 clusters");
    assert!(
        s_scrambled < 0.0 && s_scrambled < s_merged,
        "geometry-blind labels must score negative: {s_scrambled}"
    );
}
