//! Golden-report regression: `EvalReport::to_json` must stay byte-identical
//! across refactors of the JSON machinery (the writer moved from a private
//! hand-rolled serializer to the shared `traclus-json` crate; this fixture
//! pins the output bytes across that move and any future one).
//!
//! Regenerate the fixture (only when an output change is *intended*) with:
//!
//! ```sh
//! TRACLUS_REGEN_GOLDEN=1 cargo test -p traclus-eval --test golden_report
//! ```

use traclus_eval::{EvalEntry, EvalReport, QualityMetrics, SizeStats};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_report.json"
);

/// A hand-built report exercising every serialization path: multiple
/// entries, empty and multi-pair parameter lists, present and absent
/// optional metrics, string escaping, non-finite values (serialized as
/// `null`), and integer-valued floats.
fn golden_report() -> EvalReport {
    EvalReport {
        dataset: "golden \"fixture\"\n(tab:\t)".to_string(),
        trajectories: 42,
        segments: 1337,
        entries: vec![
            EvalEntry {
                algorithm: "traclus-seq".to_string(),
                params: vec![
                    ("eps".to_string(), "5.5".to_string()),
                    ("min_lns".to_string(), "4".to_string()),
                ],
                metrics: QualityMetrics {
                    silhouette: Some(0.7512345),
                    noise_ratio: 0.25,
                    cluster_count: 3,
                    sizes: SizeStats::from_sizes(vec![10, 7, 4]),
                    ssq: Some(1.25),
                },
                runtime_secs: 0.001953125,
            },
            EvalEntry {
                algorithm: "kmeans".to_string(),
                params: vec![("k".to_string(), "3".to_string())],
                metrics: QualityMetrics {
                    silhouette: None,
                    noise_ratio: 0.0,
                    cluster_count: 2,
                    sizes: SizeStats::from_sizes(vec![12, 9]),
                    ssq: None,
                },
                runtime_secs: 2.5,
            },
            EvalEntry {
                algorithm: "degenerate/\\edge".to_string(),
                params: vec![],
                metrics: QualityMetrics {
                    silhouette: Some(-1.0),
                    noise_ratio: 1.0,
                    cluster_count: 0,
                    sizes: SizeStats::from_sizes(vec![]),
                    ssq: Some(f64::NAN),
                },
                runtime_secs: f64::INFINITY,
            },
        ],
    }
}

#[test]
fn report_json_matches_golden_fixture_byte_for_byte() {
    let json = golden_report().to_json();
    if std::env::var_os("TRACLUS_REGEN_GOLDEN").is_some() {
        std::fs::write(FIXTURE, &json).expect("write golden fixture");
        eprintln!("regenerated {FIXTURE}");
        return;
    }
    let expected = std::fs::read_to_string(FIXTURE).expect(
        "golden fixture missing — regenerate with TRACLUS_REGEN_GOLDEN=1 \
         cargo test -p traclus-eval --test golden_report",
    );
    assert_eq!(
        json, expected,
        "EvalReport::to_json output drifted from the golden fixture; if the \
         change is intended, regenerate with TRACLUS_REGEN_GOLDEN=1"
    );
}

#[test]
fn golden_report_table_still_renders() {
    // The table path shares the same report; a cheap sanity check that the
    // golden construction stays renderable (alignment code panics on none
    // of the edge values).
    let table = golden_report().to_table();
    assert!(table.contains("traclus-seq"));
    assert!(table.contains("kmeans"));
}
