//! Metric invariants, property-tested over random segment databases and
//! random (including adversarial) labelings:
//!
//! * silhouette, when defined, lies in [-1, 1];
//! * noise ratio lies in [0, 1];
//! * every metric is invariant under relabeling cluster ids (the adapter
//!   makes no density promise, so metrics must not care about label
//!   values).

use proptest::prelude::*;
use traclus_core::SegmentDatabase;
use traclus_eval::{
    cluster_sizes, noise_ratio, segment_silhouette, ssq_to_representatives, ClusteringResult,
    SizeStats,
};
use traclus_geom::{
    IdentifiedSegment, Point2, Segment2, SegmentDistance, SegmentId, Trajectory, TrajectoryId,
};

fn db_of(raw: &[(f64, f64, f64, f64)]) -> SegmentDatabase<2> {
    let identified = raw
        .iter()
        .enumerate()
        .map(|(k, &(x1, y1, x2, y2))| {
            IdentifiedSegment::new(
                SegmentId(k as u32),
                TrajectoryId((k % 5) as u32),
                Segment2::xy(x1, y1, x2, y2),
            )
        })
        .collect();
    SegmentDatabase::from_segments(identified, SegmentDistance::default())
}

fn coord() -> impl Strategy<Value = f64> {
    -200.0..200.0f64
}

prop_compose! {
    /// A random database plus a random labeling of it: each element is a
    /// segment with a label drawn from {None, Some(0..5)}.
    fn labeled_db()(raw in prop::collection::vec(
        ((coord(), coord(), coord(), coord()), 0u32..6),
        4..40,
    )) -> (Vec<(f64, f64, f64, f64)>, Vec<Option<u32>>) {
        let segments = raw.iter().map(|(s, _)| *s).collect();
        let labels = raw.iter().map(|&(_, v)| (v < 5).then_some(v)).collect();
        (segments, labels)
    }
}

/// An injective relabeling that scrambles both values and their order.
fn relabel(labels: &[Option<u32>]) -> Vec<Option<u32>> {
    labels.iter().map(|l| l.map(|k| 1000 - 13 * k)).collect()
}

proptest! {
    #[test]
    fn silhouette_is_bounded(case in labeled_db()) {
        let (raw, labels) = case;
        let db = db_of(&raw);
        if let Some(s) = segment_silhouette(&db, &labels) {
            prop_assert!((-1.0..=1.0).contains(&s), "silhouette {s} out of range");
            prop_assert!(s.is_finite());
        }
    }

    #[test]
    fn noise_ratio_is_bounded(case in labeled_db()) {
        let (_, labels) = case;
        let r = noise_ratio(&labels);
        prop_assert!((0.0..=1.0).contains(&r), "noise ratio {r} out of range");
    }

    #[test]
    fn metrics_are_relabeling_invariant(case in labeled_db()) {
        let (raw, labels) = case;
        let db = db_of(&raw);
        let renamed = relabel(&labels);
        prop_assert_eq!(noise_ratio(&labels), noise_ratio(&renamed));
        prop_assert_eq!(cluster_sizes(&labels), cluster_sizes(&renamed));
        let (a, b) = (segment_silhouette(&db, &labels), segment_silhouette(&db, &renamed));
        match (a, b) {
            (None, None) => {}
            (Some(x), Some(y)) => prop_assert!(
                (x - y).abs() < 1e-9,
                "silhouette changed under relabeling: {x} vs {y}"
            ),
            other => prop_assert!(false, "definedness changed: {other:?}"),
        }
    }

    #[test]
    fn ssq_is_relabeling_invariant_and_nonnegative(case in labeled_db()) {
        let (raw, labels) = case;
        let db = db_of(&raw);
        let rep = Trajectory::new(
            TrajectoryId(0),
            vec![Point2::xy(-50.0, 0.0), Point2::xy(50.0, 0.0)],
        );
        let reps: Vec<(u32, Trajectory<2>)> = (0..5).map(|k| (k, rep.clone())).collect();
        let renamed_reps: Vec<(u32, Trajectory<2>)> =
            (0..5).map(|k| (1000 - 13 * k, rep.clone())).collect();
        let a = ssq_to_representatives(&db, &labels, &reps);
        let b = ssq_to_representatives(&db, &relabel(&labels), &renamed_reps);
        match (a, b) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                prop_assert!(x >= 0.0 && x.is_finite());
                prop_assert!(
                    (x - y).abs() < 1e-9 * (1.0 + x.abs()),
                    "SSQ changed under relabeling: {x} vs {y}"
                );
            }
            other => prop_assert!(false, "definedness changed: {other:?}"),
        }
    }

    #[test]
    fn size_stats_are_consistent(case in labeled_db()) {
        let (_, labels) = case;
        let sizes = cluster_sizes(&labels);
        let stats = SizeStats::from_sizes(sizes.clone());
        prop_assert_eq!(stats.clusters, sizes.len());
        let clustered = labels.iter().filter(|l| l.is_some()).count();
        prop_assert_eq!(sizes.iter().sum::<usize>(), clustered);
        if !sizes.is_empty() {
            prop_assert!(stats.min <= stats.max);
            prop_assert!(stats.min as f64 <= stats.mean && stats.mean <= stats.max as f64);
            prop_assert!(stats.min as f64 <= stats.median && stats.median <= stats.max as f64);
        }
    }

    #[test]
    fn cluster_count_matches_distinct_labels(case in labeled_db()) {
        let (_, labels) = case;
        let result = ClusteringResult::<2>::new("x", labels.clone());
        prop_assert_eq!(result.cluster_count(), cluster_sizes(&labels).len());
    }
}
