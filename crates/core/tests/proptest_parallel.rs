//! Property-based equivalence of the sharded parallel clustering path:
//! random segment soups and parameters, parallel output must equal the
//! sequential Figure 12 output exactly, and repeated runs with the same
//! thread count must be bit-identical (determinism).

use proptest::prelude::*;
use traclus_core::{ClusterConfig, IndexKind, LineSegmentClustering, SegmentDatabase};
use traclus_geom::{IdentifiedSegment, Segment2, SegmentDistance, SegmentId, TrajectoryId};

fn coord() -> impl Strategy<Value = f64> {
    -150.0..150.0f64
}

prop_compose! {
    fn segment_set(max: usize)(
        raw in prop::collection::vec((coord(), coord(), coord(), coord()), 1..max)
    ) -> Vec<IdentifiedSegment<2>> {
        raw.into_iter().enumerate().map(|(k, (x1, y1, x2, y2))| {
            IdentifiedSegment::new(
                SegmentId(k as u32),
                TrajectoryId((k % 7) as u32),
                Segment2::xy(x1, y1, x2, y2),
            )
        }).collect()
    }
}

fn index_kind(sel: u8) -> IndexKind {
    match sel % 3 {
        0 => IndexKind::Linear,
        1 => IndexKind::Grid,
        _ => IndexKind::RTree,
    }
}

proptest! {
    #[test]
    fn parallel_equals_sequential_on_random_inputs(
        segments in segment_set(60),
        eps in 0.5..60.0f64,
        min_lns in 2usize..6,
        weighted in 0u8..2,
        kind in 0u8..3,
        threads in 2usize..9,
    ) {
        let db = SegmentDatabase::from_segments(segments, SegmentDistance::default());
        let config = ClusterConfig {
            weighted: weighted == 1,
            index: index_kind(kind),
            min_trajectories: Some(2),
            ..ClusterConfig::new(eps, min_lns)
        };
        let algo = LineSegmentClustering::new(&db, config);
        let sequential = algo.run();
        let parallel = algo.run_parallel(threads);
        prop_assert_eq!(
            &sequential, &parallel,
            "parallel != sequential at eps={}, min_lns={}, t={}",
            eps, min_lns, threads
        );
        // Determinism: same thread count, same bits.
        let again = algo.run_parallel(threads);
        prop_assert_eq!(&parallel, &again, "nondeterministic at t={}", threads);
    }

    #[test]
    fn thread_counts_agree_with_each_other(
        segments in segment_set(40),
        eps in 1.0..40.0f64,
        min_lns in 2usize..5,
    ) {
        // Transitivity check run directly across counts, including counts
        // far above the segment count (mostly-empty shards).
        let db = SegmentDatabase::from_segments(segments, SegmentDistance::default());
        let algo = LineSegmentClustering::new(&db, ClusterConfig::new(eps, min_lns));
        let reference = algo.run_parallel(2);
        for t in [3usize, 5, 16] {
            prop_assert_eq!(&reference, &algo.run_parallel(t), "t=2 vs t={}", t);
        }
    }

    #[test]
    fn degenerate_weights_force_full_scan_equivalence(
        segments in segment_set(30),
        eps in 0.5..30.0f64,
        threads in 2usize..6,
    ) {
        // Zero parallel weight disables the conservative index filter; the
        // sharded path must still agree with the sequential full scan.
        let dist = SegmentDistance::new(
            traclus_geom::DistanceWeights::new(1.0, 0.0, 1.0),
            traclus_geom::AngleMode::Directed,
        );
        let db = SegmentDatabase::from_segments(segments, dist);
        let algo = LineSegmentClustering::new(&db, ClusterConfig::new(eps, 2));
        prop_assert_eq!(algo.run(), algo.run_parallel(threads));
    }
}
