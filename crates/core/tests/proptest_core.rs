//! Property-based tests of the core algorithms: MDL cost structure,
//! suppression monotonicity, clustering label consistency, and
//! representative-sweep sanity.

use proptest::prelude::*;
use traclus_core::{
    approximate_partition, representative_trajectory, Cluster, ClusterConfig, ClusterId, IndexKind,
    LineSegmentClustering, MdlCost, PartitionConfig, RepresentativeConfig, SegmentDatabase,
    SegmentLabel,
};
use traclus_geom::{IdentifiedSegment, Point2, Segment2, SegmentDistance, SegmentId, TrajectoryId};

fn coord() -> impl Strategy<Value = f64> {
    -200.0..200.0f64
}

prop_compose! {
    fn polyline(max_len: usize)(
        raw in prop::collection::vec((coord(), coord()), 3..max_len)
    ) -> Vec<Point2> {
        raw.into_iter().map(|(x, y)| Point2::xy(x, y)).collect()
    }
}

prop_compose! {
    fn segment_set(max: usize)(
        raw in prop::collection::vec((coord(), coord(), coord(), coord()), 1..max)
    ) -> Vec<IdentifiedSegment<2>> {
        raw.into_iter().enumerate().map(|(k, (x1, y1, x2, y2))| {
            IdentifiedSegment::new(
                SegmentId(k as u32),
                TrajectoryId((k % 5) as u32),
                Segment2::xy(x1, y1, x2, y2),
            )
        }).collect()
    }
}

prop_compose! {
    /// A non-negative component weight, zero with probability 1/4.
    fn weight()(sel in 0u8..4, w in 0.01..5.0f64) -> f64 {
        if sel == 0 { 0.0 } else { w }
    }
}

proptest! {
    #[test]
    fn mdl_bits_are_monotone_nonnegative(x in 0.0..1e9f64, y in 0.0..1e9f64,
                                         precision in 0.001..100.0f64) {
        let cost = MdlCost::with_precision(precision);
        prop_assert!(cost.bits(x) >= 0.0);
        if x <= y {
            prop_assert!(cost.bits(x) <= cost.bits(y) + 1e-12, "monotone in magnitude");
        }
    }

    #[test]
    fn coarser_precision_never_costs_more_bits(x in 0.0..1e6f64,
                                               fine in 0.001..1.0f64,
                                               factor in 1.0..100.0f64) {
        let fine_cost = MdlCost::with_precision(fine);
        let coarse_cost = MdlCost::with_precision(fine * factor);
        prop_assert!(coarse_cost.bits(x) <= fine_cost.bits(x) + 1e-12,
            "coarser δ encodes with fewer bits");
    }

    #[test]
    fn mdl_nopar_is_additive(points in polyline(20)) {
        // L(H) of "keep the original edges" decomposes over any interior
        // split point — the property the DP optimum relies on.
        let config = PartitionConfig::default();
        let n = points.len();
        for mid in 1..n - 1 {
            let whole = config.mdl_nopar(&points, 0, n - 1);
            let split = config.mdl_nopar(&points, 0, mid) + config.mdl_nopar(&points, mid, n - 1);
            prop_assert!((whole - split).abs() < 1e-9, "additivity broken at {mid}");
        }
    }

    #[test]
    fn suppression_is_monotone_in_partition_count(points in polyline(30),
                                                  s1 in 0.0..3.0f64, extra in 0.0..5.0f64) {
        let base = approximate_partition(
            &PartitionConfig { suppression: s1, ..PartitionConfig::default() },
            &points,
        );
        let more = approximate_partition(
            &PartitionConfig { suppression: s1 + extra, ..PartitionConfig::default() },
            &points,
        );
        prop_assert!(
            more.partition_count() <= base.partition_count(),
            "more suppression can only merge further: {} vs {}",
            more.partition_count(),
            base.partition_count()
        );
    }

    #[test]
    fn clustering_labels_partition_the_database(segments in segment_set(40),
                                                eps in 0.5..50.0f64,
                                                min_lns in 2usize..5) {
        let db = SegmentDatabase::from_segments(segments, SegmentDistance::default());
        let clustering = LineSegmentClustering::new(
            &db,
            ClusterConfig {
                index: IndexKind::RTree,
                min_trajectories: Some(2),
                ..ClusterConfig::new(eps, min_lns)
            },
        )
        .run();
        prop_assert_eq!(clustering.labels.len(), db.len());
        // Member lists and labels are mutually consistent and disjoint.
        let mut assigned = vec![false; db.len()];
        for cluster in &clustering.clusters {
            prop_assert!(!cluster.members.is_empty());
            prop_assert!(cluster.trajectory_cardinality() >= 2);
            for &m in &cluster.members {
                prop_assert_eq!(clustering.labels[m as usize], SegmentLabel::Cluster(cluster.id));
                prop_assert!(!assigned[m as usize]);
                assigned[m as usize] = true;
            }
        }
        for (i, was_assigned) in assigned.iter().enumerate() {
            if !was_assigned {
                prop_assert_eq!(clustering.labels[i], SegmentLabel::Noise);
            }
        }
    }

    #[test]
    fn core_segments_have_dense_neighborhoods(segments in segment_set(30),
                                              eps in 1.0..30.0f64,
                                              min_lns in 2usize..5) {
        // Every cluster must contain at least one core segment (DBSCAN
        // structure: clusters are grown from cores).
        let db = SegmentDatabase::from_segments(segments, SegmentDistance::default());
        let clustering = LineSegmentClustering::new(
            &db,
            ClusterConfig {
                index: IndexKind::Linear,
                min_trajectories: Some(1),
                ..ClusterConfig::new(eps, min_lns)
            },
        )
        .run();
        let index = db.build_index(IndexKind::Linear, eps);
        for cluster in &clustering.clusters {
            let has_core = cluster.members.iter().any(|&m| {
                db.neighborhood(&index, m, eps).len() >= min_lns
            });
            prop_assert!(has_core, "cluster {:?} has no core segment", cluster.id);
        }
    }

    #[test]
    fn index_kinds_and_batched_kernel_agree(segments in segment_set(30),
                                            eps_sel in 0u8..4,
                                            eps_raw in 0.5..40.0f64,
                                            wp in weight(), wl in weight(), wa in weight()) {
        // Every acceleration arm must produce the identical neighborhood:
        // linear scan, grid (including the eps = 0 bounding-box fallback),
        // and R-tree, under arbitrary non-negative weights — zero w∥/w⊥
        // disable the conservative filter and force full scans. The
        // batched kernel must refine to the same bits as the scalar one.
        let eps = if eps_sel == 0 { 0.0 } else { eps_raw };
        let dist = SegmentDistance::new(
            traclus_geom::DistanceWeights::new(wp, wl, wa),
            traclus_geom::AngleMode::Directed,
        );
        let db = SegmentDatabase::from_segments(segments, dist);
        let linear = db.build_index(IndexKind::Linear, eps);
        let grid = db.build_index(IndexKind::Grid, eps);
        let rtree = db.build_index(IndexKind::RTree, eps);
        let candidates: Vec<u32> = (0..db.len() as u32).collect();
        let mut dists = Vec::new();
        for id in 0..db.len() as u32 {
            let a = db.neighborhood(&linear, id, eps);
            let b = db.neighborhood(&grid, id, eps);
            let c = db.neighborhood(&rtree, id, eps);
            prop_assert_eq!(&a, &b, "grid vs linear at id {}", id);
            prop_assert_eq!(&a, &c, "rtree vs linear at id {}", id);
            db.distances_into(id, &candidates, &mut dists);
            for (&cand, &d) in candidates.iter().zip(&dists) {
                prop_assert_eq!(d.to_bits(), db.distance(id, cand).to_bits(),
                    "batched != scalar for ({}, {})", id, cand);
            }
        }
    }

    #[test]
    fn representative_points_are_finite_and_sweep_ordered(segments in segment_set(25)) {
        let db = SegmentDatabase::from_segments(segments, SegmentDistance::default());
        let cluster = Cluster {
            id: ClusterId(0),
            members: (0..db.len() as u32).collect(),
            trajectories: (0..5).map(TrajectoryId).collect(),
        };
        let rep = representative_trajectory(&db, &cluster, &RepresentativeConfig::new(2, 0.0));
        for p in &rep.points {
            prop_assert!(p.is_finite());
        }
        prop_assert!(rep.points.len() <= 2 * db.len(), "at most one point per endpoint event");
    }
}
