//! Bit-identity harness for the filter-and-refine pruning path.
//!
//! Pruning is a performance knob, never a semantics knob: the lower
//! bounds of `traclus_geom::lower_bound` are admissible for the computed
//! distance, so every candidate they discard would have failed `d ≤ ε`
//! anyway, and the surviving candidates are scored by the unchanged exact
//! kernel. This suite locks the claim down empirically across every
//! execution strategy:
//!
//! * sequential `run()` with pruning on vs off — exact `Clustering`
//!   equality (labels, member lists, filter diagnostics) plus equal
//!   representative trajectories, on hurricane-like, grid, and
//!   random-walk fixtures;
//! * `run_parallel(t)` for t ∈ {1, 2, 4, 8} (and `RUST_TEST_THREADS`
//!   when set) — pruned parallel output equals the unpruned sequential
//!   output bit for bit;
//! * streaming insert/remove interleavings — a pruning engine and a
//!   non-pruning engine fed the same operations agree on `snapshot()`
//!   after every single operation (proptest-generated scenes included);
//! * counter sanity — `candidates = pruned + refined` on every run, and
//!   all prune counters stay zero when pruning is disabled.

use proptest::prelude::*;
use traclus_core::{
    representatives_for, ClusterConfig, ClusterStats, IncrementalClustering, IndexKind,
    LineSegmentClustering, PartitionConfig, PruneStats, SegmentDatabase, TraclusConfig,
};
use traclus_data::{HurricaneConfig, HurricaneGenerator};
use traclus_geom::{
    IdentifiedSegment, Point2, Segment2, SegmentDistance, SegmentId, Trajectory, TrajectoryId,
};

/// Thread counts every fixture is checked under.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// `RUST_TEST_THREADS`, reused as an extra thread count so CI sweeps
/// shard counts the hard-coded list misses (same idiom as the parallel
/// equivalence suite).
fn env_thread_count() -> Option<usize> {
    std::env::var("RUST_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0 && t <= 64)
}

/// Every counter invariant one run's stats must satisfy.
fn assert_counters_coherent(stats: &ClusterStats, pruning: bool, context: &str) {
    let p = &stats.prune;
    assert_eq!(
        p.candidates,
        p.pruned_total() + p.refined,
        "{context}: candidates must split into pruned + refined: {p:?}"
    );
    if !pruning {
        assert_eq!(
            *p,
            PruneStats::default(),
            "{context}: counters must stay zero with pruning off"
        );
    }
}

/// Asserts pruned and unpruned execution agree bit for bit — sequentially
/// and across every thread count — and that the counters are coherent.
fn assert_prune_equivalent(db: &SegmentDatabase<2>, config: ClusterConfig, fixture: &str) {
    let on = LineSegmentClustering::new(
        db,
        ClusterConfig {
            pruning: true,
            ..config
        },
    );
    let off = LineSegmentClustering::new(
        db,
        ClusterConfig {
            pruning: false,
            ..config
        },
    );
    let (c_on, s_on) = on.run_with_stats();
    let (c_off, s_off) = off.run_with_stats();
    assert_eq!(c_on, c_off, "{fixture}: pruning changed the clustering");
    assert_counters_coherent(&s_on, true, fixture);
    assert_counters_coherent(&s_off, false, fixture);

    // Representative trajectories are a pure function of (db, clustering),
    // but pin them anyway: they are the pipeline's user-facing output.
    let rep_config = TraclusConfig {
        eps: config.eps.max(f64::MIN_POSITIVE),
        min_lns: (config.min_lns as usize).max(1),
        weighted: config.weighted,
        ..TraclusConfig::default()
    };
    assert_eq!(
        representatives_for(&rep_config, db, &c_on),
        representatives_for(&rep_config, db, &c_off),
        "{fixture}: representatives diverge"
    );

    let mut counts: Vec<usize> = THREAD_COUNTS.to_vec();
    if let Some(extra) = env_thread_count() {
        counts.push(extra);
    }
    for t in counts {
        let (p_on, ps_on) = on.run_parallel_with_stats(t);
        let (p_off, ps_off) = off.run_parallel_with_stats(t);
        assert_eq!(
            p_on, c_off,
            "{fixture}: pruned parallel t={t} diverges from unpruned sequential"
        );
        assert_eq!(p_off, c_off, "{fixture}: unpruned parallel t={t} diverges");
        assert_counters_coherent(&ps_on, true, &format!("{fixture} t={t}"));
        assert_counters_coherent(&ps_off, false, &format!("{fixture} t={t}"));
    }
}

fn identified(segments: Vec<(Segment2, u32)>) -> SegmentDatabase<2> {
    let segs = segments
        .into_iter()
        .enumerate()
        .map(|(k, (s, tr))| IdentifiedSegment::new(SegmentId(k as u32), TrajectoryId(tr), s))
        .collect();
    SegmentDatabase::from_segments(segs, SegmentDistance::default())
}

/// Hurricane-like fixture: the synthetic Best-Track stand-in, partitioned
/// by the real MDL phase.
fn hurricane_db(tracks: usize, seed: u64) -> SegmentDatabase<2> {
    let trajectories = HurricaneGenerator::new(HurricaneConfig {
        tracks,
        seed,
        ..HurricaneConfig::default()
    })
    .generate();
    SegmentDatabase::from_trajectories(
        &trajectories,
        &PartitionConfig::default(),
        SegmentDistance::default(),
    )
}

/// Grid fixture: bundles of parallel segments on a lattice plus scattered
/// singletons — spatially spread, so the MBR tier has real work.
fn grid_db() -> SegmentDatabase<2> {
    let mut entries = Vec::new();
    for gx in 0..4 {
        for gy in 0..3 {
            let (x0, y0) = (gx as f64 * 40.0, gy as f64 * 30.0);
            let bundle_size = 3 + ((gx + gy) % 3);
            for i in 0..bundle_size {
                entries.push((
                    Segment2::xy(x0, y0 + 0.5 * i as f64, x0 + 12.0, y0 + 0.5 * i as f64),
                    (gx * 10 + gy * 3 + i) as u32,
                ));
            }
        }
    }
    for k in 0..6 {
        let x = 17.0 + 23.0 * k as f64;
        entries.push((
            Segment2::xy(x, 15.0 + k as f64, x + 4.0, 15.5 + k as f64),
            (100 + k) as u32,
        ));
    }
    identified(entries)
}

/// Random-walk fixture: deterministic pseudo-random segment soup
/// (xorshift64*), varied density, many trajectories.
fn random_walk_db(seed: u64, n: usize) -> SegmentDatabase<2> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 40) as f64) / (1u64 << 24) as f64
    };
    let mut entries = Vec::new();
    let (mut x, mut y) = (0.0f64, 0.0f64);
    for k in 0..n {
        let dx = 4.0 + 6.0 * next();
        let dy = 8.0 * next() - 4.0;
        let (nx, ny) = (x + dx, y + dy);
        entries.push((Segment2::xy(x, y, nx, ny), (k % 17) as u32));
        x = nx;
        y = ny;
        if next() < 0.15 {
            x = 200.0 * next();
            y = 150.0 * next();
        }
    }
    identified(entries)
}

#[test]
fn hurricane_fixture_is_prune_equivalent() {
    let db = hurricane_db(40, 2007);
    assert_prune_equivalent(&db, ClusterConfig::new(5.0, 5), "hurricane eps=5");
    assert_prune_equivalent(&db, ClusterConfig::new(2.0, 3), "hurricane eps=2");
}

#[test]
fn hurricane_fixture_actually_prunes() {
    // Guard against the suite silently passing because the filter never
    // fires: on the spread-out hurricane fixture at a tight ε the MBR
    // tier must discard a substantial share of candidates.
    let db = hurricane_db(40, 2007);
    let (_, stats) = LineSegmentClustering::new(&db, ClusterConfig::new(2.0, 3)).run_with_stats();
    let p = stats.prune;
    assert!(p.candidates > 0, "no candidates examined");
    assert!(
        p.pruned_total() * 10 >= p.candidates,
        "filter discarded under 10% of candidates — the harness is not \
         exercising the prune path: {p:?}"
    );
}

#[test]
fn grid_fixture_is_prune_equivalent_across_index_kinds() {
    let db = grid_db();
    for kind in [IndexKind::Linear, IndexKind::Grid, IndexKind::RTree] {
        let config = ClusterConfig {
            index: kind,
            min_trajectories: Some(2),
            ..ClusterConfig::new(1.5, 3)
        };
        assert_prune_equivalent(&db, config, &format!("grid index={kind:?}"));
    }
}

#[test]
fn random_walk_fixture_is_prune_equivalent() {
    for seed in [3, 99, 2026] {
        let db = random_walk_db(seed, 300);
        assert_prune_equivalent(
            &db,
            ClusterConfig::new(6.0, 4),
            &format!("walk seed={seed}"),
        );
        assert_prune_equivalent(
            &db,
            ClusterConfig {
                weighted: true,
                min_trajectories: Some(2),
                ..ClusterConfig::new(3.0, 3)
            },
            &format!("walk weighted seed={seed}"),
        );
    }
}

#[test]
fn degenerate_databases_are_prune_equivalent() {
    let empty = identified(vec![]);
    assert_prune_equivalent(&empty, ClusterConfig::new(1.0, 2), "empty");
    let single = identified(vec![(Segment2::xy(0.0, 0.0, 5.0, 0.0), 0)]);
    assert_prune_equivalent(&single, ClusterConfig::new(1.0, 2), "single");
    let stacked = identified(
        (0..7)
            .map(|i| (Segment2::xy(1.0, 1.0, 1.0, 1.0), i))
            .collect(),
    );
    assert_prune_equivalent(&stacked, ClusterConfig::new(0.5, 3), "stacked");
}

// ---------------------------------------------------------------------------
// Streaming: pruning vs no-pruning engines fed identical operation streams.
// ---------------------------------------------------------------------------

fn stream_config(eps: f64, min_lns: usize, pruning: bool) -> TraclusConfig {
    TraclusConfig {
        eps,
        min_lns,
        pruning,
        ..TraclusConfig::default()
    }
}

/// Runs the same insert/remove interleaving through a pruning and a
/// non-pruning engine, asserting snapshot equality after every operation
/// and counter coherence at the end.
fn assert_stream_equivalent(
    trajectories: &[Trajectory<2>],
    removals: &[(usize, u32)],
    eps: f64,
    min_lns: usize,
    context: &str,
) {
    let mut on = IncrementalClustering::<2>::new(stream_config(eps, min_lns, true));
    let mut off = IncrementalClustering::<2>::new(stream_config(eps, min_lns, false));
    let mut removal_iter = removals.iter().peekable();
    for (step, tr) in trajectories.iter().enumerate() {
        on.insert(tr);
        off.insert(tr);
        assert_eq!(
            on.snapshot(),
            off.snapshot(),
            "{context}: snapshots diverge after insert #{step}"
        );
        while let Some(&&(at, victim)) = removal_iter.peek() {
            if at != step {
                break;
            }
            removal_iter.next();
            let r_on = on.remove_trajectory(TrajectoryId(victim));
            let r_off = off.remove_trajectory(TrajectoryId(victim));
            assert_eq!(
                r_on, r_off,
                "{context}: removal reports diverge at step {step}"
            );
            assert_eq!(
                on.snapshot(),
                off.snapshot(),
                "{context}: snapshots diverge after removing {victim} at step {step}"
            );
        }
    }
    let (s_on, s_off) = (on.stats(), off.stats());
    assert_eq!(
        s_on.prune_candidates,
        s_on.pruned_mbr + s_on.pruned_midpoint + s_on.pruned_angle + s_on.prune_refined,
        "{context}: stream candidates must split into pruned + refined"
    );
    assert_eq!(
        (
            s_off.prune_candidates,
            s_off.pruned_mbr,
            s_off.pruned_midpoint,
            s_off.pruned_angle,
            s_off.prune_refined,
        ),
        (0, 0, 0, 0, 0),
        "{context}: prune counters must stay zero with pruning off"
    );
    // The counters are the only permitted divergence between the engines.
    let mut s_on_zeroed = s_on;
    s_on_zeroed.prune_candidates = 0;
    s_on_zeroed.pruned_mbr = 0;
    s_on_zeroed.pruned_midpoint = 0;
    s_on_zeroed.pruned_angle = 0;
    s_on_zeroed.prune_refined = 0;
    assert_eq!(
        s_on_zeroed, s_off,
        "{context}: non-prune stream stats diverge"
    );
}

/// Jittered corridor trajectories with ids `0..n` — overlapping enough for
/// clusters, borders, and repair-vs-rebuild decisions.
fn corridor_trajectories(n: usize) -> Vec<Trajectory<2>> {
    (0..n)
        .map(|i| {
            let jitter = i as f64 * 0.4;
            Trajectory::new(
                TrajectoryId(i as u32),
                (0..20)
                    .map(|k| Point2::xy(k as f64 * 5.0, jitter + (k as f64 * 0.7).sin()))
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn streaming_interleavings_are_prune_equivalent() {
    let trajectories = corridor_trajectories(10);
    // Insert-only.
    assert_stream_equivalent(&trajectories, &[], 4.0, 3, "stream insert-only");
    // Mid-stream removals, including one forcing repair right after its
    // insertion and a batch of removals at the end.
    assert_stream_equivalent(
        &trajectories,
        &[(4, 2), (6, 5), (9, 0), (9, 7)],
        4.0,
        3,
        "stream interleaved removals",
    );
    // Tight ε: mostly noise, different repair decisions.
    assert_stream_equivalent(&trajectories, &[(5, 1), (8, 3)], 0.8, 3, "stream tight eps");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Proptest-generated batch scenes: random jittered-corridor segment
    // soups under random ε, pruned vs unpruned, all execution strategies.
    #[test]
    fn random_scenes_are_prune_equivalent(
        raw in prop::collection::vec(
            (-40.0..40.0f64, -30.0..30.0f64, 2.0..14.0f64, -3.0..3.0f64),
            8..60,
        ),
        eps in 0.5..12.0f64,
        min_lns in 2usize..5,
    ) {
        let entries: Vec<(Segment2, u32)> = raw
            .iter()
            .enumerate()
            .map(|(k, &(x, y, dx, dy))| {
                (Segment2::xy(x, y, x + dx, y + dy), (k % 7) as u32)
            })
            .collect();
        let db = identified(entries);
        assert_prune_equivalent(
            &db,
            ClusterConfig {
                min_trajectories: Some(2),
                ..ClusterConfig::new(eps, min_lns)
            },
            "proptest scene",
        );
    }

    // Proptest-generated streaming scenes: random corridor pools with a
    // random removal schedule, pruning vs no-pruning engines compared
    // after every operation.
    #[test]
    fn random_streams_are_prune_equivalent(
        pool_size in 4usize..9,
        removal_raw in prop::collection::vec((0usize..9, 0u32..9), 0..5),
        eps in 1.0..6.0f64,
    ) {
        let trajectories = corridor_trajectories(pool_size);
        let mut removals: Vec<(usize, u32)> = removal_raw
            .into_iter()
            .map(|(at, victim)| (at % pool_size, victim % pool_size as u32))
            .collect();
        removals.sort_unstable();
        removals.dedup_by_key(|r| r.1);
        assert_stream_equivalent(&trajectories, &removals, eps, 3, "proptest stream");
    }
}
