//! Concurrent-equivalence harness for [`SnapshotCell`]: one writer
//! ingests a dataset and publishes after every insert while reader
//! threads concurrently pin snapshots. Every snapshot any reader ever
//! observes must be bit-identical to the batch pipeline's output on the
//! prefix the snapshot claims — label for label, representative for
//! representative. There is no "close enough" here: the cell either
//! publishes exact prefix states or it is broken.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use traclus_core::{ClusterSnapshot, SnapshotCell, Traclus, TraclusConfig};
use traclus_data::{HurricaneConfig, HurricaneGenerator};
use traclus_geom::Trajectory;

fn fixture() -> (TraclusConfig, Vec<Trajectory<2>>) {
    let config = TraclusConfig {
        eps: 6.0,
        min_lns: 4,
        ..TraclusConfig::default()
    };
    let trajectories = HurricaneGenerator::new(HurricaneConfig {
        tracks: 24,
        seed: 97,
        ..HurricaneConfig::default()
    })
    .generate();
    (config, trajectories)
}

/// Asserts a snapshot equals the batch pipeline on its claimed prefix.
fn assert_is_batch_prefix(
    snap: &ClusterSnapshot<2>,
    config: TraclusConfig,
    trajectories: &[Trajectory<2>],
) {
    let prefix = snap.trajectories();
    assert!(prefix <= trajectories.len(), "prefix in range");
    let batch = Traclus::new(config).run(&trajectories[..prefix]);
    assert_eq!(
        snap.clustering(),
        &batch.clustering,
        "snapshot at epoch {} must equal batch clustering on its {}-trajectory prefix",
        snap.epoch(),
        prefix
    );
    assert_eq!(
        snap.clusters(),
        &batch.clusters[..],
        "snapshot representatives must equal the batch tail on the same prefix"
    );
}

#[test]
fn every_observed_snapshot_is_a_batch_prefix() {
    let (config, trajectories) = fixture();
    let cell = Arc::new(SnapshotCell::<2>::new(config));
    let done = Arc::new(AtomicBool::new(false));
    const READERS: usize = 3;

    // Readers spin on `load`, keeping every distinct epoch they see; the
    // writer ingests and publishes. Verification happens after the join so
    // reader loops stay tight (maximising interleavings) and failures
    // propagate as plain panics.
    let observed: Vec<Vec<Arc<ClusterSnapshot<2>>>> = std::thread::scope(|s| {
        let mut readers = Vec::new();
        for _ in 0..READERS {
            let cell = Arc::clone(&cell);
            let done = Arc::clone(&done);
            readers.push(s.spawn(move || {
                let mut seen: Vec<Arc<ClusterSnapshot<2>>> = Vec::new();
                loop {
                    let snap = cell.load();
                    if seen.last().map(|p| p.epoch()) != Some(snap.epoch()) {
                        seen.push(snap);
                    }
                    if done.load(Ordering::SeqCst) {
                        break;
                    }
                    std::thread::yield_now();
                }
                seen
            }));
        }

        let mut engine = Traclus::new(config).stream();
        for t in &trajectories {
            engine.insert(t);
            cell.publish_from(&engine);
        }
        done.store(true, Ordering::SeqCst);

        readers
            .into_iter()
            .map(|r| r.join().expect("reader panicked"))
            .collect()
    });

    let mut distinct_epochs: Vec<u64> = Vec::new();
    for seen in &observed {
        // Each reader's epochs are strictly increasing (publications are
        // monotonic and readers record on change only).
        for pair in seen.windows(2) {
            assert!(pair[0].epoch() < pair[1].epoch(), "epochs move forward");
        }
        for snap in seen {
            distinct_epochs.push(snap.epoch());
            assert_is_batch_prefix(snap, config, &trajectories);
        }
    }
    distinct_epochs.sort_unstable();
    distinct_epochs.dedup();
    assert!(
        !distinct_epochs.is_empty(),
        "readers observed at least one published state"
    );

    // The final published state covers the whole dataset.
    let last = cell.load();
    assert_eq!(last.trajectories(), trajectories.len());
    assert_eq!(last.epoch(), trajectories.len() as u64);
    assert_is_batch_prefix(&last, config, &trajectories);
}

#[test]
fn pinned_snapshots_survive_later_publications_unchanged() {
    let (config, trajectories) = fixture();
    let cell = SnapshotCell::<2>::new(config);
    let mut engine = Traclus::new(config).stream();

    let mut pinned = Vec::new();
    for t in &trajectories {
        engine.insert(t);
        pinned.push(cell.publish_from(&engine));
    }

    // Every pinned Arc still describes its own prefix, bit-identical,
    // even though dozens of newer snapshots were published after it.
    for (k, snap) in pinned.iter().enumerate() {
        assert_eq!(snap.trajectories(), k + 1);
        assert_is_batch_prefix(snap, config, &trajectories);
    }
}
