//! Equivalence harness for the sharded parallel clustering path.
//!
//! `run_parallel(t)` must produce the same clustering as the sequential
//! `run()` for every thread count — the design argument lives in
//! `traclus_core::shard`, and this suite locks it down empirically:
//!
//! * canonical comparison (clusters as member-id sets, noise sets exact)
//!   for t ∈ {1, 2, 4, 8} on hurricane-like, grid, and random-walk
//!   fixtures;
//! * a border-merge regression shaped like the PR 2 stolen-border bug,
//!   spanning ≥ 3 shard tiles;
//! * an extra thread count taken from `RUST_TEST_THREADS` when set, so CI
//!   sweeps shard counts that the hard-coded list misses.

use traclus_core::{
    ClusterConfig, Clustering, IndexKind, LineSegmentClustering, PartitionConfig, SegmentDatabase,
    SegmentLabel, ShardPlan,
};
use traclus_data::{HurricaneConfig, HurricaneGenerator};
use traclus_geom::{
    IdentifiedSegment, Point2, Segment2, SegmentDistance, SegmentId, Trajectory, TrajectoryId,
};

/// Thread counts every fixture is checked under.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Clusters as sorted member-id sets, sorted by first member — the
/// renumbering-invariant canonical form.
fn canonical_clusters(clustering: &Clustering) -> Vec<Vec<u32>> {
    let mut sets: Vec<Vec<u32>> = clustering
        .clusters
        .iter()
        .map(|c| {
            let mut m = c.members.clone();
            m.sort_unstable();
            m
        })
        .collect();
    sets.sort();
    sets
}

/// Asserts parallel/sequential equivalence on one database+config, for the
/// fixed thread counts plus an optional extra one from the environment.
fn assert_equivalent(db: &SegmentDatabase<2>, config: ClusterConfig, fixture: &str) {
    let algo = LineSegmentClustering::new(db, config);
    let sequential = algo.run();
    let mut counts: Vec<usize> = THREAD_COUNTS.to_vec();
    if let Some(extra) = env_thread_count() {
        counts.push(extra);
    }
    for t in counts {
        let parallel = algo.run_parallel(t);
        // Canonical comparison: same clusters up to id renumbering...
        assert_eq!(
            canonical_clusters(&sequential),
            canonical_clusters(&parallel),
            "{fixture}: cluster sets diverge at t={t}"
        );
        // ...exact noise sets...
        assert_eq!(
            sequential.noise(),
            parallel.noise(),
            "{fixture}: noise sets diverge at t={t}"
        );
        assert_eq!(
            sequential.filtered_out, parallel.filtered_out,
            "{fixture}: filter diagnostics diverge at t={t}"
        );
        // ...and (stronger, by design) bit-identical output including
        // cluster numbering: the merge pass renumbers components in the
        // sequential seed order.
        assert_eq!(
            sequential, parallel,
            "{fixture}: exact equality broken at t={t}"
        );
    }
}

/// `RUST_TEST_THREADS`, reused as a shard-count override so CI can sweep
/// thread counts without recompiling the test list.
fn env_thread_count() -> Option<usize> {
    std::env::var("RUST_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0 && t <= 64)
}

fn identified(segments: Vec<(Segment2, u32)>) -> SegmentDatabase<2> {
    let segs = segments
        .into_iter()
        .enumerate()
        .map(|(k, (s, tr))| IdentifiedSegment::new(SegmentId(k as u32), TrajectoryId(tr), s))
        .collect();
    SegmentDatabase::from_segments(segs, SegmentDistance::default())
}

/// Hurricane-like fixture: the synthetic Best-Track stand-in, partitioned
/// by the real MDL phase.
fn hurricane_db(tracks: usize, seed: u64) -> SegmentDatabase<2> {
    let trajectories = HurricaneGenerator::new(HurricaneConfig {
        tracks,
        seed,
        ..HurricaneConfig::default()
    })
    .generate();
    SegmentDatabase::from_trajectories(
        &trajectories,
        &PartitionConfig::default(),
        SegmentDistance::default(),
    )
}

/// Grid fixture: bundles of parallel segments on a lattice, dense enough
/// that most bundles cluster and sparse singletons stay noise.
fn grid_db() -> SegmentDatabase<2> {
    let mut entries = Vec::new();
    for gx in 0..4 {
        for gy in 0..3 {
            let (x0, y0) = (gx as f64 * 40.0, gy as f64 * 30.0);
            let bundle_size = 3 + ((gx + gy) % 3);
            for i in 0..bundle_size {
                entries.push((
                    Segment2::xy(x0, y0 + 0.5 * i as f64, x0 + 12.0, y0 + 0.5 * i as f64),
                    (gx * 10 + gy * 3 + i) as u32,
                ));
            }
        }
    }
    // Scattered singletons between lattice nodes.
    for k in 0..6 {
        let x = 17.0 + 23.0 * k as f64;
        entries.push((
            Segment2::xy(x, 15.0 + k as f64, x + 4.0, 15.5 + k as f64),
            (100 + k) as u32,
        ));
    }
    identified(entries)
}

/// Random-walk fixture: deterministic pseudo-random segment soup with a
/// few planted corridors, many trajectories.
fn random_walk_db(seed: u64, n: usize) -> SegmentDatabase<2> {
    // xorshift64* — self-contained, deterministic across platforms.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 40) as f64) / (1u64 << 24) as f64
    };
    let mut entries = Vec::new();
    let (mut x, mut y) = (0.0f64, 0.0f64);
    for k in 0..n {
        let dx = 4.0 + 6.0 * next();
        let dy = 8.0 * next() - 4.0;
        let (nx, ny) = (x + dx, y + dy);
        entries.push((Segment2::xy(x, y, nx, ny), (k % 17) as u32));
        x = nx;
        y = ny;
        if next() < 0.15 {
            // Jump: restart the walk elsewhere so density varies.
            x = 200.0 * next();
            y = 150.0 * next();
        }
    }
    identified(entries)
}

#[test]
fn hurricane_like_fixture_is_equivalent() {
    let db = hurricane_db(40, 2007);
    assert_equivalent(&db, ClusterConfig::new(5.0, 5), "hurricane eps=5");
    assert_equivalent(&db, ClusterConfig::new(2.0, 3), "hurricane eps=2");
}

#[test]
fn grid_fixture_is_equivalent_across_index_kinds() {
    let db = grid_db();
    for kind in [IndexKind::Linear, IndexKind::Grid, IndexKind::RTree] {
        let config = ClusterConfig {
            index: kind,
            min_trajectories: Some(2),
            ..ClusterConfig::new(1.5, 3)
        };
        assert_equivalent(&db, config, &format!("grid index={kind:?}"));
    }
}

#[test]
fn random_walk_fixture_is_equivalent() {
    for seed in [3, 99, 2026] {
        let db = random_walk_db(seed, 300);
        assert_equivalent(
            &db,
            ClusterConfig::new(6.0, 4),
            &format!("walk seed={seed}"),
        );
        assert_equivalent(
            &db,
            ClusterConfig {
                weighted: true,
                min_trajectories: Some(2),
                ..ClusterConfig::new(3.0, 3)
            },
            &format!("walk weighted seed={seed}"),
        );
    }
}

#[test]
fn whole_pipeline_fixture_is_equivalent() {
    // Trajectory partitioning feeding straight into the grouping phase —
    // the exact shape Traclus::run produces.
    let trajectories: Vec<Trajectory<2>> = (0..12)
        .map(|i| {
            let jitter = i as f64 * 0.4;
            Trajectory::new(
                TrajectoryId(i),
                (0..25)
                    .map(|k| Point2::xy(k as f64 * 5.0, jitter + (k as f64 * 0.6).sin()))
                    .collect(),
            )
        })
        .collect();
    let db = SegmentDatabase::from_trajectories(
        &trajectories,
        &PartitionConfig::default(),
        SegmentDistance::default(),
    );
    assert_equivalent(&db, ClusterConfig::new(4.0, 4), "pipeline");
}

/// The PR 2 bug shape, parallelised: one density-connected cluster strung
/// across many tiles, with a non-core border segment sitting between two
/// core runs. Splitting the chain over shards must not cut it in two, and
/// the border must not be double-assigned or dropped.
#[test]
fn border_merge_keeps_cross_tile_cluster_whole() {
    let mut entries = Vec::new();
    // A long corridor of overlapping 5-segment bundles: adjacent bundles
    // sit at parallel distance 3 (≤ ε), so every segment is core and the
    // whole corridor is one density-connected component...
    let mut tr = 0u32;
    for step in 0..24 {
        let x0 = step as f64 * 7.0;
        for i in 0..5 {
            entries.push((
                Segment2::xy(x0, 0.4 * i as f64, x0 + 10.0, 0.4 * i as f64),
                tr,
            ));
            tr += 1;
        }
    }
    // ...plus one border segment above the corridor midpoint: its
    // neighborhood is {self + the 5 bundle cores below} = 6 < MinLns 7,
    // so it is non-core but density-reachable — shared by several
    // density-connected cores, the PR 2 bug shape.
    let border_id = entries.len() as u32;
    entries.push((Segment2::xy(12.0 * 7.0, 3.2, 12.0 * 7.0 + 10.0, 3.2), tr));
    let db = identified(entries);
    let config = ClusterConfig {
        min_trajectories: Some(3),
        ..ClusterConfig::new(4.0, 7)
    };

    for threads in [2, 3, 4, 8] {
        // The fixture must genuinely exercise the merge: its segments span
        // several tiles and at least two shards.
        let plan = ShardPlan::new(&db, threads, config.eps);
        let mut tiles: Vec<usize> = (0..db.len() as u32)
            .map(|id| plan.tile_of_segment(id))
            .collect();
        tiles.sort_unstable();
        tiles.dedup();
        assert!(
            tiles.len() >= 3,
            "fixture spans only {} tiles at t={threads}",
            tiles.len()
        );
        let mut shards: Vec<usize> = (0..db.len() as u32)
            .map(|id| plan.shard_of_segment(id))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        assert!(
            shards.len() >= 2,
            "fixture occupies one shard at t={threads}"
        );
        // The conservative geometric border query agrees: the corridor has
        // segments whose ε-expanded MBR crosses tile boundaries — without
        // them no cross-tile edge (and no merge) could exist. √5·ε is the
        // uniform-weight filter radius (see traclus-index).
        let radius = config.eps * 5.0f64.sqrt();
        let border_candidates = (0..db.len() as u32)
            .filter(|&id| {
                plan.tile_grid()
                    .crosses_boundary(&db.bbox_of(id).expanded(radius))
            })
            .count();
        assert!(
            border_candidates > 0,
            "no ε-ball crosses a tile boundary at t={threads}"
        );

        let parallel = LineSegmentClustering::new(&db, config).run_parallel(threads);
        assert_eq!(
            parallel.clusters.len(),
            1,
            "cross-tile cluster split at t={threads}"
        );
        assert_eq!(
            parallel.clusters[0].members.len(),
            db.len(),
            "member lost in the border merge at t={threads}"
        );
        assert_eq!(
            parallel.labels[border_id as usize],
            SegmentLabel::Cluster(parallel.clusters[0].id),
            "border segment dropped at t={threads}"
        );
    }
    // And the sequential path agrees.
    assert_equivalent(&db, config, "border-merge chain");
}

/// A non-core border segment reachable from two *distinct* clusters must
/// land in the earlier cluster (first-come sequential semantics) under any
/// thread count — the exact PR 2 stolen-border scenario.
#[test]
fn shared_border_segment_is_not_stolen_in_parallel() {
    let mut entries = Vec::new();
    let mut tr = 0u32;
    // Bundle A (ids 0–4) around y = 0..1.6.
    for i in 0..5 {
        entries.push((Segment2::xy(0.0, 0.4 * i as f64, 10.0, 0.4 * i as f64), tr));
        tr += 1;
    }
    // Border (id 5) halfway between the bundles: non-core at MinLns = 4.
    entries.push((Segment2::xy(0.0, 3.0, 10.0, 3.0), 50));
    // Bundle B (ids 6–10) around y = 4.4..6.0.
    for i in 0..5 {
        entries.push((
            Segment2::xy(0.0, 4.4 + 0.4 * i as f64, 10.0, 4.4 + 0.4 * i as f64),
            10 + tr,
        ));
        tr += 1;
    }
    let db = identified(entries);
    let config = ClusterConfig::new(1.5, 4);
    let sequential = LineSegmentClustering::new(&db, config).run();
    assert_eq!(sequential.clusters.len(), 2);
    assert_eq!(sequential.clusters[0].members, vec![0, 1, 2, 3, 4, 5]);
    for t in [2, 3, 4, 8] {
        let parallel = LineSegmentClustering::new(&db, config).run_parallel(t);
        assert_eq!(sequential, parallel, "border stolen at t={t}");
        assert_eq!(
            parallel.labels[5],
            SegmentLabel::Cluster(parallel.clusters[0].id),
            "border must stay with the earlier cluster at t={t}"
        );
    }
}

#[test]
fn dense_database_compaction_preserves_equivalence() {
    // ~600 segments all mutually within ε: the deferred-edge lists blow
    // past their compaction budgets, exercising the canonicalise+dedup
    // path that keeps shard memory bounded on dense settings.
    let entries: Vec<(Segment2, u32)> = (0..600)
        .map(|i| {
            let y = (i % 60) as f64 * 0.05;
            let x = (i / 60) as f64 * 0.1;
            (Segment2::xy(x, y, x + 10.0, y), (i % 23) as u32)
        })
        .collect();
    let db = identified(entries);
    assert_equivalent(&db, ClusterConfig::new(50.0, 5), "dense compaction");
    // A mid-range ε yields several components plus noise under the same
    // compaction pressure.
    assert_equivalent(&db, ClusterConfig::new(0.08, 3), "dense tight eps");
}

#[test]
fn determinism_across_repeated_parallel_runs() {
    let db = hurricane_db(24, 77);
    let algo = LineSegmentClustering::new(&db, ClusterConfig::new(4.0, 4));
    for t in [2, 4, 8] {
        let a = algo.run_parallel(t);
        let b = algo.run_parallel(t);
        assert_eq!(a, b, "nondeterministic output at t={t}");
    }
}

#[test]
fn degenerate_databases_are_equivalent() {
    // Empty database.
    let empty = identified(vec![]);
    assert_equivalent(&empty, ClusterConfig::new(1.0, 2), "empty");
    // Single segment.
    let single = identified(vec![(Segment2::xy(0.0, 0.0, 5.0, 0.0), 0)]);
    assert_equivalent(&single, ClusterConfig::new(1.0, 2), "single");
    // All segments stacked on one point (one tile, many threads).
    let stacked = identified(
        (0..7)
            .map(|i| (Segment2::xy(1.0, 1.0, 1.0, 1.0), i))
            .collect(),
    );
    assert_equivalent(&stacked, ClusterConfig::new(0.5, 3), "stacked");
    // The stacked geometry triggers the contiguous-id fallback — every
    // worker gets segments instead of one shard hoarding the single hot
    // tile — and the output stays identical (asserted just above).
    for t in [2, 4, 8] {
        let plan = ShardPlan::new(&stacked, t, 0.5);
        assert!(
            plan.used_degenerate_fallback(),
            "stacked plan must fall back at t={t}"
        );
        let nonempty = (0..plan.shard_count())
            .filter(|&s| !plan.shard_members(s).is_empty())
            .count();
        assert!(
            nonempty > 1,
            "fallback still parks everything on one worker at t={t}"
        );
    }
}
