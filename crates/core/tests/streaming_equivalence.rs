//! Equivalence harness for the streaming/incremental clustering engine.
//!
//! Feeding every trajectory of a dataset through
//! [`IncrementalClustering::insert`] one at a time must produce the same
//! clustering as the batch `Traclus::run` path on the full dataset — the
//! design argument lives in `traclus_core::stream`, and this suite locks it
//! down empirically:
//!
//! * canonical comparison (clusters as member-id sets, exact noise sets,
//!   representatives within tolerance) — plus, stronger, exact
//!   `Clustering` equality including cluster numbering — on hurricane-like,
//!   grid, and random-walk trajectory fixtures;
//! * mid-stream prefix snapshots against batch runs on the same prefix;
//! * the dirty-region knob at 0.0 (always re-cluster), the default, and
//!   1.0 (never re-cluster), which may only move work around;
//! * weighted trajectories, every index kind, and degenerate inputs.

use traclus_core::{
    Clustering, IncrementalClustering, IndexKind, StreamConfig, Traclus, TraclusConfig,
};
use traclus_data::{HurricaneConfig, HurricaneGenerator};
use traclus_geom::{Point2, Trajectory, TrajectoryId};

/// Clusters as sorted member-id sets, sorted by first member — the
/// renumbering-invariant canonical form.
fn canonical_clusters(clustering: &Clustering) -> Vec<Vec<u32>> {
    let mut sets: Vec<Vec<u32>> = clustering
        .clusters
        .iter()
        .map(|c| {
            let mut m = c.members.clone();
            m.sort_unstable();
            m
        })
        .collect();
    sets.sort();
    sets
}

/// Streams `trajectories` through a fresh engine and asserts the outcome
/// matches the batch pipeline: canonical clusters, exact noise, filter
/// diagnostics, representatives within tolerance — and exact `Clustering`
/// equality, which the engine guarantees by construction.
fn assert_stream_equivalent(config: TraclusConfig, trajectories: &[Trajectory<2>], fixture: &str) {
    let batch = Traclus::new(config).run(trajectories);
    for threshold in [0.0, config.stream.rebuild_threshold, 1.0] {
        let mut engine: IncrementalClustering<2> = Traclus::new(TraclusConfig {
            stream: StreamConfig {
                rebuild_threshold: threshold,
                ..StreamConfig::default()
            },
            ..config
        })
        .stream();
        for tr in trajectories {
            engine.insert(tr);
        }
        let streamed = engine.finish();
        // Canonical comparison: same clusters up to id renumbering...
        assert_eq!(
            canonical_clusters(&batch.clustering),
            canonical_clusters(&streamed.clustering),
            "{fixture}: cluster sets diverge at threshold={threshold}"
        );
        // ...exact noise sets and filter diagnostics...
        assert_eq!(
            batch.clustering.noise(),
            streamed.clustering.noise(),
            "{fixture}: noise sets diverge at threshold={threshold}"
        );
        assert_eq!(
            batch.clustering.filtered_out, streamed.clustering.filtered_out,
            "{fixture}: filter diagnostics diverge at threshold={threshold}"
        );
        // ...representatives within tolerance (they are in fact computed
        // from identical clusters, so the tolerance is slack)...
        assert_eq!(
            batch.clusters.len(),
            streamed.clusters.len(),
            "{fixture}: representative count diverges at threshold={threshold}"
        );
        for (b, s) in batch.clusters.iter().zip(&streamed.clusters) {
            assert_eq!(
                b.representative.points.len(),
                s.representative.points.len(),
                "{fixture}: representative length diverges at threshold={threshold}"
            );
            for (bp, sp) in b.representative.points.iter().zip(&s.representative.points) {
                for k in 0..2 {
                    assert!(
                        (bp.coords[k] - sp.coords[k]).abs() < 1e-9,
                        "{fixture}: representative point diverges at threshold={threshold}"
                    );
                }
            }
        }
        // ...and (stronger, by design) exact equality including cluster
        // numbering: the snapshot renumbers components in the sequential
        // seed order.
        assert_eq!(
            batch.clustering, streamed.clustering,
            "{fixture}: exact equality broken at threshold={threshold}"
        );
    }
}

fn hurricane_tracks(tracks: usize, seed: u64) -> Vec<Trajectory<2>> {
    HurricaneGenerator::new(HurricaneConfig {
        tracks,
        seed,
        ..HurricaneConfig::default()
    })
    .generate()
}

/// Grid fixture: bundles of near-parallel trajectories on a lattice, dense
/// enough that most bundles cluster while stray singletons stay noise.
fn grid_tracks() -> Vec<Trajectory<2>> {
    let mut out = Vec::new();
    let mut id = 0u32;
    for gx in 0..3 {
        for gy in 0..3 {
            let (x0, y0) = (gx as f64 * 60.0, gy as f64 * 45.0);
            let bundle_size = 3 + ((gx + gy) % 3);
            for i in 0..bundle_size {
                let y = y0 + 0.5 * i as f64;
                out.push(Trajectory::new(
                    TrajectoryId(id),
                    (0..6).map(|k| Point2::xy(x0 + k as f64 * 4.0, y)).collect(),
                ));
                id += 1;
            }
        }
    }
    // Stray diagonals between lattice nodes.
    for k in 0..5 {
        let x = 25.0 + 37.0 * k as f64;
        out.push(Trajectory::new(
            TrajectoryId(500 + k),
            (0..4)
                .map(|j| Point2::xy(x + j as f64 * 3.0, 20.0 + k as f64 + j as f64 * 2.0))
                .collect(),
        ));
    }
    out
}

/// Random-walk fixture: deterministic pseudo-random wandering trajectories
/// plus a planted shared corridor.
fn random_walk_tracks(seed: u64, walks: usize) -> Vec<Trajectory<2>> {
    // xorshift64* — self-contained, deterministic across platforms.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 40) as f64) / (1u64 << 24) as f64
    };
    let mut out = Vec::new();
    for w in 0..walks {
        let (mut x, mut y) = (150.0 * next(), 100.0 * next());
        let mut points = vec![Point2::xy(x, y)];
        for _ in 0..(8 + (w % 7)) {
            x += 4.0 + 6.0 * next();
            y += 8.0 * next() - 4.0;
            points.push(Point2::xy(x, y));
        }
        out.push(Trajectory::new(TrajectoryId(w as u32), points));
    }
    // A planted corridor several walks share.
    for i in 0..5 {
        let y = 120.0 + 0.6 * i as f64;
        out.push(Trajectory::new(
            TrajectoryId(900 + i),
            (0..10).map(|k| Point2::xy(k as f64 * 5.0, y)).collect(),
        ));
    }
    out
}

fn config(eps: f64, min_lns: usize) -> TraclusConfig {
    TraclusConfig {
        eps,
        min_lns,
        ..TraclusConfig::default()
    }
}

#[test]
fn hurricane_fixture_is_equivalent() {
    let tracks = hurricane_tracks(40, 2007);
    assert_stream_equivalent(config(5.0, 5), &tracks, "hurricane eps=5");
    assert_stream_equivalent(config(2.0, 3), &tracks, "hurricane eps=2");
}

#[test]
fn grid_fixture_is_equivalent_across_index_kinds() {
    let tracks = grid_tracks();
    for kind in [IndexKind::Linear, IndexKind::Grid, IndexKind::RTree] {
        let cfg = TraclusConfig {
            index: kind,
            min_trajectories: Some(2),
            ..config(1.5, 3)
        };
        assert_stream_equivalent(cfg, &tracks, &format!("grid index={kind:?}"));
    }
}

#[test]
fn random_walk_fixture_is_equivalent() {
    for seed in [3, 99, 2026] {
        let tracks = random_walk_tracks(seed, 40);
        assert_stream_equivalent(config(6.0, 4), &tracks, &format!("walk seed={seed}"));
    }
}

#[test]
fn weighted_trajectories_are_equivalent() {
    // Down-weighted walks + heavy corridor trajectories: the weighted
    // Section 4.2 cardinalities drive different core sets than counting.
    let mut tracks = random_walk_tracks(7, 25);
    for (k, tr) in tracks.iter_mut().enumerate() {
        tr.weight = if tr.id.0 >= 900 {
            2.5
        } else {
            0.5 + 0.1 * (k % 4) as f64
        };
    }
    let cfg = TraclusConfig {
        weighted: true,
        min_trajectories: Some(2),
        ..config(3.0, 4)
    };
    assert_stream_equivalent(cfg, &tracks, "weighted walks");
}

#[test]
fn every_prefix_of_the_stream_matches_a_batch_run() {
    // The strong invariant: after EVERY insertion, the snapshot equals the
    // batch clustering of the prefix ingested so far.
    let tracks = hurricane_tracks(16, 77);
    let cfg = config(4.0, 4);
    let mut engine: IncrementalClustering<2> = Traclus::new(cfg).stream();
    for k in 0..tracks.len() {
        engine.insert(&tracks[k]);
        let batch = Traclus::new(cfg).run(&tracks[..=k]);
        assert_eq!(
            engine.snapshot(),
            batch.clustering,
            "prefix of {} tracks diverges",
            k + 1
        );
    }
    let stats = engine.stats();
    assert_eq!(stats.trajectories, tracks.len());
    assert_eq!(stats.local_repairs + stats.full_rebuilds, tracks.len());
}

#[test]
fn snapshots_do_not_perturb_the_stream() {
    // Interleaving reads with writes must not change the final state.
    let tracks = hurricane_tracks(12, 5);
    let cfg = config(5.0, 4);
    let mut observed: IncrementalClustering<2> = Traclus::new(cfg).stream();
    let mut unobserved: IncrementalClustering<2> = Traclus::new(cfg).stream();
    for tr in &tracks {
        observed.insert(tr);
        let _ = observed.snapshot();
        unobserved.insert(tr);
    }
    assert_eq!(observed.snapshot(), unobserved.snapshot());
}

#[test]
fn degenerate_streams_are_equivalent() {
    // No trajectories at all.
    assert_stream_equivalent(config(1.0, 2), &[], "empty");
    // Trajectories that partition to nothing mixed into a real stream.
    let mut tracks = vec![
        Trajectory::new(TrajectoryId(100), vec![Point2::xy(0.0, 0.0)]),
        Trajectory::new(TrajectoryId(101), vec![Point2::xy(3.0, 3.0); 6]),
    ];
    tracks.extend(hurricane_tracks(8, 11));
    assert_stream_equivalent(config(4.0, 3), &tracks, "degenerate mix");
}
