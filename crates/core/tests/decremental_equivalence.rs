//! Exhaustive batch-equivalence harness for the decremental streaming
//! engine.
//!
//! The headline guarantee under test: after **every** operation — insert,
//! explicit removal, capacity expiry, time-window expiry, in any
//! interleaving — [`IncrementalClustering::snapshot`] equals the batch
//! pipeline run over the live window, label for label. The property tests
//! drive randomized interleavings against a shadow model (the live window
//! as a plain `Vec<Trajectory>`); the deterministic regressions pin the
//! structurally interesting repairs — a bridge removal that must *split* a
//! component through the scoped local-repair path (verified by the
//! repair-vs-rebuild counters), core demotion down to an empty clustering,
//! and trajectory-id reuse after removal.
//!
//! Every scenario runs at three rebuild thresholds — 0.0 (every operation
//! falls back to the full re-cluster), the 0.25 default (mixed), and 10.0
//! (removals pinned to scoped local repair) — so both decremental paths
//! face the same oracle.

use proptest::prelude::*;
use traclus_core::{
    Clustering, IncrementalClustering, RemoveReport, StreamConfig, Traclus, TraclusConfig,
};
use traclus_geom::{Point2, Trajectory, TrajectoryId};

/// Thresholds a `threshold_sel in 0..3` parameter indexes into.
const THRESHOLDS: [f64; 3] = [0.0, 0.25, 10.0];

fn config_with(eps: f64, min_lns: usize, stream: StreamConfig) -> TraclusConfig {
    TraclusConfig {
        eps,
        min_lns,
        stream,
        ..TraclusConfig::default()
    }
}

/// The oracle: the full batch pipeline over the live window in arrival
/// order — exactly what the engine's snapshot claims to equal.
fn batch(config: &TraclusConfig, live: &[Trajectory<2>]) -> Clustering {
    Traclus::new(*config).run(live).clustering
}

prop_compose! {
    /// A pool of jittered corridor trajectories with ids `0..len`: near-
    /// parallel random walks produce rich overlap structure (clusters,
    /// borders, noise, bridges) at ε around 2.
    fn pool()(
        raw in prop::collection::vec(
            (
                -4.0..4.0f64,
                2.0..6.0f64,
                prop::collection::vec(-0.8..0.8f64, 4..10),
            ),
            3..8,
        )
    ) -> Vec<Trajectory<2>> {
        raw.into_iter()
            .enumerate()
            .map(|(i, (y0, step, jitter))| {
                Trajectory::new(
                    TrajectoryId(i as u32),
                    jitter
                        .iter()
                        .enumerate()
                        .map(|(k, &dy)| Point2::xy(k as f64 * step, y0 + dy))
                        .collect(),
                )
            })
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Random insert / remove / expire-to-capacity interleavings: the
    // snapshot equals the batch run on the live window after every single
    // operation, at every rebuild threshold.
    #[test]
    fn interleaved_ops_match_batch(
        pool in pool(),
        ops in prop::collection::vec((0u8..8, 0usize..64), 4..24),
        threshold_sel in 0usize..3,
        eps in 1.5..3.5f64,
        min_lns in 2usize..4,
    ) {
        let config = config_with(eps, min_lns, StreamConfig {
            rebuild_threshold: THRESHOLDS[threshold_sel],
            ..StreamConfig::default()
        });
        let mut engine = IncrementalClustering::<2>::new(config);
        let mut model: Vec<Trajectory<2>> = Vec::new();
        for (step, &(op, pick)) in ops.iter().enumerate() {
            match op {
                // Insert (weight 6/8): any pool member, repeats allowed —
                // a duplicate trajectory id means a later removal retires
                // several arrivals at once.
                0..=5 => {
                    let t = &pool[pick % pool.len()];
                    engine.insert(t);
                    model.push(t.clone());
                }
                // Remove one live trajectory id (all its arrivals).
                6 => {
                    if model.is_empty() {
                        continue;
                    }
                    let tid = model[pick % model.len()].id;
                    let report = engine.remove_trajectory(tid);
                    let before = model.len();
                    model.retain(|t| t.id != tid);
                    // Arrivals that produced no segments are not tracked
                    // by the engine, so its count may undershoot the
                    // model's — never overshoot.
                    prop_assert!(report.removed_trajectories <= before - model.len());
                }
                // Expire oldest-first down to a capacity.
                _ => {
                    let keep = pick % (model.len() + 1);
                    engine.expire_to_capacity(keep);
                    // The engine only counts segment-producing arrivals
                    // against the capacity; degenerate ones (never
                    // ingested) must not be double-dropped. Trim the model
                    // by the engine's own live count.
                    while segment_producing(&config, &model) > engine.live_trajectories() {
                        model.remove(0);
                    }
                }
            }
            let snap = engine.snapshot();
            let oracle = batch(&config, &model);
            prop_assert_eq!(
                snap, oracle,
                "diverged after op {} ({}, {}) at threshold {}",
                step, op, pick, THRESHOLDS[threshold_sel]
            );
        }
        // The engine exercised the path the threshold selects.
        let stats = engine.stats();
        if THRESHOLDS[threshold_sel] == 0.0 && stats.removals > 0 {
            prop_assert_eq!(stats.decremental_repairs, 0, "threshold 0 always rebuilds");
        }
    }

    // A capacity-bounded sliding window over an insert-only stream: the
    // snapshot tracks the batch run over the newest `cap` arrivals.
    #[test]
    fn capacity_window_matches_batch_suffix(
        pool in pool(),
        cap in 1usize..5,
        threshold_sel in 0usize..3,
    ) {
        let config = config_with(2.5, 2, StreamConfig {
            rebuild_threshold: THRESHOLDS[threshold_sel],
            capacity: Some(cap),
            ..StreamConfig::default()
        });
        let mut engine = IncrementalClustering::<2>::new(config);
        let mut model: Vec<Trajectory<2>> = Vec::new();
        for t in pool.iter().chain(pool.iter()) {
            let report = engine.insert(t);
            if report.new_segments > 0 {
                model.push(t.clone());
            }
            while model.len() > cap {
                model.remove(0);
            }
            prop_assert_eq!(engine.snapshot(), batch(&config, &model));
            prop_assert!(engine.live_trajectories() <= cap);
        }
    }

    // A time-bounded sliding window under caller-supplied (monotone)
    // timestamps: arrivals age out exactly when the logical clock says so,
    // and the snapshot tracks the batch run over what remains.
    #[test]
    fn time_window_matches_recent_arrivals(
        pool in pool(),
        deltas in prop::collection::vec(0u64..8, 3..16),
        window in 4u64..20,
        threshold_sel in 0usize..3,
    ) {
        let config = config_with(2.5, 2, StreamConfig {
            rebuild_threshold: THRESHOLDS[threshold_sel],
            time_window: Some(window),
            ..StreamConfig::default()
        });
        let mut engine = IncrementalClustering::<2>::new(config);
        let mut model: Vec<(u64, Trajectory<2>)> = Vec::new();
        let mut now = 0u64;
        for (k, delta) in deltas.iter().enumerate() {
            now += delta;
            let t = &pool[k % pool.len()];
            let report = engine.insert_at(t, now);
            if report.new_segments > 0 {
                model.push((now, t.clone()));
            }
            model.retain(|&(ts, _)| now - ts < window);
            let live: Vec<Trajectory<2>> = model.iter().map(|(_, t)| t.clone()).collect();
            prop_assert_eq!(engine.snapshot(), batch(&config, &live));
            prop_assert_eq!(engine.live_trajectories(), live.len());
        }
    }
}

/// How many of `live` partition into at least one segment under `config` —
/// the arrivals the engine actually tracks.
fn segment_producing(config: &TraclusConfig, live: &[Trajectory<2>]) -> usize {
    live.iter()
        .filter(|t| {
            !traclus_core::partition_trajectories(&config.partition, std::slice::from_ref(t))
                .is_empty()
        })
        .count()
}

/// A straight corridor trajectory at height `y`.
fn corridor(id: u32, y: f64, points: usize) -> Trajectory<2> {
    Trajectory::new(
        TrajectoryId(id),
        (0..points).map(|k| Point2::xy(k as f64 * 5.0, y)).collect(),
    )
}

/// Regression: removing the single bridge trajectory between two corridor
/// bands must split one component into two *through the scoped local
/// repair* (rebuild threshold pinned high), verified by the
/// repair-vs-rebuild counters. Two far-away padding bands prove the repair
/// stayed scoped: their components transplant untouched.
#[test]
fn bridge_removal_splits_component_via_local_repair() {
    let mut trajectories: Vec<Trajectory<2>> = Vec::new();
    for i in 0..4 {
        trajectories.push(corridor(i, i as f64 * 0.3, 12)); // band A
        trajectories.push(corridor(10 + i, 4.0 + i as f64 * 0.3, 12)); // band B
        trajectories.push(corridor(20 + i, 40.0 + i as f64 * 0.3, 12)); // padding C
        trajectories.push(corridor(30 + i, 80.0 + i as f64 * 0.3, 12)); // padding D
    }
    trajectories.push(corridor(99, 2.45, 12)); // the A–B bridge
    let config = config_with(
        2.0,
        3,
        StreamConfig {
            rebuild_threshold: 10.0,
            ..StreamConfig::default()
        },
    );
    let mut engine = IncrementalClustering::<2>::new(config);
    for t in &trajectories {
        engine.insert(t);
    }
    assert_eq!(
        engine.snapshot().clusters.len(),
        3,
        "A+bridge+B merged, C, D"
    );
    let rebuilds_before = engine.stats().decremental_rebuilds;

    let report = engine.remove_trajectory(TrajectoryId(99));
    assert_eq!(report.removed_trajectories, 1);
    assert!(
        !report.rebuilt,
        "threshold 10 must repair locally, not rebuild"
    );
    assert_eq!(engine.stats().decremental_repairs, 1);
    assert_eq!(engine.stats().decremental_rebuilds, rebuilds_before);

    trajectories.pop();
    let snap = engine.snapshot();
    assert_eq!(snap.clusters.len(), 4, "the bridge held A and B together");
    assert_eq!(snap, batch(&config, &trajectories));
}

/// Regression: with exactly `MinLns` corridors every segment is core;
/// removing one demotes the survivors below the threshold and the
/// clustering empties — the demotion-handling path, at every threshold.
#[test]
fn removal_demotes_cores_to_noise() {
    for threshold in THRESHOLDS {
        let trajectories: Vec<Trajectory<2>> =
            (0..3).map(|i| corridor(i, i as f64 * 0.3, 12)).collect();
        let config = config_with(
            2.0,
            3,
            StreamConfig {
                rebuild_threshold: threshold,
                ..StreamConfig::default()
            },
        );
        let mut engine = IncrementalClustering::<2>::new(config);
        for t in &trajectories {
            engine.insert(t);
        }
        assert!(!engine.snapshot().clusters.is_empty());

        let report = engine.remove_trajectory(TrajectoryId(1));
        assert!(
            report.demoted_cores > 0,
            "survivors fall below MinLns at threshold {threshold}"
        );
        let snap = engine.snapshot();
        assert!(snap.clusters.is_empty(), "no cores survive");
        let live = vec![trajectories[0].clone(), trajectories[2].clone()];
        assert_eq!(snap, batch(&config, &live));
    }
}

/// Regression: a removed trajectory id is immediately reusable; the
/// re-inserted trajectory takes fresh segment slots and the clustering
/// matches the batch run with the re-arrival at the window's tail.
#[test]
fn removed_trajectory_id_reuse_round_trips() {
    let config = config_with(3.0, 3, StreamConfig::default());
    let trajectories: Vec<Trajectory<2>> =
        (0..5).map(|i| corridor(i, i as f64 * 0.4, 15)).collect();
    let mut engine = IncrementalClustering::<2>::new(config);
    for t in &trajectories {
        engine.insert(t);
    }
    let slots_before = engine.len();

    assert_eq!(
        engine
            .remove_trajectory(TrajectoryId(2))
            .removed_trajectories,
        1
    );
    engine.insert(&trajectories[2]);
    assert!(
        engine.len() > slots_before,
        "re-insertion takes fresh slots"
    );

    let mut live: Vec<Trajectory<2>> = trajectories.clone();
    live.retain(|t| t.id != TrajectoryId(2));
    live.push(trajectories[2].clone());
    assert_eq!(engine.snapshot(), batch(&config, &live));

    // Removing the reused id again retires only the one live arrival.
    assert_eq!(
        engine
            .remove_trajectory(TrajectoryId(2))
            .removed_trajectories,
        1
    );
    live.pop();
    assert_eq!(engine.snapshot(), batch(&config, &live));
}

/// Removing ids that never arrived (or arrived and already left) is a
/// no-op with a default report.
#[test]
fn removal_of_absent_trajectories_is_a_noop() {
    let config = config_with(3.0, 3, StreamConfig::default());
    let mut engine = IncrementalClustering::<2>::new(config);
    assert_eq!(
        engine.remove_trajectory(TrajectoryId(7)),
        RemoveReport::default()
    );
    engine.insert(&corridor(7, 0.0, 12));
    engine.remove_trajectory(TrajectoryId(7));
    assert_eq!(
        engine.remove_trajectory(TrajectoryId(7)),
        RemoveReport::default()
    );
    assert_eq!(engine.live_trajectories(), 0);
    assert!(engine.snapshot().clusters.is_empty());
}
