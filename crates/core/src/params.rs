//! Parameter-value selection heuristics (Section 4.4).
//!
//! The ε heuristic: over a range of candidate ε, compute the entropy
//! (Formula 10) of the neighborhood-size distribution
//! `p(xᵢ) = |Nε(xᵢ)| / Σⱼ|Nε(xⱼ)|` and pick the ε minimising it — a skewed
//! distribution (small entropy) signals good cluster/noise contrast, while
//! both tiny and huge ε make `|Nε|` uniform and entropy maximal. The
//! minimisation runs either as a full scan (producing the Figure 16/19
//! curves) or by simulated annealing, as in the paper.
//!
//! The `MinLns` heuristic: `avg|Nε(L)| + 1 … + 3` at the chosen ε.
//!
//! This module also hosts [`Parallelism`], the execution-parameter knob of
//! the grouping phase (how many worker threads the sharded parallel
//! clustering path uses) — a run-time parameter alongside the paper's
//! statistical ones.

use std::num::NonZeroUsize;
use std::ops::RangeInclusive;

use crate::anneal::{minimize_1d, AnnealConfig};
use crate::segment_db::{IndexKind, NeighborIndex, SegmentDatabase};

/// Thread-count knob for the grouping phase.
///
/// `Sequential` (and any resolved count of 1) takes the exact Figure 12
/// sequential loop; anything larger takes the sharded parallel path, which
/// produces the identical [`crate::Clustering`] (see
/// `crate::shard`). The default uses every available hardware thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One thread: the sequential Figure 12 loop, bit-for-bit.
    Sequential,
    /// A fixed number of worker threads (0 is treated as 1).
    Threads(usize),
    /// `std::thread::available_parallelism()` workers (the default).
    #[default]
    Available,
}

impl Parallelism {
    /// The resolved worker-thread count (always ≥ 1).
    pub fn thread_count(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(t) => t.max(1),
            Parallelism::Available => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

/// Neighborhood statistics of the whole database at one ε.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborhoodStats {
    /// `|Nε(xᵢ)|` per segment (weighted when requested; self included).
    pub sizes: Vec<f64>,
}

impl NeighborhoodStats {
    /// Computes `|Nε|` for every segment.
    pub fn compute<const D: usize>(
        db: &SegmentDatabase<D>,
        index: &NeighborIndex<D>,
        eps: f64,
        weighted: bool,
    ) -> Self {
        let mut sizes = Vec::with_capacity(db.len());
        let mut scratch = Vec::new();
        for id in 0..db.len() as u32 {
            db.neighborhood_into(index, id, eps, &mut scratch);
            sizes.push(db.neighborhood_cardinality(&scratch, weighted));
        }
        Self { sizes }
    }

    /// The entropy `H(X)` of Formula 10. Zero for an empty database.
    pub fn entropy(&self) -> f64 {
        let total: f64 = self.sizes.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let mut h = 0.0;
        for &s in &self.sizes {
            if s > 0.0 {
                let p = s / total;
                h -= p * p.log2();
            }
        }
        h
    }

    /// `avg|Nε(L)|`, the input to the `MinLns` heuristic.
    pub fn average(&self) -> f64 {
        if self.sizes.is_empty() {
            0.0
        } else {
            self.sizes.iter().sum::<f64>() / self.sizes.len() as f64
        }
    }
}

/// One point of an entropy-vs-ε curve (Figures 16 and 19).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntropyPoint {
    /// The candidate ε.
    pub eps: f64,
    /// `H(X)` at that ε.
    pub entropy: f64,
    /// `avg|Nε(L)|` at that ε.
    pub avg_neighborhood: f64,
}

/// The full entropy curve over a set of candidate ε values.
#[derive(Debug, Clone, PartialEq)]
pub struct EntropyCurve {
    /// Curve samples, in scan order.
    pub points: Vec<EntropyPoint>,
}

impl EntropyCurve {
    /// Scans the candidate values (Figure 16/19 regenerate exactly this).
    pub fn scan<const D: usize>(
        db: &SegmentDatabase<D>,
        index_kind: IndexKind,
        eps_values: impl IntoIterator<Item = f64>,
        weighted: bool,
    ) -> Self {
        let eps_values: Vec<f64> = eps_values.into_iter().collect();
        let typical = eps_values.iter().copied().fold(f64::MIN, f64::max).max(1.0);
        let index = db.build_index(index_kind, typical);
        let points = eps_values
            .into_iter()
            .map(|eps| {
                let stats = NeighborhoodStats::compute(db, &index, eps, weighted);
                EntropyPoint {
                    eps,
                    entropy: stats.entropy(),
                    avg_neighborhood: stats.average(),
                }
            })
            .collect();
        Self { points }
    }

    /// The curve's entropy-minimising sample.
    pub fn minimum(&self) -> Option<&EntropyPoint> {
        self.points
            .iter()
            .min_by(|a, b| a.entropy.total_cmp(&b.entropy))
    }
}

/// The outcome of ε selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsSelection {
    /// Selected ε.
    pub eps: f64,
    /// Entropy at the selected ε.
    pub entropy: f64,
    /// `avg|Nε(L)|` at the selected ε ("this operation induces no
    /// additional cost since it can be done while computing H(X)").
    pub avg_neighborhood: f64,
}

/// Selects ε by simulated annealing over `[lo, hi]` (the paper's method).
pub fn select_eps_annealing<const D: usize>(
    db: &SegmentDatabase<D>,
    index_kind: IndexKind,
    range: RangeInclusive<f64>,
    weighted: bool,
    config: &AnnealConfig,
) -> EpsSelection {
    let (lo, hi) = (*range.start(), *range.end());
    let index = db.build_index(index_kind, hi.max(1.0));
    let outcome = minimize_1d(
        |eps| NeighborhoodStats::compute(db, &index, eps, weighted).entropy(),
        lo,
        hi,
        config,
    );
    let stats = NeighborhoodStats::compute(db, &index, outcome.x, weighted);
    EpsSelection {
        eps: outcome.x,
        entropy: outcome.value,
        avg_neighborhood: stats.average(),
    }
}

/// The `MinLns` heuristic: `avg|Nε(L)| + 1 … avg|Nε(L)| + 3` ("MinLns
/// should be greater than avg|Nε(L)| to discover meaningful clusters").
/// Rounded to the nearest integer before offsetting, floored at 2.
pub fn select_min_lns(avg_neighborhood: f64) -> RangeInclusive<usize> {
    let base = avg_neighborhood.round().max(1.0) as usize;
    (base + 1).max(2)..=(base + 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use traclus_geom::{IdentifiedSegment, Segment2, SegmentDistance, SegmentId, TrajectoryId};

    fn db_of(segs: Vec<Segment2>) -> SegmentDatabase<2> {
        let identified = segs
            .into_iter()
            .enumerate()
            .map(|(k, s)| IdentifiedSegment::new(SegmentId(k as u32), TrajectoryId(k as u32), s))
            .collect();
        SegmentDatabase::from_segments(identified, SegmentDistance::default())
    }

    /// Two tight bundles plus scattered outliers: a clear density contrast.
    fn clustered_db() -> SegmentDatabase<2> {
        let mut segs = Vec::new();
        for i in 0..8 {
            segs.push(Segment2::xy(0.0, 0.3 * i as f64, 10.0, 0.3 * i as f64));
        }
        for i in 0..8 {
            segs.push(Segment2::xy(
                50.0,
                40.0 + 0.3 * i as f64,
                60.0,
                40.0 + 0.3 * i as f64,
            ));
        }
        for i in 0..6 {
            let x = 100.0 + 25.0 * i as f64;
            segs.push(Segment2::xy(
                x,
                -50.0 - 10.0 * i as f64,
                x + 8.0,
                -45.0 - 10.0 * i as f64,
            ));
        }
        db_of(segs)
    }

    #[test]
    fn entropy_is_maximal_for_uniform_sizes() {
        let uniform = NeighborhoodStats {
            sizes: vec![1.0; 16],
        };
        assert!((uniform.entropy() - 4.0).abs() < 1e-12, "log2(16) = 4");
        let skewed = NeighborhoodStats {
            sizes: vec![13.0, 1.0, 1.0, 1.0],
        };
        let flat = NeighborhoodStats {
            sizes: vec![4.0; 4],
        };
        assert!(skewed.entropy() < flat.entropy());
    }

    #[test]
    fn entropy_of_empty_database_is_zero() {
        let stats = NeighborhoodStats { sizes: vec![] };
        assert_eq!(stats.entropy(), 0.0);
        assert_eq!(stats.average(), 0.0);
    }

    #[test]
    fn curve_has_interior_minimum_on_clustered_data() {
        // Section 4.4's observation: tiny ε → all |Nε| = 1 (uniform, max
        // entropy); huge ε → all |Nε| = n (uniform again); good ε → skewed.
        // Log-spaced candidates reach both uniform regimes.
        let db = clustered_db();
        let eps_values: Vec<f64> = (0..=60)
            .map(|i| 0.05 * (500.0f64 / 0.05).powf(i as f64 / 60.0))
            .collect();
        let curve = EntropyCurve::scan(&db, IndexKind::RTree, eps_values, false);
        let min = curve.minimum().expect("non-empty curve");
        let first = curve.points.first().unwrap();
        let last = curve.points.last().unwrap();
        assert!(
            min.entropy < first.entropy - 1e-9,
            "interior minimum below the tiny-ε end: {} vs {}",
            min.entropy,
            first.entropy
        );
        assert!(
            min.entropy < last.entropy - 1e-9,
            "interior minimum below the huge-ε end"
        );
        assert!(min.eps > first.eps && min.eps < last.eps);
    }

    #[test]
    fn annealing_agrees_with_scan_roughly() {
        let db = clustered_db();
        let eps_values: Vec<f64> = (1..=40).map(|i| i as f64 * 0.5).collect();
        let curve = EntropyCurve::scan(&db, IndexKind::RTree, eps_values, false);
        let scan_best = curve.minimum().unwrap();
        let annealed = select_eps_annealing(
            &db,
            IndexKind::RTree,
            0.5..=20.0,
            false,
            &AnnealConfig {
                iterations: 150,
                ..AnnealConfig::default()
            },
        );
        assert!(
            annealed.entropy <= scan_best.entropy + 0.15,
            "annealing entropy {} far above scan minimum {}",
            annealed.entropy,
            scan_best.entropy
        );
    }

    #[test]
    fn min_lns_heuristic_range() {
        assert_eq!(select_min_lns(4.39), 5..=7, "the paper's hurricane case");
        assert_eq!(select_min_lns(7.63), 9..=11, "the paper's elk case");
        assert_eq!(select_min_lns(0.2), 2..=4, "floor at 2");
    }

    #[test]
    fn stats_average_matches_sizes() {
        let db = db_of(vec![
            Segment2::xy(0.0, 0.0, 10.0, 0.0),
            Segment2::xy(0.0, 0.5, 10.0, 0.5),
            Segment2::xy(0.0, 100.0, 10.0, 100.0),
        ]);
        let index = db.build_index(IndexKind::Linear, 1.0);
        let stats = NeighborhoodStats::compute(&db, &index, 1.0, false);
        assert_eq!(stats.sizes, vec![2.0, 2.0, 1.0]);
        assert!((stats.average() - 5.0 / 3.0).abs() < 1e-12);
    }
}
