//! Sharded parallel grouping phase: split the segment database into
//! spatial shards, cluster shards concurrently, merge border clusters.
//!
//! The split/merge framing follows the parallel-DBSCAN literature
//! (partition the database spatially, run ε-expansion per partition, then
//! reconcile clusters that span partition borders with a union-find pass).
//! The crucial property is that the output is **identical** to the
//! sequential Figure 12 loop in [`crate::cluster`], not merely similar:
//!
//! 1. *Core-ness is intrinsic.* Whether `|Nε(L)| ≥ MinLns` depends only on
//!    the database, never on visit order, and every shard evaluates
//!    neighborhoods against the **whole** database through the shared
//!    spatial index — a shard owns seeds, not query scopes.
//! 2. *Clusters are components.* In the sequential algorithm every core
//!    segment reachable through core-to-core ε-links joins the same
//!    cluster, so clusters restricted to cores are exactly the connected
//!    components of the core-adjacency graph — again order-free. Raw
//!    cluster ids fall out of the seed scan in ascending-id order, i.e.
//!    components are numbered by their minimum core id.
//! 3. *Borders go to the earliest cluster.* A non-core segment within ε of
//!    cores from several components is claimed by the component that seeds
//!    first — the one with the smallest raw id (the PR 2 "stolen border"
//!    semantics). The merge pass reproduces this with a `min` over all
//!    claiming components, which is order-independent.
//!
//! Hence the parallel path recomputes the same `raw` assignment the
//! sequential scan produces and hands it to the shared finalisation step
//! (trajectory-cardinality filter + dense renumbering). The equivalence is
//! locked down by `tests/parallel_equivalence.rs` and the property suite.

use traclus_geom::Aabb;
use traclus_index::TileGrid;

use crate::cluster::{finalize_raw, ClusterConfig, ClusterStats, Clustering};
use crate::segment_db::{NeighborIndex, SegmentDatabase};

/// Tiles allocated per worker shard: oversampling lets the packing step
/// balance segment counts even when density varies across the bbox.
const TILE_OVERSAMPLING: usize = 4;

/// How the database is split for one parallel run: a [`TileGrid`] over the
/// database bounding box assigns every segment to the tile containing its
/// MBR midpoint; tiles are packed, in row-major order, into `shards`
/// groups of roughly equal estimated *work* (segment count × estimated
/// ε-candidate count), so dense regions — whose queries touch many more
/// candidates — no longer straggle behind sparse ones.
#[derive(Debug, Clone)]
pub struct ShardPlan<const D: usize> {
    grid: TileGrid<D>,
    /// Tile index per segment id.
    tile_of: Vec<u32>,
    /// Shard index per segment id.
    shard_of: Vec<u32>,
    /// Position of each segment within its shard's member list.
    local_index: Vec<u32>,
    /// Member segment ids per shard, ascending.
    shards: Vec<Vec<u32>>,
    /// Whether the tile assignment collapsed into one shard and the plan
    /// fell back to a contiguous split by segment id.
    degenerate_fallback: bool,
}

impl<const D: usize> ShardPlan<D> {
    /// Plans `shards` shards over the database (at least 1; empty shards
    /// are possible when segments cluster into few tiles). `eps` is the
    /// clustering ε the workers will query with — it sizes the candidate
    /// windows behind the per-tile work estimates. The plan only decides
    /// *where segments are evaluated*; clustering output is identical for
    /// every plan (see the module docs), so a poor estimate can cost
    /// speed, never correctness.
    pub fn new(db: &SegmentDatabase<D>, shards: usize, eps: f64) -> Self {
        let shards = shards.max(1);
        let n = db.len();
        let grid = TileGrid::cover(&db.bounding_box(), shards * TILE_OVERSAMPLING);
        let tile_count = grid.tile_count();
        let mut tile_of = Vec::with_capacity(n);
        let mut per_tile = vec![0usize; tile_count];
        for id in 0..n as u32 {
            let t = grid.tile_of(&db.midpoint(id));
            tile_of.push(t as u32);
            per_tile[t] += 1;
        }
        // Pack tiles into shards: walking tiles in row-major order, a tile
        // goes to the shard its cumulative work midpoint falls in —
        // monotone, so every shard is a contiguous run of tiles (compact
        // borders), and estimated work stays near-balanced.
        let work = tile_work_estimates(&grid, &per_tile, db.query_radius(eps));
        let total: f64 = work.iter().sum();
        let mut tile_shard = vec![0u32; tile_count];
        let mut cum = 0.0f64;
        for (t, &w) in work.iter().enumerate() {
            let mid = cum + w / 2.0;
            let slot = if total > 0.0 {
                ((mid / total) * shards as f64) as usize
            } else {
                0
            };
            tile_shard[t] = (slot as u32).min(shards as u32 - 1);
            cum += w;
        }
        // Degenerate-geometry fallback: when every occupied tile lands in
        // one shard (all midpoints stacked in a single tile — zero-area
        // bounding box), the "parallel" run would leave `shards − 1`
        // workers idle. Split by segment id instead: contiguous,
        // deterministic, and merge-safe (the merge pass classifies every
        // edge exactly regardless of which shard evaluated it).
        let occupied_shards = {
            let mut seen = vec![false; shards];
            for (t, &cnt) in per_tile.iter().enumerate() {
                if cnt > 0 {
                    seen[tile_shard[t] as usize] = true;
                }
            }
            seen.iter().filter(|&&s| s).count()
        };
        let degenerate_fallback = shards > 1 && n >= 2 && occupied_shards <= 1;
        let mut shard_of = Vec::with_capacity(n);
        let mut local_index = Vec::with_capacity(n);
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for id in 0..n as u32 {
            let s = if degenerate_fallback {
                ((id as usize * shards) / n).min(shards - 1) as u32
            } else {
                tile_shard[tile_of[id as usize] as usize]
            };
            shard_of.push(s);
            local_index.push(members[s as usize].len() as u32);
            members[s as usize].push(id);
        }
        Self {
            grid,
            tile_of,
            shard_of,
            local_index,
            shards: members,
            degenerate_fallback,
        }
    }

    /// Whether the planner abandoned the tile assignment for a contiguous
    /// split by segment id because the geometry collapsed every segment
    /// into a single shard.
    pub fn used_degenerate_fallback(&self) -> bool {
        self.degenerate_fallback
    }

    /// Number of shards (including empty ones).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The tile lattice backing the plan.
    pub fn tile_grid(&self) -> &TileGrid<D> {
        &self.grid
    }

    /// Tile index of a segment.
    pub fn tile_of_segment(&self, id: u32) -> usize {
        self.tile_of[id as usize] as usize
    }

    /// Shard index of a segment.
    pub fn shard_of_segment(&self, id: u32) -> usize {
        self.shard_of[id as usize] as usize
    }

    /// Member segment ids of one shard, ascending.
    pub fn shard_members(&self, shard: usize) -> &[u32] {
        &self.shards[shard]
    }
}

/// Per-tile work estimates for the packing step: a tile's segment count
/// times the estimated candidate count of an ε-query anchored in it. The
/// candidate estimate sums the density of every tile overlapped by the
/// tile's box expanded by the spatial filter radius, weighted by the
/// fraction of that tile the window covers — exactly the geometry an
/// index-backed ε-query sees. With `radius: None` (inadmissible distance
/// weights: every query scans the whole database) the candidate count is
/// uniform, so work degrades gracefully to plain segment counts.
fn tile_work_estimates<const D: usize>(
    grid: &TileGrid<D>,
    per_tile: &[usize],
    radius: Option<f64>,
) -> Vec<f64> {
    let radius = match radius {
        Some(r) if r.is_finite() && r >= 0.0 => r,
        _ => return per_tile.iter().map(|&c| c as f64).collect(),
    };
    let mut work = Vec::with_capacity(per_tile.len());
    for (t, &cnt) in per_tile.iter().enumerate() {
        if cnt == 0 {
            work.push(0.0);
            continue;
        }
        let window = grid.tile_bbox(t).expanded(radius);
        let mut candidates = 0.0f64;
        if let Some((lo, hi)) = grid.tile_range(&window) {
            // Odometer walk over the overlapped coordinate block.
            let mut c = lo;
            loop {
                let u = grid.flat_index(c);
                if per_tile[u] > 0 {
                    candidates +=
                        per_tile[u] as f64 * covered_fraction(&window, &grid.tile_bbox(u));
                }
                let mut advanced = false;
                let mut k = D;
                while k > 0 {
                    k -= 1;
                    if c[k] < hi[k] {
                        c[k] += 1;
                        advanced = true;
                        break;
                    }
                    c[k] = lo[k];
                }
                if !advanced {
                    break;
                }
            }
        }
        // The tile's own density is inside the window, so candidates ≥ cnt
        // and the estimate never undercuts the old count-based packing.
        work.push(cnt as f64 * candidates);
    }
    work
}

/// Fraction of `tile`'s box covered by `window`: the per-axis product of
/// overlap length over tile length. Zero-extent axes count as fully
/// covered (the window always spans them).
fn covered_fraction<const D: usize>(window: &Aabb<D>, tile: &Aabb<D>) -> f64 {
    let mut frac = 1.0;
    for k in 0..D {
        let len = tile.max[k] - tile.min[k];
        if len > 0.0 {
            let lo = window.min[k].max(tile.min[k]);
            let hi = window.max[k].min(tile.max[k]);
            frac *= ((hi - lo) / len).clamp(0.0, 1.0);
        }
    }
    frac
}

/// Evaluates the ε-neighborhoods of `ids` against the whole database on up
/// to `threads` scoped worker threads, returning them in `ids` order.
///
/// Each query is the exact query the sequential loop would run — a pure
/// `&self` read of the database and index (the index's prune counters are
/// atomic, and their relaxed additions commute) — and the results are
/// stitched back together in spawn order, i.e. in `ids` order. The caller
/// therefore observes results bit-identical to running the same queries
/// sequentially, for any thread count.
pub(crate) fn parallel_neighborhoods<const D: usize>(
    db: &SegmentDatabase<D>,
    index: &NeighborIndex<D>,
    ids: &[u32],
    eps: f64,
    threads: usize,
) -> Vec<Vec<u32>> {
    let per = ids.len().div_ceil(threads.max(1)).max(1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = ids
            .chunks(per)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut buf = Vec::new();
                    let mut out = Vec::with_capacity(chunk.len());
                    for &id in chunk {
                        db.neighborhood_into(index, id, eps, &mut buf);
                        out.push(buf.clone());
                    }
                    out
                })
            })
            .collect();
        let mut all = Vec::with_capacity(ids.len());
        for h in handles {
            all.extend(h.join().expect("neighborhood worker panicked"));
        }
        all
    })
}

/// What one shard worker reports back to the merge pass.
struct ShardOutcome {
    /// Core flag per shard member (parallel to the plan's member list).
    core: Vec<bool>,
    /// Local union-find result: `(core id, local component root id)` for
    /// every core in the shard (roots are ids of in-shard cores).
    links: Vec<(u32, u32)>,
    /// `(core, non-core)` ε-adjacencies resolved inside the shard.
    claims: Vec<(u32, u32)>,
    /// ε-adjacencies whose target lies outside the shard — the segments
    /// whose ε-balls cross tile/shard boundaries. The target's core status
    /// is unknown at shard time and is resolved by the merge pass.
    cross: Vec<(u32, u32)>,
}

/// Runs the grouping phase sharded over `threads` worker threads.
///
/// The caller guarantees `threads ≥ 2` (`threads = 1` takes the sequential
/// path in [`crate::LineSegmentClustering::run`]).
pub(crate) fn run_sharded<const D: usize>(
    db: &SegmentDatabase<D>,
    config: &ClusterConfig,
    threads: usize,
) -> (Clustering, ClusterStats) {
    let plan = ShardPlan::new(db, threads, config.eps);
    let mut index = db.build_index_parallel(config.index, config.eps, threads);
    index.set_pruning(config.pruning);
    let outcomes: Vec<ShardOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..plan.shard_count())
            .map(|s| {
                let (plan, index) = (&plan, &index);
                scope.spawn(move || cluster_shard(db, index, config, plan, s))
            })
            .collect();
        // Joining in spawn order keeps the merge input deterministic.
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });
    let clustering = merge_shards(db, config, &plan, &outcomes);
    let stats = ClusterStats {
        prune: index.prune_stats(),
    };
    (clustering, stats)
}

/// Phase 1+2 of the split/merge design, executed per worker: evaluate
/// ε-neighborhoods for the shard's segments (against the whole database),
/// then union in-shard core adjacencies and record everything that points
/// outside the shard for the merge pass.
fn cluster_shard<const D: usize>(
    db: &SegmentDatabase<D>,
    index: &NeighborIndex<D>,
    config: &ClusterConfig,
    plan: &ShardPlan<D>,
    shard: usize,
) -> ShardOutcome {
    let members = plan.shard_members(shard);
    let m = members.len();
    let mut core = vec![false; m];
    let mut dsu = UnionFind::new_over(members);
    let mut claims = Vec::new();
    let mut cross = Vec::new();
    // Forward in-shard edges whose target has not been evaluated yet. The
    // distance is symmetric, so a core-core edge is also seen — and
    // unioned — from the later member's side once its core flag is known;
    // a deferred edge only matters if the target turns out non-core (it
    // becomes a claim). This keeps one reusable neighborhood buffer
    // instead of retaining every core's neighborhood.
    //
    // All three deferred-edge lists only feed component-level decisions
    // downstream (a union or a min over components), so a source segment
    // can be replaced by its current component representative at any time.
    // Once a list outgrows its budget it is canonicalised and deduplicated
    // in place, bounding retention by the number of distinct
    // (component, target) pairs — dense settings (huge ε, one component)
    // collapse to O(targets) instead of O(all edges).
    let mut pending: Vec<(u32, u32)> = Vec::new();
    let mut budgets = [EdgeBudget::new(m); 3];
    let mut buf = Vec::new();
    let shard = shard as u32;
    for (k, &a) in members.iter().enumerate() {
        db.neighborhood_into(index, a, config.eps, &mut buf);
        let cardinality = db.neighborhood_cardinality(&buf, config.weighted);
        if cardinality < config.min_lns {
            continue;
        }
        core[k] = true;
        for &b in &buf {
            if b == a {
                continue;
            }
            if plan.shard_of[b as usize] == shard {
                let j = plan.local_index[b as usize] as usize;
                if j > k {
                    pending.push((k as u32, j as u32));
                } else if core[j] {
                    dsu.union(k as u32, j as u32);
                } else {
                    claims.push((a, b));
                }
            } else {
                cross.push((a, b));
            }
        }
        budgets[0].maybe_compact(&mut pending, &mut dsu, |dsu, k| dsu.find(k));
        budgets[1].maybe_compact(&mut claims, &mut dsu, |dsu, a| {
            members[dsu.find(plan.local_index[a as usize]) as usize]
        });
        budgets[2].maybe_compact(&mut cross, &mut dsu, |dsu, a| {
            members[dsu.find(plan.local_index[a as usize]) as usize]
        });
    }
    for &(k, j) in &pending {
        if !core[j as usize] {
            claims.push((members[k as usize], members[j as usize]));
        }
        // core-core: already unioned from j's side via its backward edge.
    }
    let links = members
        .iter()
        .enumerate()
        .filter(|&(k, _)| core[k])
        .map(|(k, &id)| (id, members[dsu.find(k as u32) as usize]))
        .collect();
    ShardOutcome {
        core,
        links,
        claims,
        cross,
    }
}

/// Compaction control for one deferred-edge list: canonicalise sources to
/// their current component representative, sort, dedup — but only once the
/// list has grown well past the last compacted size, so the amortised cost
/// stays linear-logarithmic in the unique-edge count.
#[derive(Clone, Copy)]
struct EdgeBudget {
    threshold: usize,
}

impl EdgeBudget {
    fn new(shard_len: usize) -> Self {
        Self {
            threshold: 1024.max(shard_len * 4),
        }
    }

    fn maybe_compact(
        &mut self,
        edges: &mut Vec<(u32, u32)>,
        dsu: &mut UnionFind,
        canonical_source: impl Fn(&mut UnionFind, u32) -> u32,
    ) {
        if edges.len() < self.threshold {
            return;
        }
        for e in edges.iter_mut() {
            e.0 = canonical_source(dsu, e.0);
        }
        edges.sort_unstable();
        edges.dedup();
        self.threshold = 1024.max(edges.len() * 4);
    }
}

/// Phase 3: reconcile shard outcomes into the global clustering. Unions
/// cross-border core adjacencies, numbers components in ascending
/// minimum-core-id order (the sequential seed order), and resolves border
/// claims by earliest component — then runs the shared finalisation
/// (trajectory filter + dense renumbering).
fn merge_shards<const D: usize>(
    db: &SegmentDatabase<D>,
    config: &ClusterConfig,
    plan: &ShardPlan<D>,
    outcomes: &[ShardOutcome],
) -> Clustering {
    let n = db.len();
    // Global core flags, needed to classify cross-border adjacencies.
    let mut core = vec![false; n];
    for (s, outcome) in outcomes.iter().enumerate() {
        for (k, &id) in plan.shard_members(s).iter().enumerate() {
            core[id as usize] = outcome.core[k];
        }
    }
    let mut dsu = UnionFind::new(n as u32);
    let mut claims: Vec<(u32, u32)> = Vec::new();
    for outcome in outcomes {
        for &(a, root) in &outcome.links {
            dsu.union(a, root);
        }
        claims.extend_from_slice(&outcome.claims);
        for &(a, b) in &outcome.cross {
            if core[b as usize] {
                dsu.union(a, b);
            } else {
                claims.push((a, b));
            }
        }
    }
    #[cfg(feature = "invariant-checks")]
    crate::invariants::assert_union_find_canonical(&dsu, "shard-merge");

    // Number components by ascending minimum core id — exactly the order
    // the sequential seed scan creates clusters in.
    let mut comp_of_root = vec![u32::MAX; n];
    let mut raw: Vec<Option<u32>> = vec![None; n];
    let mut cluster_count = 0u32;
    for i in 0..n as u32 {
        if !core[i as usize] {
            continue;
        }
        let root = dsu.find(i) as usize;
        if comp_of_root[root] == u32::MAX {
            comp_of_root[root] = cluster_count;
            cluster_count += 1;
        }
        raw[i as usize] = Some(comp_of_root[root]);
    }
    // Border segments join the earliest claiming component (first-come
    // sequential semantics, made order-free by the min).
    for &(a, b) in &claims {
        let comp = comp_of_root[dsu.find(a) as usize];
        let slot = &mut raw[b as usize];
        *slot = Some(slot.map_or(comp, |existing| existing.min(comp)));
    }
    finalize_raw(db, &raw, cluster_count, config.trajectory_threshold())
}

/// Union-find with path halving; the smaller root always wins a union, so
/// a component's root is its minimum member id — deterministic regardless
/// of union order. Shared with the incremental engine in [`crate::stream`],
/// whose component numbering relies on exactly this min-root property.
#[derive(Debug, Clone)]
pub(crate) struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    pub(crate) fn new(n: u32) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    /// A local union-find over shard positions `0..members.len()`.
    fn new_over(members: &[u32]) -> Self {
        Self::new(members.len() as u32)
    }

    /// Appends one fresh singleton element (the incremental engine grows
    /// the universe as segments stream in).
    pub(crate) fn push(&mut self) {
        self.parent.push(self.parent.len() as u32);
    }

    pub(crate) fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// [`Self::find`] without path compression, for shared-reference
    /// callers (e.g. taking a snapshot of the incremental engine).
    pub(crate) fn find_readonly(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// The raw parent array, for the `invariant-checks` canonical-form
    /// checker (`parent[x] ≤ x` everywhere).
    #[cfg(feature = "invariant-checks")]
    pub(crate) fn parent_slice(&self) -> &[u32] {
        &self.parent
    }

    pub(crate) fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traclus_geom::{IdentifiedSegment, Segment2, SegmentDistance, SegmentId, TrajectoryId};

    fn db(segs: &[Segment2]) -> SegmentDatabase<2> {
        let identified = segs
            .iter()
            .enumerate()
            .map(|(k, s)| IdentifiedSegment::new(SegmentId(k as u32), TrajectoryId(k as u32), *s))
            .collect();
        SegmentDatabase::from_segments(identified, SegmentDistance::default())
    }

    #[test]
    fn union_find_roots_are_minimum_members() {
        let mut dsu = UnionFind::new(10);
        dsu.union(7, 3);
        dsu.union(3, 9);
        dsu.union(5, 7);
        assert_eq!(dsu.find(9), 3);
        assert_eq!(dsu.find(5), 3);
        assert_eq!(dsu.find(0), 0, "untouched elements stay singletons");
        // The read-only finder agrees without mutating parents.
        assert_eq!(dsu.find_readonly(9), 3);
        // Growth appends singletons that union like any other element.
        dsu.push();
        assert_eq!(dsu.find(10), 10);
        dsu.union(10, 9);
        assert_eq!(dsu.find_readonly(10), 3);
    }

    #[test]
    fn plan_covers_every_segment_exactly_once() {
        let segs: Vec<Segment2> = (0..40)
            .map(|i| {
                let x = (i % 8) as f64 * 12.0;
                let y = (i / 8) as f64 * 9.0;
                Segment2::xy(x, y, x + 5.0, y)
            })
            .collect();
        let database = db(&segs);
        for shards in [1, 2, 3, 4, 7] {
            let plan = ShardPlan::new(&database, shards, 2.0);
            assert_eq!(plan.shard_count(), shards);
            let mut seen = vec![false; database.len()];
            for s in 0..plan.shard_count() {
                let members = plan.shard_members(s);
                assert!(members.windows(2).all(|w| w[0] < w[1]), "ascending ids");
                for &id in members {
                    assert_eq!(plan.shard_of_segment(id), s);
                    assert!(!seen[id as usize], "segment {id} in two shards");
                    seen[id as usize] = true;
                }
            }
            assert!(seen.iter().all(|&v| v), "every segment is sharded");
        }
    }

    #[test]
    fn plan_balances_spread_out_segments() {
        // 64 segments on an 8×8 lattice: 4 shards should each get a
        // reasonable share (tile packing is heuristic, not perfect).
        let segs: Vec<Segment2> = (0..64)
            .map(|i| {
                let x = (i % 8) as f64 * 20.0;
                let y = (i / 8) as f64 * 20.0;
                Segment2::xy(x, y, x + 3.0, y)
            })
            .collect();
        let database = db(&segs);
        let plan = ShardPlan::new(&database, 4, 2.0);
        for s in 0..4 {
            let share = plan.shard_members(s).len();
            assert!(
                (4..=36).contains(&share),
                "shard {s} grossly unbalanced: {share}/64"
            );
        }
    }

    #[test]
    fn degenerate_databases_plan_into_one_tile() {
        let empty = db(&[]);
        let plan = ShardPlan::new(&empty, 4, 2.0);
        assert_eq!(plan.shard_count(), 4);
        assert!((0..4).all(|s| plan.shard_members(s).is_empty()));
        assert!(!plan.used_degenerate_fallback(), "nothing to redistribute");
    }

    #[test]
    fn single_hot_tile_falls_back_to_contiguous_id_split() {
        // All mass on one point: one occupied tile. The tile assignment
        // would park all 6 segments on one worker; the fallback must
        // redistribute them as contiguous id runs instead.
        let stacked = db(&[Segment2::xy(1.0, 1.0, 1.0, 1.0); 6]);
        let plan = ShardPlan::new(&stacked, 3, 2.0);
        assert_eq!(plan.tile_grid().tile_count(), 1);
        assert!(plan.used_degenerate_fallback());
        for s in 0..3 {
            assert_eq!(
                plan.shard_members(s),
                &[2 * s as u32, 2 * s as u32 + 1],
                "shard {s} gets its contiguous id pair"
            );
        }
        // A single-shard plan has nothing to redistribute, degenerate or not.
        let plan = ShardPlan::new(&stacked, 1, 2.0);
        assert!(!plan.used_degenerate_fallback());
        assert_eq!(plan.shard_members(0).len(), 6);
    }

    #[test]
    fn work_aware_packing_relieves_dense_tiles() {
        // Four dense tiles (30 tightly-stacked segments each, so every
        // ε-query there touches ~30 candidates) followed by four sparse
        // tiles (10 spread segments each, ~10 candidates). Count-balanced
        // packing puts the 2-shard boundary at segment 80, handing three
        // dense tiles — 90 segments and ~2700 candidate evaluations — to
        // worker 0 while worker 1 idles on ~700. Work-aware packing must
        // cut earlier than the count midpoint.
        let mut segs = Vec::new();
        for t in 0..4 {
            for i in 0..30 {
                let x = 12.5 + 25.0 * t as f64 + (i % 6) as f64 * 0.1;
                let y = (i / 6) as f64 * 0.1;
                segs.push(Segment2::xy(x, y, x + 0.02, y));
            }
        }
        for t in 4..8 {
            for i in 0..10 {
                let x = 12.5 + 25.0 * t as f64 + i as f64 * 0.3;
                segs.push(Segment2::xy(x, 0.0, x + 0.02, 0.0));
            }
        }
        let database = db(&segs);
        let plan = ShardPlan::new(&database, 2, 0.5);
        assert!(!plan.used_degenerate_fallback());
        let dense_shard = plan.shard_of_segment(0);
        let share = plan.shard_members(dense_shard).len();
        assert!(
            share < 90,
            "dense shard is still count-balanced: {share}/160 members"
        );
        assert!(share >= 30, "dense shard vanished: {share}/160 members");
    }
}
