//! Sharded parallel grouping phase: split the segment database into
//! spatial shards, cluster shards concurrently, merge border clusters.
//!
//! The split/merge framing follows the parallel-DBSCAN literature
//! (partition the database spatially, run ε-expansion per partition, then
//! reconcile clusters that span partition borders with a union-find pass).
//! The crucial property is that the output is **identical** to the
//! sequential Figure 12 loop in [`crate::cluster`], not merely similar:
//!
//! 1. *Core-ness is intrinsic.* Whether `|Nε(L)| ≥ MinLns` depends only on
//!    the database, never on visit order, and every shard evaluates
//!    neighborhoods against the **whole** database through the shared
//!    spatial index — a shard owns seeds, not query scopes.
//! 2. *Clusters are components.* In the sequential algorithm every core
//!    segment reachable through core-to-core ε-links joins the same
//!    cluster, so clusters restricted to cores are exactly the connected
//!    components of the core-adjacency graph — again order-free. Raw
//!    cluster ids fall out of the seed scan in ascending-id order, i.e.
//!    components are numbered by their minimum core id.
//! 3. *Borders go to the earliest cluster.* A non-core segment within ε of
//!    cores from several components is claimed by the component that seeds
//!    first — the one with the smallest raw id (the PR 2 "stolen border"
//!    semantics). The merge pass reproduces this with a `min` over all
//!    claiming components, which is order-independent.
//!
//! Hence the parallel path recomputes the same `raw` assignment the
//! sequential scan produces and hands it to the shared finalisation step
//! (trajectory-cardinality filter + dense renumbering). The equivalence is
//! locked down by `tests/parallel_equivalence.rs` and the property suite.

use traclus_index::TileGrid;

use crate::cluster::{finalize_raw, ClusterConfig, ClusterStats, Clustering};
use crate::segment_db::{NeighborIndex, SegmentDatabase};

/// Tiles allocated per worker shard: oversampling lets the packing step
/// balance segment counts even when density varies across the bbox.
const TILE_OVERSAMPLING: usize = 4;

/// How the database is split for one parallel run: a [`TileGrid`] over the
/// database bounding box assigns every segment to the tile containing its
/// MBR midpoint; tiles are packed, in row-major order, into `shards`
/// groups of roughly equal segment count.
#[derive(Debug, Clone)]
pub struct ShardPlan<const D: usize> {
    grid: TileGrid<D>,
    /// Tile index per segment id.
    tile_of: Vec<u32>,
    /// Shard index per segment id.
    shard_of: Vec<u32>,
    /// Position of each segment within its shard's member list.
    local_index: Vec<u32>,
    /// Member segment ids per shard, ascending.
    shards: Vec<Vec<u32>>,
}

impl<const D: usize> ShardPlan<D> {
    /// Plans `shards` shards over the database (at least 1; empty shards
    /// are possible when segments cluster into few tiles).
    pub fn new(db: &SegmentDatabase<D>, shards: usize) -> Self {
        let shards = shards.max(1);
        let n = db.len();
        let grid = TileGrid::cover(&db.bounding_box(), shards * TILE_OVERSAMPLING);
        let tile_count = grid.tile_count();
        let mut tile_of = Vec::with_capacity(n);
        let mut per_tile = vec![0usize; tile_count];
        for id in 0..n as u32 {
            let t = grid.tile_of(&db.midpoint(id));
            tile_of.push(t as u32);
            per_tile[t] += 1;
        }
        // Pack tiles into shards: walking tiles in row-major order, a tile
        // goes to the shard its cumulative midpoint falls in — monotone, so
        // every shard is a contiguous run of tiles (compact borders), and
        // segment counts stay near-balanced.
        let mut tile_shard = vec![0u32; tile_count];
        let mut cum = 0usize;
        for (t, &cnt) in per_tile.iter().enumerate() {
            let mid = cum + cnt / 2;
            tile_shard[t] = (((mid * shards) / n.max(1)) as u32).min(shards as u32 - 1);
            cum += cnt;
        }
        let mut shard_of = Vec::with_capacity(n);
        let mut local_index = Vec::with_capacity(n);
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for id in 0..n as u32 {
            let s = tile_shard[tile_of[id as usize] as usize];
            shard_of.push(s);
            local_index.push(members[s as usize].len() as u32);
            members[s as usize].push(id);
        }
        Self {
            grid,
            tile_of,
            shard_of,
            local_index,
            shards: members,
        }
    }

    /// Number of shards (including empty ones).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The tile lattice backing the plan.
    pub fn tile_grid(&self) -> &TileGrid<D> {
        &self.grid
    }

    /// Tile index of a segment.
    pub fn tile_of_segment(&self, id: u32) -> usize {
        self.tile_of[id as usize] as usize
    }

    /// Shard index of a segment.
    pub fn shard_of_segment(&self, id: u32) -> usize {
        self.shard_of[id as usize] as usize
    }

    /// Member segment ids of one shard, ascending.
    pub fn shard_members(&self, shard: usize) -> &[u32] {
        &self.shards[shard]
    }
}

/// What one shard worker reports back to the merge pass.
struct ShardOutcome {
    /// Core flag per shard member (parallel to the plan's member list).
    core: Vec<bool>,
    /// Local union-find result: `(core id, local component root id)` for
    /// every core in the shard (roots are ids of in-shard cores).
    links: Vec<(u32, u32)>,
    /// `(core, non-core)` ε-adjacencies resolved inside the shard.
    claims: Vec<(u32, u32)>,
    /// ε-adjacencies whose target lies outside the shard — the segments
    /// whose ε-balls cross tile/shard boundaries. The target's core status
    /// is unknown at shard time and is resolved by the merge pass.
    cross: Vec<(u32, u32)>,
}

/// Runs the grouping phase sharded over `threads` worker threads.
///
/// The caller guarantees `threads ≥ 2` (`threads = 1` takes the sequential
/// path in [`crate::LineSegmentClustering::run`]).
pub(crate) fn run_sharded<const D: usize>(
    db: &SegmentDatabase<D>,
    config: &ClusterConfig,
    threads: usize,
) -> (Clustering, ClusterStats) {
    let plan = ShardPlan::new(db, threads);
    let mut index = db.build_index(config.index, config.eps);
    index.set_pruning(config.pruning);
    let outcomes: Vec<ShardOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..plan.shard_count())
            .map(|s| {
                let (plan, index) = (&plan, &index);
                scope.spawn(move || cluster_shard(db, index, config, plan, s))
            })
            .collect();
        // Joining in spawn order keeps the merge input deterministic.
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });
    let clustering = merge_shards(db, config, &plan, &outcomes);
    let stats = ClusterStats {
        prune: index.prune_stats(),
    };
    (clustering, stats)
}

/// Phase 1+2 of the split/merge design, executed per worker: evaluate
/// ε-neighborhoods for the shard's segments (against the whole database),
/// then union in-shard core adjacencies and record everything that points
/// outside the shard for the merge pass.
fn cluster_shard<const D: usize>(
    db: &SegmentDatabase<D>,
    index: &NeighborIndex<D>,
    config: &ClusterConfig,
    plan: &ShardPlan<D>,
    shard: usize,
) -> ShardOutcome {
    let members = plan.shard_members(shard);
    let m = members.len();
    let mut core = vec![false; m];
    let mut dsu = UnionFind::new_over(members);
    let mut claims = Vec::new();
    let mut cross = Vec::new();
    // Forward in-shard edges whose target has not been evaluated yet. The
    // distance is symmetric, so a core-core edge is also seen — and
    // unioned — from the later member's side once its core flag is known;
    // a deferred edge only matters if the target turns out non-core (it
    // becomes a claim). This keeps one reusable neighborhood buffer
    // instead of retaining every core's neighborhood.
    //
    // All three deferred-edge lists only feed component-level decisions
    // downstream (a union or a min over components), so a source segment
    // can be replaced by its current component representative at any time.
    // Once a list outgrows its budget it is canonicalised and deduplicated
    // in place, bounding retention by the number of distinct
    // (component, target) pairs — dense settings (huge ε, one component)
    // collapse to O(targets) instead of O(all edges).
    let mut pending: Vec<(u32, u32)> = Vec::new();
    let mut budgets = [EdgeBudget::new(m); 3];
    let mut buf = Vec::new();
    let shard = shard as u32;
    for (k, &a) in members.iter().enumerate() {
        db.neighborhood_into(index, a, config.eps, &mut buf);
        let cardinality = db.neighborhood_cardinality(&buf, config.weighted);
        if cardinality < config.min_lns {
            continue;
        }
        core[k] = true;
        for &b in &buf {
            if b == a {
                continue;
            }
            if plan.shard_of[b as usize] == shard {
                let j = plan.local_index[b as usize] as usize;
                if j > k {
                    pending.push((k as u32, j as u32));
                } else if core[j] {
                    dsu.union(k as u32, j as u32);
                } else {
                    claims.push((a, b));
                }
            } else {
                cross.push((a, b));
            }
        }
        budgets[0].maybe_compact(&mut pending, &mut dsu, |dsu, k| dsu.find(k));
        budgets[1].maybe_compact(&mut claims, &mut dsu, |dsu, a| {
            members[dsu.find(plan.local_index[a as usize]) as usize]
        });
        budgets[2].maybe_compact(&mut cross, &mut dsu, |dsu, a| {
            members[dsu.find(plan.local_index[a as usize]) as usize]
        });
    }
    for &(k, j) in &pending {
        if !core[j as usize] {
            claims.push((members[k as usize], members[j as usize]));
        }
        // core-core: already unioned from j's side via its backward edge.
    }
    let links = members
        .iter()
        .enumerate()
        .filter(|&(k, _)| core[k])
        .map(|(k, &id)| (id, members[dsu.find(k as u32) as usize]))
        .collect();
    ShardOutcome {
        core,
        links,
        claims,
        cross,
    }
}

/// Compaction control for one deferred-edge list: canonicalise sources to
/// their current component representative, sort, dedup — but only once the
/// list has grown well past the last compacted size, so the amortised cost
/// stays linear-logarithmic in the unique-edge count.
#[derive(Clone, Copy)]
struct EdgeBudget {
    threshold: usize,
}

impl EdgeBudget {
    fn new(shard_len: usize) -> Self {
        Self {
            threshold: 1024.max(shard_len * 4),
        }
    }

    fn maybe_compact(
        &mut self,
        edges: &mut Vec<(u32, u32)>,
        dsu: &mut UnionFind,
        canonical_source: impl Fn(&mut UnionFind, u32) -> u32,
    ) {
        if edges.len() < self.threshold {
            return;
        }
        for e in edges.iter_mut() {
            e.0 = canonical_source(dsu, e.0);
        }
        edges.sort_unstable();
        edges.dedup();
        self.threshold = 1024.max(edges.len() * 4);
    }
}

/// Phase 3: reconcile shard outcomes into the global clustering. Unions
/// cross-border core adjacencies, numbers components in ascending
/// minimum-core-id order (the sequential seed order), and resolves border
/// claims by earliest component — then runs the shared finalisation
/// (trajectory filter + dense renumbering).
fn merge_shards<const D: usize>(
    db: &SegmentDatabase<D>,
    config: &ClusterConfig,
    plan: &ShardPlan<D>,
    outcomes: &[ShardOutcome],
) -> Clustering {
    let n = db.len();
    // Global core flags, needed to classify cross-border adjacencies.
    let mut core = vec![false; n];
    for (s, outcome) in outcomes.iter().enumerate() {
        for (k, &id) in plan.shard_members(s).iter().enumerate() {
            core[id as usize] = outcome.core[k];
        }
    }
    let mut dsu = UnionFind::new(n as u32);
    let mut claims: Vec<(u32, u32)> = Vec::new();
    for outcome in outcomes {
        for &(a, root) in &outcome.links {
            dsu.union(a, root);
        }
        claims.extend_from_slice(&outcome.claims);
        for &(a, b) in &outcome.cross {
            if core[b as usize] {
                dsu.union(a, b);
            } else {
                claims.push((a, b));
            }
        }
    }
    #[cfg(feature = "invariant-checks")]
    crate::invariants::assert_union_find_canonical(&dsu, "shard-merge");

    // Number components by ascending minimum core id — exactly the order
    // the sequential seed scan creates clusters in.
    let mut comp_of_root = vec![u32::MAX; n];
    let mut raw: Vec<Option<u32>> = vec![None; n];
    let mut cluster_count = 0u32;
    for i in 0..n as u32 {
        if !core[i as usize] {
            continue;
        }
        let root = dsu.find(i) as usize;
        if comp_of_root[root] == u32::MAX {
            comp_of_root[root] = cluster_count;
            cluster_count += 1;
        }
        raw[i as usize] = Some(comp_of_root[root]);
    }
    // Border segments join the earliest claiming component (first-come
    // sequential semantics, made order-free by the min).
    for &(a, b) in &claims {
        let comp = comp_of_root[dsu.find(a) as usize];
        let slot = &mut raw[b as usize];
        *slot = Some(slot.map_or(comp, |existing| existing.min(comp)));
    }
    finalize_raw(db, &raw, cluster_count, config.trajectory_threshold())
}

/// Union-find with path halving; the smaller root always wins a union, so
/// a component's root is its minimum member id — deterministic regardless
/// of union order. Shared with the incremental engine in [`crate::stream`],
/// whose component numbering relies on exactly this min-root property.
#[derive(Debug, Clone)]
pub(crate) struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    pub(crate) fn new(n: u32) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    /// A local union-find over shard positions `0..members.len()`.
    fn new_over(members: &[u32]) -> Self {
        Self::new(members.len() as u32)
    }

    /// Appends one fresh singleton element (the incremental engine grows
    /// the universe as segments stream in).
    pub(crate) fn push(&mut self) {
        self.parent.push(self.parent.len() as u32);
    }

    pub(crate) fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// [`Self::find`] without path compression, for shared-reference
    /// callers (e.g. taking a snapshot of the incremental engine).
    pub(crate) fn find_readonly(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// The raw parent array, for the `invariant-checks` canonical-form
    /// checker (`parent[x] ≤ x` everywhere).
    #[cfg(feature = "invariant-checks")]
    pub(crate) fn parent_slice(&self) -> &[u32] {
        &self.parent
    }

    pub(crate) fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traclus_geom::{IdentifiedSegment, Segment2, SegmentDistance, SegmentId, TrajectoryId};

    fn db(segs: &[Segment2]) -> SegmentDatabase<2> {
        let identified = segs
            .iter()
            .enumerate()
            .map(|(k, s)| IdentifiedSegment::new(SegmentId(k as u32), TrajectoryId(k as u32), *s))
            .collect();
        SegmentDatabase::from_segments(identified, SegmentDistance::default())
    }

    #[test]
    fn union_find_roots_are_minimum_members() {
        let mut dsu = UnionFind::new(10);
        dsu.union(7, 3);
        dsu.union(3, 9);
        dsu.union(5, 7);
        assert_eq!(dsu.find(9), 3);
        assert_eq!(dsu.find(5), 3);
        assert_eq!(dsu.find(0), 0, "untouched elements stay singletons");
        // The read-only finder agrees without mutating parents.
        assert_eq!(dsu.find_readonly(9), 3);
        // Growth appends singletons that union like any other element.
        dsu.push();
        assert_eq!(dsu.find(10), 10);
        dsu.union(10, 9);
        assert_eq!(dsu.find_readonly(10), 3);
    }

    #[test]
    fn plan_covers_every_segment_exactly_once() {
        let segs: Vec<Segment2> = (0..40)
            .map(|i| {
                let x = (i % 8) as f64 * 12.0;
                let y = (i / 8) as f64 * 9.0;
                Segment2::xy(x, y, x + 5.0, y)
            })
            .collect();
        let database = db(&segs);
        for shards in [1, 2, 3, 4, 7] {
            let plan = ShardPlan::new(&database, shards);
            assert_eq!(plan.shard_count(), shards);
            let mut seen = vec![false; database.len()];
            for s in 0..plan.shard_count() {
                let members = plan.shard_members(s);
                assert!(members.windows(2).all(|w| w[0] < w[1]), "ascending ids");
                for &id in members {
                    assert_eq!(plan.shard_of_segment(id), s);
                    assert!(!seen[id as usize], "segment {id} in two shards");
                    seen[id as usize] = true;
                }
            }
            assert!(seen.iter().all(|&v| v), "every segment is sharded");
        }
    }

    #[test]
    fn plan_balances_spread_out_segments() {
        // 64 segments on an 8×8 lattice: 4 shards should each get a
        // reasonable share (tile packing is heuristic, not perfect).
        let segs: Vec<Segment2> = (0..64)
            .map(|i| {
                let x = (i % 8) as f64 * 20.0;
                let y = (i / 8) as f64 * 20.0;
                Segment2::xy(x, y, x + 3.0, y)
            })
            .collect();
        let database = db(&segs);
        let plan = ShardPlan::new(&database, 4);
        for s in 0..4 {
            let share = plan.shard_members(s).len();
            assert!(
                (4..=36).contains(&share),
                "shard {s} grossly unbalanced: {share}/64"
            );
        }
    }

    #[test]
    fn degenerate_databases_plan_into_one_tile() {
        let empty = db(&[]);
        let plan = ShardPlan::new(&empty, 4);
        assert_eq!(plan.shard_count(), 4);
        assert!((0..4).all(|s| plan.shard_members(s).is_empty()));
        // All mass on one point: one occupied tile, everything in one shard.
        let stacked = db(&[Segment2::xy(1.0, 1.0, 1.0, 1.0); 6]);
        let plan = ShardPlan::new(&stacked, 3);
        let total: usize = (0..3).map(|s| plan.shard_members(s).len()).sum();
        assert_eq!(total, 6);
        assert_eq!(plan.tile_grid().tile_count(), 1);
    }
}
