//! # traclus-core
//!
//! The TRACLUS algorithm (Lee, Han, Whang; SIGMOD 2007): MDL-based
//! trajectory partitioning, density-based line-segment clustering, and
//! representative-trajectory generation — Figure 4's three sub-algorithms
//! plus the Section 4.4 parameter heuristics and the Formula 11 quality
//! measure.
//!
//! ```
//! use traclus_core::{Traclus, TraclusConfig};
//! use traclus_geom::{Point2, Trajectory, TrajectoryId};
//!
//! // Ten trajectories crossing the same horizontal corridor.
//! let trajectories: Vec<_> = (0..10)
//!     .map(|i| {
//!         let jitter = (i as f64) * 0.3;
//!         Trajectory::new(
//!             TrajectoryId(i),
//!             (0..30)
//!                 .map(|k| Point2::xy(k as f64 * 4.0, jitter))
//!                 .collect(),
//!         )
//!     })
//!     .collect();
//! let outcome = Traclus::new(TraclusConfig {
//!     eps: 5.0,
//!     min_lns: 4,
//!     ..TraclusConfig::default()
//! })
//! .run(&trajectories);
//! assert_eq!(outcome.clusters.len(), 1, "one shared corridor");
//! ```

#![warn(missing_docs)]
// Const-generic code indexes several [f64; D] arrays with one loop counter;
// clippy's iterator rewrite would zip up to four iterators and read worse.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]

pub mod anneal;
pub mod cluster;
#[cfg(feature = "invariant-checks")]
mod invariants;
pub mod params;
pub mod partition;
pub mod quality;
pub mod representative;
pub mod segment_db;
pub mod shard;
pub mod simplify;
pub mod snapshot;
pub mod stream;

use traclus_geom::{SegmentDistance, Trajectory};

pub use anneal::{minimize_1d, AnnealConfig, AnnealOutcome};
pub use cluster::{
    Cluster, ClusterConfig, ClusterId, ClusterStats, Clustering, LineSegmentClustering,
    SegmentLabel,
};
pub use params::{
    select_eps_annealing, select_min_lns, EntropyCurve, EntropyPoint, EpsSelection,
    NeighborhoodStats, Parallelism,
};
pub use partition::{
    approximate_partition, optimal_partition, partition_precision, partition_trajectories,
    partition_trajectory_from, MdlCost, PartitionConfig, Partitioning,
};
pub use quality::QMeasure;
pub use representative::{
    average_direction_vector, representative_trajectory, RepresentativeConfig,
};
pub use segment_db::{IndexKind, NeighborIndex, PruneStats, SegmentDatabase};
pub use shard::ShardPlan;
pub use simplify::{douglas_peucker, douglas_peucker_matching_count};
pub use snapshot::{ClusterSnapshot, RegionSummary, SnapshotCell};
pub use stream::{IncrementalClustering, InsertReport, RemoveReport, StreamConfig, StreamStats};

/// End-to-end configuration of the TRACLUS pipeline (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraclusConfig {
    /// Neighborhood radius ε for the grouping phase.
    pub eps: f64,
    /// `MinLns` for both the grouping phase and the representative sweep.
    pub min_lns: usize,
    /// The segment distance (weights + angle mode) shared by clustering and
    /// representative generation.
    pub distance: SegmentDistance,
    /// Partitioning-phase configuration (MDL encoding + suppression).
    pub partition: PartitionConfig,
    /// Spatial index backing ε-neighborhood queries.
    pub index: IndexKind,
    /// Trajectory-cardinality threshold (`None` = `MinLns`; Figure 12
    /// line 15).
    pub min_trajectories: Option<usize>,
    /// Weighted-trajectory extension (Section 4.2).
    pub weighted: bool,
    /// Smoothing γ for the representative sweep; `None` uses ε/4 — a
    /// pragmatic default keeping representatives readable (the paper leaves
    /// γ as a free input to Figure 15).
    pub smoothing: Option<f64>,
    /// Worker threads for the grouping phase. The default uses all
    /// available hardware threads through the sharded parallel path, which
    /// produces the identical clustering to the sequential loop (see
    /// [`shard`]); set [`Parallelism::Sequential`] to force the Figure 12
    /// single-threaded scan.
    pub parallelism: Parallelism,
    /// Maintenance knobs of the streaming engine ([`Traclus::stream`] /
    /// [`IncrementalClustering`]): currently the dirty-region threshold
    /// that trades local repair against a full re-cluster. Ignored by the
    /// batch [`Traclus::run`] path.
    pub stream: StreamConfig,
    /// Filter-and-refine pruning of ε-neighborhood candidates via the
    /// admissible lower bounds of [`traclus_geom::lower_bound`]. Purely a
    /// performance/diagnostics knob: the bounds are exact lower bounds on
    /// the computed distance, so the clustering is bit-identical with
    /// pruning on or off. Default `true`.
    pub pruning: bool,
}

impl TraclusConfig {
    /// The grouping-phase slice of this configuration — the
    /// [`ClusterConfig`] handed to [`LineSegmentClustering`]. Kept in one
    /// place so the batch ([`Traclus::run`]) and streaming
    /// ([`Traclus::stream`]) paths cannot drift apart on clustering
    /// parameters.
    pub fn cluster_config(&self) -> ClusterConfig {
        ClusterConfig {
            eps: self.eps,
            min_lns: self.min_lns as f64,
            min_trajectories: self.min_trajectories,
            weighted: self.weighted,
            index: self.index,
            parallelism: self.parallelism,
            pruning: self.pruning,
        }
    }
}

impl Default for TraclusConfig {
    fn default() -> Self {
        Self {
            eps: 25.0,
            min_lns: 5,
            distance: SegmentDistance::default(),
            partition: PartitionConfig::default(),
            index: IndexKind::default(),
            min_trajectories: None,
            weighted: false,
            smoothing: None,
            parallelism: Parallelism::default(),
            stream: StreamConfig::default(),
            pruning: true,
        }
    }
}

/// A cluster as delivered by the full pipeline: membership plus its
/// representative trajectory (the discovered *common sub-trajectory*).
#[derive(Debug, Clone, PartialEq)]
pub struct TraclusCluster<const D: usize> {
    /// Membership and provenance.
    pub cluster: Cluster,
    /// The representative trajectory (Figure 15 output).
    pub representative: Trajectory<D>,
}

impl<const D: usize> std::ops::Deref for TraclusCluster<D> {
    type Target = Cluster;
    fn deref(&self) -> &Cluster {
        &self.cluster
    }
}

/// Everything the pipeline produces.
pub struct TraclusOutcome<const D: usize> {
    /// The partitioned segment database (phase 1 output).
    pub database: SegmentDatabase<D>,
    /// Raw clustering (labels, clusters, filter diagnostics).
    pub clustering: Clustering,
    /// Clusters with their representative trajectories.
    pub clusters: Vec<TraclusCluster<D>>,
}

impl<const D: usize> TraclusOutcome<D> {
    /// The representative trajectories alone (the paper's second output in
    /// Figure 4).
    pub fn representatives(&self) -> Vec<&Trajectory<D>> {
        self.clusters.iter().map(|c| &c.representative).collect()
    }
}

/// The TRACLUS driver (Figure 4): partition every trajectory, cluster the
/// accumulated segments, generate one representative per cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Traclus {
    /// The pipeline configuration.
    pub config: TraclusConfig,
}

impl Traclus {
    /// Binds a configuration.
    pub fn new(config: TraclusConfig) -> Self {
        assert!(config.eps > 0.0 && config.eps.is_finite(), "ε must be > 0");
        assert!(config.min_lns >= 1, "MinLns must be ≥ 1");
        Self { config }
    }

    /// Runs the full pipeline.
    pub fn run<const D: usize>(&self, trajectories: &[Trajectory<D>]) -> TraclusOutcome<D> {
        let cfg = &self.config;
        // Partitioning phase (lines 1–3).
        let database =
            SegmentDatabase::from_trajectories(trajectories, &cfg.partition, cfg.distance);
        self.run_on_database(database)
    }

    /// Runs the grouping + representative phases on an already-partitioned
    /// database (useful when re-clustering the same segments under
    /// different parameters, e.g. the Figure 17/20 sweeps).
    pub fn run_on_database<const D: usize>(
        &self,
        database: SegmentDatabase<D>,
    ) -> TraclusOutcome<D> {
        // Grouping phase (line 4).
        let clustering =
            LineSegmentClustering::new(&database, self.config.cluster_config()).run_configured();
        attach_representatives(&self.config, database, clustering)
    }

    /// An empty streaming engine bound to this configuration — the online
    /// counterpart of [`Self::run`], accepting trajectories one at a time
    /// (see [`stream`]).
    pub fn stream<const D: usize>(&self) -> IncrementalClustering<D> {
        IncrementalClustering::new(self.config)
    }
}

/// Representative trajectories (Figure 4 lines 5–6) for a finished
/// clustering — the tail of the pipeline shared by the batch
/// [`Traclus::run_on_database`] and the streaming
/// [`IncrementalClustering::finish`].
pub(crate) fn attach_representatives<const D: usize>(
    config: &TraclusConfig,
    database: SegmentDatabase<D>,
    clustering: Clustering,
) -> TraclusOutcome<D> {
    let clusters = representatives_for(config, &database, &clustering);
    TraclusOutcome {
        database,
        clustering,
        clusters,
    }
}

/// Representative trajectories for a finished clustering, borrowing the
/// database — the reusable core of the batch pipeline's final stage, also
/// used by [`snapshot::ClusterSnapshot`] to materialise read-only views
/// without consuming the streaming engine's state.
pub fn representatives_for<const D: usize>(
    config: &TraclusConfig,
    database: &SegmentDatabase<D>,
    clustering: &Clustering,
) -> Vec<TraclusCluster<D>> {
    let mut rep_config = RepresentativeConfig::new(
        config.min_lns,
        config.smoothing.unwrap_or(config.eps * 0.25),
    );
    rep_config.weighted = config.weighted;
    clustering
        .clusters
        .iter()
        .map(|c| TraclusCluster {
            cluster: c.clone(),
            representative: representative_trajectory(database, c, &rep_config),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use traclus_geom::{Point2, TrajectoryId};

    /// Figure 1's scene: five trajectories that share one corridor and then
    /// fan out in different directions. Whole-trajectory clustering misses
    /// the corridor; TRACLUS must find it.
    ///
    /// The corridor is long (30 points) relative to the divergence so that
    /// the MDL partitioner's few absorbed post-corner steps (Figure 9-style
    /// approximation) tilt the corridor partitions only slightly.
    fn figure_1_scene() -> Vec<Trajectory<2>> {
        let headings = [
            (1.0f64, 1.0f64),
            (1.0, 0.5),
            (1.0, 0.0),
            (1.0, -0.5),
            (1.0, -1.0),
        ];
        headings
            .iter()
            .enumerate()
            .map(|(i, &(dx, dy))| {
                let mut points = Vec::new();
                // Shared corridor: west → east along y ≈ 0.
                for k in 0..30 {
                    points.push(Point2::xy(k as f64 * 4.0, (i as f64) * 0.4));
                }
                // Diverge.
                let (ox, oy) = (29.0 * 4.0, (i as f64) * 0.4);
                for k in 1..16 {
                    let t = k as f64 * 4.0;
                    points.push(Point2::xy(ox + dx * t, oy + dy * t));
                }
                Trajectory::new(TrajectoryId(i as u32), points)
            })
            .collect()
    }

    #[test]
    fn discovers_the_common_sub_trajectory_of_figure_1() {
        let outcome = Traclus::new(TraclusConfig {
            eps: 8.0,
            min_lns: 3,
            ..TraclusConfig::default()
        })
        .run(&figure_1_scene());
        assert!(
            !outcome.clusters.is_empty(),
            "the shared corridor must be discovered"
        );
        // The corridor cluster runs west→east near y ∈ [0, 2].
        let rep = &outcome.clusters[0].representative;
        assert!(rep.points.len() >= 2);
        let first = rep.points.first().unwrap();
        let last = rep.points.last().unwrap();
        assert!(last.x() > first.x(), "corridor direction preserved");
        for p in &rep.points {
            assert!(
                (-2.0..=4.0).contains(&p.y()),
                "representative stays inside the corridor, got y={}",
                p.y()
            );
        }
    }

    #[test]
    fn representative_count_matches_cluster_count() {
        let outcome = Traclus::new(TraclusConfig {
            eps: 8.0,
            min_lns: 3,
            ..TraclusConfig::default()
        })
        .run(&figure_1_scene());
        assert_eq!(outcome.clusters.len(), outcome.representatives().len());
        assert_eq!(outcome.clusters.len(), outcome.clustering.clusters.len());
    }

    #[test]
    fn no_trajectories_no_clusters() {
        let outcome = Traclus::new(TraclusConfig::default()).run::<2>(&[]);
        assert!(outcome.clusters.is_empty());
        assert!(outcome.database.is_empty());
    }

    #[test]
    #[should_panic(expected = "ε must be > 0")]
    fn non_positive_eps_rejected() {
        let _ = Traclus::new(TraclusConfig {
            eps: 0.0,
            ..TraclusConfig::default()
        });
    }

    #[test]
    fn run_on_database_allows_parameter_sweeps() {
        let trajs = figure_1_scene();
        let config = TraclusConfig {
            eps: 8.0,
            min_lns: 3,
            ..TraclusConfig::default()
        };
        let db1 = SegmentDatabase::from_trajectories(&trajs, &config.partition, config.distance);
        let tight = Traclus::new(TraclusConfig {
            eps: 0.05,
            ..config
        })
        .run_on_database(db1);
        let db2 = SegmentDatabase::from_trajectories(&trajs, &config.partition, config.distance);
        let loose = Traclus::new(config).run_on_database(db2);
        assert!(tight.clusters.len() <= loose.clusters.len());
    }
}
