//! The segment database `D` of Figure 12 with accelerated ε-neighborhood
//! queries.
//!
//! Holds the identified line segments produced by the partitioning phase,
//! caches their lengths (the distance function orders operands by length;
//! Lemma 2), and answers Definition 4 neighborhood queries either by full
//! scan or through a spatial index with the conservative filter radius
//! derived in `traclus-index`.
//!
//! Queries run **filter-and-refine**: before a candidate reaches the
//! batched distance kernel it passes through the tiered admissible lower
//! bounds of [`traclus_geom::lower_bound`] (MBR distance, midpoint/length,
//! exact angle), and candidates whose bound already exceeds ε are
//! discarded. The bounds never exceed the computed distance, so pruned and
//! unpruned neighborhoods are bit-identical; [`PruneStats`] counts what
//! each tier saved.

use std::sync::atomic::{AtomicU64, Ordering};

use traclus_geom::{
    lower_bound, Aabb, IdentifiedSegment, SegmentDistance, SegmentSoa, Trajectory, TrajectoryId,
};
use traclus_index::{filter_radius, GridIndex, RTree, RTreeParams, SpatialIndex};

use crate::partition::{partition_trajectories, PartitionConfig};

/// Which acceleration structure backs ε-neighborhood queries (Lemma 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKind {
    /// Full scan: the O(n²) arm of Lemma 3.
    Linear,
    /// Uniform grid hashed on MBRs.
    Grid,
    /// STR-bulk-loaded R-tree (the paper's suggestion).
    #[default]
    RTree,
}

#[derive(Clone)]
enum IndexImpl<const D: usize> {
    /// Full scan needs no structure: the database iterates all segments.
    Linear,
    Grid(GridIndex<D>),
    RTree(RTree<D>),
}

/// Cumulative filter-and-refine counters of one [`NeighborIndex`] — a
/// plain-value snapshot of its atomic tallies.
///
/// The invariant `candidates == pruned_total() + refined` holds by
/// construction: every candidate a query considers is either discarded by
/// exactly one tier or scored exactly once by the batched kernel. All
/// counters stay zero while pruning is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneStats {
    /// Candidates the index (or full scan) produced for refinement.
    pub candidates: u64,
    /// Candidates discarded by the tier-1 MBR-distance bound.
    pub pruned_mbr: u64,
    /// Candidates discarded by the tier-2 midpoint/length bound.
    pub pruned_midpoint: u64,
    /// Candidates discarded by the tier-3 exact-angle bound.
    pub pruned_angle: u64,
    /// Candidates that survived every tier and were scored exactly.
    pub refined: u64,
}

impl PruneStats {
    /// Candidates discarded across all tiers.
    pub fn pruned_total(&self) -> u64 {
        self.pruned_mbr + self.pruned_midpoint + self.pruned_angle
    }
}

/// Shared atomic tallies behind [`PruneStats`]. Queries take `&self` and
/// run concurrently from the sharded workers, so the counters are atomics;
/// each query accumulates locally and flushes once (relaxed — the numbers
/// are observability, not synchronisation).
#[derive(Debug, Default)]
struct PruneCounters {
    candidates: AtomicU64,
    pruned: [AtomicU64; lower_bound::TIER_COUNT],
    refined: AtomicU64,
}

impl PruneCounters {
    fn snapshot(&self) -> PruneStats {
        let pruned: Vec<u64> = self
            .pruned
            .iter()
            .map(|p| p.load(Ordering::Relaxed))
            .collect();
        PruneStats {
            candidates: self.candidates.load(Ordering::Relaxed),
            pruned_mbr: pruned[0],
            pruned_midpoint: pruned[1],
            pruned_angle: pruned[2],
            refined: self.refined.load(Ordering::Relaxed),
        }
    }

    fn flush(&self, local: &LocalPruneCounts) {
        if local.candidates == 0 {
            return;
        }
        self.candidates
            .fetch_add(local.candidates, Ordering::Relaxed);
        for (slot, &n) in self.pruned.iter().zip(&local.pruned) {
            if n > 0 {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.refined.fetch_add(local.refined, Ordering::Relaxed);
    }
}

/// Per-query counter accumulation, flushed to the shared atomics once per
/// `neighborhood_into` call instead of per candidate.
#[derive(Default)]
struct LocalPruneCounts {
    candidates: u64,
    pruned: [u64; lower_bound::TIER_COUNT],
    refined: u64,
}

/// A built neighborhood index bound to a database snapshot.
///
/// The index answers queries for whatever database state it was built
/// against; [`Self::insert`] keeps it in sync as segments are appended
/// (the streaming path in `traclus-core::stream`).
///
/// Queries prune candidates through the admissible lower bounds of
/// [`traclus_geom::lower_bound`] by default — results are bit-identical
/// either way, so [`Self::set_pruning`] is a performance/diagnostics knob,
/// not a semantics switch. [`Self::prune_stats`] reports what the filter
/// did.
pub struct NeighborIndex<const D: usize> {
    imp: IndexImpl<D>,
    /// Expansion radius per unit ε, `√(4/w⊥² + 1/w∥²)`; `None` forces full
    /// scans (degenerate weights).
    radius_per_eps: Option<f64>,
    /// Filter-and-refine switch (default on; bit-identical either way).
    prune: bool,
    counters: PruneCounters,
}

impl<const D: usize> Clone for NeighborIndex<D> {
    /// Clones the index structure and a point-in-time snapshot of the
    /// prune counters (atomics have no derived `Clone`).
    fn clone(&self) -> Self {
        let stats = self.prune_stats();
        Self {
            imp: self.imp.clone(),
            radius_per_eps: self.radius_per_eps,
            prune: self.prune,
            counters: PruneCounters {
                candidates: AtomicU64::new(stats.candidates),
                pruned: [
                    AtomicU64::new(stats.pruned_mbr),
                    AtomicU64::new(stats.pruned_midpoint),
                    AtomicU64::new(stats.pruned_angle),
                ],
                refined: AtomicU64::new(stats.refined),
            },
        }
    }
}

impl<const D: usize> NeighborIndex<D> {
    /// Enables or disables the filter-and-refine lower-bound pruning.
    /// Neighborhoods are bit-identical either way; disabling is useful for
    /// benchmarking the filter's gain and for equivalence harnesses.
    pub fn set_pruning(&mut self, on: bool) {
        self.prune = on;
    }

    /// Whether lower-bound pruning is enabled.
    pub fn pruning(&self) -> bool {
        self.prune
    }

    /// A snapshot of the cumulative filter-and-refine counters.
    pub fn prune_stats(&self) -> PruneStats {
        self.counters.snapshot()
    }

    /// Registers one freshly appended segment so subsequent queries see it.
    ///
    /// Linear scans need no structure (the database itself is the index);
    /// grid cells hash the new MBR in O(cells overlapped); the R-tree takes
    /// the Guttman insertion path (choose-leaf by least enlargement,
    /// quadratic split on overflow). Must be called once per segment
    /// appended via [`SegmentDatabase::append_segments`], in id order.
    pub fn insert(&mut self, id: u32, bbox: &Aabb<D>) {
        match &mut self.imp {
            IndexImpl::Linear => {}
            IndexImpl::Grid(g) => g.insert(id, *bbox),
            IndexImpl::RTree(t) => t.insert(id, *bbox),
        }
    }

    /// Deregisters one removed segment so subsequent queries no longer see
    /// it — the decremental counterpart of [`Self::insert`]. `bbox` must be
    /// the box the segment was registered under (it guides the R-tree
    /// descent). Linear scans need no action here; the database's own
    /// tombstone flags keep dead segments out of full scans.
    ///
    /// Must be called once per segment retired via
    /// [`SegmentDatabase::remove_segment`], before the next query.
    pub fn remove(&mut self, id: u32, bbox: &Aabb<D>) {
        match &mut self.imp {
            IndexImpl::Linear => {}
            IndexImpl::Grid(g) => {
                g.remove(id);
            }
            IndexImpl::RTree(t) => {
                t.remove(id, bbox);
            }
        }
    }
}

/// The segment database: segments + cached geometry + the distance
/// function all phases share.
///
/// Geometry derived from the segments (direction vectors, squared norms,
/// lengths, midpoints) lives in a structure-of-arrays [`SegmentSoa`] built
/// once at construction, so ε-neighborhood refinement runs the batched
/// `distance_many` kernel instead of re-deriving projection setup from raw
/// endpoints on every pair.
/// Removal is tombstone-based: [`Self::remove_segment`] marks a segment
/// dead without disturbing the dense id space (labels, counts, and the
/// union-find in `traclus-core::stream` are all indexed by id). Dead
/// segments keep their geometry — a removal repair still needs to ask
/// "who was near the departed segment?" — but drop out of every
/// neighborhood query, the database bounding box, and freshly built
/// indexes. [`Self::compact_live`] produces the dense, all-live database
/// the batch pipeline would build over the surviving window.
#[derive(Clone)]
pub struct SegmentDatabase<const D: usize> {
    segments: Vec<IdentifiedSegment<D>>,
    soa: SegmentSoa<D>,
    bboxes: Vec<Aabb<D>>,
    /// Tombstone flags: `alive[id]` is cleared by [`Self::remove_segment`].
    alive: Vec<bool>,
    /// Count of set flags in `alive`.
    live: usize,
    distance: SegmentDistance,
}

/// Candidates are refined through the batched kernel in stack-allocated
/// chunks of this many distances (no per-query heap traffic).
const REFINE_CHUNK: usize = 64;

impl<const D: usize> SegmentDatabase<D> {
    /// Builds the database from already-partitioned segments.
    ///
    /// Segment ids must be dense (`segments[k].id.0 == k`); the clustering
    /// algorithm indexes label arrays by id. [`partition_trajectories`]
    /// produces exactly this layout.
    pub fn from_segments(segments: Vec<IdentifiedSegment<D>>, distance: SegmentDistance) -> Self {
        for (k, s) in segments.iter().enumerate() {
            assert_eq!(
                s.id.0 as usize, k,
                "segment ids must be dense and sequential"
            );
        }
        let soa = SegmentSoa::from_segments(segments.iter().map(|s| &s.segment));
        let bboxes = segments.iter().map(|s| s.bounding_box()).collect();
        let live = segments.len();
        Self {
            alive: vec![true; live],
            live,
            segments,
            soa,
            bboxes,
            distance,
        }
    }

    /// Appends already-identified segments to the database, extending the
    /// structure-of-arrays geometry cache and the cached bounding boxes in
    /// place — the streaming counterpart of [`Self::from_segments`].
    ///
    /// Ids must continue the dense sequence (`segments[k].id.0 == len + k`),
    /// exactly what [`crate::partition::partition_trajectory_from`] emits
    /// when handed the current length as the first id. Any
    /// [`NeighborIndex`] built earlier must be told about the new entries
    /// via [`NeighborIndex::insert`] (or be rebuilt) before its next query.
    pub fn append_segments(&mut self, segments: impl IntoIterator<Item = IdentifiedSegment<D>>) {
        for s in segments {
            assert_eq!(
                s.id.0 as usize,
                self.segments.len(),
                "appended segment ids must continue the dense sequence"
            );
            self.soa.push(&s.segment);
            self.bboxes.push(s.bounding_box());
            self.segments.push(s);
            self.alive.push(true);
            self.live += 1;
        }
    }

    /// Tombstones one segment: it vanishes from neighborhood queries, the
    /// database bounding box, and future [`Self::build_index`] builds, but
    /// keeps its id slot and geometry (removal repair queries the dead
    /// segment's old ε-ball, and dense label arrays stay index-aligned).
    /// Any live [`NeighborIndex`] must be told via [`NeighborIndex::remove`]
    /// before its next query. Returns whether the segment was live.
    pub fn remove_segment(&mut self, id: u32) -> bool {
        let slot = &mut self.alive[id as usize];
        if !*slot {
            return false;
        }
        *slot = false;
        self.live -= 1;
        true
    }

    /// Whether a segment is live (not tombstoned).
    pub fn is_live(&self, id: u32) -> bool {
        self.alive[id as usize]
    }

    /// Number of live (non-tombstoned) segments.
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// A fresh database holding exactly the live segments, re-identified
    /// densely in ascending-id order — bit-identical to what the batch
    /// pipeline builds over the surviving trajectories in arrival order
    /// (per-trajectory partitioning is independent, so compaction and
    /// re-partitioning agree). Trajectory ids and weights are preserved.
    pub fn compact_live(&self) -> SegmentDatabase<D> {
        let segments = self
            .segments
            .iter()
            .zip(&self.alive)
            .filter(|(_, &alive)| alive)
            .enumerate()
            .map(|(k, (s, _))| IdentifiedSegment {
                id: traclus_geom::SegmentId(k as u32),
                trajectory: s.trajectory,
                segment: s.segment,
                weight: s.weight,
            })
            .collect();
        Self::from_segments(segments, self.distance)
    }

    /// Runs the partitioning phase over `trajectories` and builds the
    /// database from the result (Figure 4, lines 1–3).
    pub fn from_trajectories(
        trajectories: &[Trajectory<D>],
        partition: &PartitionConfig,
        distance: SegmentDistance,
    ) -> Self {
        Self::from_segments(partition_trajectories(partition, trajectories), distance)
    }

    /// Number of id slots (`numln` over the whole stream — live *and*
    /// tombstoned segments; see [`Self::live_len`] for the live count).
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when no segments are stored.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The stored segments, id-ordered.
    pub fn segments(&self) -> &[IdentifiedSegment<D>] {
        &self.segments
    }

    /// One segment by dense id.
    pub fn segment(&self, id: u32) -> &IdentifiedSegment<D> {
        &self.segments[id as usize]
    }

    /// Cached length of a segment.
    pub fn length(&self, id: u32) -> f64 {
        self.soa.length(id as usize)
    }

    /// Cached midpoint of a segment's MBR (used by the sharded parallel
    /// path to assign segments to spatial tiles).
    pub fn midpoint(&self, id: u32) -> traclus_geom::Point<D> {
        self.soa.midpoint(id as usize)
    }

    /// Cached bounding box of a segment.
    pub fn bbox_of(&self, id: u32) -> &Aabb<D> {
        &self.bboxes[id as usize]
    }

    /// The structure-of-arrays geometry cache (contiguous starts, ends,
    /// directions, squared norms, lengths, midpoints), built once at
    /// construction for the batched distance kernel.
    pub fn soa(&self) -> &SegmentSoa<D> {
        &self.soa
    }

    /// The distance function shared by all phases.
    pub fn distance_fn(&self) -> &SegmentDistance {
        &self.distance
    }

    /// Distance between two stored segments, with the Lemma 2 ordering done
    /// on cached lengths and the id tie-break (the paper's "internal
    /// identifier").
    pub fn distance(&self, a: u32, b: u32) -> f64 {
        let (i, j) = self.ordered_pair(a, b);
        self.distance.distance_ordered(
            &self.segments[i as usize].segment,
            &self.segments[j as usize].segment,
        )
    }

    /// Batched distances from `query` to each candidate (same ordering and
    /// bit-exact results as [`Self::distance`], one hoisted projection
    /// setup instead of per-pair recomputation). `out[k]` receives the
    /// distance to `candidates[k]`.
    pub fn distances_into(&self, query: u32, candidates: &[u32], out: &mut Vec<f64>) {
        self.distance
            .distance_many(&self.soa, query, candidates, out);
    }

    fn ordered_pair(&self, a: u32, b: u32) -> (u32, u32) {
        let la = self.soa.length(a as usize);
        let lb = self.soa.length(b as usize);
        if la > lb {
            (a, b)
        } else if lb > la {
            (b, a)
        } else if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Builds a neighborhood index of the requested kind.
    ///
    /// `typical_eps` sizes grid cells (any positive value keeps the grid
    /// correct; a value near the query ε keeps it fast). R-tree and linear
    /// variants ignore it. A non-positive or non-finite `typical_eps`
    /// cannot size a grid — the cell then falls back to one derived from
    /// the database bounding box (longest side over `√n`), and if that is
    /// degenerate too (empty database, or all segments stacked on one
    /// point) the grid degrades to a linear scan rather than hashing every
    /// segment into a pathological one-point-per-cell lattice.
    pub fn build_index(&self, kind: IndexKind, typical_eps: f64) -> NeighborIndex<D> {
        self.build_index_parallel(kind, typical_eps, 1)
    }

    /// Builds a neighborhood index like [`Self::build_index`], using up to
    /// `threads` worker threads where the underlying structure supports
    /// it. Only the R-tree arm parallelises today (STR bulk load — see
    /// [`RTree::bulk_load_parallel`]); grid and linear builds ignore the
    /// thread count. The resulting index is **identical** to the
    /// single-threaded build for any thread count, so query results — and
    /// therefore clustering output — cannot depend on `threads`.
    pub fn build_index_parallel(
        &self,
        kind: IndexKind,
        typical_eps: f64,
        threads: usize,
    ) -> NeighborIndex<D> {
        let radius_per_eps = filter_radius(1.0, &self.distance.weights);
        let entries = || {
            self.segments
                .iter()
                .zip(&self.bboxes)
                .zip(&self.alive)
                .filter(|(_, &alive)| alive)
                .map(|((s, b), _)| (s.id.0, *b))
        };
        let imp = match kind {
            IndexKind::Linear => IndexImpl::Linear,
            IndexKind::Grid => {
                let cell = typical_eps * radius_per_eps.unwrap_or(1.0);
                match self.grid_cell_or_fallback(cell) {
                    Some(cell) => IndexImpl::Grid(GridIndex::build(cell, entries())),
                    None => IndexImpl::Linear,
                }
            }
            IndexKind::RTree => IndexImpl::RTree(RTree::bulk_load_parallel(
                RTreeParams::default(),
                entries(),
                threads,
            )),
        };
        NeighborIndex {
            imp,
            radius_per_eps,
            prune: true,
            counters: PruneCounters::default(),
        }
    }

    /// The spatial radius (in coordinate units) by which an ε-query under
    /// this database's distance weights expands a segment's bounding box,
    /// or `None` when the weights are inadmissible and only a full scan
    /// is correct. Used by the shard planner to estimate per-segment
    /// candidate-set sizes; see [`traclus_index::filter_radius`].
    pub fn query_radius(&self, eps: f64) -> Option<f64> {
        if eps.is_finite() && eps >= 0.0 {
            filter_radius(eps, &self.distance.weights)
        } else {
            None
        }
    }

    /// A usable grid cell size: `cell` when positive and finite, else a
    /// fallback from the bounding-box extent, else `None` (use linear scan).
    fn grid_cell_or_fallback(&self, cell: f64) -> Option<f64> {
        if cell > 0.0 && cell.is_finite() {
            return Some(cell);
        }
        let bb = self.bounding_box();
        if bb.is_empty() {
            return None;
        }
        let extent = (0..D).map(|k| bb.max[k] - bb.min[k]).fold(0.0f64, f64::max);
        let fallback = extent / (self.live as f64).sqrt().max(1.0);
        (fallback > 0.0 && fallback.is_finite()).then_some(fallback)
    }

    /// Appends to `out` the ids of the ε-neighborhood `Nε(L)` of segment
    /// `id` (Definition 4). The segment itself is included —
    /// `dist(L, L) = 0 ≤ ε` — matching DBSCAN's core-count convention.
    /// Results are sorted by id for determinism.
    ///
    /// When the index has pruning enabled (the default), candidates pass
    /// through the tiered lower bounds of [`traclus_geom::lower_bound`]
    /// first and only the survivors reach the batched kernel; because the
    /// bounds never exceed the computed distance, the output is
    /// bit-identical with pruning on or off. Candidate order is preserved
    /// through the filter, so the weighted refinement sums stay in the
    /// same id-ascending order either way.
    pub fn neighborhood_into(
        &self,
        index: &NeighborIndex<D>,
        id: u32,
        eps: f64,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        // The query-side filter state (weight coefficients, ε thresholds,
        // cached geometry) is hoisted once; `None` for inadmissible
        // weights, in which case every candidate refines but is still
        // tallied so the counter invariants hold.
        let filter = if index.prune {
            lower_bound::PruneFilter::new(
                &self.soa,
                id,
                &self.bboxes[id as usize],
                &self.distance,
                eps,
            )
        } else {
            None
        };
        let prune = index.prune;
        let mut local = LocalPruneCounts::default();
        match (&index.imp, index.radius_per_eps) {
            (IndexImpl::Linear, _) | (_, None) => {
                // Full scan: either requested or forced by degenerate
                // weights (no conservative filter exists). The candidate
                // universe is the live ids ascending, so pack consecutive
                // live chunks and feed them to the batched kernel.
                let n = self.segments.len() as u32;
                let mut ids = [0u32; REFINE_CHUNK];
                let mut dists = [0.0f64; REFINE_CHUNK];
                let mut take = 0usize;
                for cand in 0..n {
                    if !self.alive[cand as usize] {
                        continue;
                    }
                    if prune && self.prune_candidate(filter.as_ref(), id, cand, eps, &mut local) {
                        continue;
                    }
                    ids[take] = cand;
                    take += 1;
                    if take == REFINE_CHUNK {
                        self.refine_chunk(id, &ids[..take], &mut dists[..take], eps, out);
                        take = 0;
                    }
                }
                if take > 0 {
                    self.refine_chunk(id, &ids[..take], &mut dists[..take], eps, out);
                }
            }
            (imp, Some(r)) => {
                let window = self.bboxes[id as usize].expanded(eps * r);
                let mut candidates = Vec::new();
                match imp {
                    IndexImpl::Grid(g) => g.query_sorted_into(&window, &mut candidates),
                    IndexImpl::RTree(t) => t.query_sorted_into(&window, &mut candidates),
                    IndexImpl::Linear => unreachable!("handled above"),
                }
                if prune {
                    // `retain` keeps the sorted candidate order.
                    candidates.retain(|&cand| {
                        !self.prune_candidate(filter.as_ref(), id, cand, eps, &mut local)
                    });
                }
                let mut dists = [0.0f64; REFINE_CHUNK];
                for chunk in candidates.chunks(REFINE_CHUNK) {
                    self.refine_chunk(id, chunk, &mut dists[..chunk.len()], eps, out);
                }
            }
        }
        index.counters.flush(&local);
    }

    /// The filter step of one candidate: returns `true` (and tallies the
    /// deciding tier) when an admissible lower bound already exceeds `eps`,
    /// so the exact kernel never sees the pair. Under `invariant-checks`
    /// every discard is immediately re-scored exactly and the process
    /// aborts on the first candidate a bound wrongly excluded.
    #[inline]
    fn prune_candidate(
        &self,
        filter: Option<&lower_bound::PruneFilter<D>>,
        query: u32,
        cand: u32,
        eps: f64,
        local: &mut LocalPruneCounts,
    ) -> bool {
        local.candidates += 1;
        let tier = filter.and_then(|f| f.check(&self.soa, cand, &self.bboxes[cand as usize]));
        #[cfg(not(feature = "invariant-checks"))]
        let _ = (query, eps);
        match tier {
            Some(t) => {
                #[cfg(feature = "invariant-checks")]
                crate::invariants::assert_pruned_pair_outside_eps(self, query, cand, eps, t);
                local.pruned[t] += 1;
                true
            }
            None => {
                local.refined += 1;
                false
            }
        }
    }

    /// Batch-evaluates distances from `id` to one candidate chunk and keeps
    /// the candidates within `eps`.
    #[inline]
    fn refine_chunk(
        &self,
        id: u32,
        chunk: &[u32],
        dists: &mut [f64],
        eps: f64,
        out: &mut Vec<u32>,
    ) {
        self.distance
            .distance_many_into(&self.soa, id, chunk, dists);
        for (&cand, &d) in chunk.iter().zip(dists.iter()) {
            if d <= eps {
                out.push(cand);
            }
        }
    }

    /// The ε-neighborhood as a fresh vector.
    pub fn neighborhood(&self, index: &NeighborIndex<D>, id: u32, eps: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.neighborhood_into(index, id, eps, &mut out);
        out
    }

    /// `|Nε(L)|` as a (possibly weighted) cardinality: the plain count when
    /// `weighted` is false, else the sum of member weights (the Section 4.2
    /// weighted-trajectory extension).
    pub fn neighborhood_cardinality(&self, members: &[u32], weighted: bool) -> f64 {
        if weighted {
            members
                .iter()
                .map(|&m| self.segments[m as usize].weight)
                .sum()
        } else {
            members.len() as f64
        }
    }

    /// The trajectory a segment came from (`TR(L)` of Definition 10).
    pub fn trajectory_of(&self, id: u32) -> TrajectoryId {
        self.segments[id as usize].trajectory
    }

    /// Bounding box of the live contents of the database.
    pub fn bounding_box(&self) -> Aabb<D> {
        let mut b = Aabb::empty();
        for (bb, &alive) in self.bboxes.iter().zip(&self.alive) {
            if alive {
                b.extend(bb);
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traclus_geom::{Segment2, SegmentId};

    fn db_from(segs: &[Segment2]) -> SegmentDatabase<2> {
        let identified = segs
            .iter()
            .enumerate()
            .map(|(k, s)| IdentifiedSegment::new(SegmentId(k as u32), TrajectoryId(k as u32), *s))
            .collect();
        SegmentDatabase::from_segments(identified, SegmentDistance::default())
    }

    fn sample_db() -> SegmentDatabase<2> {
        // Three parallel neighbours + one far-away outlier.
        db_from(&[
            Segment2::xy(0.0, 0.0, 10.0, 0.0),
            Segment2::xy(0.0, 1.0, 10.0, 1.0),
            Segment2::xy(0.0, 2.0, 10.0, 2.0),
            Segment2::xy(100.0, 100.0, 110.0, 100.0),
        ])
    }

    #[test]
    fn neighborhood_includes_self() {
        let db = sample_db();
        let idx = db.build_index(IndexKind::Linear, 1.5);
        let n = db.neighborhood(&idx, 0, 0.0);
        assert_eq!(n, vec![0], "dist(L, L) = 0 ⇒ L ∈ Nε(L)");
    }

    #[test]
    fn all_index_kinds_agree() {
        let db = sample_db();
        for eps in [0.5, 1.5, 3.0, 50.0] {
            let linear = db.build_index(IndexKind::Linear, eps);
            let grid = db.build_index(IndexKind::Grid, eps);
            let rtree = db.build_index(IndexKind::RTree, eps);
            for id in 0..db.len() as u32 {
                let a = db.neighborhood(&linear, id, eps);
                let b = db.neighborhood(&grid, id, eps);
                let c = db.neighborhood(&rtree, id, eps);
                assert_eq!(a, b, "grid vs linear at eps={eps}, id={id}");
                assert_eq!(a, c, "rtree vs linear at eps={eps}, id={id}");
            }
        }
    }

    #[test]
    fn neighborhoods_are_sorted_and_unique() {
        let db = sample_db();
        let idx = db.build_index(IndexKind::RTree, 2.0);
        let n = db.neighborhood(&idx, 1, 2.0);
        let mut sorted = n.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(n, sorted);
        assert!(n.contains(&0) && n.contains(&1) && n.contains(&2));
        assert!(!n.contains(&3), "outlier is no neighbour at eps=2");
    }

    #[test]
    fn distance_symmetry_via_cached_ordering() {
        let db = sample_db();
        for a in 0..db.len() as u32 {
            for b in 0..db.len() as u32 {
                assert!(
                    (db.distance(a, b) - db.distance(b, a)).abs() < 1e-12,
                    "symmetry broken for ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn weighted_cardinality_sums_weights() {
        let segs = vec![
            IdentifiedSegment {
                id: SegmentId(0),
                trajectory: TrajectoryId(0),
                segment: Segment2::xy(0.0, 0.0, 1.0, 0.0),
                weight: 2.5,
            },
            IdentifiedSegment {
                id: SegmentId(1),
                trajectory: TrajectoryId(1),
                segment: Segment2::xy(0.0, 0.1, 1.0, 0.1),
                weight: 0.5,
            },
        ];
        let db = SegmentDatabase::from_segments(segs, SegmentDistance::default());
        assert_eq!(db.neighborhood_cardinality(&[0, 1], false), 2.0);
        assert_eq!(db.neighborhood_cardinality(&[0, 1], true), 3.0);
    }

    #[test]
    fn grid_at_zero_eps_matches_linear() {
        // typical_eps = 0 used to clamp the cell to 1e-9, hashing every
        // segment into an astronomical number of one-point cells; the
        // fallback now derives the cell from the bounding box.
        let db = sample_db();
        let linear = db.build_index(IndexKind::Linear, 0.0);
        let grid = db.build_index(IndexKind::Grid, 0.0);
        for id in 0..db.len() as u32 {
            for eps in [0.0, 1.5] {
                assert_eq!(
                    db.neighborhood(&grid, id, eps),
                    db.neighborhood(&linear, id, eps),
                    "grid vs linear at eps={eps}, id={id}"
                );
            }
        }
        // Degenerate database (single point-segment): no usable extent
        // either — the grid must degrade to a full scan, not panic.
        let point_db = db_from(&[Segment2::xy(5.0, 5.0, 5.0, 5.0)]);
        let idx = point_db.build_index(IndexKind::Grid, 0.0);
        assert_eq!(point_db.neighborhood(&idx, 0, 0.0), vec![0]);
        // Non-finite typical_eps takes the same fallback.
        let idx = db.build_index(IndexKind::Grid, f64::INFINITY);
        assert_eq!(db.neighborhood(&idx, 0, 1.5), vec![0, 1]);
    }

    #[test]
    fn batched_distances_match_scalar_bitwise() {
        let db = sample_db();
        let candidates: Vec<u32> = (0..db.len() as u32).collect();
        let mut out = Vec::new();
        for q in 0..db.len() as u32 {
            db.distances_into(q, &candidates, &mut out);
            assert_eq!(out.len(), candidates.len());
            for (&c, &d) in candidates.iter().zip(&out) {
                assert_eq!(
                    d.to_bits(),
                    db.distance(q, c).to_bits(),
                    "batched != scalar for ({q},{c})"
                );
            }
        }
    }

    #[test]
    fn tombstones_drop_out_of_queries_and_builds() {
        let mut db = sample_db();
        assert_eq!(db.live_len(), 4);
        assert!(db.remove_segment(1));
        assert!(!db.remove_segment(1), "second removal is a no-op");
        assert_eq!(db.live_len(), 3);
        assert_eq!(db.len(), 4, "id space keeps the tombstone slot");
        assert!(!db.is_live(1));

        // Full scans skip the dead segment; the query center may itself be
        // dead (removal repair asks who was near the departed segment).
        let linear = db.build_index(IndexKind::Linear, 1.5);
        assert_eq!(db.neighborhood(&linear, 0, 1.5), vec![0]);
        assert_eq!(db.neighborhood(&linear, 1, 1.5), vec![0, 2]);

        // Freshly built spatial indexes agree (the dead entry is absent).
        for kind in [IndexKind::Grid, IndexKind::RTree] {
            let idx = db.build_index(kind, 1.5);
            for id in [0u32, 2, 3] {
                assert_eq!(
                    db.neighborhood(&idx, id, 1.5),
                    db.neighborhood(&linear, id, 1.5),
                    "{kind:?} vs linear for id={id}"
                );
            }
        }

        // A live index tracks removal incrementally.
        let mut db2 = sample_db();
        let mut idx = db2.build_index(IndexKind::RTree, 1.5);
        let bbox = *db2.bbox_of(1);
        db2.remove_segment(1);
        idx.remove(1, &bbox);
        assert_eq!(db2.neighborhood(&idx, 0, 1.5), vec![0]);
    }

    #[test]
    fn compact_live_reindexes_densely() {
        let mut db = sample_db();
        db.remove_segment(0);
        db.remove_segment(2);
        let live = db.compact_live();
        assert_eq!(live.len(), 2);
        assert_eq!(live.live_len(), 2);
        // Survivors keep their order, trajectory ids, and geometry.
        assert_eq!(live.segment(0).trajectory, TrajectoryId(1));
        assert_eq!(live.segment(1).trajectory, TrajectoryId(3));
        assert_eq!(live.segment(0).segment, db.segment(1).segment);
        assert_eq!(live.segment(1).segment, db.segment(3).segment);
        assert_eq!(live.segment(0).id, SegmentId(0));
        assert_eq!(live.segment(1).id, SegmentId(1));
    }

    #[test]
    fn bounding_box_shrinks_with_removals() {
        let mut db = sample_db();
        let before = db.bounding_box();
        assert!(before.max[0] >= 110.0, "outlier spans far right");
        db.remove_segment(3);
        let after = db.bounding_box();
        assert!(after.max[0] <= 10.0, "outlier no longer stretches the box");
        for id in [0, 1, 2] {
            db.remove_segment(id);
        }
        assert!(db.bounding_box().is_empty());
        assert_eq!(db.live_len(), 0);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_ids_rejected() {
        let segs = vec![IdentifiedSegment::new(
            SegmentId(5),
            TrajectoryId(0),
            Segment2::xy(0.0, 0.0, 1.0, 0.0),
        )];
        let _ = SegmentDatabase::from_segments(segs, SegmentDistance::default());
    }

    #[test]
    fn zero_parallel_weight_falls_back_to_full_scan_correctly() {
        // With w∥ = 0 two collinear far-apart segments are at distance 0;
        // the filter must not prune them.
        let segs = vec![
            IdentifiedSegment::new(
                SegmentId(0),
                TrajectoryId(0),
                Segment2::xy(0.0, 0.0, 10.0, 0.0),
            ),
            IdentifiedSegment::new(
                SegmentId(1),
                TrajectoryId(1),
                Segment2::xy(500.0, 0.0, 510.0, 0.0),
            ),
        ];
        let dist = SegmentDistance::new(
            traclus_geom::DistanceWeights::new(1.0, 0.0, 1.0),
            traclus_geom::AngleMode::Directed,
        );
        let db = SegmentDatabase::from_segments(segs, dist);
        let idx = db.build_index(IndexKind::RTree, 1.0);
        let n = db.neighborhood(&idx, 0, 0.5);
        assert_eq!(n, vec![0, 1], "collinear segments are neighbours at w∥=0");
    }

    #[test]
    fn from_trajectories_round_trip() {
        let trajs = vec![
            Trajectory::new(
                TrajectoryId(0),
                vec![
                    traclus_geom::Point2::xy(0.0, 0.0),
                    traclus_geom::Point2::xy(50.0, 0.0),
                    traclus_geom::Point2::xy(50.0, 50.0),
                ],
            ),
            Trajectory::new(
                TrajectoryId(1),
                vec![
                    traclus_geom::Point2::xy(0.0, 5.0),
                    traclus_geom::Point2::xy(50.0, 5.0),
                ],
            ),
        ];
        let db = SegmentDatabase::from_trajectories(
            &trajs,
            &PartitionConfig::default(),
            SegmentDistance::default(),
        );
        assert!(db.len() >= 3);
        assert_eq!(db.trajectory_of(0), TrajectoryId(0));
        assert!(!db.bounding_box().is_empty());
    }
}
