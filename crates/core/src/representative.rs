//! Representative trajectory generation (Section 4.3, Figure 15).
//!
//! For each cluster, a sweep line travels along the cluster's *average
//! direction vector* (Definition 11). At every start/end point of a member
//! segment (sorted by rotated `X′`), the number of member segments whose
//! `X′`-extent contains the sweep position is counted; where at least
//! `MinLns` segments are hit — and the previous emitted point is at least
//! the smoothing distance γ behind — the average of the member segments'
//! coordinates at that sweep position is emitted (after undoing the
//! rotation). The emitted polyline is the cluster's *common
//! sub-trajectory*.

use traclus_geom::{OrthonormalFrame, Point, Trajectory, TrajectoryId, Vector};

use crate::cluster::Cluster;
use crate::segment_db::SegmentDatabase;

/// Parameters of representative-trajectory generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepresentativeConfig {
    /// `MinLns`: minimum sweep-hit count for a point to be emitted
    /// (Figure 15 line 7). Usually the clustering `MinLns`.
    pub min_lns: usize,
    /// Smoothing parameter γ (Figure 15 line 9): minimum `X′` advance
    /// between consecutive emitted points.
    pub smoothing: f64,
    /// Weighted sweep (the Section 4.2 weighted-trajectory extension
    /// carried through to Figure 15): the hit count becomes the sum of
    /// member weights and the emitted coordinate the weighted mean.
    pub weighted: bool,
}

impl RepresentativeConfig {
    /// γ = 0 disables smoothing (every qualifying sweep position emits).
    pub fn new(min_lns: usize, smoothing: f64) -> Self {
        assert!(smoothing >= 0.0, "γ must be non-negative");
        Self {
            min_lns,
            smoothing,
            weighted: false,
        }
    }

    /// Enables the weighted sweep.
    pub fn weighted(mut self) -> Self {
        self.weighted = true;
        self
    }
}

/// The average direction vector of Definition 11: the plain vector mean,
/// deliberately *not* normalising the addends so that longer segments
/// contribute more ("a nice heuristic giving the effect of a longer vector
/// contributing more").
pub fn average_direction_vector<const D: usize>(vectors: &[Vector<D>]) -> Vector<D> {
    let mut sum = Vector::<D>::zero();
    for v in vectors {
        sum += *v;
    }
    if vectors.is_empty() {
        sum
    } else {
        sum / vectors.len() as f64
    }
}

/// Generates the representative trajectory of `cluster` (Figure 15).
///
/// Returns a trajectory whose id is the cluster id re-used as a
/// [`TrajectoryId`] in a separate namespace (representatives are
/// "imaginary" trajectories; Section 2.1). Clusters whose members never
/// stack `min_lns` deep yield an empty polyline.
pub fn representative_trajectory<const D: usize>(
    db: &SegmentDatabase<D>,
    cluster: &Cluster,
    config: &RepresentativeConfig,
) -> Trajectory<D> {
    let vectors: Vec<Vector<D>> = cluster
        .members
        .iter()
        .map(|&m| db.segment(m).segment.vector())
        .collect();
    let mut avg_dir = average_direction_vector(&vectors);
    if avg_dir.normalized().is_none() {
        // Anti-parallel members can cancel exactly; fall back to the
        // longest member's direction so the sweep axis is still defined.
        avg_dir = cluster
            .members
            .iter()
            .map(|&m| db.segment(m).segment.vector())
            .max_by(|a, b| a.norm_squared().total_cmp(&b.norm_squared()))
            .unwrap_or_else(Vector::zero);
    }
    let frame = match OrthonormalFrame::from_direction(&avg_dir) {
        Some(f) => f,
        None => {
            // Only possible for an empty/degenerate cluster.
            return Trajectory::new(TrajectoryId(cluster.id.0), Vec::new());
        }
    };

    // Member segments in frame coordinates, oriented so start.x′ ≤ end.x′
    // (lines 1–2: "rotate the axes"; the sweep only cares about extents).
    struct FrameSegment<const D: usize> {
        lo: [f64; D],
        hi: [f64; D],
        weight: f64,
    }
    let mut frame_segments: Vec<FrameSegment<D>> = Vec::with_capacity(cluster.members.len());
    let mut events: Vec<f64> = Vec::with_capacity(cluster.members.len() * 2);
    for &m in &cluster.members {
        let identified = db.segment(m);
        let seg = &identified.segment;
        let a = frame.to_frame(&seg.start);
        let b = frame.to_frame(&seg.end);
        let (lo, hi) = if a[0] <= b[0] { (a, b) } else { (b, a) };
        events.push(lo[0]);
        events.push(hi[0]);
        frame_segments.push(FrameSegment {
            lo,
            hi,
            weight: if config.weighted {
                identified.weight
            } else {
                1.0
            },
        });
    }
    // Lines 3–4: sort the endpoints by X′.
    events.sort_by(f64::total_cmp);

    let mut points: Vec<Point<D>> = Vec::new();
    let mut last_emitted_x: Option<f64> = None;
    for &x in &events {
        // Line 6: count the segments containing this X′ value (weighted
        // counts under the Section 4.2 extension).
        let mut hits = 0.0f64;
        for fs in &frame_segments {
            if fs.lo[0] <= x && x <= fs.hi[0] {
                hits += fs.weight;
            }
        }
        if hits < config.min_lns as f64 {
            continue; // line 7 fails: skip (e.g. positions 5–6 in Figure 13)
        }
        // Line 9: smoothing — require an X′ advance of at least γ.
        if let Some(prev) = last_emitted_x {
            if x - prev < config.smoothing {
                continue;
            }
        }
        // Line 10: average the member coordinates at this sweep position
        // (weight-averaged under the weighted extension).
        let mut avg = [0.0f64; D];
        let mut total_weight = 0.0f64;
        for fs in &frame_segments {
            if fs.lo[0] <= x && x <= fs.hi[0] {
                let span = fs.hi[0] - fs.lo[0];
                let t = if span > 0.0 {
                    (x - fs.lo[0]) / span
                } else {
                    0.5
                };
                for k in 1..D {
                    avg[k] += fs.weight * (fs.lo[k] + t * (fs.hi[k] - fs.lo[k]));
                }
                total_weight += fs.weight;
            }
        }
        for a in avg.iter_mut().skip(1) {
            *a /= total_weight;
        }
        avg[0] = x;
        // Line 11: undo the rotation.
        points.push(frame.from_frame(&avg));
        last_emitted_x = Some(x);
    }
    Trajectory::new(TrajectoryId(cluster.id.0), points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterId};
    use traclus_geom::{IdentifiedSegment, Segment2, SegmentDistance, SegmentId, Vector2};

    fn db_of(segs: &[Segment2]) -> SegmentDatabase<2> {
        let identified = segs
            .iter()
            .enumerate()
            .map(|(k, s)| IdentifiedSegment::new(SegmentId(k as u32), TrajectoryId(k as u32), *s))
            .collect();
        SegmentDatabase::from_segments(identified, SegmentDistance::default())
    }

    fn cluster_of(n: usize) -> Cluster {
        Cluster {
            id: ClusterId(0),
            members: (0..n as u32).collect(),
            trajectories: (0..n as u32).map(TrajectoryId).collect(),
        }
    }

    #[test]
    fn average_direction_weighs_longer_vectors_more() {
        let v = average_direction_vector(&[Vector2::xy(10.0, 0.0), Vector2::xy(0.0, 1.0)]);
        assert!(v.x() > v.y(), "the long east vector dominates");
        assert!((v.x() - 5.0).abs() < 1e-12);
        assert!((v.y() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn average_direction_of_empty_set_is_zero() {
        let v: Vector2 = average_direction_vector(&[]);
        assert_eq!(v, Vector2::zero());
    }

    #[test]
    fn parallel_bundle_yields_centerline() {
        // Five horizontal segments at y = 0..4: the representative must run
        // along y ≈ 2 (the average) from x=0 to x=10.
        let segs: Vec<Segment2> = (0..5)
            .map(|i| Segment2::xy(0.0, i as f64, 10.0, i as f64))
            .collect();
        let db = db_of(&segs);
        let rep =
            representative_trajectory(&db, &cluster_of(5), &RepresentativeConfig::new(3, 0.0));
        assert!(rep.points.len() >= 2);
        for p in &rep.points {
            assert!(
                (p.y() - 2.0).abs() < 1e-9,
                "centerline at y=2, got {}",
                p.y()
            );
        }
        let xs: Vec<f64> = rep.points.iter().map(|p| p.x()).collect();
        assert!(xs.windows(2).all(|w| w[0] <= w[1]), "monotone along sweep");
    }

    #[test]
    fn fully_tied_sweep_events_are_stable_under_total_cmp() {
        // Regression for the partial_cmp → total_cmp switch in the sweep's
        // event sort: four identical segments make every event value tie
        // exactly (and the x = 0 endpoints can carry either zero sign after
        // the frame rotation). The representative must still be the shared
        // corridor itself.
        let segs = vec![Segment2::xy(0.0, 1.0, 10.0, 1.0); 4];
        let db = db_of(&segs);
        let rep =
            representative_trajectory(&db, &cluster_of(4), &RepresentativeConfig::new(3, 0.0));
        assert!(rep.points.len() >= 2, "degenerate ties must still emit");
        for p in &rep.points {
            assert!(
                (p.y() - 1.0).abs() < 1e-12,
                "corridor at y=1, got {}",
                p.y()
            );
        }
        let xs: Vec<f64> = rep.points.iter().map(|p| p.x()).collect();
        assert!(xs.windows(2).all(|w| w[0] <= w[1]), "monotone along sweep");
    }

    #[test]
    fn min_lns_gates_sparse_regions() {
        // Figure 13's staircase: three overlapping segments in the middle,
        // single segments at the flanks. With MinLns = 3 only the overlap
        // region emits points.
        let segs = vec![
            Segment2::xy(0.0, 0.0, 6.0, 0.0),
            Segment2::xy(2.0, 1.0, 8.0, 1.0),
            Segment2::xy(4.0, 2.0, 10.0, 2.0),
        ];
        let db = db_of(&segs);
        let rep =
            representative_trajectory(&db, &cluster_of(3), &RepresentativeConfig::new(3, 0.0));
        for p in &rep.points {
            assert!(
                (4.0 - 1e-9..=6.0 + 1e-9).contains(&p.x()),
                "emitted point {p:?} outside the 3-deep overlap [4, 6]"
            );
        }
        assert!(!rep.points.is_empty(), "the overlap is MinLns deep");
    }

    #[test]
    fn smoothing_thins_out_points() {
        let segs: Vec<Segment2> = (0..6)
            .map(|i| {
                let x0 = i as f64 * 0.5;
                Segment2::xy(x0, i as f64 * 0.1, x0 + 10.0, i as f64 * 0.1)
            })
            .collect();
        let db = db_of(&segs);
        let dense =
            representative_trajectory(&db, &cluster_of(6), &RepresentativeConfig::new(3, 0.0));
        let sparse =
            representative_trajectory(&db, &cluster_of(6), &RepresentativeConfig::new(3, 2.0));
        assert!(sparse.points.len() < dense.points.len());
        let xs: Vec<f64> = sparse.points.iter().map(|p| p.x()).collect();
        assert!(
            xs.windows(2).all(|w| w[1] - w[0] >= 2.0 - 1e-9),
            "γ enforces the minimum advance: {xs:?}"
        );
    }

    #[test]
    fn too_shallow_cluster_yields_empty_representative() {
        let segs = vec![
            Segment2::xy(0.0, 0.0, 10.0, 0.0),
            Segment2::xy(20.0, 0.0, 30.0, 0.0), // disjoint X-extents
        ];
        let db = db_of(&segs);
        let rep =
            representative_trajectory(&db, &cluster_of(2), &RepresentativeConfig::new(3, 0.0));
        assert!(rep.points.is_empty());
    }

    #[test]
    fn diagonal_bundle_follows_average_direction() {
        // Bundle at 45°: the representative must also run at ≈45°.
        let segs: Vec<Segment2> = (0..4)
            .map(|i| {
                let off = i as f64 * 0.5;
                Segment2::xy(0.0 + off, 0.0 - off, 10.0 + off, 10.0 - off)
            })
            .collect();
        let db = db_of(&segs);
        let rep =
            representative_trajectory(&db, &cluster_of(4), &RepresentativeConfig::new(3, 0.0));
        assert!(rep.points.len() >= 2);
        let first = rep.points.first().unwrap();
        let last = rep.points.last().unwrap();
        let dir = first.vector_to(last);
        let angle = dir.angle(&Vector2::xy(1.0, 1.0)).unwrap();
        assert!(angle < 0.05, "representative runs along the diagonal");
    }

    #[test]
    fn anti_parallel_members_do_not_crash() {
        // Directions cancel exactly; the fallback axis keeps the sweep
        // defined.
        let segs = vec![
            Segment2::xy(0.0, 0.0, 10.0, 0.0),
            Segment2::xy(10.0, 1.0, 0.0, 1.0),
            Segment2::xy(0.0, 2.0, 10.0, 2.0),
            Segment2::xy(10.0, 3.0, 0.0, 3.0),
        ];
        let db = db_of(&segs);
        let rep =
            representative_trajectory(&db, &cluster_of(4), &RepresentativeConfig::new(3, 0.0));
        assert!(
            rep.points.len() >= 2,
            "sweep still works on the fallback axis"
        );
    }

    #[test]
    fn vertical_member_in_frame_uses_midpoint() {
        // A member perpendicular to the sweep axis has zero X′ extent; its
        // contribution falls back to the segment midpoint.
        let segs = vec![
            Segment2::xy(0.0, 0.0, 10.0, 0.0),
            Segment2::xy(0.0, 1.0, 10.0, 1.0),
            Segment2::xy(5.0, -2.0, 5.0, 2.0), // vertical
        ];
        let db = db_of(&segs);
        let rep =
            representative_trajectory(&db, &cluster_of(3), &RepresentativeConfig::new(3, 0.0));
        for p in &rep.points {
            assert!(p.is_finite());
        }
    }

    #[test]
    fn representative_id_mirrors_cluster_id() {
        let segs = vec![
            Segment2::xy(0.0, 0.0, 10.0, 0.0),
            Segment2::xy(0.0, 1.0, 10.0, 1.0),
        ];
        let db = db_of(&segs);
        let mut cluster = cluster_of(2);
        cluster.id = ClusterId(5);
        let rep = representative_trajectory(&db, &cluster, &RepresentativeConfig::new(2, 0.0));
        assert_eq!(rep.id, TrajectoryId(5));
    }

    #[test]
    fn sweep_respects_figure_13_counts() {
        // Reconstruction of Figure 13's intent: count transitions happen
        // exactly at start/end points.
        let segs = vec![
            Segment2::xy(0.0, 0.0, 4.0, 0.0),
            Segment2::xy(1.0, 1.0, 5.0, 1.0),
            Segment2::xy(2.0, 2.0, 6.0, 2.0),
            Segment2::xy(3.0, 3.0, 7.0, 3.0),
        ];
        let db = db_of(&segs);
        let rep =
            representative_trajectory(&db, &cluster_of(4), &RepresentativeConfig::new(3, 0.0));
        // 3+ deep only within [2, 5].
        for p in &rep.points {
            assert!((2.0 - 1e-9..=5.0 + 1e-9).contains(&p.x()), "{}", p.x());
        }
    }
}
